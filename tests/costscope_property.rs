//! Property tests for `CostScope` merging — the algebra that makes
//! intra-query attribution deterministic. Worker scopes merge into the
//! parent in job order; for that to be bit-identical to the serial
//! accumulation (and to any other join order the scheduler could produce),
//! the merge must be associative and order-insensitive, and applying the
//! merged scope to an `ExecReport` must equal accumulating every delta
//! directly in canonical operator order.

use ghostdb_exec::{CostScope, ExecReport, OpKind};
use ghostdb_flash::SimDuration;
use proptest::prelude::*;

/// A random attribution trace: (operator index, nanoseconds) deltas.
fn trace() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..OpKind::ALL.len(), 0u64..1_000_000_000), 0..64)
}

fn scope_of(deltas: &[(usize, u64)]) -> CostScope {
    let mut s = CostScope::new();
    for (op, ns) in deltas {
        s.add(OpKind::ALL[*op], SimDuration::from_ns(*ns as u128));
    }
    s
}

proptest! {
    /// Splitting a trace at any point and merging the two scopes equals
    /// accumulating the whole trace into one scope.
    #[test]
    fn split_merge_equals_direct(deltas in trace(), split in 0usize..=64) {
        let cut = split.min(deltas.len());
        let mut left = scope_of(&deltas[..cut]);
        let right = scope_of(&deltas[cut..]);
        left.merge_from(&right);
        prop_assert_eq!(left, scope_of(&deltas));
    }

    /// Merging three scopes is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(a in trace(), b in trace(), c in trace()) {
        let (sa, sb, sc) = (scope_of(&a), scope_of(&b), scope_of(&c));
        let mut ab_c = sa.clone();
        ab_c.merge_from(&sb);
        ab_c.merge_from(&sc);
        let mut bc = sb.clone();
        bc.merge_from(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge_from(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// Merging worker scopes in any order yields the same parent scope
    /// (the scheduler's join order cannot leak into attribution).
    #[test]
    fn merge_is_order_insensitive(chunks in proptest::collection::vec(trace(), 1..6), rot in 0usize..6) {
        let scopes: Vec<CostScope> = chunks.iter().map(|c| scope_of(c)).collect();
        let fold = |order: &[usize]| {
            let mut acc = CostScope::new();
            for i in order {
                acc.merge_from(&scopes[*i]);
            }
            acc
        };
        let forward: Vec<usize> = (0..scopes.len()).collect();
        let mut rotated = forward.clone();
        rotated.rotate_left(rot % scopes.len().max(1));
        let mut reversed = forward.clone();
        reversed.reverse();
        let want = fold(&forward);
        prop_assert_eq!(&fold(&rotated), &want);
        prop_assert_eq!(&fold(&reversed), &want);
    }

    /// Applying a merged scope to a report walks `OpKind::ALL` in canonical
    /// order and equals the report built by direct accumulation; RAM peaks
    /// combine by max.
    #[test]
    fn apply_to_report_is_canonical(a in trace(), b in trace(), pa in 0usize..64, pb in 0usize..64) {
        let mut sa = scope_of(&a);
        sa.peak_ram = pa;
        let mut sb = scope_of(&b);
        sb.peak_ram = pb;
        let mut merged = sa.clone();
        merged.merge_from(&sb);
        let mut via_scopes = ExecReport::new();
        merged.apply_to(&mut via_scopes);

        let mut direct = ExecReport::new();
        for (op, ns) in a.iter().chain(&b) {
            direct.add(OpKind::ALL[*op], SimDuration::from_ns(*ns as u128));
        }
        direct.peak_ram_buffers = pa.max(pb);
        for op in OpKind::ALL {
            prop_assert_eq!(via_scopes.op(op), direct.op(op), "bucket {}", op.name());
        }
        prop_assert_eq!(via_scopes.flash_total(), direct.flash_total());
        prop_assert_eq!(via_scopes.peak_ram_buffers, direct.peak_ram_buffers);
    }
}
