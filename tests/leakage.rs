//! The leakage contract of `SECURITY.md`, enforced: what the untrusted PC
//! and a wire snooper observe is a function of the query and the visible
//! data alone — never of hidden values — and the padded execution mode
//! quantises the one residual signal (visible-selection volume) to
//! power-of-two buckets.
//!
//! Each test here is named from `SECURITY.md`; keep the two in sync.

use ghostdb_core::{GhostDb, GhostDbConfig, HostOp, QueryOptions, Strategy};
use ghostdb_storage::Value;

/// Two-world builder: identical visible partitions, hidden values shifted
/// by `hidden_offset` (different balances, different owners).
fn world(hidden_offset: i64) -> GhostDb {
    let mut db = GhostDb::new(GhostDbConfig {
        capture_channel: true,
        ..Default::default()
    });
    db.execute(
        "CREATE TABLE Accounts (id INT, branch CHAR(10), balance INT HIDDEN, \
         owner CHAR(20) HIDDEN)",
    )
    .expect("DDL");
    db.insert_rows(
        "Accounts",
        (0..64)
            .map(|i| {
                vec![
                    Value::Str(format!("BR{:02}", i % 8)),
                    Value::Int(1_000 + hidden_offset + i * 13),
                    Value::Str(format!("owner-{i}-{hidden_offset}")),
                ]
            })
            .collect(),
    )
    .expect("load");
    db
}

/// The snooper's view: every channel flow as (tag, wire bytes, payload).
fn transcript(db: &GhostDb) -> Vec<(String, u64, Option<Vec<u8>>)> {
    db.database()
        .expect("loaded")
        .token
        .channel
        .transcript()
        .iter()
        .map(|e| (e.tag.clone(), e.bytes, e.payload.clone()))
        .collect()
}

const Q: &str = "SELECT Accounts.owner, Accounts.balance FROM Accounts \
                 WHERE Accounts.branch = 'BR03' AND Accounts.balance > 1300";

/// SECURITY.md claim 1: hidden *data* is invisible. Two databases that
/// differ only in hidden values produce bit-identical channel transcripts
/// and bit-identical host traces for the same query.
#[test]
fn hidden_data_invisible_unpadded() {
    let mut a = world(0);
    let mut b = world(500_000);
    let rows_a = a.finalize().expect("finalize A").query(Q).expect("query A");
    let rows_b = b.finalize().expect("finalize B").query(Q).expect("query B");
    assert_ne!(
        rows_a.rows.len(),
        rows_b.rows.len(),
        "the worlds must actually differ in hidden outcomes"
    );
    assert_eq!(
        transcript(&a),
        transcript(&b),
        "wire view must not depend on hidden data"
    );
    assert_eq!(
        a.host_trace().unwrap(),
        b.host_trace().unwrap(),
        "host view must not depend on hidden data"
    );
    assert!(a.audit().unwrap().ok);
    assert!(b.audit().unwrap().ok);
}

/// Same property with volume padding on: padding is a deterministic
/// function of the visible selection, so the two worlds stay bit-identical
/// — and the padded tags still satisfy the transcript auditor.
#[test]
fn hidden_data_invisible_padded() {
    let opts = QueryOptions::new().padded(true);
    let mut a = world(0);
    let mut b = world(500_000);
    let rows_a = a
        .finalize()
        .expect("finalize A")
        .query_with(Q, &opts)
        .expect("query A")
        .0;
    let rows_b = b
        .finalize()
        .expect("finalize B")
        .query_with(Q, &opts)
        .expect("query B")
        .0;
    assert_ne!(rows_a.rows.len(), rows_b.rows.len());
    assert_eq!(transcript(&a), transcript(&b));
    assert_eq!(a.host_trace().unwrap(), b.host_trace().unwrap());
    assert!(a.audit().unwrap().ok, "padded tags must pass the auditor");
    assert!(
        transcript(&a)
            .iter()
            .any(|(tag, _, _)| tag.contains(".pad")),
        "padding must actually have engaged"
    );
}

/// SECURITY.md claim 2: hidden *selectivity* is invisible. Two queries with
/// the same shape (equal-length predicate literals) but very different
/// hidden selectivities observe the host identically, and move the same
/// tagged byte volumes on the wire. (The query text itself is public —
/// §3.3 — so only its length enters the host trace, and the two payloads
/// of the `query` flow are allowed to differ.)
#[test]
fn hidden_selectivity_invisible() {
    let q_wide = "SELECT Accounts.owner FROM Accounts \
                  WHERE Accounts.branch = 'BR03' AND Accounts.balance > 1300";
    let q_narrow = "SELECT Accounts.owner FROM Accounts \
                    WHERE Accounts.branch = 'BR03' AND Accounts.balance > 9999";
    assert_eq!(q_wide.len(), q_narrow.len(), "equal shape by construction");

    for padded in [false, true] {
        let opts = QueryOptions::new().padded(padded);
        let mut db = world(0);
        let wide = db
            .finalize()
            .expect("finalize")
            .query_with(q_wide, &opts)
            .expect("wide")
            .0;
        let trace_wide = db.host_trace().unwrap();
        let wire_wide: Vec<(String, u64)> = transcript(&db)
            .into_iter()
            .map(|(tag, bytes, _)| (tag, bytes))
            .collect();
        let narrow = db
            .finalize()
            .expect("finalize")
            .query_with(q_narrow, &opts)
            .expect("narrow")
            .0;
        let trace_narrow = db.host_trace().unwrap();
        let wire_narrow: Vec<(String, u64)> = transcript(&db)
            .into_iter()
            .map(|(tag, bytes, _)| (tag, bytes))
            .collect();

        assert_ne!(
            wide.rows.len(),
            narrow.rows.len(),
            "the hidden selectivities must actually differ"
        );
        assert_eq!(
            trace_wide, trace_narrow,
            "host trace must not depend on hidden selectivity (padded={padded})"
        );
        assert_eq!(
            wire_wide, wire_narrow,
            "tagged wire volumes must not depend on hidden selectivity (padded={padded})"
        );
    }
}

/// SECURITY.md claim 3: padding quantises the visible-volume channel. Two
/// visible selections of different true cardinality that fall in the same
/// power-of-two bucket ship the same number of wire bytes when padded —
/// and different byte counts when exact.
#[test]
fn padding_quantises_visible_volume() {
    // branch 'A': 9 rows, branch 'B': 13 rows — both bucket to 16.
    let mut db = GhostDb::new(GhostDbConfig {
        capture_channel: true,
        ..Default::default()
    });
    db.execute("CREATE TABLE T (id INT, branch CHAR(4), secret INT HIDDEN)")
        .expect("DDL");
    db.insert_rows(
        "T",
        (0..64)
            .map(|i| {
                let b = if i < 9 {
                    "A"
                } else if i < 22 {
                    "B"
                } else {
                    "C"
                };
                vec![Value::Str(b.into()), Value::Int(i)]
            })
            .collect(),
    )
    .expect("load");

    let vis_bytes = |db: &mut GhostDb, branch: &str, padded: bool| -> u64 {
        // Pin the strategy so the shipment shape is identical across
        // the two selections; only the volume may differ.
        let opts = QueryOptions::new()
            .strategy(Strategy::CrossPre)
            .padded(padded);
        let sql = format!("SELECT T.secret FROM T WHERE T.branch = '{branch}' AND T.secret >= 0");
        db.finalize()
            .expect("finalize")
            .query_with(&sql, &opts)
            .expect("query");
        db.host_trace()
            .unwrap()
            .events()
            .iter()
            .filter(|e| matches!(e.op, HostOp::Select | HostOp::Project))
            .map(|e| e.response_bytes)
            .sum()
    };

    let exact_a = vis_bytes(&mut db, "A", false);
    let exact_b = vis_bytes(&mut db, "B", false);
    assert_ne!(
        exact_a, exact_b,
        "exact mode leaks the visible cardinality difference (9 vs 13 rows)"
    );

    let padded_a = vis_bytes(&mut db, "A", true);
    let padded_b = vis_bytes(&mut db, "B", true);
    assert_eq!(
        padded_a, padded_b,
        "padded mode ships the same bucket for both selections"
    );
    assert!(
        padded_a > exact_a,
        "padding adds filler, never removes bytes"
    );
}

/// SECURITY.md claim 13: the *write path* leaks nothing either. Before any
/// query runs, the ingest flow itself — staging, vertical partitioning,
/// download to the token, index construction, every flash program and any
/// GC it triggers — must look bit-identical from outside the token for two
/// worlds that differ only in hidden values: same wire transcript, same
/// host trace, and the same device-wide flash counters (writes, GC page
/// movement, block erases — placement is a pure function of the operation
/// sequence, never of hidden bytes).
#[test]
fn ingest_flow_invisible() {
    let mut a = world(0);
    let mut b = world(500_000);
    a.finalize().expect("finalize A");
    b.finalize().expect("finalize B");
    assert_eq!(
        transcript(&a),
        transcript(&b),
        "ingest wire view must not depend on hidden data"
    );
    assert_eq!(
        a.host_trace().unwrap(),
        b.host_trace().unwrap(),
        "ingest host view must not depend on hidden data"
    );
    let flash = |db: &GhostDb| db.database().expect("loaded").token.flash.stats();
    assert_eq!(
        flash(&a),
        flash(&b),
        "flash placement counters must not depend on hidden data"
    );
    assert!(a.audit().unwrap().ok, "ingest flows must pass the auditor");
}

/// Padding is pure overhead: results are value-identical to exact mode,
/// and the report's channel traffic can only grow.
#[test]
fn padded_results_equal_unpadded() {
    let mut exact_db = world(0);
    let mut padded_db = world(0);
    let (exact_rows, exact_report) = exact_db
        .finalize()
        .expect("finalize")
        .query_with(Q, &QueryOptions::default())
        .expect("exact");
    let (padded_rows, padded_report) = padded_db
        .finalize()
        .expect("finalize")
        .query_with(Q, &QueryOptions::new().padded(true))
        .expect("padded");
    assert_eq!(exact_rows.columns, padded_rows.columns);
    assert_eq!(
        exact_rows.rows, padded_rows.rows,
        "padding never changes results"
    );
    assert!(
        padded_report.bytes_to_secure >= exact_report.bytes_to_secure,
        "padded mode moves at least as many bytes into the token"
    );
}
