//! Property test for the parallel executor: random SPJ query batches with
//! random strategy/algorithm pins, executed serially and via `run_many` on
//! 2–8 threads, must produce identical sorted output ids (in fact the
//! whole `ResultSet`s are compared, row for row, which subsumes the sorted
//! id check). The compile-time `Send + Sync` lock for the operator tree
//! itself lives in `ghostdb_exec::parallel` (`const` assertions), so an
//! `Rc` regression fails the build before it could ever fail here.

use ghostdb_datagen::{pad8, SyntheticDataset, SyntheticSpec};
use ghostdb_exec::parallel::run_many;
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{ExecOptions, Executor, SpjQuery};
use ghostdb_storage::{CmpOp, Predicate, Value};
use proptest::prelude::*;

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const ALGOS: [ProjectAlgo; 3] = [
    ProjectAlgo::Project,
    ProjectAlgo::ProjectNoBf,
    ProjectAlgo::BruteForce,
];

/// One random job: a query shape plus a pinned strategy/algorithm.
#[derive(Debug, Clone)]
struct JobSpec {
    vis_t1_sel: Option<u32>, // v1 < k on T1 (of 200)
    hid_t12_sel: u32,        // h2 < k on T12 (of 20; always present so every
    // Cross strategy stays applicable)
    project_h1: bool,
    strategy: usize,
    algo: usize,
}

fn job_spec() -> impl Strategy<Value = JobSpec> {
    (
        proptest::option::of(0u32..=200),
        0u32..=20,
        any::<bool>(),
        0usize..7,
        0usize..3,
    )
        .prop_map(
            |(vis_t1_sel, hid_t12_sel, project_h1, strategy, algo)| JobSpec {
                vis_t1_sel,
                hid_t12_sel,
                project_h1,
                strategy,
                algo,
            },
        )
}

fn to_job(spec: &JobSpec, ds: &SyntheticDataset) -> (SpjQuery, ExecOptions) {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new().project(t0, "id").project(t1, "id");
    if let Some(k) = spec.vis_t1_sel {
        q = q.pred(t1, Predicate::new("v1", CmpOp::Lt, pad8(k as u64), None));
    }
    q = q.pred(
        t12,
        Predicate::new("h2", CmpOp::Lt, pad8(spec.hid_t12_sel as u64), None),
    );
    if spec.project_h1 {
        q = q.project(t1, "h1");
    }
    q.text = format!("{spec:?}");
    (
        q,
        ExecOptions {
            forced_strategy: Some(STRATEGIES[spec.strategy]),
            project: Some(ALGOS[spec.algo]),
            ..Default::default()
        },
    )
}

/// Root ids of a result, sorted — the invariant the ISSUE asks for.
fn sorted_ids(rows: &[Vec<Value>]) -> Vec<i64> {
    let mut ids: Vec<i64> = rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            ref other => panic!("id column is Int, got {other:?}"),
        })
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_batches_match_serial_on_2_to_8_threads(
        specs in proptest::collection::vec(job_spec(), 1..7),
        threads in 2usize..=8,
    ) {
        let mut dspec = SyntheticSpec::small(); // T0 = 2000
        dspec.indexed = vec![("T12".into(), "h2".into())];
        let ds = SyntheticDataset::generate(dspec);
        let jobs: Vec<(SpjQuery, ExecOptions)> =
            specs.iter().map(|s| to_job(s, &ds)).collect();

        let mut db = ds.build().expect("serial build");
        let serial: Vec<_> = jobs
            .iter()
            .map(|(q, o)| Executor::run(&mut db, q, o).expect("serial run").0)
            .collect();

        let parallel = run_many(|| ds.build(), &jobs, threads).expect("parallel run");

        prop_assert_eq!(parallel.len(), serial.len());
        for (i, ((rs, _), expect)) in parallel.iter().zip(&serial).enumerate() {
            prop_assert_eq!(
                sorted_ids(&rs.rows),
                sorted_ids(&expect.rows),
                "job {} ({}): sorted ids diverge at threads={}",
                i,
                jobs[i].0.text,
                threads
            );
            prop_assert_eq!(
                &rs.rows,
                &expect.rows,
                "job {} ({}): full rows diverge at threads={}",
                i,
                jobs[i].0.text,
                threads
            );
        }
    }
}
