//! Intra-query parallel equivalence: `--intra-threads N` must produce
//! query results AND per-operator `ExecReport` attribution bit-identical
//! to the serial executor, for every `VisStrategy` × `ProjectAlgo`, at
//! threads ∈ {1, 2, 4}. This is the lock on the execution-context lane
//! split: any scheduling-dependent cost (a worker's I/O leaking into a
//! sibling's `track()` scope, a RAM-driven decision seeing a different
//! arena baseline, a non-canonical scope merge) shows up here as a diff in
//! one of the `OpKind` buckets, `io`, or `peak_ram_buffers`.

use ghostdb_datagen::{MedicalDataset, SyntheticDataset, SyntheticSpec};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{Database, ExecOptions, ExecReport, Executor, OpKind, SpjQuery};

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const ALGOS: [ProjectAlgo; 3] = [
    ProjectAlgo::Project,
    ProjectAlgo::ProjectNoBf,
    ProjectAlgo::BruteForce,
];

/// Every observable field of two reports must match bit for bit.
fn assert_report_identical(label: &str, want: &ExecReport, got: &ExecReport) {
    for op in OpKind::ALL {
        assert_eq!(
            want.op(op),
            got.op(op),
            "{label}: {} bucket diverges",
            op.name()
        );
    }
    assert_eq!(
        want.flash_total(),
        got.flash_total(),
        "{label}: flash_total"
    );
    assert_eq!(want.comm, got.comm, "{label}: comm");
    assert_eq!(
        want.bytes_to_secure, got.bytes_to_secure,
        "{label}: bytes_to_secure"
    );
    assert_eq!(want.result_rows, got.result_rows, "{label}: result_rows");
    assert_eq!(want.io, got.io, "{label}: io counters");
    assert_eq!(
        want.peak_ram_buffers, got.peak_ram_buffers,
        "{label}: peak_ram_buffers"
    );
}

/// Run the full strategy × algorithm matrix serially (intra = 1) and at
/// each parallel width, comparing results and reports job by job. Each
/// width gets its own database (queries reclaim temps, so sequential runs
/// on one database report exactly like fresh ones — the serial baseline
/// and the parallel runs see identical starting states).
fn assert_intra_equivalent(label: &str, build: impl Fn() -> Database, q: &SpjQuery) {
    let jobs: Vec<(VisStrategy, ProjectAlgo)> = STRATEGIES
        .iter()
        .flat_map(|s| ALGOS.iter().map(move |a| (*s, *a)))
        .collect();
    let mut serial_db = build();
    let serial: Vec<_> = jobs
        .iter()
        .map(|(s, a)| {
            let opts = ExecOptions::new().strategy(*s).project(*a).intra_threads(1);
            Executor::run(&mut serial_db, q, &opts).expect("serial run")
        })
        .collect();
    for threads in [2usize, 4] {
        let mut db = build();
        for ((s, a), (want_rs, want_rep)) in jobs.iter().zip(&serial) {
            let opts = ExecOptions::new()
                .strategy(*s)
                .project(*a)
                .intra_threads(threads);
            let (rs, rep) = Executor::run(&mut db, q, &opts).expect("intra run");
            let tag = format!("{label}/{}/{}/threads={threads}", s.name(), a.name());
            assert_eq!(&rs, want_rs, "{tag}: result set diverges");
            assert_report_identical(&tag, want_rep, &rep);
        }
    }
}

fn synthetic_query(ds: &SyntheticDataset) -> SpjQuery {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    // Visible selection on T1, hidden selection on T12 (in T1's subtree so
    // every Cross strategy applies), mixed visible + hidden projections on
    // two non-root tables — the shape that drives the per-table MJoin
    // fan-out through its worker lanes.
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.05))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "id")
        .project(t1, "v1")
        .project(t1, "h1")
        .project(t12, "id")
        .project(t12, "h1");
    q.text = "intra-equivalence-Q".into();
    q
}

#[test]
fn synthetic_all_strategies_and_algos_bit_identical() {
    let mut spec = SyntheticSpec::paper(0.0008); // T0 = 8 000
    spec.seed = 23;
    let ds = SyntheticDataset::generate(spec);
    let q = synthetic_query(&ds);
    assert_intra_equivalent("synthetic x0.0008", || ds.build().expect("build"), &q);
}

#[test]
fn medical_workload_bit_identical() {
    let ds = MedicalDataset::generate(0.002, 7);
    let m = ds.schema.table_id("Measurements").expect("m");
    let p = ds.schema.table_id("Patients").expect("p");
    let d = ds.schema.table_id("Doctors").expect("d");
    let mut q = SpjQuery::new()
        .pred(p, ds.visible_pred(0.2))
        .pred(d, ds.hidden_pred(0.1))
        .project(m, "id")
        .project(p, "id")
        .project(d, "id")
        .project(p, "first_name");
    q.text = "intra-equivalence-medical".into();
    assert_intra_equivalent("medical x0.002", || ds.build().expect("build"), &q);
}

#[test]
fn intra_runs_are_deterministic_across_repeats() {
    // Two identical intra-parallel runs must agree with each other too
    // (scheduling may differ; nothing observable may).
    let mut spec = SyntheticSpec::paper(0.0005);
    spec.seed = 31;
    let ds = SyntheticDataset::generate(spec);
    let q = synthetic_query(&ds);
    let opts = ExecOptions::new()
        .strategy(VisStrategy::CrossPost)
        .project(ProjectAlgo::Project)
        .intra_threads(4);
    let mut db_a = ds.build().expect("build");
    let (rs_a, rep_a) = Executor::run(&mut db_a, &q, &opts).expect("run a");
    let mut db_b = ds.build().expect("build");
    let (rs_b, rep_b) = Executor::run(&mut db_b, &q, &opts).expect("run b");
    assert_eq!(rs_a, rs_b);
    assert_report_identical("repeat", &rep_a, &rep_b);
}

#[test]
fn zero_intra_threads_is_rejected() {
    let ds = SyntheticDataset::generate(SyntheticSpec::small());
    let q = synthetic_query(&ds);
    let mut db = ds.build().expect("build");
    let opts = ExecOptions::auto().intra_threads(0);
    assert!(Executor::run(&mut db, &q, &opts).is_err());
}
