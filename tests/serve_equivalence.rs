//! Serve-mode equivalence: the cross-query batch scheduler is a pure
//! wall-clock optimization. For every filtering strategy, queue depth and
//! session count, each query served through a batching [`GhostDbServer`]
//! must produce the same rows, the same `ExecReport` in every field, the
//! same host trace and the same per-query wire transcript as (a) the same
//! server with batching disabled and (b) a plain `Executor::run` loop
//! executing the identical arrival sequence. `SECURITY.md` names this file
//! as the enforcement of the claim that batching is token-side only.

use ghostdb_datagen::{SyntheticDataset, SyntheticSpec};
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{
    Database, ExecOptions, ExecReport, Executor, GhostDbServer, HostTrace, QueryOutcome, ResultSet,
    ServeConfig, SpjQuery,
};
use ghostdb_token::TranscriptEntry;

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const DEPTHS: [usize; 3] = [1, 4, 16];
const SESSIONS: [usize; 3] = [1, 2, 4];

fn dataset() -> SyntheticDataset {
    let mut spec = SyntheticSpec::paper(0.0005);
    spec.seed = 43;
    SyntheticDataset::generate(spec)
}

fn capture_db(ds: &SyntheticDataset) -> Database {
    let mut db = ds.build().expect("build");
    db.token.channel.set_capture(true);
    db
}

/// `n` queries; most share the hidden probe `T12.h2 @ 0.1` (the batchable
/// key), every fourth uses `0.2` instead so each batch also carries a
/// minority key, and the visible selectivity cycles so result shapes vary.
fn workload(ds: &SyntheticDataset, n: usize, label: &str) -> Vec<SpjQuery> {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    (0..n)
        .map(|i| {
            let sv = [0.02, 0.05, 0.1, 0.2][i % 4];
            let sh = if i % 4 == 3 { 0.2 } else { 0.1 };
            let mut q = SpjQuery::new()
                .pred(t1, ds.selectivity_pred("T1", "v1", sv))
                .pred(t12, ds.selectivity_pred("T12", "h2", sh))
                .project(t0, "id")
                .project(t1, "v1")
                .project(t12, "h1");
            q.text = format!("serve-eq {label} #{i} sv={sv} sh={sh}");
            q
        })
        .collect()
}

/// Everything one solo execution observed.
struct SoloRef {
    result: ResultSet,
    report: ExecReport,
    trace: HostTrace,
    transcript: Vec<TranscriptEntry>,
}

fn run_solo(db: &mut Database, q: &SpjQuery, opts: &ExecOptions) -> SoloRef {
    let (result, report) = Executor::run(db, q, opts).expect("solo run");
    SoloRef {
        result,
        report,
        trace: db.untrusted.trace(),
        transcript: db.token.channel.transcript().to_vec(),
    }
}

fn assert_outcome_matches(out: &QueryOutcome, solo: &SoloRef, ctx: &str) {
    assert_eq!(out.result, solo.result, "{ctx}: results diverge");
    assert_eq!(
        out.report, solo.report,
        "{ctx}: ExecReport diverges from solo"
    );
    assert_eq!(out.trace, solo.trace, "{ctx}: host trace diverges");
    assert_eq!(
        out.transcript, solo.transcript,
        "{ctx}: wire transcript diverges"
    );
}

/// Submit `queries` round-robin across `n_sessions` sessions of `server`,
/// drain once, and return the outcomes in arrival order.
fn serve_round(
    server: &GhostDbServer,
    queries: &[SpjQuery],
    opts: &ExecOptions,
    n_sessions: usize,
) -> Vec<QueryOutcome> {
    let sessions: Vec<_> = (0..n_sessions).map(|_| server.session()).collect();
    for (i, q) in queries.iter().enumerate() {
        sessions[i % n_sessions]
            .submit(q, opts)
            .expect("admission within depth");
    }
    server.drain().expect("drain");
    // Reassemble arrival order from the per-session completion queues
    // (each session delivers its own outcomes in order).
    let mut per_session: Vec<Vec<QueryOutcome>> = sessions
        .iter()
        .map(|s| {
            let mut outs = Vec::new();
            while let Some(o) = s.take() {
                outs.push(o.expect("query ok"));
            }
            outs
        })
        .collect();
    (0..queries.len())
        .map(|i| per_session[i % n_sessions].remove(0))
        .collect()
}

/// The full matrix: 7 strategies × queue depths {1,4,16} × sessions
/// {1,2,4}; batched server ≡ unbatched server ≡ solo loop, query by query,
/// field by field. One database per server (reused across the matrix) and
/// one solo database replaying the identical global execution sequence, so
/// all three histories stay aligned.
#[test]
fn serve_batched_equals_solo_across_matrix() {
    let ds = dataset();
    let mut solo_db = capture_db(&ds);
    let batched: Vec<GhostDbServer> = DEPTHS
        .iter()
        .map(|&d| {
            GhostDbServer::new(capture_db(&ds), ServeConfig::new().queue_depth(d))
                .expect("batched server")
        })
        .collect();
    let unbatched: Vec<GhostDbServer> = DEPTHS
        .iter()
        .map(|&d| {
            GhostDbServer::new(
                capture_db(&ds),
                ServeConfig::new().queue_depth(d).batching(false),
            )
            .expect("unbatched server")
        })
        .collect();

    for strategy in STRATEGIES {
        let opts = ExecOptions::new().strategy(strategy);
        for (di, &depth) in DEPTHS.iter().enumerate() {
            for &n_sessions in &SESSIONS {
                let label = format!("{} d{depth} s{n_sessions}", strategy.name());
                let queries = workload(&ds, depth, &label);
                let solo: Vec<SoloRef> = queries
                    .iter()
                    .map(|q| run_solo(&mut solo_db, q, &opts))
                    .collect();
                let saved_before = batched[di].batch_stats().saved_traversals;
                let outs_b = serve_round(&batched[di], &queries, &opts, n_sessions);
                let outs_u = serve_round(&unbatched[di], &queries, &opts, n_sessions);
                for (i, solo_ref) in solo.iter().enumerate() {
                    assert_outcome_matches(&outs_b[i], solo_ref, &format!("{label} batched #{i}"));
                    assert_outcome_matches(
                        &outs_u[i],
                        solo_ref,
                        &format!("{label} unbatched #{i}"),
                    );
                }
                if depth >= 4 {
                    assert!(
                        batched[di].batch_stats().saved_traversals > saved_before,
                        "{label}: the batch scheduler never engaged — equivalence is vacuous"
                    );
                }
            }
        }
    }
}

/// `ServeConfig::workers` governs execution, not just analysis: a drain
/// on a multi-worker server runs the batch on the worker pool (per-query
/// isolated resources) and still delivers outcomes bit-identical to a
/// single-worker server's serial loop and to the solo `Executor::run`
/// loop — results, every `ExecReport` field, host trace and wire
/// transcript. The `parallel_drains` counter proves the pool actually
/// engaged, so the equivalence is not vacuous.
#[test]
fn worker_pool_drain_matches_single_worker_and_solo() {
    let ds = dataset();
    let mut solo_db = capture_db(&ds);
    for strategy in [
        VisStrategy::Pre,
        VisStrategy::CrossPost,
        VisStrategy::NoFilter,
    ] {
        let opts = ExecOptions::new().strategy(strategy);
        let queries = workload(&ds, 8, &format!("workers {}", strategy.name()));
        let solo: Vec<SoloRef> = queries
            .iter()
            .map(|q| run_solo(&mut solo_db, q, &opts))
            .collect();
        let w1 = GhostDbServer::new(
            capture_db(&ds),
            ServeConfig::new().queue_depth(8).workers(1),
        )
        .expect("1-worker server");
        let w4 = GhostDbServer::new(
            capture_db(&ds),
            ServeConfig::new().queue_depth(8).workers(4),
        )
        .expect("4-worker server");
        let outs_1 = serve_round(&w1, &queries, &opts, 2);
        let outs_4 = serve_round(&w4, &queries, &opts, 2);
        assert_eq!(
            w1.batch_stats().parallel_drains,
            0,
            "a 1-worker server must run the serial loop"
        );
        assert_eq!(
            w4.batch_stats().parallel_drains,
            1,
            "the 4-worker server must actually use the pool"
        );
        for (i, solo_ref) in solo.iter().enumerate() {
            let label = strategy.name();
            assert_outcome_matches(&outs_1[i], solo_ref, &format!("{label} w1 #{i}"));
            assert_outcome_matches(&outs_4[i], solo_ref, &format!("{label} w4 #{i}"));
        }
    }
}

/// Run-to-run determinism: the same arrival sequence on fresh servers
/// produces bit-identical outcome vectors, run after run.
#[test]
fn serve_outcomes_deterministic_across_runs() {
    let ds = dataset();
    let opts = ExecOptions::new().strategy(VisStrategy::CrossPost);
    let queries = workload(&ds, 8, "determinism");
    let run = || {
        let server =
            GhostDbServer::new(capture_db(&ds), ServeConfig::new().queue_depth(8)).expect("server");
        serve_round(&server, &queries, &opts, 2)
    };
    let first = run();
    let second = run();
    assert_eq!(first.len(), second.len());
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(a.result, b.result, "#{i}: results drift across runs");
        assert_eq!(a.report, b.report, "#{i}: reports drift across runs");
        assert_eq!(a.trace, b.trace, "#{i}: traces drift across runs");
        assert_eq!(
            a.transcript, b.transcript,
            "#{i}: transcripts drift across runs"
        );
    }
}

/// The SECURITY.md leakage claim, explicitly: enabling the batch scheduler
/// changes NOTHING a wire snooper or the untrusted PC can see — every
/// per-query transcript entry (tag, byte count, payload) and every host
/// trace event is identical with batching on and off, even while the
/// scheduler demonstrably shares traversals.
#[test]
fn batching_leaves_per_query_wire_transcripts_unchanged() {
    let ds = dataset();
    let opts = ExecOptions::new().strategy(VisStrategy::CrossPre);
    let queries = workload(&ds, 12, "leakage");
    let on = GhostDbServer::new(capture_db(&ds), ServeConfig::new().queue_depth(12))
        .expect("batching on");
    let off = GhostDbServer::new(
        capture_db(&ds),
        ServeConfig::new().queue_depth(12).batching(false),
    )
    .expect("batching off");
    let outs_on = serve_round(&on, &queries, &opts, 3);
    let outs_off = serve_round(&off, &queries, &opts, 3);
    assert!(
        on.batch_stats().saved_traversals > 0,
        "scheduler must actually have shared traversals"
    );
    assert_eq!(off.batch_stats().saved_traversals, 0);
    for (i, (a, b)) in outs_on.iter().zip(&outs_off).enumerate() {
        assert_eq!(
            a.transcript, b.transcript,
            "query #{i}: batching altered the wire transcript"
        );
        assert_eq!(
            a.trace, b.trace,
            "query #{i}: batching altered the host trace"
        );
    }
}
