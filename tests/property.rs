//! Property tests: random miniature databases × random SPJ queries ×
//! random strategies must always (a) match the trusted oracle, (b) respect
//! the secure-RAM budget, (c) keep the channel transcript clean.

use ghostdb_datagen::{pad8, SyntheticDataset, SyntheticSpec};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{ExecOptions, Executor, SpjQuery};
use ghostdb_reference::RefQuery;
use ghostdb_storage::{CmpOp, Predicate};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct QSpec {
    vis_t1_sel: Option<u32>,  // v1 < k on T1 (of 200)
    hid_t12_sel: Option<u32>, // h2 < k on T12 (of 20)
    hid_t0_sel: Option<u32>,  // h1 < k on T0 (of 2000)
    project_h1: bool,
    strategy: usize,
    algo: usize,
}

fn qspec() -> impl Strategy<Value = QSpec> {
    (
        proptest::option::of(0u32..=200),
        proptest::option::of(0u32..=20),
        proptest::option::of(0u32..=2000),
        any::<bool>(),
        0usize..7,
        0usize..3,
    )
        .prop_map(
            |(vis_t1_sel, hid_t12_sel, hid_t0_sel, project_h1, strategy, algo)| QSpec {
                vis_t1_sel,
                hid_t12_sel,
                hid_t0_sel,
                project_h1,
                strategy,
                algo,
            },
        )
}

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const ALGOS: [ProjectAlgo; 3] = [
    ProjectAlgo::Project,
    ProjectAlgo::ProjectNoBf,
    ProjectAlgo::BruteForce,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_queries_match_the_oracle(spec in qspec()) {
        // One shared dataset (seeded, deterministic) — rebuilt per case to
        // keep cases independent; T0 = 2000.
        let mut dspec = SyntheticSpec::small();
        dspec.indexed = vec![
            ("T12".into(), "h2".into()),
            ("T0".into(), "h1".into()),
            ("T1".into(), "h1".into()),
        ];
        let ds = SyntheticDataset::generate(dspec);
        let mut db = ds.build().expect("build");
        let oracle = ds.ref_db();

        let t0 = db.schema.root();
        let t1 = db.schema.table_id("T1").unwrap();
        let t12 = db.schema.table_id("T12").unwrap();

        let mut q = SpjQuery::new().project(t0, "id").project(t1, "id");
        let mut rq = RefQuery {
            predicates: vec![],
            projections: vec![(t0, "id".into()), (t1, "id".into())],
        };
        if let Some(k) = spec.vis_t1_sel {
            let p = Predicate::new("v1", CmpOp::Lt, pad8(k as u64), None);
            q = q.pred(t1, p.clone());
            rq.predicates.push((t1, p));
        }
        if let Some(k) = spec.hid_t12_sel {
            let p = Predicate::new("h2", CmpOp::Lt, pad8(k as u64), None);
            q = q.pred(t12, p.clone());
            rq.predicates.push((t12, p));
        }
        if let Some(k) = spec.hid_t0_sel {
            let p = Predicate::new("h1", CmpOp::Lt, pad8(k as u64), None);
            q = q.pred(t0, p.clone());
            rq.predicates.push((t0, p));
        }
        if spec.project_h1 {
            q = q.project(t1, "h1");
            rq.projections.push((t1, "h1".into()));
        }
        q.text = format!("{spec:?}");

        let opts = ExecOptions {
            forced_strategy: Some(STRATEGIES[spec.strategy]),
            project: Some(ALGOS[spec.algo]),
            ..Default::default()
        };
        let run = Executor::run(&mut db, &q, &opts);
        match run {
            Ok((rs, report)) => {
                let expect = oracle.run(&rq).expect("oracle");
                prop_assert_eq!(rs.rows, expect, "results diverge");
                prop_assert!(report.peak_ram_buffers <= db.token.ram.capacity());
                let audit = ghostdb_core::audit_transcript(db.token.channel.transcript());
                prop_assert!(audit.ok, "transcript violation: {}", audit);
            }
            Err(ghostdb_exec::ExecError::StrategyNotApplicable(_)) => {
                // Cross strategies legitimately refuse when there is no
                // hidden selection in the subtree; nothing else may fail.
                let is_cross = matches!(
                    STRATEGIES[spec.strategy],
                    VisStrategy::CrossPre | VisStrategy::CrossPost | VisStrategy::CrossPostSelect
                );
                prop_assert!(is_cross, "only Cross may be inapplicable");
            }
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        }
    }
}
