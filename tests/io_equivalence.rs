//! Vectored-I/O differential suite: the batched read path (union priming
//! via `prime_readers`, B+-tree scan/probe read-ahead, the serve bank's
//! widened traversals) is a pure channel-clock optimization. Batching
//! changes WHEN pages are issued, never WHICH pages, at what cost, or what
//! the host observes: a query run with read-ahead on must produce the same
//! rows, the same `ExecReport` in every field, the same host trace and the
//! same wire transcript as the serial executor, bit for bit — across all
//! 7 visible-filtering strategies and chip counts {1, 2, 4}. This is the
//! lock on SECURITY.md's claim that vectored batching is on-token and
//! host-invisible.
//!
//! CI's `io-smoke` legs restrict the matrix to one cell via
//! `MULTICHIP_CHIPS` / `IO_READ_AHEAD`; unset (the local default) runs the
//! full cross product.

use ghostdb_datagen::{SyntheticDataset, SyntheticSpec};
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{Database, ExecOptions, ExecReport, Executor, OpKind, SpjQuery};
use ghostdb_token::TranscriptEntry;

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const CHIPS: [usize; 3] = [1, 2, 4];
const WINDOWS: [usize; 2] = [0, 8];

fn axis(env: &str, all: &[usize]) -> Vec<usize> {
    match std::env::var(env) {
        Ok(v) => {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("{env} must be a number, got {v:?}"));
            assert!(all.contains(&n), "{env}={n} is not one of {all:?}");
            vec![n]
        }
        Err(_) => all.to_vec(),
    }
}

fn dataset() -> SyntheticDataset {
    let mut spec = SyntheticSpec::paper(0.0005); // T0 = 5 000
    spec.seed = 61;
    SyntheticDataset::generate(spec)
}

fn capture_db(ds: &SyntheticDataset, chips: usize) -> Database {
    let mut db = ds.build_chips(chips).expect("build");
    db.token.channel.set_capture(true);
    db
}

/// A query whose plan exercises every batched path: a hidden range
/// selection (B+-tree range scan + multi-level decode), a visible
/// selection (probe runs under Pre/Post), and a wide-enough merge that
/// `UnionStream` primes several flash readers at once.
fn query(ds: &SyntheticDataset) -> SpjQuery {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.05))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "v1")
        .project(t12, "h1");
    q.text = "io-eq-Q".into();
    q
}

struct Observed {
    result: ghostdb_exec::ResultSet,
    report: ExecReport,
    trace: ghostdb_exec::HostTrace,
    transcript: Vec<TranscriptEntry>,
}

fn observe(db: &mut Database, q: &SpjQuery, opts: &ExecOptions) -> Observed {
    let (result, report) = Executor::run(db, q, opts).expect("run");
    Observed {
        result,
        report,
        trace: db.untrusted.trace(),
        transcript: db.token.channel.transcript().to_vec(),
    }
}

/// Baseline: chips=1, read_ahead=0 (the paper's device, serial issue).
/// Every other (chips, window) cell re-runs the whole strategy sweep on a
/// freshly built chip-striped database and must match the baseline in
/// every observable — results, each `ExecReport` bucket and field, the
/// host-observable trace, and the wire transcript.
#[test]
fn batched_io_equals_serial_issue_bit_for_bit() {
    let ds = dataset();
    let q = query(&ds);
    let mut base_db = capture_db(&ds, 1);
    let baseline: Vec<Observed> = STRATEGIES
        .iter()
        .map(|s| {
            let opts = ExecOptions::new().strategy(*s);
            observe(&mut base_db, &q, &opts)
        })
        .collect();
    for &chips in &axis("MULTICHIP_CHIPS", &CHIPS) {
        for &window in &axis("IO_READ_AHEAD", &WINDOWS) {
            if chips == 1 && window == 0 {
                continue;
            }
            let mut db = capture_db(&ds, chips);
            for (s, want) in STRATEGIES.iter().zip(&baseline) {
                let opts = ExecOptions::new().strategy(*s).read_ahead(window);
                let got = observe(&mut db, &q, &opts);
                let label = format!("{}/chips={chips}/ra={window}", s.name());
                assert_eq!(got.result, want.result, "{label}: results diverge");
                for op in OpKind::ALL {
                    assert_eq!(
                        want.report.op(op),
                        got.report.op(op),
                        "{label}: {} bucket diverges",
                        op.name()
                    );
                }
                assert_eq!(want.report, got.report, "{label}: ExecReport diverges");
                assert_eq!(got.trace, want.trace, "{label}: host trace diverges");
                assert_eq!(
                    got.transcript, want.transcript,
                    "{label}: wire transcript diverges"
                );
            }
        }
    }
}

/// The serve-mode batch scheduler under read-ahead: a drained batch whose
/// shared traversals ride the widest requested window must deliver the
/// same outcomes (results, reports, traces, transcripts) as the same
/// queries served with read-ahead off.
#[test]
fn serve_batching_with_read_ahead_is_host_invisible() {
    use ghostdb_exec::{GhostDbServer, ServeConfig};
    let ds = dataset();
    let q = query(&ds);
    let outcomes_at = |window: usize| {
        let db = capture_db(&ds, 4);
        let server = GhostDbServer::new(db, ServeConfig::new().queue_depth(8)).expect("server");
        let session = server.session();
        let mut out = Vec::new();
        for s in [VisStrategy::Pre, VisStrategy::Post] {
            let opts = ExecOptions::new().strategy(s).read_ahead(window);
            out.push(session.query(&q, &opts).expect("serve query"));
        }
        out
    };
    let serial = outcomes_at(0);
    let batched = outcomes_at(8);
    for (a, b) in serial.iter().zip(&batched) {
        assert_eq!(a.result, b.result, "serve: results diverge");
        assert_eq!(a.report, b.report, "serve: reports diverge");
        assert_eq!(a.trace, b.trace, "serve: host trace diverges");
        assert_eq!(a.transcript, b.transcript, "serve: transcript diverges");
    }
}
