//! Cross-crate integration tests: the full GhostDB stack (datagen →
//! storage/index/exec → core) against the trusted reference oracle.

use ghostdb_datagen::{SyntheticDataset, SyntheticSpec};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{ExecOptions, Executor, SpjQuery};
use ghostdb_reference::RefQuery;
use ghostdb_storage::{CmpOp, Predicate};

fn dataset() -> SyntheticDataset {
    let mut spec = SyntheticSpec::small(); // T0 = 2000
    spec.indexed = vec![
        ("T12".into(), "h2".into()),
        ("T0".into(), "h1".into()),
        ("T1".into(), "h1".into()),
        ("T2".into(), "h1".into()),
        ("T11".into(), "h1".into()),
    ];
    SyntheticDataset::generate(spec)
}

fn check(
    ds: &SyntheticDataset,
    db: &mut ghostdb_exec::Database,
    q: &SpjQuery,
    rq: &RefQuery,
    opts: &ExecOptions,
    label: &str,
) {
    let (rs, report) = Executor::run(db, q, opts).expect(label);
    let expect = ds.ref_db().run(rq).expect("oracle");
    assert_eq!(rs.rows, expect, "{label}: rows diverge from the oracle");
    assert!(
        report.peak_ram_buffers <= db.token.ram.capacity(),
        "{label}: RAM budget exceeded"
    );
}

#[test]
fn paper_query_q_all_strategies_match_oracle() {
    let ds = dataset();
    let mut db = ds.build().expect("build");
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let t12 = db.schema.table_id("T12").unwrap();
    for sv in [0.01, 0.2, 0.6] {
        let vis = ds.selectivity_pred("T1", "v1", sv);
        let hid = ds.selectivity_pred("T12", "h2", 0.1);
        let mut q = SpjQuery::new()
            .pred(t1, vis.clone())
            .pred(t12, hid.clone())
            .project(t0, "id")
            .project(t1, "id")
            .project(t1, "v1")
            .project(t12, "h2");
        q.text = format!("Q sv={sv}");
        let rq = RefQuery {
            predicates: vec![(t1, vis), (t12, hid)],
            projections: vec![
                (t0, "id".into()),
                (t1, "id".into()),
                (t1, "v1".into()),
                (t12, "h2".into()),
            ],
        };
        for strategy in [
            VisStrategy::Pre,
            VisStrategy::CrossPre,
            VisStrategy::Post,
            VisStrategy::CrossPost,
            VisStrategy::PostSelect,
            VisStrategy::NoFilter,
        ] {
            check(
                &ds,
                &mut db,
                &q,
                &rq,
                &ExecOptions {
                    forced_strategy: Some(strategy),
                    ..Default::default()
                },
                &format!("sv={sv} {}", strategy.name()),
            );
        }
        for algo in [ProjectAlgo::ProjectNoBf, ProjectAlgo::BruteForce] {
            check(
                &ds,
                &mut db,
                &q,
                &rq,
                &ExecOptions {
                    project: Some(algo),
                    ..Default::default()
                },
                &format!("sv={sv} {}", algo.name()),
            );
        }
    }
}

#[test]
fn multi_table_predicates_match_oracle() {
    let ds = dataset();
    let mut db = ds.build().expect("build");
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let t2 = db.schema.table_id("T2").unwrap();
    let t12 = db.schema.table_id("T12").unwrap();
    // Three selections across the tree: visible on T1, hidden on T12 and T2.
    let p_vis = ds.selectivity_pred("T1", "v1", 0.3);
    let p_h12 = ds.selectivity_pred("T12", "h2", 0.4);
    let p_h2 = ds.selectivity_pred("T2", "h1", 0.5);
    let mut q = SpjQuery::new()
        .pred(t1, p_vis.clone())
        .pred(t12, p_h12.clone())
        .pred(t2, p_h2.clone())
        .project(t0, "id")
        .project(t2, "id");
    q.text = "multi".into();
    let rq = RefQuery {
        predicates: vec![(t1, p_vis), (t12, p_h12), (t2, p_h2)],
        projections: vec![(t0, "id".into()), (t2, "id".into())],
    };
    check(&ds, &mut db, &q, &rq, &ExecOptions::auto(), "auto multi");
}

#[test]
fn root_range_and_projection_match_oracle() {
    let ds = dataset();
    let mut db = ds.build().expect("build");
    let t0 = db.schema.root();
    let lo = ghostdb_datagen::pad8(100);
    let hi = ghostdb_datagen::pad8(600);
    let pred = Predicate::new("h1", CmpOp::Between, lo, Some(hi));
    let mut q = SpjQuery::new()
        .pred(t0, pred.clone())
        .project(t0, "id")
        .project(t0, "v1")
        .project(t0, "h1");
    q.text = "root range".into();
    let rq = RefQuery {
        predicates: vec![(t0, pred)],
        projections: vec![(t0, "id".into()), (t0, "v1".into()), (t0, "h1".into())],
    };
    check(&ds, &mut db, &q, &rq, &ExecOptions::auto(), "root range");
}

#[test]
fn projection_only_query_returns_every_root_tuple() {
    let ds = dataset();
    let mut db = ds.build().expect("build");
    let t0 = db.schema.root();
    let t11 = db.schema.table_id("T11").unwrap();
    let mut q = SpjQuery::new().project(t0, "id").project(t11, "v1");
    q.text = "no preds".into();
    let (rs, _) = Executor::run(&mut db, &q, &ExecOptions::auto()).unwrap();
    assert_eq!(rs.rows.len() as u64, db.rows[t0]);
    let expect = ds
        .ref_db()
        .run(&RefQuery {
            predicates: vec![],
            projections: vec![(t0, "id".into()), (t11, "v1".into())],
        })
        .unwrap();
    assert_eq!(rs.rows, expect);
}

#[test]
fn channel_transcript_is_clean_for_every_strategy() {
    let ds = dataset();
    let mut db = ds.build().expect("build");
    db.token.channel.set_capture(true);
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let t12 = db.schema.table_id("T12").unwrap();
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.1))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "v1");
    q.text = "audited".into();
    for strategy in [
        VisStrategy::Pre,
        VisStrategy::CrossPre,
        VisStrategy::Post,
        VisStrategy::CrossPost,
        VisStrategy::NoFilter,
    ] {
        Executor::run(
            &mut db,
            &q,
            &ExecOptions {
                forced_strategy: Some(strategy),
                ..Default::default()
            },
        )
        .unwrap();
        let report = ghostdb_core::audit_transcript(db.token.channel.transcript());
        assert!(report.ok, "{}: {report}", strategy.name());
    }
}

#[test]
fn simulated_time_is_deterministic() {
    let ds = dataset();
    let mut db1 = ds.build().expect("build 1");
    let mut db2 = ds.build().expect("build 2");
    let t0 = db1.schema.root();
    let t12 = db1.schema.table_id("T12").unwrap();
    let mut q = SpjQuery::new()
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.2))
        .project(t0, "id");
    q.text = "determinism".into();
    let (_, r1) = Executor::run(&mut db1, &q, &ExecOptions::auto()).unwrap();
    let (_, r2) = Executor::run(&mut db2, &q, &ExecOptions::auto()).unwrap();
    assert_eq!(r1.total(), r2.total());
    assert_eq!(r1.io, r2.io);
}

#[test]
fn queries_can_be_rerun_on_the_same_database() {
    // Temp segments must be reclaimed between queries: run many queries on
    // one instance and verify flash space does not leak.
    let ds = dataset();
    let mut db = ds.build().expect("build");
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let t12 = db.schema.table_id("T12").unwrap();
    let free_before = db.alloc.free_pages();
    for round in 0..10 {
        let sv = 0.05 + 0.05 * (round % 4) as f64;
        let mut q = SpjQuery::new()
            .pred(t1, ds.selectivity_pred("T1", "v1", sv))
            .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
            .project(t0, "id")
            .project(t1, "v1");
        q.text = format!("round {round}");
        Executor::run(&mut db, &q, &ExecOptions::auto()).unwrap();
    }
    assert_eq!(
        db.alloc.free_pages(),
        free_before,
        "temp segments leaked across queries"
    );
}
