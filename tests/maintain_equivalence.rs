//! Incremental-maintenance differential suite: a [`MaintainedIndex`]
//! absorbing inserts and deletes must answer every probe exactly like a
//! climbing index freshly rebuilt from the same logical state — at every
//! intermediate state, under both maintenance strategies. The host-side
//! model (plain `BTreeMap`s maintained by the test) is the independent
//! ground truth; the maintained index, a fresh `build_from_state` rebuild,
//! and the model must agree three ways at each step. This is the lock that
//! lets the measured-and-rejected strategy stay in-tree: whichever of
//! tombstone-merge / rebuild-per-op loses the `micro/maint/*` benchmark
//! keeps being judged against the exact query contract here.
//!
//! CI's `write-smoke` legs pin one strategy via `MAINT_STRATEGY`
//! (`tombstone` / `rebuild`) and a chip count via `MULTICHIP_CHIPS`;
//! unset (the local default) runs both strategies on one chip.

use ghostdb_flash::{FlashDevice, FlashGeometry, FlashTiming, SegmentAllocator};
use ghostdb_index::{
    build_from_state, ClimbingIndex, IndexBuilder, MaintainedIndex, MaintainedSkt,
    MaintenanceStrategy,
};
use ghostdb_storage::schema::paper_synthetic_schema;
use ghostdb_storage::{Id, IdListReader};
use ghostdb_token::RamArena;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Key domain: small enough that duplicate keys and key collisions between
/// levels happen constantly.
const KEYS: u64 = 12;
/// Two levels — the indexed table and one ancestor (labels only; the
/// maintenance layer never consults a schema).
const LEVELS: [usize; 2] = [1, 0];

fn strategies() -> Vec<MaintenanceStrategy> {
    match std::env::var("MAINT_STRATEGY") {
        Ok(v) => vec![MaintenanceStrategy::parse(&v)
            .unwrap_or_else(|| panic!("MAINT_STRATEGY must be tombstone|rebuild, got {v:?}"))],
        Err(_) => vec![
            MaintenanceStrategy::TombstoneMerge,
            MaintenanceStrategy::RebuildSegment,
        ],
    }
}

fn chips() -> usize {
    std::env::var("MULTICHIP_CHIPS")
        .ok()
        .map(|v| v.parse().expect("MULTICHIP_CHIPS must be a number"))
        .unwrap_or(1)
}

/// RAM buffers must match the device's page size (the probe pins
/// page-sized buffers per B+-tree level).
fn ram() -> RamArena {
    RamArena::new(512, 32)
}

fn device() -> FlashDevice {
    let geometry = FlashGeometry {
        page_size: 512,
        pages_per_block: 16,
        block_count: 64,
        spare_blocks: 8,
    };
    FlashDevice::with_chips(geometry, FlashTiming::default(), chips())
}

/// Independent ground truth: per level, live `id → key`.
type Model = Vec<BTreeMap<Id, u64>>;

fn model_eq(model: &Model, level: usize, key: u64) -> Vec<Id> {
    model[level]
        .iter()
        .filter(|(_, k)| **k == key)
        .map(|(id, _)| *id)
        .collect()
}

fn model_range(model: &Model, level: usize, lo: u64, hi: u64) -> Vec<Id> {
    model[level]
        .iter()
        .filter(|(_, k)| lo <= **k && **k <= hi)
        .map(|(id, _)| *id)
        .collect()
}

fn ci_eq(
    ci: &ClimbingIndex,
    dev: &mut FlashDevice,
    ram: &RamArena,
    level: usize,
    key: u64,
) -> Vec<Id> {
    let mut probe = ci.probe(ram).expect("probe");
    match probe.lookup_eq(dev, key, level).expect("lookup_eq") {
        Some(list) => IdListReader::open(list, ram, dev.page_size())
            .expect("open list")
            .drain(dev)
            .expect("drain"),
        None => Vec::new(),
    }
}

fn ci_range(
    ci: &ClimbingIndex,
    dev: &mut FlashDevice,
    ram: &RamArena,
    level: usize,
    lo: u64,
    hi: u64,
) -> Vec<Id> {
    let mut probe = ci.probe(ram).expect("probe");
    let mut ids = Vec::new();
    for list in probe
        .lookup_range(dev, lo, hi, level)
        .expect("lookup_range")
    {
        let sub = IdListReader::open(list, ram, dev.page_size())
            .expect("open list")
            .drain(dev)
            .expect("drain");
        ids.extend(sub);
    }
    ids.sort_unstable();
    ids
}

const RANGES: [(u64, u64); 4] = [(0, KEYS - 1), (3, 8), (8, 3), (5, 5)];

/// Three-way agreement on a set of probe keys: maintained index vs model,
/// and a fresh rebuild from the model vs model. `keys` limits the equality
/// probes (every intermediate state samples; the final state sweeps all).
fn verify(
    mi: &MaintainedIndex,
    model: &Model,
    keys: &[u64],
    dev: &mut FlashDevice,
    alloc: &mut SegmentAllocator,
    ram: &RamArena,
    label: &str,
) {
    assert_eq!(mi.state(), &model[..], "{label}: logical state drifted");
    let fresh =
        build_from_state(dev, alloc, LEVELS[0], "k", &LEVELS, true, model).expect("fresh rebuild");
    for level in 0..LEVELS.len() {
        for &key in keys {
            let want = model_eq(model, level, key);
            let got = mi.lookup_eq(dev, ram, level, key).expect("maintained eq");
            assert_eq!(got, want, "{label}: eq({key}) level {level} (maintained)");
            let rebuilt = ci_eq(&fresh, dev, ram, level, key);
            assert_eq!(rebuilt, want, "{label}: eq({key}) level {level} (rebuild)");
        }
        for &(lo, hi) in &RANGES {
            let want = model_range(model, level, lo, hi);
            let got = mi
                .lookup_range(dev, ram, level, lo, hi)
                .expect("maintained range");
            assert_eq!(
                got, want,
                "{label}: range({lo},{hi}) level {level} (maintained)"
            );
            let rebuilt = ci_range(&fresh, dev, ram, level, lo, hi);
            assert_eq!(
                rebuilt, want,
                "{label}: range({lo},{hi}) level {level} (rebuild)"
            );
        }
    }
    fresh.release(dev, alloc).expect("release fresh");
}

/// One random update. Deletes pick a victim by rank among live ids — or,
/// one time in (live+1), a never-assigned id, exercising the no-op path.
#[derive(Debug, Clone, Copy)]
enum MOp {
    Insert(usize, u64),
    Delete(usize, u8),
}

fn op_strategy() -> impl Strategy<Value = MOp> {
    (any::<bool>(), 0usize..2, 0u64..KEYS, any::<u8>()).prop_map(|(ins, level, key, pick)| {
        if ins {
            MOp::Insert(level, key)
        } else {
            MOp::Delete(level, pick)
        }
    })
}

fn apply(
    mi: &mut MaintainedIndex,
    model: &mut Model,
    op: MOp,
    dev: &mut FlashDevice,
    alloc: &mut SegmentAllocator,
) -> (usize, u64) {
    match op {
        MOp::Insert(level, key) => {
            let id = mi.insert(dev, alloc, level, key).expect("insert");
            let prev = model[level].insert(id, key);
            assert!(prev.is_none(), "id {id} reused at level {level}");
            (level, key)
        }
        MOp::Delete(level, pick) => {
            let live: Vec<Id> = model[level].keys().copied().collect();
            let slot = pick as usize % (live.len() + 1);
            if slot == live.len() {
                // A never-assigned id: nothing may change.
                let ghost = 1_000_000 + pick as Id;
                assert!(
                    !mi.delete(dev, alloc, level, ghost).expect("ghost delete"),
                    "delete of unknown id {ghost} claimed success"
                );
                (level, 0)
            } else {
                let id = live[slot];
                let key = model[level][&id];
                assert!(
                    mi.delete(dev, alloc, level, id).expect("delete"),
                    "delete of live id {id} failed"
                );
                model[level].remove(&id);
                (level, key)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole lock: random op sequences, every intermediate state
    /// compared three ways (maintained / fresh rebuild / host model) on
    /// the touched key plus boundary samples and all four range shapes;
    /// the final state (and the post-flush state) swept over every key.
    #[test]
    fn maintained_index_equals_fresh_rebuild_at_every_state(
        initial in proptest::collection::vec(
            proptest::collection::vec(0u64..KEYS, 0..8), 2..=2),
        ops in proptest::collection::vec(op_strategy(), 1..16),
        threshold in 1usize..6,
    ) {
        let all_keys: Vec<u64> = (0..KEYS).collect();
        for strategy in strategies() {
            let mut dev = device();
            let mut alloc = SegmentAllocator::new(dev.logical_pages());
            let ram = ram();
            let mut mi = MaintainedIndex::build(
                &mut dev, &mut alloc, LEVELS[0], "k", LEVELS.to_vec(), true,
                &initial, strategy, threshold,
            ).expect("build");
            let mut model: Model = initial
                .iter()
                .map(|keys| keys.iter().enumerate().map(|(i, k)| (i as Id, *k)).collect())
                .collect();
            let name = strategy.name();
            verify(&mi, &model, &all_keys, &mut dev, &mut alloc, &ram,
                   &format!("{name}/initial"));
            for (i, op) in ops.iter().enumerate() {
                let (_, key) = apply(&mut mi, &mut model, *op, &mut dev, &mut alloc);
                let sample = [key, 0, KEYS / 2, KEYS - 1];
                verify(&mi, &model, &sample, &mut dev, &mut alloc, &ram,
                       &format!("{name}/op {i} ({op:?})"));
            }
            verify(&mi, &model, &all_keys, &mut dev, &mut alloc, &ram,
                   &format!("{name}/final"));
            mi.flush(&mut dev, &mut alloc).expect("flush");
            prop_assert_eq!(mi.pending_ops(), 0, "{}: flush left buffered ops", name);
            verify(&mi, &model, &all_keys, &mut dev, &mut alloc, &ram,
                   &format!("{name}/flushed"));
        }
    }

    /// Replaying the same op sequence on two fresh devices is bit-identical
    /// in device-wide counters (GC included) and every probe answer: the
    /// write path's placement is a pure function of the operation sequence
    /// (SECURITY.md claim 13's device-level half).
    #[test]
    fn maintenance_replay_is_deterministic(
        ops in proptest::collection::vec(op_strategy(), 1..20),
        threshold in 1usize..6,
    ) {
        for strategy in strategies() {
            let mut runs = Vec::new();
            for _ in 0..2 {
                let mut dev = device();
                let mut alloc = SegmentAllocator::new(dev.logical_pages());
                let ram = ram();
                let initial = vec![vec![1, 5, 5, 9], vec![2, 5]];
                let mut mi = MaintainedIndex::build(
                    &mut dev, &mut alloc, LEVELS[0], "k", LEVELS.to_vec(), true,
                    &initial, strategy, threshold,
                ).expect("build");
                let mut model: Model = initial
                    .iter()
                    .map(|keys| keys.iter().enumerate().map(|(i, k)| (i as Id, *k)).collect())
                    .collect();
                for op in &ops {
                    apply(&mut mi, &mut model, *op, &mut dev, &mut alloc);
                }
                let mut probes = Vec::new();
                for level in 0..LEVELS.len() {
                    for key in 0..KEYS {
                        probes.push(mi.lookup_eq(&mut dev, &ram, level, key).expect("eq"));
                    }
                }
                runs.push((dev.stats(), probes));
            }
            prop_assert_eq!(
                &runs[0], &runs[1],
                "{}: replay diverged in counters or probe answers", strategy.name()
            );
        }
    }
}

/// SKT maintenance: in-place row updates and appends (with segment growth)
/// against a host-side model. Pseudo-random ops from a fixed LCG keep the
/// test deterministic without a PRNG dependency.
#[test]
fn maintained_skt_tracks_model_through_updates_appends_and_growth() {
    let schema = paper_synthetic_schema(1, 1);
    let t0 = schema.root();
    let t1 = schema.table_id("T1").expect("T1");
    let t2 = schema.table_id("T2").expect("T2");
    let t11 = schema.table_id("T11").expect("T11");
    let t12 = schema.table_id("T12").expect("T12");
    let mut rows = vec![0u64; schema.len()];
    rows[t0] = 40;
    rows[t1] = 20;
    rows[t2] = 10;
    rows[t11] = 5;
    rows[t12] = 4;
    let mut fks = ghostdb_index::FkData::default();
    fks.insert(t0, t1, (0..40).map(|i| (i / 2) as u32).collect());
    fks.insert(t0, t2, (0..40).map(|i| (i % 10) as u32).collect());
    fks.insert(t1, t11, (0..20).map(|i| (i % 5) as u32).collect());
    fks.insert(t1, t12, (0..20).map(|i| (i % 4) as u32).collect());
    let builder = IndexBuilder::new(schema.clone(), rows, fks);

    let mut dev = device();
    let mut alloc = SegmentAllocator::new(dev.logical_pages());
    let skt = builder.build_skt(&mut dev, &mut alloc, t1).expect("skt");
    let cols = skt.descendants.len();
    // Host model mirrors the built rows.
    let mut model: Vec<Vec<Id>> = {
        let layout = skt.flash.layout.clone();
        let mut m = Vec::new();
        let mut buf = vec![0u8; layout.size()];
        for r in 0..skt.rows() {
            skt.flash.read_row(&mut dev, r, &mut buf).expect("read row");
            m.push((0..cols).map(|c| layout.get_id(&buf, c)).collect());
        }
        m
    };
    let mut mskt = MaintainedSkt::new(skt, 8);

    // 64 rows fit a 512-byte page with 2 id columns, so ~200 appends force
    // several grow_into rebuilds (capacity 64 → 72 → 80 → …).
    let mut seed = 0x9e3779b9u64;
    let mut next = || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as u32
    };
    for step in 0..200u32 {
        let ids: Vec<Id> = (0..cols).map(|_| next() % 1000).collect();
        if step % 3 == 0 && !model.is_empty() {
            let row = (next() as u64) % model.len() as u64;
            mskt.set_row(&mut dev, row, &ids).expect("set_row");
            model[row as usize] = ids;
        } else {
            mskt.append_row(&mut dev, &mut alloc, &ids)
                .expect("append_row");
            model.push(ids);
        }
        assert_eq!(mskt.rows(), model.len() as u64, "step {step}: row count");
    }
    // Initial capacity is one 64-row page; well past it means grow_into
    // ran repeatedly (every 8 appends once full).
    assert!(mskt.rows() > 128, "growth path never exercised");
    // Full readback against the model.
    let layout = mskt.skt.flash.layout.clone();
    let mut buf = vec![0u8; layout.size()];
    for (r, want) in model.iter().enumerate() {
        mskt.skt
            .flash
            .read_row(&mut dev, r as u64, &mut buf)
            .expect("read back");
        let got: Vec<Id> = (0..cols).map(|c| layout.get_id(&buf, c)).collect();
        assert_eq!(&got, want, "row {r} diverges from the model");
    }
    // The grown table still validates as an SKT for its schema position.
    assert_eq!(mskt.skt.column_of(t11), Some(0));
    assert_eq!(mskt.skt.column_of(t12), Some(1));
}

/// Wrong-width rows are rejected before touching flash, and appends past
/// capacity grow rather than fail.
#[test]
fn maintained_skt_rejects_malformed_rows() {
    let schema = paper_synthetic_schema(1, 1);
    let t0 = schema.root();
    let t1 = schema.table_id("T1").expect("T1");
    let mut rows = vec![0u64; schema.len()];
    rows[t0] = 4;
    rows[t1] = 2;
    rows[schema.table_id("T2").expect("T2")] = 2;
    rows[schema.table_id("T11").expect("T11")] = 2;
    rows[schema.table_id("T12").expect("T12")] = 2;
    let mut fks = ghostdb_index::FkData::default();
    fks.insert(t0, t1, vec![0, 0, 1, 1]);
    fks.insert(t0, schema.table_id("T2").expect("T2"), vec![0, 1, 0, 1]);
    fks.insert(t1, schema.table_id("T11").expect("T11"), vec![0, 1]);
    fks.insert(t1, schema.table_id("T12").expect("T12"), vec![1, 0]);
    let builder = IndexBuilder::new(schema.clone(), rows, fks);
    let mut dev = device();
    let mut alloc = SegmentAllocator::new(dev.logical_pages());
    let skt = builder.build_skt(&mut dev, &mut alloc, t1).expect("skt");
    let mut mskt = MaintainedSkt::new(skt, 4);
    assert!(
        mskt.set_row(&mut dev, 0, &[1]).is_err(),
        "short row accepted"
    );
    assert!(
        mskt.append_row(&mut dev, &mut alloc, &[1, 2, 3]).is_err(),
        "long row accepted"
    );
    assert_eq!(mskt.rows(), 2, "rejected ops must not change the table");
}
