//! Host-trace determinism: the sequence of requests the engine makes of
//! the untrusted PC is a pure function of (query, visible data, pad mode).
//! It must be bit-identical across repeated runs, across `--intra-threads`
//! widths, and across spill policies — otherwise scheduling noise would
//! itself be a covert channel, and the leakage suite (`tests/leakage.rs`)
//! could pass on one machine and fail on another. All host contact happens
//! on the root lane (workers get no channel), so any diff here means an
//! optimized path smuggled a host request into a worker.

use ghostdb_datagen::{SyntheticDataset, SyntheticSpec};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{Database, ExecOptions, Executor, HostTrace, SpillPolicy, SpjQuery};

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];

fn dataset() -> SyntheticDataset {
    let mut spec = SyntheticSpec::paper(0.0005);
    spec.seed = 41;
    SyntheticDataset::generate(spec)
}

fn query(ds: &SyntheticDataset) -> SpjQuery {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.05))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "v1")
        .project(t12, "h1");
    q.text = "host-trace-determinism-Q".into();
    q
}

fn run_trace(db: &mut Database, q: &SpjQuery, opts: &ExecOptions) -> HostTrace {
    Executor::run(db, q, opts).expect("run");
    db.untrusted.trace()
}

/// Every strategy, padded and exact: the host trace at intra widths 2 and
/// 4 must equal the serial trace bit for bit.
#[test]
fn host_trace_identical_across_intra_widths() {
    let ds = dataset();
    let q = query(&ds);
    for strategy in STRATEGIES {
        for padded in [false, true] {
            let mut serial_db = ds.build().expect("build");
            let serial = run_trace(
                &mut serial_db,
                &q,
                &ExecOptions::with_strategy(strategy)
                    .with_project(ProjectAlgo::Project)
                    .with_intra_threads(1)
                    .with_padded(padded),
            );
            assert!(
                !serial.is_empty(),
                "every query contacts the host at least once"
            );
            for threads in [2usize, 4] {
                let mut db = ds.build().expect("build");
                let got = run_trace(
                    &mut db,
                    &q,
                    &ExecOptions::with_strategy(strategy)
                        .with_project(ProjectAlgo::Project)
                        .with_intra_threads(threads)
                        .with_padded(padded),
                );
                assert_eq!(
                    serial,
                    got,
                    "{}/padded={padded}/threads={threads}: host trace diverges",
                    strategy.name()
                );
            }
        }
    }
}

/// Spill policy is a token-internal decision; it must not change what the
/// host observes.
#[test]
fn host_trace_identical_across_spill_policies() {
    let ds = dataset();
    let q = query(&ds);
    let mut base_db = ds.build().expect("build");
    let base = run_trace(
        &mut base_db,
        &q,
        &ExecOptions::with_strategy(VisStrategy::CrossPost)
            .with_project(ProjectAlgo::Project)
            .with_spill_policy(SpillPolicy::WidestSmallest),
    );
    let mut db = ds.build().expect("build");
    let got = run_trace(
        &mut db,
        &q,
        &ExecOptions::with_strategy(VisStrategy::CrossPost)
            .with_project(ProjectAlgo::Project)
            .with_spill_policy(SpillPolicy::GlobalSmallestK),
    );
    assert_eq!(base, got, "spill policy leaked into the host trace");
}

/// Repeated runs on fresh databases record the same trace — and a repeat
/// on the *same* database too (each query resets the trace).
#[test]
fn host_trace_identical_across_repeats() {
    let ds = dataset();
    let q = query(&ds);
    let opts = ExecOptions::with_strategy(VisStrategy::CrossPre)
        .with_project(ProjectAlgo::Project)
        .with_intra_threads(4)
        .with_padded(true);
    let mut db_a = ds.build().expect("build");
    let first = run_trace(&mut db_a, &q, &opts);
    let again_same_db = run_trace(&mut db_a, &q, &opts);
    let mut db_b = ds.build().expect("build");
    let fresh = run_trace(&mut db_b, &q, &opts);
    assert_eq!(first, again_same_db, "per-query trace reset failed");
    assert_eq!(first, fresh, "trace depends on database instance");
}
