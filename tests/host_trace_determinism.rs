//! Host-trace determinism: the sequence of requests the engine makes of
//! the untrusted PC is a pure function of (query, visible data, pad mode).
//! It must be bit-identical across repeated runs, across `--intra-threads`
//! widths, and across spill policies — otherwise scheduling noise would
//! itself be a covert channel, and the leakage suite (`tests/leakage.rs`)
//! could pass on one machine and fail on another. All host contact happens
//! on the root lane (workers get no channel), so any diff here means an
//! optimized path smuggled a host request into a worker.

use ghostdb_datagen::{SyntheticDataset, SyntheticSpec};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{
    Database, ExecOptions, Executor, GhostDbServer, HostTrace, ServeConfig, SpillPolicy, SpjQuery,
};

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];

fn dataset() -> SyntheticDataset {
    let mut spec = SyntheticSpec::paper(0.0005);
    spec.seed = 41;
    SyntheticDataset::generate(spec)
}

fn query(ds: &SyntheticDataset) -> SpjQuery {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.05))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "v1")
        .project(t12, "h1");
    q.text = "host-trace-determinism-Q".into();
    q
}

fn run_trace(db: &mut Database, q: &SpjQuery, opts: &ExecOptions) -> HostTrace {
    Executor::run(db, q, opts).expect("run");
    db.untrusted.trace()
}

/// Every strategy, padded and exact: the host trace at intra widths 2 and
/// 4 must equal the serial trace bit for bit.
#[test]
fn host_trace_identical_across_intra_widths() {
    let ds = dataset();
    let q = query(&ds);
    for strategy in STRATEGIES {
        for padded in [false, true] {
            let mut serial_db = ds.build().expect("build");
            let serial = run_trace(
                &mut serial_db,
                &q,
                &ExecOptions::new()
                    .strategy(strategy)
                    .project(ProjectAlgo::Project)
                    .intra_threads(1)
                    .padded(padded),
            );
            assert!(
                !serial.is_empty(),
                "every query contacts the host at least once"
            );
            for threads in [2usize, 4] {
                let mut db = ds.build().expect("build");
                let got = run_trace(
                    &mut db,
                    &q,
                    &ExecOptions::new()
                        .strategy(strategy)
                        .project(ProjectAlgo::Project)
                        .intra_threads(threads)
                        .padded(padded),
                );
                assert_eq!(
                    serial,
                    got,
                    "{}/padded={padded}/threads={threads}: host trace diverges",
                    strategy.name()
                );
            }
        }
    }
}

/// Spill policy is a token-internal decision; it must not change what the
/// host observes.
#[test]
fn host_trace_identical_across_spill_policies() {
    let ds = dataset();
    let q = query(&ds);
    let mut base_db = ds.build().expect("build");
    let base = run_trace(
        &mut base_db,
        &q,
        &ExecOptions::new()
            .strategy(VisStrategy::CrossPost)
            .project(ProjectAlgo::Project)
            .spill_policy(SpillPolicy::WidestSmallest),
    );
    let mut db = ds.build().expect("build");
    let got = run_trace(
        &mut db,
        &q,
        &ExecOptions::new()
            .strategy(VisStrategy::CrossPost)
            .project(ProjectAlgo::Project)
            .spill_policy(SpillPolicy::GlobalSmallestK),
    );
    assert_eq!(base, got, "spill policy leaked into the host trace");
}

/// Repeated runs on fresh databases record the same trace — and a repeat
/// on the *same* database too (each query resets the trace).
#[test]
fn host_trace_identical_across_repeats() {
    let ds = dataset();
    let q = query(&ds);
    let opts = ExecOptions::new()
        .strategy(VisStrategy::CrossPre)
        .project(ProjectAlgo::Project)
        .intra_threads(4)
        .padded(true);
    let mut db_a = ds.build().expect("build");
    let first = run_trace(&mut db_a, &q, &opts);
    let again_same_db = run_trace(&mut db_a, &q, &opts);
    let mut db_b = ds.build().expect("build");
    let fresh = run_trace(&mut db_b, &q, &opts);
    assert_eq!(first, again_same_db, "per-query trace reset failed");
    assert_eq!(first, fresh, "trace depends on database instance");
}

/// The ingest flow is as deterministic as the query flow: building the
/// same logical content twice — staging, download, index construction, GC
/// included — produces bit-identical wire transcripts, host traces and
/// flash counters. Scheduling or allocator noise in the write path would
/// otherwise be a covert channel of its own (SECURITY.md claim 13).
#[test]
fn ingest_replay_is_deterministic() {
    use ghostdb_core::{GhostDb, GhostDbConfig};
    use ghostdb_storage::Value;

    let build = || {
        let mut db = GhostDb::new(GhostDbConfig {
            capture_channel: true,
            ..Default::default()
        });
        db.execute("CREATE TABLE Ledger (id INT, bucket CHAR(8), amount INT HIDDEN)")
            .expect("DDL");
        db.insert_rows(
            "Ledger",
            (0..96)
                .map(|i| vec![Value::Str(format!("B{:03}", i % 11)), Value::Int(i * 7)])
                .collect(),
        )
        .expect("load");
        db.finalize().expect("finalize");
        db
    };
    let a = build();
    let b = build();
    let view = |db: &GhostDb| {
        let inner = db.database().expect("loaded");
        (
            inner.token.channel.transcript().to_vec(),
            db.host_trace().expect("trace"),
            inner.token.flash.stats(),
        )
    };
    assert_eq!(view(&a), view(&b), "ingest replay diverged");
}

/// The trace reset lives with the session, not the database: when two
/// serve-mode sessions interleave on one server, each session's captured
/// trace is exactly the solo trace of its own query — session B's traffic
/// never clobbers what session A observed.
#[test]
fn host_trace_survives_a_second_session() {
    let ds = dataset();
    let q_a = query(&ds);
    let mut q_b = query(&ds);
    // Session B runs a different query shape (extra projection) so a
    // clobbered trace cannot accidentally match.
    q_b = q_b.project(ds.schema.table_id("T1").expect("T1"), "id");
    q_b.text = "host-trace-determinism-Q-b".into();
    let opts = ExecOptions::new()
        .strategy(VisStrategy::CrossPre)
        .project(ProjectAlgo::Project);

    // Solo references.
    let mut solo_db = ds.build().expect("build");
    let solo_a = run_trace(&mut solo_db, &q_a, &opts);
    let solo_b = run_trace(&mut solo_db, &q_b, &opts);
    assert_ne!(solo_a, solo_b, "the two queries must observe differently");

    // Two sessions on one server: A's query executes, then B's; A's
    // captured trace must still read back as the solo trace afterwards.
    let server =
        GhostDbServer::new(ds.build().expect("build"), ServeConfig::default()).expect("server");
    let sa = server.session();
    let sb = server.session();
    let out_a = sa.query(&q_a, &opts).expect("session A query");
    let out_b = sb.query(&q_b, &opts).expect("session B query");
    assert_eq!(out_a.trace, solo_a, "session A trace diverges from solo");
    assert_eq!(out_b.trace, solo_b, "session B trace diverges from solo");
    assert_eq!(
        sa.host_trace().expect("A has a trace"),
        solo_a,
        "session B's query clobbered session A's captured trace"
    );
}
