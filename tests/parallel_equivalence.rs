//! Parallel-vs-serial equivalence: `run_many` must return `ResultSet`s
//! byte-identical to the serial executor for every `VisStrategy` ×
//! `ProjectAlgo` on both synthetic scales and the medical workload, and
//! two parallel runs must be identical to each other (determinism). This
//! is the lock on the Rc→Arc migration: any scheduling-dependent state
//! that leaks into results shows up here as a diff.

use ghostdb_datagen::{MedicalDataset, SyntheticDataset, SyntheticSpec};
use ghostdb_exec::parallel::run_many;
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{Database, ExecOptions, Executor, ResultSet, SpjQuery};

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const ALGOS: [ProjectAlgo; 3] = [
    ProjectAlgo::Project,
    ProjectAlgo::ProjectNoBf,
    ProjectAlgo::BruteForce,
];

/// The full strategy × algorithm matrix over one query.
fn matrix(q: &SpjQuery) -> Vec<(SpjQuery, ExecOptions)> {
    let mut jobs = Vec::new();
    for strategy in STRATEGIES {
        for algo in ALGOS {
            let mut q = q.clone();
            q.text = format!("{} {} {}", q.text, strategy.name(), algo.name());
            jobs.push((
                q,
                ExecOptions {
                    forced_strategy: Some(strategy),
                    project: Some(algo),
                    ..Default::default()
                },
            ));
        }
    }
    jobs
}

/// Serial reference: one database, one query at a time, in job order.
fn serial(mut db: Database, jobs: &[(SpjQuery, ExecOptions)]) -> Vec<ResultSet> {
    jobs.iter()
        .map(|(q, o)| Executor::run(&mut db, q, o).expect("serial run").0)
        .collect()
}

fn assert_equivalent(
    label: &str,
    build: impl Fn() -> Database + Sync,
    jobs: &[(SpjQuery, ExecOptions)],
) {
    let want = serial(build(), jobs);
    for threads in [2usize, 4, 8] {
        let got = run_many(|| Ok(build()), jobs, threads).expect("parallel run");
        assert_eq!(got.len(), want.len(), "{label}: job count");
        for (i, ((rs, _), expect)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                rs, expect,
                "{label}: job {i} ({}) diverges from serial at threads={threads}",
                jobs[i].0.text
            );
        }
    }
    // Determinism: two parallel runs are identical to each other.
    let a = run_many(|| Ok(build()), jobs, 4).expect("first parallel run");
    let b = run_many(|| Ok(build()), jobs, 4).expect("second parallel run");
    for (i, ((ra, rep_a), (rb, rep_b))) in a.iter().zip(&b).enumerate() {
        assert_eq!(ra, rb, "{label}: job {i} not deterministic across runs");
        assert_eq!(
            rep_a.total(),
            rep_b.total(),
            "{label}: job {i} simulated time not deterministic"
        );
    }
}

fn synthetic_query(ds: &SyntheticDataset) -> SpjQuery {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    // Visible selection on T1, hidden selection on T12 (in T1's subtree, so
    // every Cross strategy is applicable), mixed projections.
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.05))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "id")
        .project(t1, "v1")
        .project(t1, "h1");
    q.text = "equivalence-Q".into();
    q
}

#[test]
fn synthetic_scale_1_all_strategies_and_algos() {
    let mut spec = SyntheticSpec::paper(0.0005); // T0 = 5 000
    spec.seed = 11;
    let ds = SyntheticDataset::generate(spec);
    let jobs = matrix(&synthetic_query(&ds));
    assert_equivalent("synthetic x0.0005", || ds.build().expect("build"), &jobs);
}

#[test]
fn synthetic_scale_2_all_strategies_and_algos() {
    let mut spec = SyntheticSpec::paper(0.001); // T0 = 10 000
    spec.seed = 11;
    let ds = SyntheticDataset::generate(spec);
    let jobs = matrix(&synthetic_query(&ds));
    assert_equivalent("synthetic x0.001", || ds.build().expect("build"), &jobs);
}

#[test]
fn medical_workload_all_strategies_and_algos() {
    let ds = MedicalDataset::generate(0.002, 7);
    let m = ds.schema.table_id("Measurements").expect("m");
    let p = ds.schema.table_id("Patients").expect("p");
    let d = ds.schema.table_id("Doctors").expect("d");
    // The Figure 16 shape: visible on Patients, hidden on Doctors.
    let mut q = SpjQuery::new()
        .pred(p, ds.visible_pred(0.2))
        .pred(d, ds.hidden_pred(0.1))
        .project(m, "id")
        .project(p, "id")
        .project(d, "id")
        .project(p, "first_name");
    q.text = "equivalence-medical".into();
    let jobs = matrix(&q);
    assert_equivalent("medical x0.002", || ds.build().expect("build"), &jobs);
}

#[test]
fn parallel_sweep_matches_serial_sweep_row_for_row() {
    // The perfbench usage pattern: the same query under each strategy,
    // executed as one run_many batch — results must land in input order
    // (strategy i's result in slot i), not arrival order.
    let ds = SyntheticDataset::generate(SyntheticSpec::small());
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    // Distinct selectivity per job so any slot mix-up changes cardinality.
    let jobs: Vec<(SpjQuery, ExecOptions)> = (1..=6)
        .map(|k| {
            let mut q = SpjQuery::new()
                .pred(t1, ds.selectivity_pred("T1", "v1", 0.1 * k as f64))
                .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
                .project(t0, "id")
                .project(t1, "v1");
            q.text = format!("sweep sv={}", 0.1 * k as f64);
            (q, ExecOptions::auto())
        })
        .collect();
    let want = serial(ds.build().expect("build"), &jobs);
    let got = run_many(|| Ok(ds.build().expect("build")), &jobs, 3).expect("parallel");
    let cards: Vec<usize> = want.iter().map(|r| r.rows.len()).collect();
    assert!(
        cards.windows(2).all(|w| w[0] <= w[1]),
        "sweep cardinalities should grow with sv: {cards:?}"
    );
    for (i, ((rs, _), expect)) in got.iter().zip(&want).enumerate() {
        assert_eq!(rs, expect, "sweep job {i} out of order or diverged");
    }
}
