//! Multi-chip differential suite: sharding the token's flash across
//! 2 or 4 chips (and fanning queries out over 2 or 4 worker lanes) is a
//! pure wall-clock/makespan optimization. Every per-operation flash cost
//! in the simulator is charged per page or per byte — never per physical
//! placement — so a query over a chip-striped database must produce the
//! same rows, the same `ExecReport` in every field, the same host trace
//! and the same wire transcript as the single-chip serial executor, bit
//! for bit. This file is the lock on that claim: 7 strategies × lanes
//! {1,2,4} × chips {1,2,4}, all compared against the chips=1/lanes=1
//! baseline; plus a property test that per-operation ("chunked") flash
//! delta accounting on forked handles sums to exactly the whole-scope
//! device-wide delta.

use ghostdb_datagen::{SyntheticDataset, SyntheticSpec};
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{Database, ExecOptions, ExecReport, Executor, HostTrace, OpKind, SpjQuery};
use ghostdb_flash::{FlashDevice, FlashGeometry, FlashStats, FlashTiming, PageReq, PageWrite};
use ghostdb_token::TranscriptEntry;
use proptest::prelude::*;

const STRATEGIES: [VisStrategy; 7] = [
    VisStrategy::Pre,
    VisStrategy::CrossPre,
    VisStrategy::Post,
    VisStrategy::CrossPost,
    VisStrategy::PostSelect,
    VisStrategy::CrossPostSelect,
    VisStrategy::NoFilter,
];
const LANES: [usize; 3] = [1, 2, 4];
const CHIPS: [usize; 3] = [1, 2, 4];

/// CI's `lanes-smoke` legs restrict the matrix to one cell via
/// `MULTICHIP_CHIPS` / `MULTICHIP_LANES`; unset (the local default) runs
/// the full cross product.
fn axis(env: &str, all: &[usize]) -> Vec<usize> {
    match std::env::var(env) {
        Ok(v) => {
            let n: usize = v
                .parse()
                .unwrap_or_else(|_| panic!("{env} must be a number, got {v:?}"));
            assert!(all.contains(&n), "{env}={n} is not one of {all:?}");
            vec![n]
        }
        Err(_) => all.to_vec(),
    }
}

fn dataset() -> SyntheticDataset {
    let mut spec = SyntheticSpec::paper(0.0005); // T0 = 5 000
    spec.seed = 47;
    SyntheticDataset::generate(spec)
}

fn capture_db(ds: &SyntheticDataset, chips: usize) -> Database {
    let mut db = ds.build_chips(chips).expect("build");
    db.token.channel.set_capture(true);
    db
}

fn query(ds: &SyntheticDataset) -> SpjQuery {
    let t0 = ds.schema.root();
    let t1 = ds.schema.table_id("T1").expect("T1");
    let t12 = ds.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", 0.05))
        .pred(t12, ds.selectivity_pred("T12", "h2", 0.1))
        .project(t0, "id")
        .project(t1, "v1")
        .project(t12, "h1");
    q.text = "multichip-eq-Q".into();
    q
}

/// Every observable field of two reports, with per-bucket messages.
fn assert_report_identical(label: &str, want: &ExecReport, got: &ExecReport) {
    for op in OpKind::ALL {
        assert_eq!(
            want.op(op),
            got.op(op),
            "{label}: {} bucket diverges",
            op.name()
        );
    }
    assert_eq!(want, got, "{label}: ExecReport diverges");
}

/// One observed execution: result, report, host trace, wire transcript.
struct Observed {
    result: ghostdb_exec::ResultSet,
    report: ExecReport,
    trace: HostTrace,
    transcript: Vec<TranscriptEntry>,
}

fn observe(db: &mut Database, q: &SpjQuery, opts: &ExecOptions) -> Observed {
    let (result, report) = Executor::run(db, q, opts).expect("run");
    Observed {
        result,
        report,
        trace: db.untrusted.trace(),
        transcript: db.token.channel.transcript().to_vec(),
    }
}

/// The full matrix. Baseline: chips=1, lanes=1 (the paper's device, the
/// serial executor). Every other (chips, lanes) cell re-runs the whole
/// strategy sweep on a freshly built chip-striped database and must match
/// the baseline observation for its strategy in every observable.
#[test]
fn sharded_multichip_equals_single_chip_serial_bit_for_bit() {
    let ds = dataset();
    let q = query(&ds);
    let mut base_db = capture_db(&ds, 1);
    let baseline: Vec<Observed> = STRATEGIES
        .iter()
        .map(|s| {
            let opts = ExecOptions::new().strategy(*s).intra_threads(1);
            observe(&mut base_db, &q, &opts)
        })
        .collect();
    for &chips in &axis("MULTICHIP_CHIPS", &CHIPS) {
        for &lanes in &axis("MULTICHIP_LANES", &LANES) {
            if chips == 1 && lanes == 1 {
                continue;
            }
            let mut db = capture_db(&ds, chips);
            assert_eq!(db.token.flash.chip_count(), chips);
            for (s, want) in STRATEGIES.iter().zip(&baseline) {
                let opts = ExecOptions::new().strategy(*s).intra_threads(lanes);
                let got = observe(&mut db, &q, &opts);
                let label = format!("{}/chips={chips}/lanes={lanes}", s.name());
                assert_eq!(got.result, want.result, "{label}: results diverge");
                assert_report_identical(&label, &want.report, &got.report);
                assert_eq!(got.trace, want.trace, "{label}: host trace diverges");
                assert_eq!(
                    got.transcript, want.transcript,
                    "{label}: wire transcript diverges"
                );
            }
        }
    }
}

/// Sharding must not change the device's logical capacity: the same total
/// flash bytes, split across 4 chips, hold the same database.
#[test]
fn sharded_build_preserves_total_capacity() {
    let ds = dataset();
    let one = ds.build_chips(1).expect("build 1");
    let four = ds.build_chips(4).expect("build 4");
    // Per-chip capacity is total/chips rounded up to whole blocks, so the
    // sharded device never shrinks below the single-chip capacity.
    assert!(
        four.token.flash.logical_pages() >= one.token.flash.logical_pages(),
        "sharding lost capacity: {} < {}",
        four.token.flash.logical_pages(),
        one.token.flash.logical_pages()
    );
    assert_eq!(four.token.flash.chip_count(), 4);
    assert_eq!(
        four.token.flash.logical_pages(),
        four.token.flash.chip_pages() * 4,
        "logical space is whole chips"
    );
    // Striped base placement: table/index segments land on more than one
    // chip (otherwise the scaling story is vacuous).
    let pages = four.token.flash.chip_pages();
    let chips_used: std::collections::HashSet<usize> = (0..four.token.flash.logical_pages())
        .step_by(pages as usize)
        .map(|lpn| four.token.flash.chip_of(lpn))
        .collect();
    assert_eq!(chips_used.len(), 4, "every chip hosts a slice of the space");
}

/// One random op (relative page, payload byte, op kind) on a device.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(u64, u8),
    Read(u64),
    Trim(u64),
    /// A vectored 4-page read (`FlashDevice::read_batch`). Random pages mod
    /// the span give duplicate LPNs and chip-boundary spans for free.
    Batch([u64; 4]),
    /// A vectored 4-page write (`FlashDevice::write_batch`): exercises
    /// write and GC counter attribution (`gc_pages_read`/`gc_pages_written`/
    /// `blocks_erased`) through the batched path.
    WriteBatch([u64; 4], u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u64..512,
        any::<u8>(),
        0u8..5,
        (0u64..512, 0u64..512, 0u64..512, 0u64..512),
    )
        .prop_map(|(p, b, k, (b0, b1, b2, b3))| match k {
            0 => Op::Write(p, b),
            1 => Op::Read(p),
            2 => Op::Trim(p),
            3 => Op::Batch([b0, b1, b2, b3]),
            _ => Op::WriteBatch([b0, b1, b2, b3], b),
        })
}

fn tiny_device(chips: usize) -> FlashDevice {
    // 512 logical pages per chip keeps every op in range on any handle.
    let geometry = FlashGeometry {
        page_size: 512,
        pages_per_block: 16,
        block_count: 40,
        spare_blocks: 8,
    };
    FlashDevice::with_chips(geometry, FlashTiming::default(), chips)
}

fn apply(dev: &mut FlashDevice, op: Op, span: u64) {
    let page = |p: u64| p % span;
    match op {
        Op::Write(p, b) => {
            let image = vec![b; dev.page_size()];
            dev.write(page(p), &image).expect("write");
        }
        Op::Read(p) => {
            let mut buf = vec![0u8; 64];
            dev.read(page(p), 0, &mut buf).expect("read");
        }
        Op::Trim(p) => dev.trim(page(p)).expect("trim"),
        Op::Batch(pages) => {
            let reqs: Vec<PageReq> = pages
                .iter()
                .map(|&p| PageReq {
                    lpn: page(p),
                    offset: (p % 64) as usize,
                    len: 64,
                })
                .collect();
            let mut out = vec![0u8; 64 * reqs.len()];
            dev.read_batch(&reqs, &mut out).expect("batch read");
        }
        Op::WriteBatch(pages, b) => {
            let page_size = dev.page_size();
            let images: Vec<Vec<u8>> = pages
                .iter()
                .enumerate()
                .map(|(i, _)| vec![b.wrapping_add(i as u8); page_size])
                .collect();
            let reqs: Vec<PageWrite> = pages
                .iter()
                .zip(&images)
                .map(|(&p, image)| PageWrite {
                    lpn: page(p),
                    image,
                })
                .collect();
            dev.write_batch(&reqs).expect("batch write");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chunked vs whole-scope delta accounting: accumulate each op's
    /// `stats_since(snapshot)` delta on two forked handles (ops split
    /// between them), and the sum of all chunked deltas must equal the
    /// whole-scope device-wide stats difference exactly — no op double
    /// counted, none lost, regardless of chip count or which handle
    /// issued it.
    #[test]
    fn chunked_deltas_sum_to_whole_scope_delta(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        chips in 1usize..=4,
    ) {
        let mut root = tiny_device(chips);
        let span = root.logical_pages();
        let before = root.stats();
        let mut fork = root.fork();
        let mut chunked = FlashStats::default();
        for (i, op) in ops.iter().enumerate() {
            // Alternate handles: deltas stay exact per handle because the
            // local mirror only moves for this handle's own ops.
            let dev = if i % 2 == 0 { &mut root } else { &mut fork };
            let snap = dev.snapshot();
            apply(dev, *op, span);
            chunked += dev.stats_since(&snap);
        }
        let whole = root.stats() - before;
        prop_assert_eq!(chunked, whole, "chunked deltas drifted from the device-wide scope");
        // And the handle-local mirrors partition the same total.
        prop_assert_eq!(root.snapshot() + fork.snapshot(), whole);
    }

    /// `read_batch` ≡ a loop of single `read`s, bit for bit: same returned
    /// bytes, same handle-local counter delta — on mixed root/fork handles,
    /// with duplicate LPNs and batches spanning chip boundaries (random
    /// pages mod the span produce both), over mapped and unmapped pages.
    /// Only the side-band overlap clock may differ (batch ≤ singles).
    #[test]
    fn read_batch_equals_loop_of_single_reads(
        writes in proptest::collection::vec((0u64..512, any::<u8>()), 0..24),
        batches in proptest::collection::vec(
            proptest::collection::vec((0u64..512, 0usize..8), 1..9), 1..6),
        chips in 1usize..=4,
    ) {
        let mut root = tiny_device(chips);
        let span = root.logical_pages();
        for (p, b) in &writes {
            let image = vec![*b; root.page_size()];
            root.write(p % span, &image).expect("write");
        }
        // Two zero-counter forks over the same array: reads don't mutate
        // flash state, so both observe identical page contents.
        let mut batched = root.fork();
        let mut serial = root.fork();
        for (i, batch) in batches.iter().enumerate() {
            let reqs: Vec<PageReq> = batch
                .iter()
                .map(|&(p, o)| PageReq { lpn: p % span, offset: o * 8, len: 96 })
                .collect();
            let mut got = vec![0u8; 96 * reqs.len()];
            // Alternate which handle batches, so both mixes are covered.
            let (bdev, sdev) = if i % 2 == 0 {
                (&mut batched, &mut serial)
            } else {
                (&mut serial, &mut batched)
            };
            let bsnap = bdev.snapshot();
            let bclock = bdev.overlap_elapsed();
            bdev.read_batch(&reqs, &mut got).expect("batch");
            let bdelta = bdev.stats_since(&bsnap);
            let bclock = bdev.overlap_elapsed().saturating_sub(bclock);
            let ssnap = sdev.snapshot();
            let sclock = sdev.overlap_elapsed();
            let mut want = vec![0u8; 96 * reqs.len()];
            for (r, chunk) in reqs.iter().zip(want.chunks_mut(96)) {
                sdev.read(r.lpn, r.offset, chunk).expect("single");
            }
            let sdelta = sdev.stats_since(&ssnap);
            let sclock = sdev.overlap_elapsed().saturating_sub(sclock);
            prop_assert_eq!(&got, &want, "batch {i}: returned bytes diverge");
            prop_assert_eq!(bdelta, sdelta, "batch {i}: counter deltas diverge");
            // The side-band clock: a batch's makespan never exceeds (and on
            // multi-chip spans undercuts) the serial issue sum.
            prop_assert!(bclock <= sclock, "batch {i}: makespan exceeds issue sum");
        }
        // Both forks saw the same ops overall, so their mirrors agree.
        prop_assert_eq!(batched.snapshot(), serial.snapshot());
    }

    /// `write_batch` ≡ a loop of single `write`s, bit for bit. Writes
    /// mutate flash state, so the comparison runs on two *separate*
    /// devices driven identically: one takes each batch vectored, the
    /// other as singles in submission order. Counters (GC charges
    /// included), final page contents and device-wide ground truth must
    /// all agree; only the side-band overlap clock may differ
    /// (batch makespan ≤ serial issue sum). Sustained full-page overwrite
    /// churn past the headroom drives GC inside batches.
    #[test]
    fn write_batch_equals_loop_of_single_writes(
        batches in proptest::collection::vec(
            proptest::collection::vec((0u64..512, any::<u8>()), 1..9), 4..24),
        chips in 1usize..=4,
    ) {
        let mut batched = tiny_device(chips);
        let mut serial = tiny_device(chips);
        let span = batched.logical_pages();
        let page_size = batched.page_size();
        for (i, batch) in batches.iter().enumerate() {
            let images: Vec<Vec<u8>> = batch
                .iter()
                .map(|&(p, b)| vec![b ^ (p as u8); page_size])
                .collect();
            let reqs: Vec<PageWrite> = batch
                .iter()
                .zip(&images)
                .map(|(&(p, _), image)| PageWrite { lpn: p % span, image })
                .collect();
            let bsnap = batched.snapshot();
            let bclock = batched.overlap_elapsed();
            batched.write_batch(&reqs).expect("batch write");
            let bdelta = batched.stats_since(&bsnap);
            let bclock = batched.overlap_elapsed().saturating_sub(bclock);
            let ssnap = serial.snapshot();
            let sclock = serial.overlap_elapsed();
            for r in &reqs {
                serial.write(r.lpn, r.image).expect("single write");
            }
            let sdelta = serial.stats_since(&ssnap);
            let sclock = serial.overlap_elapsed().saturating_sub(sclock);
            prop_assert_eq!(bdelta, sdelta, "batch {}: counter deltas diverge", i);
            prop_assert!(bclock <= sclock, "batch {}: makespan exceeds issue sum", i);
        }
        // Whole-run ground truth: same counters on both devices...
        prop_assert_eq!(batched.stats(), serial.stats());
        // ...and the same logical page contents everywhere.
        for lpn in 0..span {
            let mut a = vec![0u8; page_size];
            let mut b = vec![0u8; page_size];
            batched.read(lpn, 0, &mut a).expect("read batched device");
            serial.read(lpn, 0, &mut b).expect("read serial device");
            prop_assert_eq!(a, b, "page {} contents diverge", lpn);
        }
    }
}
