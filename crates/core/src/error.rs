//! Error type of the public API.

use std::fmt;

/// Errors surfaced by the GhostDB facade.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// SQL lexing/parsing failure with position context.
    Parse(String),
    /// Semantic failure (unknown table/column, bad statement order…).
    Semantic(String),
    /// Propagated executor error.
    Exec(ghostdb_exec::ExecError),
    /// Propagated storage error.
    Storage(ghostdb_storage::StorageError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(m) => write!(f, "parse error: {m}"),
            CoreError::Semantic(m) => write!(f, "semantic error: {m}"),
            CoreError::Exec(e) => write!(f, "execution: {e}"),
            CoreError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Exec(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ghostdb_exec::ExecError> for CoreError {
    fn from(e: ghostdb_exec::ExecError) -> Self {
        CoreError::Exec(e)
    }
}

impl From<ghostdb_storage::StorageError> for CoreError {
    fn from(e: ghostdb_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}
