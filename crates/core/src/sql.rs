//! The GhostDB SQL subset (paper §2.1 and §3).
//!
//! * `CREATE TABLE name (col TYPE [HIDDEN] [REFERENCES table], …)` — the
//!   paper's only administration-interface change is the `HIDDEN`
//!   annotation; `REFERENCES` declares the key/foreign-key tree edges.
//! * `SELECT proj FROM tables WHERE conjunction` — Select-Project-Join with
//!   exact-match and range selections; join predicates
//!   (`T.fk = T2.id`) are accepted and validated against the schema tree
//!   (they are implicit in GhostDB's execution model).

use crate::error::CoreError;
use crate::Result;
use ghostdb_storage::{CmpOp, ColumnType, Predicate, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable(CreateTable),
    /// SELECT.
    Select(SelectStmt),
}

/// A parsed CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Columns (the conventional `id INT` primary key column is recognised
    /// and elided — GhostDB ids are implicit surrogates).
    pub columns: Vec<CreateColumn>,
}

/// One column of a CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateColumn {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// `HIDDEN` annotation.
    pub hidden: bool,
    /// `REFERENCES table` annotation (declares a tree edge).
    pub references: Option<String>,
}

/// A parsed SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projections as (table, column); empty means `*`.
    pub projections: Vec<(String, String)>,
    /// `*` projection.
    pub star: bool,
    /// FROM tables.
    pub tables: Vec<String>,
    /// Selection predicates as (table, predicate).
    pub predicates: Vec<(String, Predicate)>,
    /// Join conditions as ((table, column), (table, column)).
    pub joins: Vec<((String, String), (String, String))>,
    /// Original text (travels to the token in the clear).
    pub text: String,
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    Sym(char),
    Le,
    Ge,
    Ne,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '.' | '=' | '*' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            '<' | '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    out.push(if c == '<' { Tok::Le } else { Tok::Ge });
                    i += 2;
                } else if c == '<' && i + 1 < chars.len() && chars[i + 1] == '>' {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Sym(c));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(CoreError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        // '' escapes a quote.
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Tok::Number(s));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                s.push(c);
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                out.push(Tok::Ident(s));
            }
            other => {
                return Err(CoreError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    text: String,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| CoreError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        match self.next()? {
            Tok::Sym(s) if s == c => Ok(()),
            other => Err(CoreError::Parse(format!("expected '{c}', got {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(CoreError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let id = self.ident()?;
        if id.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(CoreError::Parse(format!("expected {kw}, got {id}")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn parse_type(&mut self) -> Result<ColumnType> {
        let name = self.ident()?.to_ascii_lowercase();
        let width = if matches!(self.peek(), Some(Tok::Sym('('))) {
            self.expect_sym('(')?;
            let n = match self.next()? {
                Tok::Number(n) => n
                    .parse::<u32>()
                    .map_err(|_| CoreError::Parse(format!("bad width {n}")))?,
                other => return Err(CoreError::Parse(format!("expected width, got {other:?}"))),
            };
            self.expect_sym(')')?;
            Some(n)
        } else {
            None
        };
        match name.as_str() {
            "int" | "integer" => Ok(ColumnType::Int {
                width: width.unwrap_or(4).clamp(1, 8) as u8,
            }),
            "float" | "real" | "double" => Ok(ColumnType::Float {
                width: if width == Some(8) { 8 } else { 4 },
            }),
            "char" | "varchar" | "text" => Ok(ColumnType::Char {
                width: width.unwrap_or(16).max(1) as u16,
            }),
            other => Err(CoreError::Parse(format!("unknown type {other}"))),
        }
    }

    fn parse_create(&mut self) -> Result<CreateTable> {
        self.keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_sym('(')?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let ty = self.parse_type()?;
            let mut hidden = false;
            let mut references = None;
            loop {
                if self.peek_keyword("HIDDEN") {
                    self.keyword("HIDDEN")?;
                    hidden = true;
                } else if self.peek_keyword("REFERENCES") {
                    self.keyword("REFERENCES")?;
                    references = Some(self.ident()?);
                } else {
                    break;
                }
            }
            // The conventional explicit primary key column `id` is elided:
            // GhostDB ids are implicit surrogates replicated on both sides.
            if !col_name.eq_ignore_ascii_case("id") {
                columns.push(CreateColumn {
                    name: col_name,
                    ty,
                    hidden,
                    references,
                });
            }
            match self.next()? {
                Tok::Sym(',') => continue,
                Tok::Sym(')') => break,
                other => {
                    return Err(CoreError::Parse(format!(
                        "expected ',' or ')', got {other:?}"
                    )))
                }
            }
        }
        Ok(CreateTable { name, columns })
    }

    fn qualified(&mut self) -> Result<(String, String)> {
        let table = self.ident()?;
        self.expect_sym('.')?;
        let col = self.ident()?;
        Ok((table, col))
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.next()? {
            Tok::Number(n) => {
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| CoreError::Parse(format!("bad number {n}")))
                } else {
                    n.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| CoreError::Parse(format!("bad number {n}")))
                }
            }
            Tok::Str(s) => Ok(Value::Str(s)),
            other => Err(CoreError::Parse(format!("expected literal, got {other:?}"))),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStmt> {
        let mut projections = Vec::new();
        let mut star = false;
        if matches!(self.peek(), Some(Tok::Sym('*'))) {
            self.next()?;
            star = true;
        } else {
            loop {
                projections.push(self.qualified()?);
                if matches!(self.peek(), Some(Tok::Sym(','))) {
                    self.next()?;
                } else {
                    break;
                }
            }
        }
        self.keyword("FROM")?;
        let mut tables = Vec::new();
        loop {
            tables.push(self.ident()?);
            if matches!(self.peek(), Some(Tok::Sym(','))) {
                self.next()?;
            } else {
                break;
            }
        }
        let mut predicates = Vec::new();
        let mut joins = Vec::new();
        if self.peek_keyword("WHERE") {
            self.keyword("WHERE")?;
            loop {
                let (lt, lc) = self.qualified()?;
                if self.peek_keyword("BETWEEN") {
                    self.keyword("BETWEEN")?;
                    let lo = self.parse_value()?;
                    self.keyword("AND")?;
                    let hi = self.parse_value()?;
                    predicates.push((lt, Predicate::new(&lc, CmpOp::Between, lo, Some(hi))));
                } else {
                    let op = match self.next()? {
                        Tok::Sym('=') => CmpOp::Eq,
                        Tok::Sym('<') => CmpOp::Lt,
                        Tok::Sym('>') => CmpOp::Gt,
                        Tok::Le => CmpOp::Le,
                        Tok::Ge => CmpOp::Ge,
                        other => {
                            return Err(CoreError::Parse(format!(
                                "expected comparison operator, got {other:?}"
                            )))
                        }
                    };
                    // A qualified name on the right side makes it a join.
                    let is_join = matches!(
                        (self.peek(), self.toks.get(self.pos + 1)),
                        (Some(Tok::Ident(_)), Some(Tok::Sym('.')))
                    );
                    if is_join {
                        if op != CmpOp::Eq {
                            return Err(CoreError::Parse("joins must be equi-joins".into()));
                        }
                        let rhs = self.qualified()?;
                        joins.push(((lt, lc), rhs));
                    } else {
                        let v = self.parse_value()?;
                        predicates.push((lt, Predicate::new(&lc, op, v, None)));
                    }
                }
                if self.peek_keyword("AND") {
                    self.keyword("AND")?;
                } else {
                    break;
                }
            }
        }
        if self.pos != self.toks.len() {
            return Err(CoreError::Parse(format!(
                "trailing tokens after statement: {:?}",
                &self.toks[self.pos..]
            )));
        }
        Ok(SelectStmt {
            projections,
            star,
            tables,
            predicates,
            joins,
            text: self.text.clone(),
        })
    }
}

/// Parse one SQL statement.
pub fn parse(input: &str) -> Result<Statement> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        text: input.trim().to_string(),
    };
    let head = p.ident()?;
    if head.eq_ignore_ascii_case("CREATE") {
        Ok(Statement::CreateTable(p.parse_create()?))
    } else if head.eq_ignore_ascii_case("SELECT") {
        Ok(Statement::Select(p.parse_select()?))
    } else {
        Err(CoreError::Parse(format!("unsupported statement '{head}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_create_table() {
        // §2.1 verbatim (types normalised).
        let stmt = parse(
            "CREATE TABLE Patients (id int, name char(200) HIDDEN, age int, \
             city char(100), bodymassindex float HIDDEN)",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else {
            panic!()
        };
        assert_eq!(ct.name, "Patients");
        assert_eq!(ct.columns.len(), 4, "explicit id elided");
        assert!(ct.columns[0].hidden);
        assert_eq!(ct.columns[0].ty, ColumnType::char(200));
        assert!(!ct.columns[1].hidden);
        assert!(ct.columns[3].hidden);
    }

    #[test]
    fn parses_references() {
        let stmt = parse(
            "CREATE TABLE Measurements (id int, patient_id int HIDDEN REFERENCES Patients, \
             time char(10))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else {
            panic!()
        };
        assert_eq!(ct.columns[0].references.as_deref(), Some("Patients"));
        assert!(ct.columns[0].hidden);
    }

    #[test]
    fn parses_the_paper_example_query() {
        let stmt = parse(
            "SELECT D.id, P.id, M.id FROM M, D, P \
             WHERE M.pid = P.id AND P.did = D.id \
             AND D.specialty = 'Psychiatrist' AND P.bodymassindex > 25",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.projections.len(), 3);
        assert_eq!(s.tables, vec!["M", "D", "P"]);
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(
            s.predicates[0].1,
            Predicate::eq("specialty", Value::Str("Psychiatrist".into()))
        );
        assert_eq!(
            s.predicates[1].1,
            Predicate::new("bodymassindex", CmpOp::Gt, Value::Int(25), None)
        );
    }

    #[test]
    fn parses_star_between_and_comparisons() {
        let stmt =
            parse("SELECT * FROM T0 WHERE T0.h1 BETWEEN 'a' AND 'b' AND T0.v1 <= 7").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(s.star);
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.predicates[0].1.op, CmpOp::Between);
        assert_eq!(s.predicates[1].1.op, CmpOp::Le);
    }

    #[test]
    fn string_escapes_and_floats() {
        let stmt = parse("SELECT T.a FROM T WHERE T.a = 'O''Brien' AND T.b > 2.5").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.predicates[0].1.value, Value::Str("O'Brien".into()));
        assert_eq!(s.predicates[1].1.value, Value::Float(2.5));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("DROP TABLE x").is_err());
        assert!(parse("SELECT a FROM t").is_err(), "unqualified column");
        assert!(parse("SELECT T.a FROM T WHERE T.a = 'x").is_err());
        assert!(parse("SELECT T.a FROM T WHERE T.a ! 3").is_err());
        assert!(parse("CREATE TABLE t (c unknownty)").is_err());
    }
}
