//! The leak auditor: checks the channel transcript against GhostDB's
//! security contract.
//!
//! The contract (paper §1–§2): an observer of the PC and the wire learns
//! (a) the query text and (b) which visible data flowed *into* the token —
//! both functions of the (public) query alone. Nothing else may leave the
//! token: no hidden values, no intermediate results, not even result
//! cardinalities beyond the single acknowledgement byte.
//!
//! The auditor replays the transcript the channel recorded (exactly what a
//! wire snooper captures) and flags any flow outside the contract.

use ghostdb_token::{Direction, TranscriptEntry};
use std::fmt;

/// A summarised wire flow.
#[derive(Debug, Clone)]
pub struct FlowSummary {
    /// Direction.
    pub direction: Direction,
    /// Transfer tag.
    pub tag: String,
    /// Bytes observed.
    pub bytes: u64,
}

/// Outcome of auditing a transcript.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// True when every flow satisfied the contract.
    pub ok: bool,
    /// Human-readable violations (empty when `ok`).
    pub violations: Vec<String>,
    /// Total bytes PC → token.
    pub inbound_bytes: u64,
    /// Total bytes token → PC.
    pub outbound_bytes: u64,
    /// All flows, in wire order.
    pub flows: Vec<FlowSummary>,
}

/// Audit a transcript.
pub fn audit_transcript(entries: &[TranscriptEntry]) -> AuditReport {
    let mut violations = Vec::new();
    let mut inbound = 0u64;
    let mut outbound = 0u64;
    let mut flows = Vec::with_capacity(entries.len());
    for e in entries {
        flows.push(FlowSummary {
            direction: e.direction,
            tag: e.tag.clone(),
            bytes: e.bytes,
        });
        match e.direction {
            Direction::ToSecure => {
                inbound += e.bytes;
                if e.tag != "query" && !e.tag.starts_with("Vis(") {
                    violations.push(format!(
                        "unexpected inbound flow '{}' ({} bytes)",
                        e.tag, e.bytes
                    ));
                }
            }
            Direction::ToUntrusted => {
                outbound += e.bytes;
                if e.tag != "query-ack" {
                    violations.push(format!(
                        "TOKEN LEAK: outbound flow '{}' ({} bytes)",
                        e.tag, e.bytes
                    ));
                } else if e.bytes > 8 {
                    violations.push(format!(
                        "query-ack suspiciously large ({} bytes): possible covert channel",
                        e.bytes
                    ));
                }
            }
        }
    }
    AuditReport {
        ok: violations.is_empty(),
        violations,
        inbound_bytes: inbound,
        outbound_bytes: outbound,
        flows,
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "leak audit: {} ({} flows, {} B in, {} B out)",
            if self.ok { "CLEAN" } else { "VIOLATIONS" },
            self.flows.len(),
            self.inbound_bytes,
            self.outbound_bytes
        )?;
        for flow in &self.flows {
            let arrow = match flow.direction {
                Direction::ToSecure => "PC → token",
                Direction::ToUntrusted => "token → PC",
            };
            writeln!(f, "  {arrow}  {:<40} {:>10} B", flow.tag, flow.bytes)?;
        }
        for v in &self.violations {
            writeln!(f, "  !! {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_token::Channel;

    #[test]
    fn clean_transcript_passes() {
        let mut ch = Channel::usb_full_speed();
        ch.send_to_secure("query", b"SELECT 1");
        ch.send_to_secure("Vis(T1).ids", &[0u8; 40]);
        ch.send_to_untrusted("query-ack", &[1]);
        let report = audit_transcript(ch.transcript());
        assert!(report.ok, "{report}");
        assert_eq!(report.inbound_bytes, 48);
        assert_eq!(report.outbound_bytes, 1);
    }

    #[test]
    fn outbound_data_is_flagged() {
        let mut ch = Channel::usb_full_speed();
        ch.send_to_untrusted("result-rows", &[0u8; 100]);
        let report = audit_transcript(ch.transcript());
        assert!(!report.ok);
        assert!(report.violations[0].contains("TOKEN LEAK"));
    }

    #[test]
    fn covert_ack_is_flagged() {
        let mut ch = Channel::usb_full_speed();
        ch.send_to_untrusted("query-ack", &[0u8; 64]);
        assert!(!audit_transcript(ch.transcript()).ok);
    }

    #[test]
    fn unknown_inbound_is_flagged() {
        let mut ch = Channel::usb_full_speed();
        ch.send_to_secure("firmware-update", &[0u8; 8]);
        assert!(!audit_transcript(ch.transcript()).ok);
    }
}
