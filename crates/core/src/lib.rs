//! # ghostdb-core — GhostDB: querying visible and hidden data without leaks
//!
//! Rust reproduction of *GhostDB* (Anciaux, Benzine, Bouganim, Pucheral,
//! Shasha — SIGMOD 2007): a database whose **sensitive columns live only on
//! a secure USB token** while public columns stay on an untrusted PC.
//! Standard SQL queries freely combine both sides; query processing is
//! arranged so that **no hidden data, and no intermediate result, ever
//! leaves the token** — an observer of the PC and the wire learns only the
//! query itself and which visible data entered the token.
//!
//! ```
//! use ghostdb_core::{GhostDb, GhostDbConfig};
//! use ghostdb_storage::Value;
//!
//! let mut db = GhostDb::new(GhostDbConfig::default());
//! db.execute(
//!     "CREATE TABLE Patients (id INT, name CHAR(20) HIDDEN, age INT, \
//!      bodymassindex FLOAT HIDDEN)",
//! )
//! .unwrap();
//! db.insert_rows(
//!     "Patients",
//!     vec![
//!         vec![Value::Str("Alice".into()), Value::Int(50), Value::Float(23.0)],
//!         vec![Value::Str("Bob".into()), Value::Int(50), Value::Float(31.5)],
//!     ],
//! )
//! .unwrap();
//! let sealed = db.finalize().unwrap(); // burn the key: the catalog is now immutable
//! let result = sealed
//!     .query("SELECT Patients.name FROM Patients WHERE Patients.age = 50 AND Patients.bodymassindex > 25")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 1); // only Bob — and his name never crossed the wire
//! assert!(sealed.audit().unwrap().ok);
//! ```
//!
//! The heavy lifting lives in the substrate crates: `ghostdb-flash`
//! (I/O-accurate NAND + FTL simulator), `ghostdb-token` (64 KB RAM arena +
//! channel), `ghostdb-storage` (columnar hidden store, B+-trees),
//! `ghostdb-index` (Subtree Key Tables, climbing indexes), `ghostdb-exec`
//! (the paper's operators and filtering strategies). This crate adds the
//! SQL surface, the database facade and the leak auditor.

pub mod audit;
pub mod db;
pub mod error;
pub mod sql;

pub use audit::{audit_transcript, AuditReport};
pub use db::{GhostDb, GhostDbConfig, QueryOptions, SealedGhostDb};
pub use error::CoreError;
pub use ghostdb_exec::project::ProjectAlgo;
pub use ghostdb_exec::strategy::VisStrategy as Strategy;
pub use ghostdb_exec::{
    BatchStats, ExecReport, GhostDbServer, HostOp, HostTrace, HostTraceEvent, QueryOutcome,
    ResultSet, ServeConfig, ServeError, Session, SpillPolicy,
};

/// Result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
