//! The GhostDB facade: DDL with `HIDDEN` annotations, bulk loading, SQL
//! queries, explain, and the leak audit — the full §1 mode of operation.

use crate::audit::{audit_transcript, AuditReport};
use crate::error::CoreError;
use crate::sql::{self, SelectStmt, Statement};
use crate::Result;
use ghostdb_exec::database::{ColumnLoad, Database, TableLoad};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::query::analyze;
use ghostdb_exec::strategy::{VisDecision, VisStrategy};
use ghostdb_exec::{
    optimizer, ExecCtx, ExecOptions, ExecReport, Executor, GhostDbServer, HostTrace, ResultSet,
    ServeConfig, SpillPolicy, SpjQuery,
};
use ghostdb_storage::schema::{Column, SchemaTree, TableDef, Visibility};
use ghostdb_storage::{Id, Value};
use ghostdb_token::TokenConfig;
use std::sync::{Arc, Mutex};

/// Configuration of a GhostDB instance.
#[derive(Debug, Clone)]
pub struct GhostDbConfig {
    /// The simulated smart USB key (§6.1 platform by default).
    pub token: TokenConfig,
    /// Capture channel payloads in the transcript (leak-audit demos).
    pub capture_channel: bool,
    /// Build climbing indexes on every hidden non-key column at load time
    /// (the paper's fully indexed model). Disable to index selectively via
    /// the lower-level API.
    pub index_hidden: bool,
}

impl Default for GhostDbConfig {
    fn default() -> Self {
        GhostDbConfig {
            token: TokenConfig::paper_platform(64 * 1024 * 1024),
            capture_channel: false,
            index_hidden: true,
        }
    }
}

/// Per-query options: one builder,
/// `QueryOptions::new().strategy(s).intra_threads(n).padded(true)`, that
/// wraps [`ExecOptions`] directly — the same knob is spelled the same way
/// at every layer (facade → session → executor), and invalid combinations
/// (0 worker threads) are rejected before any execution state is touched.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    exec: ExecOptions,
    per_table: Vec<(String, VisStrategy)>,
}

impl QueryOptions {
    /// Start a builder chain (automatic execution until overridden).
    pub fn new() -> Self {
        QueryOptions::default()
    }

    /// Force one filtering strategy for all visible selections.
    pub fn strategy(mut self, s: VisStrategy) -> Self {
        self.exec = self.exec.strategy(s);
        self
    }

    /// Pin the strategy of one table by name (Mixed plans).
    pub fn per_table(mut self, table: &str, s: VisStrategy) -> Self {
        self.per_table.push((table.to_string(), s));
        self
    }

    /// Projection algorithm override.
    pub fn project(mut self, algo: ProjectAlgo) -> Self {
        self.exec = self.exec.project(algo);
        self
    }

    /// Intra-query worker lanes (1 = serial; results and reports are
    /// bit-identical at any value).
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.exec = self.exec.intra_threads(threads);
        self
    }

    /// Reduction-phase spill policy.
    pub fn spill_policy(mut self, policy: SpillPolicy) -> Self {
        self.exec = self.exec.spill_policy(policy);
        self
    }

    /// Pad every visible shipment to a power-of-two row bucket (the volume
    /// side-channel countermeasure; see `SECURITY.md`). Results are
    /// unchanged; the padding bytes show up in the report's channel cost.
    pub fn padded(mut self, padded: bool) -> Self {
        self.exec = self.exec.padded(padded);
        self
    }

    /// Climbing-index read-ahead window in pages (`0` = serial). With
    /// `W ≥ 2` index scans issue up to `W` leaf pages as one vectored flash
    /// read; results, reports and the host-visible trace are bit-identical
    /// at any value — only the channel-overlap clock improves on multi-chip
    /// tokens.
    pub fn read_ahead(mut self, window: usize) -> Self {
        self.exec = self.exec.read_ahead(window);
        self
    }

    /// Reject invalid combinations (0 threads) without executing anything.
    pub fn validate(&self) -> Result<()> {
        Ok(self.exec.validate()?)
    }
}

/// A GhostDB instance: schema staging, the loaded database, and the two
/// devices.
pub struct GhostDb {
    config: GhostDbConfig,
    defs: Vec<TableDef>,
    staged: Vec<(String, Vec<Vec<Value>>)>,
    db: Option<Database>,
}

impl GhostDb {
    /// New, empty instance.
    pub fn new(config: GhostDbConfig) -> Self {
        GhostDb {
            config,
            defs: Vec::new(),
            staged: Vec::new(),
            db: None,
        }
    }

    /// Wrap an externally assembled database (e.g. from `ghostdb-datagen`).
    pub fn from_database(db: Database) -> Self {
        GhostDb {
            config: GhostDbConfig::default(),
            defs: Vec::new(),
            staged: Vec::new(),
            db: Some(db),
        }
    }

    /// Execute a DDL statement (`CREATE TABLE … HIDDEN …`).
    pub fn execute(&mut self, sql_text: &str) -> Result<()> {
        match sql::parse(sql_text)? {
            Statement::CreateTable(ct) => {
                if self.db.is_some() {
                    return Err(CoreError::Semantic(
                        "schema is frozen once data is loaded onto the token".into(),
                    ));
                }
                let mut def = TableDef::new(&ct.name);
                for c in ct.columns {
                    match c.references {
                        Some(target) => {
                            if !c.hidden {
                                return Err(CoreError::Semantic(format!(
                                    "foreign key {}.{} must be HIDDEN (the design guideline \
                                     of §2.1: keys linking tuples are the sensitive part)",
                                    ct.name, c.name
                                )));
                            }
                            def = def.with_fk(&c.name, &target);
                        }
                        None => {
                            let col = if c.hidden {
                                Column::hidden(&c.name, c.ty)
                            } else {
                                Column::visible(&c.name, c.ty)
                            };
                            def = def.with_column(col);
                        }
                    }
                }
                self.defs.push(def);
                Ok(())
            }
            Statement::Select(_) => Err(CoreError::Semantic(
                "use query() for SELECT statements".into(),
            )),
        }
    }

    /// Stage rows for a table. Values follow the declared column order
    /// (excluding the implicit `id`); foreign-key cells are integers.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        if self.db.is_some() {
            return Err(CoreError::Semantic(
                "data is frozen once loaded onto the token".into(),
            ));
        }
        let def = self
            .defs
            .iter()
            .find(|d| d.name == table)
            .ok_or_else(|| CoreError::Semantic(format!("unknown table {table}")))?;
        for row in &rows {
            if row.len() != def.columns.len() {
                return Err(CoreError::Semantic(format!(
                    "{} expects {} values per row, got {}",
                    table,
                    def.columns.len(),
                    row.len()
                )));
            }
        }
        match self.staged.iter_mut().find(|(n, _)| n == table) {
            Some((_, slot)) => slot.extend(rows),
            None => self.staged.push((table.to_string(), rows)),
        }
        Ok(())
    }

    /// Burn the key: vertically partition every table, download the hidden
    /// partition + indexes onto the token, hand the visible partition to
    /// the PC — and seal the instance, returning a read-only serving
    /// handle whose query methods take `&self` (see [`SealedGhostDb`]).
    /// Idempotent; dropping the handle leaves the instance finalized, so
    /// `finalize()` can be called again for a fresh handle.
    pub fn finalize(&mut self) -> Result<SealedGhostDb<'_>> {
        self.finalize_inner()?;
        Ok(SealedGhostDb {
            inner: Mutex::new(self),
        })
    }

    /// Finalize and hand the assembled database to an in-process
    /// [`GhostDbServer`] (admission queue, sessions, cross-query batch
    /// scheduler — see `ghostdb_exec::serve`). Consumes the facade: the
    /// server owns the one immutable catalog from here on.
    pub fn into_server(mut self, cfg: ServeConfig) -> Result<GhostDbServer> {
        self.finalize_inner()?;
        let db = self.db.take().expect("finalized");
        GhostDbServer::new(db, cfg).map_err(|e| CoreError::Semantic(e.to_string()))
    }

    fn finalize_inner(&mut self) -> Result<()> {
        if self.db.is_some() {
            return Ok(());
        }
        let schema = SchemaTree::new(self.defs.clone())?;
        let mut loads = Vec::new();
        for def in &self.defs {
            let rows: Arc<Vec<Vec<Value>>> = Arc::new(
                self.staged
                    .iter()
                    .find(|(n, _)| *n == def.name)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_default(),
            );
            let n = rows.len() as u64;
            let mut fks = Vec::new();
            let mut columns = Vec::new();
            for (ci, col) in def.columns.iter().enumerate() {
                if def.is_fk(&col.name) {
                    let arr: Vec<Id> = rows
                        .iter()
                        .map(|r| match &r[ci] {
                            Value::Int(v) => Ok(*v as Id),
                            other => Err(CoreError::Semantic(format!(
                                "foreign key {}.{} must be an integer, got {other:?}",
                                def.name, col.name
                            ))),
                        })
                        .collect::<Result<_>>()?;
                    fks.push((col.name.clone(), arr));
                } else {
                    let rows = rows.clone();
                    let ci_copy = ci;
                    columns.push(ColumnLoad {
                        name: col.name.clone(),
                        gen: Box::new(move |r| rows[r as usize][ci_copy].clone()),
                        index: self.config.index_hidden && col.visibility == Visibility::Hidden,
                        exact: None, // verified by the loader
                    });
                }
            }
            loads.push(TableLoad {
                table: def.name.clone(),
                rows: n,
                fks,
                columns,
            });
        }
        let mut config = self.config.token.clone();
        config.capture_channel = self.config.capture_channel;
        self.db = Some(Database::assemble(schema, &config, loads)?);
        Ok(())
    }

    fn translate(&self, stmt: &SelectStmt) -> Result<SpjQuery> {
        let db = self.db.as_ref().expect("finalized");
        let schema = &db.schema;
        let mut q = SpjQuery::new();
        q.text = stmt.text.clone();
        for name in &stmt.tables {
            q = q.table(schema.table_id(name)?);
        }
        // Validate join conditions against the schema's fk edges.
        for ((lt, lc), (rt, rc)) in &stmt.joins {
            let valid = |ft: &str, fc: &str, pt: &str, pc: &str| -> Result<bool> {
                let f = schema.table_id(ft)?;
                let def = schema.def(f);
                Ok(pc == "id"
                    && def
                        .foreign_keys
                        .iter()
                        .any(|fk| fk.column == fc && fk.references == pt))
            };
            if !(valid(lt, lc, rt, rc)? || valid(rt, rc, lt, lc)?) {
                return Err(CoreError::Semantic(format!(
                    "join {lt}.{lc} = {rt}.{rc} does not follow a declared key/foreign-key edge"
                )));
            }
        }
        for (tname, pred) in &stmt.predicates {
            q = q.pred(schema.table_id(tname)?, pred.clone());
        }
        if stmt.star {
            for tname in &stmt.tables {
                let t = schema.table_id(tname)?;
                q = q.project(t, "id");
                for col in &schema.def(t).columns.clone() {
                    if !schema.def(t).is_fk(&col.name) {
                        q = q.project(t, &col.name);
                    }
                }
            }
        } else {
            for (tname, col) in &stmt.projections {
                q = q.project(schema.table_id(tname)?, col);
            }
        }
        Ok(q)
    }

    /// Resolve facade options into executor options: table names become
    /// pinned [`VisDecision`]s, everything else passes through the wrapped
    /// [`ExecOptions`] untouched, and the build is validated before any
    /// execution state exists.
    fn exec_options(&self, opts: &QueryOptions) -> Result<ExecOptions> {
        let db = self.db.as_ref().expect("finalized");
        let mut exec = opts.exec.clone();
        for (tname, s) in &opts.per_table {
            exec = exec.pin(VisDecision {
                table: db.schema.table_id(tname)?,
                strategy: *s,
            });
        }
        exec.validate()?;
        Ok(exec)
    }

    fn query_with_inner(
        &mut self,
        sql_text: &str,
        opts: &QueryOptions,
    ) -> Result<(ResultSet, ExecReport)> {
        self.finalize_inner()?;
        let Statement::Select(stmt) = sql::parse(sql_text)? else {
            return Err(CoreError::Semantic("expected a SELECT statement".into()));
        };
        let q = self.translate(&stmt)?;
        let exec_opts = self.exec_options(opts)?;
        let db = self.db.as_mut().expect("finalized");
        Ok(Executor::run(db, &q, &exec_opts)?)
    }

    fn explain_inner(&mut self, sql_text: &str) -> Result<String> {
        self.finalize_inner()?;
        let Statement::Select(stmt) = sql::parse(sql_text)? else {
            return Err(CoreError::Semantic("expected a SELECT statement".into()));
        };
        let q = self.translate(&stmt)?;
        let db = self.db.as_mut().expect("finalized");
        let a = analyze(&db.schema, &q)?;
        let ctx = ExecCtx::new(db);
        let decisions = optimizer::decide(&ctx, &a)?;
        let mut out = String::new();
        out.push_str(&format!("query: {}\n", q.text));
        for sel in &a.hid_sels {
            out.push_str(&format!(
                "  hidden selection on {}.{} → climbing index{}\n",
                ctx.cat.schema.def(sel.table).name,
                sel.pred.column,
                if sel.exact {
                    ""
                } else {
                    " (+ exact re-check at projection)"
                }
            ));
        }
        for d in &decisions {
            out.push_str(&format!(
                "  visible selection on {} → {}\n",
                ctx.cat.schema.def(d.table).name,
                d.strategy.name()
            ));
        }
        if a.hid_sels.is_empty() && decisions.is_empty() {
            out.push_str("  no selections: full root scan via SKT\n");
        }
        out.push_str("  projection: Figure 5 Project algorithm (Bloom-filtered σVH + MJoin)\n");
        Ok(out)
    }

    /// Audit the channel transcript of the last query (or of everything
    /// since the channel was last reset).
    pub fn audit(&self) -> Result<AuditReport> {
        let db = self
            .db
            .as_ref()
            .ok_or_else(|| CoreError::Semantic("no data loaded".into()))?;
        Ok(audit_transcript(db.token.channel.transcript()))
    }

    /// The host-observable trace of the last query: every store request
    /// the engine made of the untrusted PC, with shapes and post-padding
    /// wire volumes. The leakage suite asserts its invariants; see
    /// `SECURITY.md`.
    pub fn host_trace(&self) -> Result<HostTrace> {
        let db = self
            .db
            .as_ref()
            .ok_or_else(|| CoreError::Semantic("no data loaded".into()))?;
        Ok(db.untrusted.trace())
    }

    /// Access the assembled database (benchmarks, tests).
    pub fn database_mut(&mut self) -> Option<&mut Database> {
        self.db.as_mut()
    }

    /// Access the assembled database immutably.
    pub fn database(&self) -> Option<&Database> {
        self.db.as_ref()
    }
}

/// A sealed, read-only GhostDB handle, returned by [`GhostDb::finalize`].
///
/// Sealing is the facade-level contract that the catalog is immutable:
/// every serving method here takes `&self`, so one handle can be shared
/// across threads (`SealedGhostDb: Sync`) and queried without exclusive
/// access — the same split the in-process server builds on
/// ([`GhostDb::into_server`]). Internally the handle serializes on a
/// mutex because the simulated token is a single-core device; the
/// *interface* is read-only, the device is time-shared.
pub struct SealedGhostDb<'a> {
    inner: Mutex<&'a mut GhostDb>,
}

impl<'a> SealedGhostDb<'a> {
    fn lock(&self) -> std::sync::MutexGuard<'_, &'a mut GhostDb> {
        self.inner.lock().expect("sealed facade")
    }

    /// Run a SELECT with default (automatic) options.
    pub fn query(&self, sql_text: &str) -> Result<ResultSet> {
        Ok(self.query_with(sql_text, &QueryOptions::default())?.0)
    }

    /// Run a SELECT with explicit options; returns the execution report
    /// alongside the rows.
    pub fn query_with(
        &self,
        sql_text: &str,
        opts: &QueryOptions,
    ) -> Result<(ResultSet, ExecReport)> {
        self.lock().query_with_inner(sql_text, opts)
    }

    /// Describe the plan the optimizer would choose, without executing.
    pub fn explain(&self, sql_text: &str) -> Result<String> {
        self.lock().explain_inner(sql_text)
    }

    /// Audit the channel transcript of the last query.
    pub fn audit(&self) -> Result<AuditReport> {
        self.lock().audit()
    }

    /// The host-observable trace of the last query (see [`GhostDb::host_trace`]).
    pub fn host_trace(&self) -> Result<HostTrace> {
        self.lock().host_trace()
    }
}

// One sealed handle must be shareable across client threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SealedGhostDb<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn patients_db() -> GhostDb {
        let mut db = GhostDb::new(GhostDbConfig {
            capture_channel: true,
            ..Default::default()
        });
        db.execute("CREATE TABLE Doctors (id INT, specialty CHAR(20), name CHAR(20) HIDDEN)")
            .unwrap();
        db.execute(
            "CREATE TABLE Patients (id INT, doctor_id INT HIDDEN REFERENCES Doctors, \
             age INT(2), name CHAR(20) HIDDEN, bodymassindex FLOAT HIDDEN)",
        )
        .unwrap();
        db.insert_rows(
            "Doctors",
            vec![
                vec![
                    Value::Str("Psychiatrist".into()),
                    Value::Str("Freud".into()),
                ],
                vec![
                    Value::Str("Cardiologist".into()),
                    Value::Str("Harvey".into()),
                ],
            ],
        )
        .unwrap();
        db.insert_rows(
            "Patients",
            (0..20)
                .map(|i| {
                    vec![
                        Value::Int(i % 2),
                        Value::Int(30 + i % 40),
                        Value::Str(format!("patient{i:02}")),
                        Value::Float(20.0 + (i % 15) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn ddl_load_query_roundtrip() {
        let mut db = patients_db();
        let sealed = db.finalize().unwrap();
        let rs = sealed
            .query(
                "SELECT Patients.id, Patients.name, Doctors.specialty FROM Patients, Doctors \
                 WHERE Patients.doctor_id = Doctors.id AND Patients.bodymassindex > 25 \
                 AND Doctors.specialty = 'Psychiatrist'",
            )
            .unwrap();
        // Patients with doctor 0 (even ids) and bmi > 25 (i % 15 > 5).
        let expect: Vec<i64> = (0..20).filter(|i| i % 2 == 0 && (i % 15) > 5).collect();
        assert_eq!(rs.rows.len(), expect.len());
        for (row, want_id) in rs.rows.iter().zip(expect) {
            assert_eq!(row[0], Value::Int(want_id));
            assert_eq!(row[2], Value::Str("Psychiatrist".into()));
        }
        assert!(sealed.audit().unwrap().ok);
    }

    #[test]
    fn star_projection() {
        let mut db = patients_db();
        let sealed = db.finalize().unwrap();
        let rs = sealed
            .query("SELECT * FROM Doctors WHERE Doctors.specialty = 'Cardiologist'")
            .unwrap();
        assert_eq!(rs.rows.len(), 10, "one row per root (Patients) tuple");
        assert!(rs.columns.contains(&"Doctors.name".to_string()));
    }

    #[test]
    fn invalid_join_rejected() {
        let mut db = patients_db();
        let err = db
            .finalize()
            .unwrap()
            .query("SELECT Patients.id FROM Patients, Doctors WHERE Patients.age = Doctors.id")
            .unwrap_err();
        assert!(matches!(err, CoreError::Semantic(_)));
    }

    #[test]
    fn visible_fk_rejected() {
        let mut db = GhostDb::new(GhostDbConfig::default());
        db.execute("CREATE TABLE A (id INT, x CHAR(4))").unwrap();
        let err = db
            .execute("CREATE TABLE B (id INT, a_id INT REFERENCES A)")
            .unwrap_err();
        assert!(matches!(err, CoreError::Semantic(_)));
    }

    #[test]
    fn explain_names_strategies() {
        let mut db = patients_db();
        let plan = db
            .finalize()
            .unwrap()
            .explain(
                "SELECT Patients.id FROM Patients, Doctors \
                 WHERE Doctors.specialty = 'Psychiatrist' AND Patients.bodymassindex > 30",
            )
            .unwrap();
        assert!(plan.contains("hidden selection on Patients.bodymassindex"));
        assert!(plan.contains("visible selection on Doctors"));
    }

    #[test]
    fn schema_freezes_after_load() {
        let mut db = patients_db();
        db.finalize().unwrap();
        assert!(db.execute("CREATE TABLE X (id INT, a INT)").is_err());
        assert!(db.insert_rows("Doctors", vec![]).is_err());
    }

    #[test]
    fn non_injective_hidden_keys_get_rechecked() {
        // Doctor names are long strings with a shared prefix: order keys
        // collide, forcing the exact re-check path — results must still be
        // exact.
        let mut db = GhostDb::new(GhostDbConfig::default());
        db.execute("CREATE TABLE D (id INT, name CHAR(30) HIDDEN)")
            .unwrap();
        db.execute("CREATE TABLE M (id INT, d_id INT HIDDEN REFERENCES D, v CHAR(8))")
            .unwrap();
        db.insert_rows(
            "D",
            (0..10)
                .map(|i| vec![Value::Str(format!("Doctor Longname {i}"))])
                .collect(),
        )
        .unwrap();
        db.insert_rows(
            "M",
            (0..50)
                .map(|i| vec![Value::Int(i % 10), Value::Str(format!("{i:04}"))])
                .collect(),
        )
        .unwrap();
        let rs = db
            .finalize()
            .unwrap()
            .query("SELECT M.id FROM M, D WHERE M.d_id = D.id AND D.name = 'Doctor Longname 3'")
            .unwrap();
        let expect: Vec<i64> = (0..50).filter(|i| i % 10 == 3).collect();
        assert_eq!(
            rs.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            expect.into_iter().map(Value::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_threads_rejected_at_build_time() {
        let opts = QueryOptions::new().intra_threads(0);
        assert!(opts.validate().is_err(), "0-thread builds are invalid");
        let mut db = patients_db();
        let sealed = db.finalize().unwrap();
        let err = sealed
            .query_with("SELECT Patients.id FROM Patients", &opts)
            .unwrap_err();
        assert!(matches!(err, CoreError::Exec(_)));
        // The rejection happened before execution: nothing was observed.
        assert!(sealed.host_trace().unwrap().is_empty());
    }

    #[test]
    fn builder_chain_threads_through_to_execution() {
        let mut db = patients_db();
        let sealed = db.finalize().unwrap();
        let sql = "SELECT Patients.id FROM Patients, Doctors \
                   WHERE Patients.doctor_id = Doctors.id \
                   AND Doctors.specialty = 'Psychiatrist'";
        let (base, _) = sealed.query_with(sql, &QueryOptions::new()).unwrap();
        for s in [VisStrategy::Pre, VisStrategy::Post] {
            let opts = QueryOptions::new()
                .strategy(s)
                .intra_threads(2)
                .padded(true);
            let (rs, report) = sealed.query_with(sql, &opts).unwrap();
            assert_eq!(rs, base, "knobs never change results");
            assert!(report.result_rows > 0);
        }
        let pinned = QueryOptions::new().per_table("Doctors", VisStrategy::Post);
        let (rs, _) = sealed.query_with(sql, &pinned).unwrap();
        assert_eq!(rs, base);
    }

    #[test]
    fn into_server_serves_sessions() {
        use ghostdb_exec::{ExecOptions, SpjQuery};
        let db = patients_db();
        let server = db.into_server(ServeConfig::new().queue_depth(4)).unwrap();
        let session = server.session();
        // The facade's SQL layer is consumed by into_server; speak the
        // executor's query algebra directly, as `ghostdb-datagen` users do.
        let mut q = SpjQuery::new().project(0, "id");
        q.text = "serve-smoke".into();
        let out = session.query(&q, &ExecOptions::auto()).unwrap();
        assert_eq!(out.result.rows.len(), 20, "one row per root tuple");
        assert!(!out.transcript.is_empty());
    }
}
