//! The GhostDB facade: DDL with `HIDDEN` annotations, bulk loading, SQL
//! queries, explain, and the leak audit — the full §1 mode of operation.

use crate::audit::{audit_transcript, AuditReport};
use crate::error::CoreError;
use crate::sql::{self, SelectStmt, Statement};
use crate::Result;
use ghostdb_exec::database::{ColumnLoad, Database, TableLoad};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::query::analyze;
use ghostdb_exec::strategy::{VisDecision, VisStrategy};
use ghostdb_exec::{
    optimizer, ExecCtx, ExecOptions, ExecReport, Executor, HostTrace, ResultSet, SpjQuery,
};
use ghostdb_storage::schema::{Column, SchemaTree, TableDef, Visibility};
use ghostdb_storage::{Id, Value};
use ghostdb_token::TokenConfig;
use std::sync::Arc;

/// Configuration of a GhostDB instance.
#[derive(Debug, Clone)]
pub struct GhostDbConfig {
    /// The simulated smart USB key (§6.1 platform by default).
    pub token: TokenConfig,
    /// Capture channel payloads in the transcript (leak-audit demos).
    pub capture_channel: bool,
    /// Build climbing indexes on every hidden non-key column at load time
    /// (the paper's fully indexed model). Disable to index selectively via
    /// the lower-level API.
    pub index_hidden: bool,
}

impl Default for GhostDbConfig {
    fn default() -> Self {
        GhostDbConfig {
            token: TokenConfig::paper_platform(64 * 1024 * 1024),
            capture_channel: false,
            index_hidden: true,
        }
    }
}

/// Per-query options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Force one filtering strategy for all visible selections.
    pub strategy: Option<VisStrategy>,
    /// Pin strategies per table (Mixed plans).
    pub per_table: Vec<(String, VisStrategy)>,
    /// Projection algorithm.
    pub project: Option<ProjectAlgo>,
    /// Intra-query worker lanes (`None` = serial; results and reports are
    /// bit-identical at any value).
    pub intra_threads: Option<usize>,
    /// Pad every visible shipment to a power-of-two row bucket (the volume
    /// side-channel countermeasure; see `SECURITY.md`). Results are
    /// unchanged; the padding bytes show up in the report's channel cost.
    pub padded: bool,
}

/// A GhostDB instance: schema staging, the loaded database, and the two
/// devices.
pub struct GhostDb {
    config: GhostDbConfig,
    defs: Vec<TableDef>,
    staged: Vec<(String, Vec<Vec<Value>>)>,
    db: Option<Database>,
}

impl GhostDb {
    /// New, empty instance.
    pub fn new(config: GhostDbConfig) -> Self {
        GhostDb {
            config,
            defs: Vec::new(),
            staged: Vec::new(),
            db: None,
        }
    }

    /// Wrap an externally assembled database (e.g. from `ghostdb-datagen`).
    pub fn from_database(db: Database) -> Self {
        GhostDb {
            config: GhostDbConfig::default(),
            defs: Vec::new(),
            staged: Vec::new(),
            db: Some(db),
        }
    }

    /// Execute a DDL statement (`CREATE TABLE … HIDDEN …`).
    pub fn execute(&mut self, sql_text: &str) -> Result<()> {
        match sql::parse(sql_text)? {
            Statement::CreateTable(ct) => {
                if self.db.is_some() {
                    return Err(CoreError::Semantic(
                        "schema is frozen once data is loaded onto the token".into(),
                    ));
                }
                let mut def = TableDef::new(&ct.name);
                for c in ct.columns {
                    match c.references {
                        Some(target) => {
                            if !c.hidden {
                                return Err(CoreError::Semantic(format!(
                                    "foreign key {}.{} must be HIDDEN (the design guideline \
                                     of §2.1: keys linking tuples are the sensitive part)",
                                    ct.name, c.name
                                )));
                            }
                            def = def.with_fk(&c.name, &target);
                        }
                        None => {
                            let col = if c.hidden {
                                Column::hidden(&c.name, c.ty)
                            } else {
                                Column::visible(&c.name, c.ty)
                            };
                            def = def.with_column(col);
                        }
                    }
                }
                self.defs.push(def);
                Ok(())
            }
            Statement::Select(_) => Err(CoreError::Semantic(
                "use query() for SELECT statements".into(),
            )),
        }
    }

    /// Stage rows for a table. Values follow the declared column order
    /// (excluding the implicit `id`); foreign-key cells are integers.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        if self.db.is_some() {
            return Err(CoreError::Semantic(
                "data is frozen once loaded onto the token".into(),
            ));
        }
        let def = self
            .defs
            .iter()
            .find(|d| d.name == table)
            .ok_or_else(|| CoreError::Semantic(format!("unknown table {table}")))?;
        for row in &rows {
            if row.len() != def.columns.len() {
                return Err(CoreError::Semantic(format!(
                    "{} expects {} values per row, got {}",
                    table,
                    def.columns.len(),
                    row.len()
                )));
            }
        }
        match self.staged.iter_mut().find(|(n, _)| n == table) {
            Some((_, slot)) => slot.extend(rows),
            None => self.staged.push((table.to_string(), rows)),
        }
        Ok(())
    }

    /// Burn the key: vertically partition every table, download the hidden
    /// partition + indexes onto the token, hand the visible partition to
    /// the PC. Implicit on the first query.
    pub fn finalize(&mut self) -> Result<()> {
        if self.db.is_some() {
            return Ok(());
        }
        let schema = SchemaTree::new(self.defs.clone())?;
        let mut loads = Vec::new();
        for def in &self.defs {
            let rows: Arc<Vec<Vec<Value>>> = Arc::new(
                self.staged
                    .iter()
                    .find(|(n, _)| *n == def.name)
                    .map(|(_, r)| r.clone())
                    .unwrap_or_default(),
            );
            let n = rows.len() as u64;
            let mut fks = Vec::new();
            let mut columns = Vec::new();
            for (ci, col) in def.columns.iter().enumerate() {
                if def.is_fk(&col.name) {
                    let arr: Vec<Id> = rows
                        .iter()
                        .map(|r| match &r[ci] {
                            Value::Int(v) => Ok(*v as Id),
                            other => Err(CoreError::Semantic(format!(
                                "foreign key {}.{} must be an integer, got {other:?}",
                                def.name, col.name
                            ))),
                        })
                        .collect::<Result<_>>()?;
                    fks.push((col.name.clone(), arr));
                } else {
                    let rows = rows.clone();
                    let ci_copy = ci;
                    columns.push(ColumnLoad {
                        name: col.name.clone(),
                        gen: Box::new(move |r| rows[r as usize][ci_copy].clone()),
                        index: self.config.index_hidden && col.visibility == Visibility::Hidden,
                        exact: None, // verified by the loader
                    });
                }
            }
            loads.push(TableLoad {
                table: def.name.clone(),
                rows: n,
                fks,
                columns,
            });
        }
        let mut config = self.config.token.clone();
        config.capture_channel = self.config.capture_channel;
        self.db = Some(Database::assemble(schema, &config, loads)?);
        Ok(())
    }

    fn translate(&self, stmt: &SelectStmt) -> Result<SpjQuery> {
        let db = self.db.as_ref().expect("finalized");
        let schema = &db.schema;
        let mut q = SpjQuery::new();
        q.text = stmt.text.clone();
        for name in &stmt.tables {
            q = q.table(schema.table_id(name)?);
        }
        // Validate join conditions against the schema's fk edges.
        for ((lt, lc), (rt, rc)) in &stmt.joins {
            let valid = |ft: &str, fc: &str, pt: &str, pc: &str| -> Result<bool> {
                let f = schema.table_id(ft)?;
                let def = schema.def(f);
                Ok(pc == "id"
                    && def
                        .foreign_keys
                        .iter()
                        .any(|fk| fk.column == fc && fk.references == pt))
            };
            if !(valid(lt, lc, rt, rc)? || valid(rt, rc, lt, lc)?) {
                return Err(CoreError::Semantic(format!(
                    "join {lt}.{lc} = {rt}.{rc} does not follow a declared key/foreign-key edge"
                )));
            }
        }
        for (tname, pred) in &stmt.predicates {
            q = q.pred(schema.table_id(tname)?, pred.clone());
        }
        if stmt.star {
            for tname in &stmt.tables {
                let t = schema.table_id(tname)?;
                q = q.project(t, "id");
                for col in &schema.def(t).columns.clone() {
                    if !schema.def(t).is_fk(&col.name) {
                        q = q.project(t, &col.name);
                    }
                }
            }
        } else {
            for (tname, col) in &stmt.projections {
                q = q.project(schema.table_id(tname)?, col);
            }
        }
        Ok(q)
    }

    fn exec_options(&self, opts: &QueryOptions) -> Result<ExecOptions> {
        let db = self.db.as_ref().expect("finalized");
        let mut strategies = Vec::new();
        for (tname, s) in &opts.per_table {
            strategies.push(VisDecision {
                table: db.schema.table_id(tname)?,
                strategy: *s,
            });
        }
        Ok(ExecOptions {
            strategies,
            forced_strategy: opts.strategy,
            project: opts.project,
            intra_threads: opts.intra_threads.unwrap_or(1),
            padded: opts.padded,
            ..Default::default()
        })
    }

    /// Run a SELECT with default (automatic) options.
    pub fn query(&mut self, sql_text: &str) -> Result<ResultSet> {
        Ok(self.query_with(sql_text, &QueryOptions::default())?.0)
    }

    /// Run a SELECT with explicit options; returns the execution report
    /// alongside the rows.
    pub fn query_with(
        &mut self,
        sql_text: &str,
        opts: &QueryOptions,
    ) -> Result<(ResultSet, ExecReport)> {
        self.finalize()?;
        let Statement::Select(stmt) = sql::parse(sql_text)? else {
            return Err(CoreError::Semantic("expected a SELECT statement".into()));
        };
        let q = self.translate(&stmt)?;
        let exec_opts = self.exec_options(opts)?;
        let db = self.db.as_mut().expect("finalized");
        Ok(Executor::run(db, &q, &exec_opts)?)
    }

    /// Describe the plan the optimizer would choose, without executing.
    pub fn explain(&mut self, sql_text: &str) -> Result<String> {
        self.finalize()?;
        let Statement::Select(stmt) = sql::parse(sql_text)? else {
            return Err(CoreError::Semantic("expected a SELECT statement".into()));
        };
        let q = self.translate(&stmt)?;
        let db = self.db.as_mut().expect("finalized");
        let a = analyze(&db.schema, &q)?;
        let ctx = ExecCtx::new(db);
        let decisions = optimizer::decide(&ctx, &a)?;
        let mut out = String::new();
        out.push_str(&format!("query: {}\n", q.text));
        for sel in &a.hid_sels {
            out.push_str(&format!(
                "  hidden selection on {}.{} → climbing index{}\n",
                ctx.cat.schema.def(sel.table).name,
                sel.pred.column,
                if sel.exact {
                    ""
                } else {
                    " (+ exact re-check at projection)"
                }
            ));
        }
        for d in &decisions {
            out.push_str(&format!(
                "  visible selection on {} → {}\n",
                ctx.cat.schema.def(d.table).name,
                d.strategy.name()
            ));
        }
        if a.hid_sels.is_empty() && decisions.is_empty() {
            out.push_str("  no selections: full root scan via SKT\n");
        }
        out.push_str("  projection: Figure 5 Project algorithm (Bloom-filtered σVH + MJoin)\n");
        Ok(out)
    }

    /// Audit the channel transcript of the last query (or of everything
    /// since the channel was last reset).
    pub fn audit(&self) -> Result<AuditReport> {
        let db = self
            .db
            .as_ref()
            .ok_or_else(|| CoreError::Semantic("no data loaded".into()))?;
        Ok(audit_transcript(db.token.channel.transcript()))
    }

    /// The host-observable trace of the last query: every store request
    /// the engine made of the untrusted PC, with shapes and post-padding
    /// wire volumes. The leakage suite asserts its invariants; see
    /// `SECURITY.md`.
    pub fn host_trace(&self) -> Result<HostTrace> {
        let db = self
            .db
            .as_ref()
            .ok_or_else(|| CoreError::Semantic("no data loaded".into()))?;
        Ok(db.untrusted.trace())
    }

    /// Access the assembled database (benchmarks, tests).
    pub fn database_mut(&mut self) -> Option<&mut Database> {
        self.db.as_mut()
    }

    /// Access the assembled database immutably.
    pub fn database(&self) -> Option<&Database> {
        self.db.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patients_db() -> GhostDb {
        let mut db = GhostDb::new(GhostDbConfig {
            capture_channel: true,
            ..Default::default()
        });
        db.execute("CREATE TABLE Doctors (id INT, specialty CHAR(20), name CHAR(20) HIDDEN)")
            .unwrap();
        db.execute(
            "CREATE TABLE Patients (id INT, doctor_id INT HIDDEN REFERENCES Doctors, \
             age INT(2), name CHAR(20) HIDDEN, bodymassindex FLOAT HIDDEN)",
        )
        .unwrap();
        db.insert_rows(
            "Doctors",
            vec![
                vec![
                    Value::Str("Psychiatrist".into()),
                    Value::Str("Freud".into()),
                ],
                vec![
                    Value::Str("Cardiologist".into()),
                    Value::Str("Harvey".into()),
                ],
            ],
        )
        .unwrap();
        db.insert_rows(
            "Patients",
            (0..20)
                .map(|i| {
                    vec![
                        Value::Int(i % 2),
                        Value::Int(30 + i % 40),
                        Value::Str(format!("patient{i:02}")),
                        Value::Float(20.0 + (i % 15) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn ddl_load_query_roundtrip() {
        let mut db = patients_db();
        let rs = db
            .query(
                "SELECT Patients.id, Patients.name, Doctors.specialty FROM Patients, Doctors \
                 WHERE Patients.doctor_id = Doctors.id AND Patients.bodymassindex > 25 \
                 AND Doctors.specialty = 'Psychiatrist'",
            )
            .unwrap();
        // Patients with doctor 0 (even ids) and bmi > 25 (i % 15 > 5).
        let expect: Vec<i64> = (0..20).filter(|i| i % 2 == 0 && (i % 15) > 5).collect();
        assert_eq!(rs.rows.len(), expect.len());
        for (row, want_id) in rs.rows.iter().zip(expect) {
            assert_eq!(row[0], Value::Int(want_id));
            assert_eq!(row[2], Value::Str("Psychiatrist".into()));
        }
        assert!(db.audit().unwrap().ok);
    }

    #[test]
    fn star_projection() {
        let mut db = patients_db();
        let rs = db
            .query("SELECT * FROM Doctors WHERE Doctors.specialty = 'Cardiologist'")
            .unwrap();
        assert_eq!(rs.rows.len(), 10, "one row per root (Patients) tuple");
        assert!(rs.columns.contains(&"Doctors.name".to_string()));
    }

    #[test]
    fn invalid_join_rejected() {
        let mut db = patients_db();
        let err = db
            .query("SELECT Patients.id FROM Patients, Doctors WHERE Patients.age = Doctors.id")
            .unwrap_err();
        assert!(matches!(err, CoreError::Semantic(_)));
    }

    #[test]
    fn visible_fk_rejected() {
        let mut db = GhostDb::new(GhostDbConfig::default());
        db.execute("CREATE TABLE A (id INT, x CHAR(4))").unwrap();
        let err = db
            .execute("CREATE TABLE B (id INT, a_id INT REFERENCES A)")
            .unwrap_err();
        assert!(matches!(err, CoreError::Semantic(_)));
    }

    #[test]
    fn explain_names_strategies() {
        let mut db = patients_db();
        let plan = db
            .explain(
                "SELECT Patients.id FROM Patients, Doctors \
                 WHERE Doctors.specialty = 'Psychiatrist' AND Patients.bodymassindex > 30",
            )
            .unwrap();
        assert!(plan.contains("hidden selection on Patients.bodymassindex"));
        assert!(plan.contains("visible selection on Doctors"));
    }

    #[test]
    fn schema_freezes_after_load() {
        let mut db = patients_db();
        db.finalize().unwrap();
        assert!(db.execute("CREATE TABLE X (id INT, a INT)").is_err());
        assert!(db.insert_rows("Doctors", vec![]).is_err());
    }

    #[test]
    fn non_injective_hidden_keys_get_rechecked() {
        // Doctor names are long strings with a shared prefix: order keys
        // collide, forcing the exact re-check path — results must still be
        // exact.
        let mut db = GhostDb::new(GhostDbConfig::default());
        db.execute("CREATE TABLE D (id INT, name CHAR(30) HIDDEN)")
            .unwrap();
        db.execute("CREATE TABLE M (id INT, d_id INT HIDDEN REFERENCES D, v CHAR(8))")
            .unwrap();
        db.insert_rows(
            "D",
            (0..10)
                .map(|i| vec![Value::Str(format!("Doctor Longname {i}"))])
                .collect(),
        )
        .unwrap();
        db.insert_rows(
            "M",
            (0..50)
                .map(|i| vec![Value::Int(i % 10), Value::Str(format!("{i:04}"))])
                .collect(),
        )
        .unwrap();
        let rs = db
            .query("SELECT M.id FROM M, D WHERE M.d_id = D.id AND D.name = 'Doctor Longname 3'")
            .unwrap();
        let expect: Vec<i64> = (0..50).filter(|i| i % 10 == 3).collect();
        assert_eq!(
            rs.rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            expect.into_iter().map(Value::Int).collect::<Vec<_>>()
        );
    }
}
