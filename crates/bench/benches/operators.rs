//! Criterion micro-benchmarks of the substrate operators (host wall time).
//!
//! The paper-comparable numbers are *simulated* times produced by the
//! `repro` binary; these benches track the host-side cost of the simulator
//! and operators themselves (regression guard).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ghostdb_bloom::BloomFilter;
use ghostdb_flash::{FlashDevice, FlashGeometry, FlashTiming, SegmentAllocator};
use ghostdb_storage::btree::BTree;
use ghostdb_storage::idlist::write_id_list;
use ghostdb_storage::IdListReader;
use ghostdb_token::RamArena;

fn bench_flash(c: &mut Criterion) {
    let mut group = c.benchmark_group("flash");
    group.bench_function("write_4k_pages", |b| {
        b.iter_batched(
            || {
                FlashDevice::new(
                    FlashGeometry::for_capacity(32 * 1024 * 1024),
                    FlashTiming::default(),
                )
            },
            |mut dev| {
                let image = [7u8; 2048];
                for lpn in 0..4096u64 {
                    dev.write(lpn, &image).unwrap();
                }
                dev
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("read_4k_pages", |b| {
        let mut dev = FlashDevice::new(
            FlashGeometry::for_capacity(32 * 1024 * 1024),
            FlashTiming::default(),
        );
        let image = [7u8; 2048];
        for lpn in 0..4096u64 {
            dev.write(lpn, &image).unwrap();
        }
        let mut buf = [0u8; 2048];
        b.iter(|| {
            for lpn in 0..4096u64 {
                dev.read(lpn, 0, &mut buf).unwrap();
            }
            buf[0]
        });
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.bench_function("insert_100k", |b| {
        b.iter_batched(
            || BloomFilter::new(vec![0u8; 100_000], 800_000, 4),
            |mut bf| {
                for id in 0..100_000u64 {
                    bf.insert(id);
                }
                bf
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("probe_100k", |b| {
        let mut bf = BloomFilter::new(vec![0u8; 100_000], 800_000, 4);
        for id in 0..100_000u64 {
            bf.insert(id);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for id in 0..200_000u64 {
                hits += bf.contains(id) as u64;
            }
            hits
        });
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut dev = FlashDevice::new(
        FlashGeometry::for_capacity(64 * 1024 * 1024),
        FlashTiming::default(),
    );
    let mut alloc = SegmentAllocator::new(dev.logical_pages());
    let entries: Vec<(u64, Vec<u8>)> = (0..200_000u64)
        .map(|i| (i, (i as u32).to_le_bytes().to_vec()))
        .collect();
    let tree = BTree::bulk_build(&mut dev, &mut alloc, 4, &entries).unwrap();
    let ram = RamArena::paper_default();
    c.bench_function("btree/lookup_1k_random", |b| {
        let mut cur = tree.cursor(&ram).unwrap();
        b.iter(|| {
            let mut found = 0u64;
            for i in 0..1000u64 {
                let key = (i * 104729) % 200_000;
                found += cur.lookup(&mut dev, key).unwrap().is_some() as u64;
            }
            found
        });
    });
}

fn bench_idlist(c: &mut Criterion) {
    let mut dev = FlashDevice::new(
        FlashGeometry::for_capacity(64 * 1024 * 1024),
        FlashTiming::default(),
    );
    let mut alloc = SegmentAllocator::new(dev.logical_pages());
    let ram = RamArena::paper_default();
    let ids: Vec<u32> = (0..500_000u32).collect();
    let list = write_id_list(&mut dev, &mut alloc, &ram, &ids).unwrap();
    c.bench_function("idlist/stream_500k", |b| {
        b.iter(|| {
            let mut r = IdListReader::open(list, &ram, dev.page_size()).unwrap();
            let mut sum = 0u64;
            while let Some(id) = r.next_id(&mut dev).unwrap() {
                sum += id as u64;
            }
            sum
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_flash, bench_bloom, bench_btree, bench_idlist
}
criterion_main!(benches);
