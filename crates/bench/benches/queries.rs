//! Criterion macro-benchmarks: full GhostDB queries end to end (host wall
//! time on a small synthetic instance — the paper-comparable simulated
//! times come from the `repro` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use ghostdb_bench::{build_synthetic, query_q, run_with};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;

fn bench_queries(c: &mut Criterion) {
    let (ds, mut db) = build_synthetic(0.001); // T0 = 10 000
    let mut group = c.benchmark_group("query_q");
    for (name, strategy) in [
        ("cross_pre", VisStrategy::CrossPre),
        ("cross_post", VisStrategy::CrossPost),
        ("pre", VisStrategy::Pre),
        ("post", VisStrategy::Post),
    ] {
        group.bench_function(format!("sv0.05/{name}"), |b| {
            let q = query_q(&ds, &db, 0.05, false);
            b.iter(|| run_with(&mut db, &q, strategy, ProjectAlgo::Project).result_rows);
        });
    }
    group.bench_function("sv0.05/auto_with_projection", |b| {
        let q = query_q(&ds, &db, 0.05, true);
        b.iter(|| {
            let (_, report) =
                ghostdb_exec::Executor::run(&mut db, &q, &ghostdb_exec::ExecOptions::auto())
                    .unwrap();
            report.result_rows
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_queries
}
criterion_main!(benches);
