//! Wall-clock measurement primitives for `perfbench`: warmup + median-of-N
//! with `std::time::Instant`, no external dependencies. Simulated times stay
//! deterministic; wall time is what these helpers pin down.

use crate::json::Json;
use std::time::Instant;

/// One BENCH.json entry.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Unique scenario name (`micro/…` for operator microbenches).
    pub scenario: String,
    /// Median wall-clock nanoseconds per run.
    pub wall_ns: u128,
    /// Simulated seconds of the run (Table 1 cost model); 0 when the
    /// scenario has no simulated-time meaning (pure host microbenches).
    pub simulated_s: f64,
    /// Logical operations performed (result rows, ids processed…).
    pub ops: u64,
    /// Flash bytes moved through the data register (read + write side).
    pub bytes_io: u64,
    /// Closed-loop per-query latency percentiles in nanoseconds, as
    /// `(p50, p95, p99)` — present on `serve/…` scenarios (where the unit
    /// of interest is one query's submit→outcome latency under load, not
    /// the whole run), absent everywhere else.
    pub percentiles: Option<(u128, u128, u128)>,
    /// Channel-billing pair `(issue_s, makespan_s)`: the serial issue sum
    /// (`FlashStats::elapsed`, what counters bill) vs the
    /// channel-overlapped clock (`FlashDevice::overlap_elapsed`, the
    /// busiest chip per batch). Present on vectored-I/O scenarios where
    /// the batch win is the point; `makespan_s ≤ issue_s` always.
    pub channel: Option<(f64, f64)>,
}

impl BenchEntry {
    /// The JSON object for this entry.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("wall_ns".into(), Json::Num(self.wall_ns as f64)),
            ("simulated_s".into(), Json::Num(self.simulated_s)),
            ("ops".into(), Json::Num(self.ops as f64)),
            ("bytes_io".into(), Json::Num(self.bytes_io as f64)),
        ];
        if let Some((p50, p95, p99)) = self.percentiles {
            fields.push(("p50_ns".into(), Json::Num(p50 as f64)));
            fields.push(("p95_ns".into(), Json::Num(p95 as f64)));
            fields.push(("p99_ns".into(), Json::Num(p99 as f64)));
        }
        if let Some((issue_s, makespan_s)) = self.channel {
            fields.push(("issue_s".into(), Json::Num(issue_s)));
            fields.push(("makespan_s".into(), Json::Num(makespan_s)));
        }
        Json::Obj(fields)
    }
}

/// Percentile over raw latency samples by the nearest-rank method (the
/// sample at ceil(q·n), 1-indexed). Sorts a copy; panics on empty input.
pub fn percentile(samples: &[u128], q: f64) -> u128 {
    assert!(!samples.is_empty(), "no latency samples");
    assert!((0.0..=1.0).contains(&q));
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Non-timing observations one run reports back.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Simulated seconds.
    pub simulated_s: f64,
    /// Logical operations.
    pub ops: u64,
    /// Flash bytes moved.
    pub bytes_io: u64,
    /// Channel-billing pair `(issue_s, makespan_s)` for vectored-I/O
    /// scenarios; `None` elsewhere.
    pub channel: Option<(f64, f64)>,
}

/// Run `f` `warmup` times untimed, then `iters` timed times, and build the
/// entry from the **median** wall time (robust to scheduler noise) and the
/// last run's stats (runs are deterministic, so any run's stats serve).
pub fn measure(
    scenario: impl Into<String>,
    warmup: usize,
    iters: usize,
    mut f: impl FnMut() -> RunStats,
) -> BenchEntry {
    assert!(iters >= 1, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u128> = Vec::with_capacity(iters);
    let mut stats = RunStats::default();
    for _ in 0..iters {
        let t0 = Instant::now();
        stats = f();
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    BenchEntry {
        scenario: scenario.into(),
        wall_ns: times[times.len() / 2],
        simulated_s: stats.simulated_s,
        ops: stats.ops,
        bytes_io: stats.bytes_io,
        percentiles: None,
        channel: stats.channel,
    }
}

/// Assemble the BENCH.json document. `threads` records how many worker
/// threads the query sweeps fanned across (1 = the serial harness),
/// `intra_threads` how many lanes each query fanned its own operators
/// across, `spill_policy` the reduction-phase policy in force, and
/// `padded` whether the query sweeps ran with volume-padded shipments —
/// the knobs whose A/B numbers the document exists to carry. (The
/// dedicated `synthetic-padded/…` scenarios carry both pad modes in every
/// document; `padded` records the mode of the *main* sweeps; `read_ahead`
/// the vectored read-ahead window they ran under, 0 = serial issue.)
pub fn bench_doc(
    mode: &str,
    threads: usize,
    intra_threads: usize,
    spill_policy: &str,
    padded: bool,
    read_ahead: usize,
    entries: &[BenchEntry],
) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(1.0)),
        ("generator".into(), Json::Str("perfbench".into())),
        ("mode".into(), Json::Str(mode.into())),
        ("threads".into(), Json::Num(threads as f64)),
        ("intra_threads".into(), Json::Num(intra_threads as f64)),
        ("spill_policy".into(), Json::Str(spill_policy.into())),
        ("padded".into(), Json::Bool(padded)),
        ("read_ahead".into(), Json::Num(read_ahead as f64)),
        (
            "entries".into(),
            Json::Arr(entries.iter().map(BenchEntry::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_median_and_stats() {
        let mut calls = 0u64;
        let e = measure("x", 2, 5, || {
            calls += 1;
            RunStats {
                simulated_s: 1.5,
                ops: calls,
                bytes_io: 7,
                channel: None,
            }
        });
        assert_eq!(calls, 7, "2 warmup + 5 timed");
        assert_eq!(e.ops, 7, "stats come from the last timed run");
        assert_eq!(e.simulated_s, 1.5);
        assert_eq!(e.bytes_io, 7);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let samples: Vec<u128> = (1..=100).rev().collect();
        assert_eq!(percentile(&samples, 0.5), 50);
        assert_eq!(percentile(&samples, 0.95), 95);
        assert_eq!(percentile(&samples, 0.99), 99);
        assert_eq!(percentile(&samples, 1.0), 100);
        assert_eq!(percentile(&[42], 0.5), 42);
        assert_eq!(percentile(&[7, 3], 0.99), 7);
    }

    #[test]
    fn doc_validates_against_the_checker() {
        let entries: Vec<BenchEntry> = (0..12)
            .map(|i| BenchEntry {
                scenario: format!("q{i}"),
                wall_ns: 10,
                simulated_s: 0.0,
                ops: 1,
                bytes_io: 0,
                percentiles: None,
                channel: None,
            })
            .chain([
                BenchEntry {
                    scenario: "micro/m".into(),
                    wall_ns: 10,
                    simulated_s: 0.0,
                    ops: 1,
                    bytes_io: 0,
                    percentiles: None,
                    channel: None,
                },
                BenchEntry {
                    scenario: "serve/s1".into(),
                    wall_ns: 10,
                    simulated_s: 0.0,
                    ops: 1,
                    bytes_io: 0,
                    percentiles: Some((5, 8, 9)),
                    channel: None,
                },
                BenchEntry {
                    scenario: "micro/io/vec".into(),
                    wall_ns: 10,
                    simulated_s: 2.0,
                    ops: 1,
                    bytes_io: 64,
                    percentiles: None,
                    channel: Some((2.0, 0.6)),
                },
            ])
            .collect();
        let doc = bench_doc("smoke", 2, 2, "widest-smallest", false, 8, &entries);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        crate::json::check_bench(&parsed).unwrap();
    }
}
