//! Shared flag handling for the crate's binaries (`repro`, `perfbench`):
//! usage errors exit 2, numeric flags must be finite and strictly positive
//! (zero/negative scales used to slip through and silently produce
//! degenerate datasets), count flags (`--iters`, `--threads`) must be
//! integers ≥ 1. The `try_*` functions hold the validation policy and are
//! unit-tested; the exiting wrappers route failures through [`usage_error`].

/// Print `msg` plus the binary's usage text and exit 2.
pub fn usage_error(msg: &str, usage: &str) -> ! {
    eprintln!("{msg}\n\n{usage}");
    std::process::exit(2);
}

/// Validate a numeric flag value that must be finite and > 0.
pub fn try_parse_positive(flag: &str, raw: &str) -> Result<f64, String> {
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("bad {flag} (expected a number)"))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("{flag} must be a positive number, got {raw}"));
    }
    Ok(v)
}

/// Parse a numeric flag value that must be finite and > 0.
pub fn parse_positive(flag: &str, raw: &str, usage: &str) -> f64 {
    try_parse_positive(flag, raw).unwrap_or_else(|msg| usage_error(&msg, usage))
}

/// Validate a numeric flag value that must be finite and ≥ 0
/// (`--tolerance 0` is the exact-wall-time gate).
pub fn try_parse_nonnegative(flag: &str, raw: &str) -> Result<f64, String> {
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("bad {flag} (expected a number)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{flag} must be a non-negative number, got {raw}"));
    }
    Ok(v)
}

/// Parse a numeric flag value that must be finite and ≥ 0.
pub fn parse_nonnegative(flag: &str, raw: &str, usage: &str) -> f64 {
    try_parse_nonnegative(flag, raw).unwrap_or_else(|msg| usage_error(&msg, usage))
}

/// Validate a count flag value (`--iters`, `--threads`): an integer ≥ 1.
/// Zero, negatives, fractions and non-numbers are all rejected.
pub fn try_parse_count(flag: &str, raw: &str) -> Result<usize, String> {
    let v: u64 = raw
        .parse()
        .map_err(|_| format!("bad {flag} (expected a positive integer)"))?;
    if v == 0 {
        return Err(format!("{flag} must be ≥ 1, got {raw}"));
    }
    Ok(v as usize)
}

/// Parse a count flag value (an integer ≥ 1).
pub fn parse_count(flag: &str, raw: &str, usage: &str) -> usize {
    try_parse_count(flag, raw).unwrap_or_else(|msg| usage_error(&msg, usage))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_flags_accept_positive_finite_numbers() {
        assert_eq!(try_parse_positive("--scale", "0.5"), Ok(0.5));
        assert_eq!(try_parse_positive("--scale", "2"), Ok(2.0));
        assert_eq!(try_parse_positive("--scale", "1e-3"), Ok(1e-3));
    }

    #[test]
    fn scale_flags_reject_zero_negative_and_garbage() {
        for bad in ["0", "0.0", "-1", "-0.25", "nan", "inf", "-inf", "x", ""] {
            let err = try_parse_positive("--scale", bad)
                .expect_err(&format!("--scale {bad:?} must be rejected"));
            assert!(err.contains("--scale"), "message names the flag: {err}");
        }
    }

    #[test]
    fn threads_flag_accepts_integers_from_one() {
        assert_eq!(try_parse_count("--threads", "1"), Ok(1));
        assert_eq!(try_parse_count("--threads", "2"), Ok(2));
        assert_eq!(try_parse_count("--threads", "64"), Ok(64));
    }

    #[test]
    fn threads_flag_rejects_zero_fractions_and_garbage() {
        for bad in ["0", "-2", "1.5", "2.0", "two", "", " 4", "+0"] {
            let err = try_parse_count("--threads", bad)
                .expect_err(&format!("--threads {bad:?} must be rejected"));
            assert!(err.contains("--threads"), "message names the flag: {err}");
        }
    }

    #[test]
    fn tolerance_flag_accepts_zero_and_positive() {
        assert_eq!(try_parse_nonnegative("--tolerance", "0"), Ok(0.0));
        assert_eq!(try_parse_nonnegative("--tolerance", "150"), Ok(150.0));
        assert_eq!(try_parse_nonnegative("--tolerance", "2.5"), Ok(2.5));
        for bad in ["-1", "nan", "inf", "x", ""] {
            let err = try_parse_nonnegative("--tolerance", bad)
                .expect_err(&format!("--tolerance {bad:?} must be rejected"));
            assert!(err.contains("--tolerance"), "message names the flag: {err}");
        }
    }

    #[test]
    fn iters_flag_shares_the_count_policy() {
        assert_eq!(try_parse_count("--iters", "3"), Ok(3));
        assert!(try_parse_count("--iters", "0").is_err());
        assert!(try_parse_count("--iters", "2.5").is_err());
    }
}
