//! Shared flag handling for the crate's binaries (`repro`, `perfbench`):
//! usage errors exit 2, numeric flags must be finite and strictly positive
//! (zero/negative scales used to slip through and silently produce
//! degenerate datasets).

/// Print `msg` plus the binary's usage text and exit 2.
pub fn usage_error(msg: &str, usage: &str) -> ! {
    eprintln!("{msg}\n\n{usage}");
    std::process::exit(2);
}

/// Parse a numeric flag value that must be finite and > 0.
pub fn parse_positive(flag: &str, raw: &str, usage: &str) -> f64 {
    let v: f64 = raw
        .parse()
        .unwrap_or_else(|_| usage_error(&format!("bad {flag} (expected a number)"), usage));
    if !v.is_finite() || v <= 0.0 {
        usage_error(
            &format!("{flag} must be a positive number, got {raw}"),
            usage,
        );
    }
    v
}
