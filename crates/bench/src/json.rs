//! Minimal JSON for the perf harness — writer, parser and the `BENCH.json`
//! schema checker. Dependency-free on purpose: the benchmark binary must
//! not pull crates whose own cost or availability could perturb or block
//! the measurement path (the workspace's vendored `serde` stub has no
//! `serde_json` companion anyway).

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64`; every quantity BENCH.json carries
/// (nanoseconds, byte counts, row counts) stays far below 2^53, so the
/// representation is exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Render with two-space indentation (stable, diff-friendly output for
    /// a file committed as a perf-trajectory artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for round-tripping BENCH.json;
    /// rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut at = 0usize;
        let v = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing garbage at byte {at}"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, lit: &str) -> Result<(), String> {
    if b[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {at}", at = *at))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, at, "null").map(|_| Json::Null),
        Some(b't') => expect(b, at, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, at, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, at).map(Json::Str),
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {at}", at = *at)),
                }
            }
        }
        Some(b'{') => {
            *at += 1;
            let mut fields = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, at);
                let key = parse_string(b, at)?;
                skip_ws(b, at);
                expect(b, at, ":")?;
                let value = parse_value(b, at)?;
                fields.push((key, value));
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {at}", at = *at)),
                }
            }
        }
        Some(_) => parse_number(b, at).map(Json::Num),
    }
}

fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
    if b.get(*at) != Some(&b'"') {
        return Err(format!("expected string at byte {at}", at = *at));
    }
    *at += 1;
    let mut out = String::new();
    loop {
        match b.get(*at) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                match b.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*at + 1..*at + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *at += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *at += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*at..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], at: &mut usize) -> Result<f64, String> {
    let start = *at;
    while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *at += 1;
    }
    std::str::from_utf8(&b[start..*at])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("bad number at byte {start}"))
}

/// Summary of a valid BENCH.json.
#[derive(Debug, PartialEq, Eq)]
pub struct BenchSummary {
    /// Total entries.
    pub entries: usize,
    /// Entries whose scenario starts with `micro/`.
    pub micro: usize,
    /// Query scenarios (everything else).
    pub scenarios: usize,
}

/// Validate a BENCH.json document: shape, field types, non-negative
/// numbers, unique scenario names, ≥ 12 query scenarios and ≥ 1 operator
/// microbench (the repo's perf-trajectory floor).
pub fn check_bench(doc: &Json) -> Result<BenchSummary, String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_num)
        .ok_or("missing numeric schema_version")?;
    if version != 1.0 {
        return Err(format!("unsupported schema_version {version}"));
    }
    doc.get("mode")
        .and_then(Json::as_str)
        .filter(|m| *m == "full" || *m == "smoke")
        .ok_or("mode must be \"full\" or \"smoke\"")?;
    // `threads` arrived with the parallel harness, `intra_threads` with the
    // intra-query one; older documents (and the committed PR-2 baseline)
    // predate them, so absence is accepted.
    for field in ["threads", "intra_threads"] {
        if let Some(t) = doc.get(field) {
            let t = t.as_num().ok_or(format!("{field} must be a number"))?;
            if t.fract() != 0.0 || t < 1.0 {
                return Err(format!("{field} must be an integer ≥ 1, got {t}"));
            }
        }
    }
    if let Some(p) = doc.get("spill_policy") {
        p.as_str()
            .filter(|p| *p == "widest-smallest" || *p == "global-smallest-k")
            .ok_or("spill_policy must be \"widest-smallest\" or \"global-smallest-k\"")?;
    }
    // `padded` arrived with the volume-padding mode; absent in older docs.
    if let Some(p) = doc.get("padded") {
        if !matches!(p, Json::Bool(_)) {
            return Err("padded must be a boolean".into());
        }
    }
    // `read_ahead` arrived with the vectored-I/O path; absent in older
    // docs. 0 (serial issue) is a valid recorded value.
    if let Some(r) = doc.get("read_ahead") {
        let r = r.as_num().ok_or("read_ahead must be a number")?;
        if r.fract() != 0.0 || r < 0.0 {
            return Err(format!("read_ahead must be an integer ≥ 0, got {r}"));
        }
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries array")?;
    let mut seen: Vec<&str> = Vec::new();
    let mut micro = 0usize;
    for (i, e) in entries.iter().enumerate() {
        let scenario = e
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or(format!("entry {i}: missing scenario string"))?;
        if seen.contains(&scenario) {
            return Err(format!("duplicate scenario {scenario:?}"));
        }
        seen.push(scenario);
        if scenario.starts_with("micro/") {
            micro += 1;
        }
        for field in ["wall_ns", "simulated_s", "ops", "bytes_io"] {
            let v = e
                .get(field)
                .and_then(Json::as_num)
                .ok_or(format!("entry {scenario:?}: missing numeric {field}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("entry {scenario:?}: {field} = {v} out of range"));
            }
        }
        // `serve/…` scenarios are closed-loop load points: they MUST carry
        // ordered latency percentiles. Any entry carrying the fields gets
        // the same validation.
        let pcts = ["p50_ns", "p95_ns", "p99_ns"];
        if scenario.starts_with("serve/") || pcts.iter().any(|f| e.get(f).is_some()) {
            let mut prev = 0.0f64;
            for field in pcts {
                let v = e
                    .get(field)
                    .and_then(Json::as_num)
                    .ok_or(format!("entry {scenario:?}: missing numeric {field}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("entry {scenario:?}: {field} = {v} out of range"));
                }
                if v < prev {
                    return Err(format!(
                        "entry {scenario:?}: {field} = {v} below a lower percentile \
                         ({prev}) — percentiles must be non-decreasing"
                    ));
                }
                prev = v;
            }
        }
        // Channel-billing pair on vectored-I/O entries: both-or-neither,
        // and the overlapped makespan can never exceed the serial issue
        // sum (the batch clocks the busiest chip, singles clock the sum).
        let chan = ["issue_s", "makespan_s"];
        if chan.iter().any(|f| e.get(f).is_some()) {
            let mut vals = [0.0f64; 2];
            for (slot, field) in vals.iter_mut().zip(chan) {
                let v = e
                    .get(field)
                    .and_then(Json::as_num)
                    .ok_or(format!("entry {scenario:?}: missing numeric {field}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("entry {scenario:?}: {field} = {v} out of range"));
                }
                *slot = v;
            }
            if vals[1] > vals[0] {
                return Err(format!(
                    "entry {scenario:?}: makespan_s = {} exceeds issue_s = {} — \
                     the overlapped clock cannot be slower than serial issue",
                    vals[1], vals[0]
                ));
            }
        }
    }
    let scenarios = entries.len() - micro;
    if scenarios < 12 {
        return Err(format!("only {scenarios} query scenarios (≥ 12 required)"));
    }
    if micro == 0 {
        return Err("no micro/ operator benchmarks".into());
    }
    Ok(BenchSummary {
        entries: entries.len(),
        micro,
        scenarios,
    })
}

/// Compare two BENCH.json documents for harness drift: both must pass
/// [`check_bench`] and carry the **same scenario names in the same order**
/// (values are allowed to differ — wall time always does). This is what
/// keeps the parallel (`--threads N`) and serial sweeps emitting the same
/// matrix: CI diffs a `--smoke --threads 2` run against a serial `--smoke`
/// run and fails on any divergence. Returns the shared entry count.
pub fn compare_scenarios(a: &Json, b: &Json) -> Result<usize, String> {
    check_bench(a).map_err(|e| format!("first document: {e}"))?;
    check_bench(b).map_err(|e| format!("second document: {e}"))?;
    let names = |doc: &Json| -> Vec<String> {
        doc.get("entries")
            .and_then(Json::as_arr)
            .expect("checked above")
            .iter()
            .map(|e| {
                e.get("scenario")
                    .and_then(Json::as_str)
                    .expect("checked above")
                    .to_string()
            })
            .collect()
    };
    let (na, nb) = (names(a), names(b));
    if na.len() != nb.len() {
        return Err(format!("entry counts differ: {} vs {}", na.len(), nb.len()));
    }
    for (i, (x, y)) in na.iter().zip(&nb).enumerate() {
        if x != y {
            return Err(format!("entry {i} differs: {x:?} vs {y:?}"));
        }
    }
    Ok(na.len())
}

fn entries_by_name(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("entries")
        .and_then(Json::as_arr)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|e| e.get("scenario").and_then(Json::as_str).map(|n| (n, e)))
                .collect()
        })
        .unwrap_or_default()
}

/// The CI perf regression gate: compare the `micro/*` wall times of a
/// fresh document `b` against the committed baseline `a`, failing when any
/// common microbench regressed beyond `tolerance_pct` percent. Only the
/// **intersection** of micro scenario names is judged — the baseline is a
/// full-matrix run while CI produces a smoke run, so the query scenarios
/// (scale-dependent names) legitimately differ; micro names do not depend
/// on the matrix. Returns the number of microbenches compared.
pub fn compare_micro_wall(a: &Json, b: &Json, tolerance_pct: f64) -> Result<usize, String> {
    check_bench(a).map_err(|e| format!("first document: {e}"))?;
    check_bench(b).map_err(|e| format!("second document: {e}"))?;
    if !tolerance_pct.is_finite() || tolerance_pct < 0.0 {
        return Err(format!("tolerance must be ≥ 0, got {tolerance_pct}"));
    }
    let base = entries_by_name(a);
    let fresh = entries_by_name(b);
    let wall = |e: &Json| e.get("wall_ns").and_then(Json::as_num).expect("checked");
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for (name, be) in &base {
        if !name.starts_with("micro/") {
            continue;
        }
        let Some((_, fe)) = fresh.iter().find(|(n, _)| n == name) else {
            continue;
        };
        compared += 1;
        let (old, new) = (wall(be), wall(fe));
        let limit = old * (1.0 + tolerance_pct / 100.0);
        if new > limit {
            regressions.push(format!(
                "{name}: {old:.0} ns → {new:.0} ns ({:+.1}% > +{tolerance_pct}%)",
                (new / old.max(1.0) - 1.0) * 100.0
            ));
        }
    }
    if compared == 0 {
        return Err("no common micro/* scenarios to compare".into());
    }
    if !regressions.is_empty() {
        return Err(format!(
            "{} micro wall-clock regression(s) beyond tolerance:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ));
    }
    Ok(compared)
}

/// The intra-parallel gate: scenario names must match exactly (as in
/// [`compare_scenarios`]) AND every entry's deterministic observations —
/// `simulated_s`, `ops`, `bytes_io` — must be **bit-identical** between
/// the two documents. Wall time is exempt (it is the one thing intra-query
/// parallelism is allowed to change). Returns the entry count.
pub fn compare_exact_sim(a: &Json, b: &Json) -> Result<usize, String> {
    let n = compare_scenarios(a, b)?;
    let ea = entries_by_name(a);
    let eb = entries_by_name(b);
    for ((name, x), (_, y)) in ea.iter().zip(&eb) {
        for field in ["simulated_s", "ops", "bytes_io"] {
            let vx = x.get(field).and_then(Json::as_num).expect("checked");
            let vy = y.get(field).and_then(Json::as_num).expect("checked");
            if vx != vy {
                return Err(format!(
                    "{name}: {field} diverges ({vx} vs {vy}) — intra-parallel \
                     execution must not change simulated observations"
                ));
            }
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x\"y\n".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(12345678.0)]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2,,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("").is_err());
    }

    fn entry(name: &str) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(name.into())),
            ("wall_ns".into(), Json::Num(100.0)),
            ("simulated_s".into(), Json::Num(0.5)),
            ("ops".into(), Json::Num(10.0)),
            ("bytes_io".into(), Json::Num(2048.0)),
        ])
    }

    fn doc(names: &[String]) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            ("mode".into(), Json::Str("smoke".into())),
            (
                "entries".into(),
                Json::Arr(names.iter().map(|n| entry(n)).collect()),
            ),
        ])
    }

    #[test]
    fn checker_accepts_valid_and_counts() {
        let mut names: Vec<String> = (0..12).map(|i| format!("q{i}")).collect();
        names.push("micro/x".into());
        let summary = check_bench(&doc(&names)).unwrap();
        assert_eq!(
            summary,
            BenchSummary {
                entries: 13,
                micro: 1,
                scenarios: 12
            }
        );
    }

    #[test]
    fn checker_rejects_violations() {
        // Too few scenarios.
        let names: Vec<String> = (0..3).map(|i| format!("q{i}")).collect();
        assert!(check_bench(&doc(&names)).is_err());
        // Duplicate scenario.
        let mut names: Vec<String> = (0..12).map(|i| format!("q{i}")).collect();
        names.push("q0".into());
        assert!(check_bench(&doc(&names)).is_err());
        // No micro benches.
        let names: Vec<String> = (0..12).map(|i| format!("q{i}")).collect();
        assert!(check_bench(&doc(&names)).is_err());
        // Negative number.
        let mut bad = doc(&(0..12).map(|i| format!("q{i}")).collect::<Vec<_>>());
        if let Json::Obj(fields) = &mut bad {
            if let Json::Arr(entries) = &mut fields[2].1 {
                if let Json::Obj(e) = &mut entries[0] {
                    e[1].1 = Json::Num(-1.0);
                }
            }
        }
        assert!(check_bench(&bad).is_err());
    }

    #[test]
    fn checker_validates_optional_threads() {
        let names: Vec<String> = (0..12)
            .map(|i| format!("q{i}"))
            .chain(std::iter::once("micro/x".into()))
            .collect();
        let with_threads = |t: Json| {
            let Json::Obj(mut fields) = doc(&names) else {
                unreachable!()
            };
            fields.push(("threads".into(), t));
            Json::Obj(fields)
        };
        // Absent (the committed PR-2 baseline) and sane values pass.
        assert!(check_bench(&doc(&names)).is_ok());
        assert!(check_bench(&with_threads(Json::Num(1.0))).is_ok());
        assert!(check_bench(&with_threads(Json::Num(8.0))).is_ok());
        // Zero, fractions and non-numbers fail.
        assert!(check_bench(&with_threads(Json::Num(0.0))).is_err());
        assert!(check_bench(&with_threads(Json::Num(2.5))).is_err());
        assert!(check_bench(&with_threads(Json::Str("2".into()))).is_err());
    }

    fn with_entry_field(mut d: Json, idx: usize, field: usize, v: Json) -> Json {
        if let Json::Obj(fields) = &mut d {
            if let Json::Arr(entries) = &mut fields[2].1 {
                if let Json::Obj(e) = &mut entries[idx] {
                    e[field].1 = v;
                }
            }
        }
        d
    }

    #[test]
    fn micro_wall_gate_tolerates_and_catches_regressions() {
        let names: Vec<String> = (0..12)
            .map(|i| format!("q{i}"))
            .chain(["micro/a".into(), "micro/b".into()])
            .collect();
        let base = doc(&names);
        // Identical runs always pass, any tolerance.
        assert_eq!(compare_micro_wall(&base, &base, 0.0), Ok(2));
        // +40% on one micro: passes at 50%, fails at 20%. (entry field 1 is
        // wall_ns; micro/a is entry 12.)
        let slower = with_entry_field(base.clone(), 12, 1, Json::Num(140.0));
        assert_eq!(compare_micro_wall(&base, &slower, 50.0), Ok(2));
        let err = compare_micro_wall(&base, &slower, 20.0).unwrap_err();
        assert!(err.contains("micro/a"), "{err}");
        // Query-scenario wall changes never trip the gate.
        let q_slower = with_entry_field(base.clone(), 0, 1, Json::Num(1e12));
        assert_eq!(compare_micro_wall(&base, &q_slower, 0.0), Ok(2));
        // Disjoint micro sets cannot be judged.
        let mut other_names = names.clone();
        other_names[12] = "micro/x".into();
        other_names[13] = "micro/y".into();
        assert!(compare_micro_wall(&base, &doc(&other_names), 50.0).is_err());
        // Baseline smoke/full drift in query names is fine: only the micro
        // intersection matters.
        let mut smoke_names: Vec<String> = (0..12).map(|i| format!("s{i}")).collect();
        smoke_names.extend(["micro/a".into(), "micro/b".into()]);
        assert_eq!(compare_micro_wall(&base, &doc(&smoke_names), 10.0), Ok(2));
        // Negative tolerance is rejected.
        assert!(compare_micro_wall(&base, &base, -1.0).is_err());
    }

    #[test]
    fn exact_sim_gate_requires_identical_observations() {
        let names: Vec<String> = (0..12)
            .map(|i| format!("q{i}"))
            .chain(std::iter::once("micro/x".into()))
            .collect();
        let base = doc(&names);
        assert_eq!(compare_exact_sim(&base, &base), Ok(13));
        // Wall time may move freely...
        let wall_moved = with_entry_field(base.clone(), 3, 1, Json::Num(9_999_999.0));
        assert_eq!(compare_exact_sim(&base, &wall_moved), Ok(13));
        // ...but simulated_s (field 2), ops (3) and bytes_io (4) may not.
        for field in [2usize, 3, 4] {
            let drift = with_entry_field(base.clone(), 5, field, Json::Num(123_456.0));
            let err = compare_exact_sim(&base, &drift).unwrap_err();
            assert!(err.contains("q5"), "{err}");
        }
        // Name drift still fails first.
        let mut renamed = names.clone();
        renamed[0] = "other".into();
        assert!(compare_exact_sim(&base, &doc(&renamed)).is_err());
    }

    #[test]
    fn checker_validates_optional_intra_threads_and_spill_policy() {
        let names: Vec<String> = (0..12)
            .map(|i| format!("q{i}"))
            .chain(std::iter::once("micro/x".into()))
            .collect();
        let with_field = |k: &str, v: Json| {
            let Json::Obj(mut fields) = doc(&names) else {
                unreachable!()
            };
            fields.push((k.into(), v));
            Json::Obj(fields)
        };
        assert!(check_bench(&with_field("intra_threads", Json::Num(2.0))).is_ok());
        assert!(check_bench(&with_field("intra_threads", Json::Num(0.0))).is_err());
        assert!(check_bench(&with_field("intra_threads", Json::Num(1.5))).is_err());
        assert!(check_bench(&with_field(
            "spill_policy",
            Json::Str("widest-smallest".into())
        ))
        .is_ok());
        assert!(check_bench(&with_field(
            "spill_policy",
            Json::Str("global-smallest-k".into())
        ))
        .is_ok());
        assert!(check_bench(&with_field("spill_policy", Json::Str("bogus".into()))).is_err());
        assert!(check_bench(&with_field("padded", Json::Bool(true))).is_ok());
        assert!(check_bench(&with_field("padded", Json::Bool(false))).is_ok());
        assert!(check_bench(&with_field("padded", Json::Num(1.0))).is_err());
        assert!(check_bench(&with_field("padded", Json::Str("yes".into()))).is_err());
    }

    #[test]
    fn checker_validates_serve_percentiles() {
        let names: Vec<String> = (0..12)
            .map(|i| format!("q{i}"))
            .chain(std::iter::once("micro/x".into()))
            .collect();
        let with_serve = |extra: Vec<(String, Json)>| {
            let Json::Obj(mut fields) = doc(&names) else {
                unreachable!()
            };
            let Json::Arr(entries) = &mut fields[2].1 else {
                unreachable!()
            };
            let Json::Obj(mut e) = entry("serve/load") else {
                unreachable!()
            };
            e.extend(extra);
            entries.push(Json::Obj(e));
            Json::Obj(fields)
        };
        let pct = |p50: f64, p95: f64, p99: f64| {
            vec![
                ("p50_ns".into(), Json::Num(p50)),
                ("p95_ns".into(), Json::Num(p95)),
                ("p99_ns".into(), Json::Num(p99)),
            ]
        };
        // Ordered percentiles pass; ties are fine.
        assert!(check_bench(&with_serve(pct(10.0, 20.0, 30.0))).is_ok());
        assert!(check_bench(&with_serve(pct(10.0, 10.0, 10.0))).is_ok());
        // A serve/ entry without percentiles is invalid.
        let err = check_bench(&with_serve(vec![])).unwrap_err();
        assert!(err.contains("p50_ns"), "{err}");
        // Out-of-order and non-finite percentiles fail.
        assert!(check_bench(&with_serve(pct(30.0, 20.0, 40.0))).is_err());
        assert!(check_bench(&with_serve(pct(10.0, 20.0, f64::NAN))).is_err());
        assert!(check_bench(&with_serve(pct(-1.0, 2.0, 3.0))).is_err());
        // Percentiles on a non-serve entry are validated the same way.
        let mut bad_micro = doc(&names);
        if let Json::Obj(fields) = &mut bad_micro {
            if let Json::Arr(entries) = &mut fields[2].1 {
                if let Json::Obj(e) = &mut entries[12] {
                    e.push(("p50_ns".into(), Json::Num(5.0)));
                }
            }
        }
        let err = check_bench(&bad_micro).unwrap_err();
        assert!(err.contains("p95_ns"), "{err}");
    }

    #[test]
    fn compare_accepts_same_names_and_rejects_drift() {
        let names: Vec<String> = (0..12)
            .map(|i| format!("q{i}"))
            .chain(std::iter::once("micro/x".into()))
            .collect();
        assert_eq!(compare_scenarios(&doc(&names), &doc(&names)), Ok(13));

        // Different wall times still compare equal (names-only diff).
        let mut slower = doc(&names);
        if let Json::Obj(fields) = &mut slower {
            if let Json::Arr(entries) = &mut fields[2].1 {
                if let Json::Obj(e) = &mut entries[0] {
                    e[1].1 = Json::Num(999_999.0);
                }
            }
        }
        assert_eq!(compare_scenarios(&doc(&names), &slower), Ok(13));

        // A renamed scenario is drift.
        let mut renamed = names.clone();
        renamed[3] = "q3-renamed".into();
        assert!(compare_scenarios(&doc(&names), &doc(&renamed)).is_err());

        // An extra scenario is drift (count mismatch between valid docs).
        let mut longer = names.clone();
        longer.push("q12".into());
        let err = compare_scenarios(&doc(&names), &doc(&longer)).unwrap_err();
        assert!(err.contains("entry counts differ"), "{err}");

        // An invalid document never compares clean.
        assert!(compare_scenarios(&doc(&names), &Json::Obj(vec![])).is_err());
    }
}
