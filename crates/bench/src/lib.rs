//! # ghostdb-bench
//!
//! The harness regenerating every table and figure of the paper's
//! evaluation (§6). Each `figure*` function returns printable series; the
//! `repro` binary drives them. Execution times are **simulated times** from
//! the I/O-accurate cost model (exactly how the paper measured), so results
//! are deterministic; Criterion benches cover host-side wall time of the
//! operators separately.

pub mod cli;
pub mod json;
pub mod perf;

use ghostdb_datagen::{MedicalDataset, SyntheticDataset, SyntheticSpec};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{Database, ExecOptions, ExecReport, Executor, SpillPolicy, SpjQuery};
use ghostdb_index::size_model::{db_raw_bytes, scheme_index_bytes, SizeModelInput};
use ghostdb_index::IndexScheme;
use ghostdb_storage::schema::paper_synthetic_schema;

/// Selectivities swept on the x-axis of Figures 8–13 (log scale, §6.4).
pub const SV_SWEEP: [f64; 8] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0];

/// The paper's fixed hidden selectivity (§6.4).
pub const SH: f64 = 0.1;

/// One measured point: per-series simulated seconds.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// x value (selectivity or throughput).
    pub x: f64,
    /// (series name, simulated seconds) — `None` when the configuration is
    /// not executed (e.g. Post-Filter past its Bloom cutoff).
    pub series: Vec<(String, Option<f64>)>,
}

/// Build the shared synthetic evaluation database.
pub fn build_synthetic(scale: f64) -> (SyntheticDataset, Database) {
    let mut spec = SyntheticSpec::paper(scale);
    spec.visible_attrs = 3; // Figure 14 projects up to 3 visible attributes
    let ds = SyntheticDataset::generate(spec);
    let db = ds.build().expect("synthetic build");
    (ds, db)
}

/// Build the Zipf-skewed synthetic variant (values Zipf(1.2) over the
/// ordinal domain instead of uniform permutations): heavy-headed index
/// sublists and Bloom inputs, the selectivity regime the uniform matrix
/// never reaches.
pub fn build_synthetic_zipf(scale: f64) -> (SyntheticDataset, Database) {
    let mut spec = SyntheticSpec::paper_zipf(scale, 1.2);
    spec.visible_attrs = 3;
    let ds = SyntheticDataset::generate(spec);
    let db = ds.build().expect("synthetic zipf build");
    (ds, db)
}

/// The §6.4 query Q: visible selection on T1 (selectivity `sv`), hidden
/// selection on T12 (selectivity `SH`), joins to T0, projecting
/// `T0.id, T1.id, T12.id, T1.v1` (+ `T1.h1` when `with_hidden_proj`).
pub fn query_q(ds: &SyntheticDataset, db: &Database, sv: f64, with_hidden_proj: bool) -> SpjQuery {
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").expect("T1");
    let t12 = db.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", sv))
        .pred(t12, ds.selectivity_pred("T12", "h2", SH))
        .project(t0, "id")
        .project(t1, "id")
        .project(t12, "id")
        .project(t1, "v1");
    if with_hidden_proj {
        q = q.project(t1, "h1");
    }
    q.text = format!("Q(sv={sv}, sh={SH})");
    q
}

/// A Cross variant of Q with the hidden selection on `T1.h1` instead of
/// `T12.h2`: `h1` values are a permutation (one distinct key per row), so
/// the climbing index's B+-tree spans |T1|/63 leaves instead of fitting in
/// one — the regime where the Cross-Post "redundant lookup" is a material
/// share of the query and the single-traversal multi-level read path pays
/// off end to end (`synthetic-hicard/…` scenarios).
pub fn query_q_hicard(ds: &SyntheticDataset, db: &Database, sv: f64, sh: f64) -> SpjQuery {
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").expect("T1");
    let mut q = SpjQuery::new()
        .pred(t1, ds.selectivity_pred("T1", "v1", sv))
        .pred(t1, ds.selectivity_pred("T1", "h1", sh))
        .project(t0, "id")
        .project(t1, "id");
    q.text = format!("Q-hicard(sv={sv}, sh={sh})");
    q
}

/// Run a query under a forced strategy; `None` when the strategy is not
/// executable for this configuration (Figure 10's Post cutoff surfaces as
/// the executor deferring the selection — detected via the report).
pub fn run_with(
    db: &mut Database,
    q: &SpjQuery,
    strategy: VisStrategy,
    algo: ProjectAlgo,
) -> ExecReport {
    run_with_tuned(db, q, strategy, algo, 1, SpillPolicy::default(), false, 0)
}

/// [`run_with`] with explicit intra-query worker budget, spill policy,
/// volume-padding mode and vectored read-ahead window (the `perfbench
/// --intra-threads` / `--spill-policy` / `--padded` / `--read-ahead`
/// path). Simulated numbers are bit-identical across `intra` and
/// `read_ahead` values; `padded` inflates the channel cost (its overhead
/// is exactly what the `*-padded/` scenarios quantify) without changing
/// results.
#[allow(clippy::too_many_arguments)]
pub fn run_with_tuned(
    db: &mut Database,
    q: &SpjQuery,
    strategy: VisStrategy,
    algo: ProjectAlgo,
    intra: usize,
    spill: SpillPolicy,
    padded: bool,
    read_ahead: usize,
) -> ExecReport {
    let opts = ExecOptions {
        strategies: vec![],
        forced_strategy: Some(strategy),
        project: Some(algo),
        intra_threads: intra,
        spill_policy: spill,
        padded,
        read_ahead,
    };
    let (_, report) = Executor::run(db, q, &opts).expect("query runs");
    report
}

/// Figure 8 + 9 + 10 + 11: total simulated time vs sV per strategy.
pub fn figure_filtering(
    ds: &SyntheticDataset,
    db: &mut Database,
    strategies: &[VisStrategy],
) -> Vec<SweepPoint> {
    SV_SWEEP
        .iter()
        .map(|sv| {
            let q = query_q(ds, db, *sv, false);
            let series = strategies
                .iter()
                .map(|s| {
                    let report = run_with(db, &q, *s, ProjectAlgo::Project);
                    (s.name().to_string(), Some(report.total().as_secs()))
                })
                .collect();
            SweepPoint { x: *sv, series }
        })
        .collect()
}

/// Figures 12–13: projection algorithms under a fixed strategy.
pub fn figure_projection(
    ds: &SyntheticDataset,
    db: &mut Database,
    strategy: VisStrategy,
) -> Vec<SweepPoint> {
    let algos = [
        ProjectAlgo::Project,
        ProjectAlgo::ProjectNoBf,
        ProjectAlgo::BruteForce,
    ];
    SV_SWEEP
        .iter()
        .map(|sv| {
            let q = query_q(ds, db, *sv, true);
            let series = algos
                .iter()
                .map(|a| {
                    let report = run_with(db, &q, strategy, *a);
                    (a.name().to_string(), Some(report.total().as_secs()))
                })
                .collect();
            SweepPoint { x: *sv, series }
        })
        .collect()
}

/// Figure 14: total time vs channel throughput, projecting 1–3 visible
/// attributes, Cross-Pre at sV = 0.01.
pub fn figure_throughput(ds: &SyntheticDataset, db: &mut Database) -> Vec<SweepPoint> {
    let throughputs_mbps = [0.3, 0.5, 0.8, 1.0, 1.3, 2.0, 3.0, 5.0, 10.0];
    let original = db.token.channel.throughput();
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").expect("T1");
    let t12 = db.schema.table_id("T12").expect("T12");
    let out = throughputs_mbps
        .iter()
        .map(|mbps| {
            db.token.channel.set_throughput((mbps * 1_000_000.0) as u64);
            let series = (1..=3usize)
                .map(|k| {
                    let mut q = SpjQuery::new()
                        .pred(t1, ds.selectivity_pred("T1", "v1", 0.01))
                        .pred(t12, ds.selectivity_pred("T12", "h2", SH))
                        .project(t0, "id");
                    for v in 1..=k {
                        q = q.project(t1, &format!("v{v}"));
                    }
                    q.text = format!("Q-project{k}");
                    let report = run_with(db, &q, VisStrategy::CrossPre, ProjectAlgo::Project);
                    (format!("Project{k}"), Some(report.total().as_secs()))
                })
                .collect();
            SweepPoint { x: *mbps, series }
        })
        .collect();
    db.token.channel.set_throughput(original);
    out
}

/// Figures 15–16: per-operator decomposition for PRE/POST at
/// sV ∈ {0.01, 0.05, 0.2} (communication excluded, as in the paper).
pub fn figure_decomposition(
    mk_query: &mut dyn FnMut(f64) -> SpjQuery,
    db: &mut Database,
) -> Vec<(String, [(String, f64); 4])> {
    let mut out = Vec::new();
    for (label, sv) in [("1", 0.01), ("5", 0.05), ("20", 0.2)] {
        for (tag, strategy) in [
            ("PRE", VisStrategy::CrossPre),
            ("POST", VisStrategy::CrossPost),
        ] {
            let q = mk_query(sv);
            let report = run_with(db, &q, strategy, ProjectAlgo::Project);
            let buckets = report.fig15_buckets();
            out.push((
                format!("{tag}{label}"),
                [
                    (buckets[0].0.to_string(), buckets[0].1.as_secs()),
                    (buckets[1].0.to_string(), buckets[1].1.as_secs()),
                    (buckets[2].0.to_string(), buckets[2].1.as_secs()),
                    (buckets[3].0.to_string(), buckets[3].1.as_secs()),
                ],
            ));
        }
    }
    out
}

/// Storage size of each indexing scheme, in MB.
pub type SchemeSizes = Vec<(IndexScheme, f64)>;

/// Figure 7: index storage cost vs indexed hidden attributes per table, at
/// the paper's full synthetic cardinalities (exact size model — nothing is
/// built, so this always runs at paper scale).
pub fn figure7() -> (Vec<(usize, SchemeSizes)>, f64) {
    let schema = paper_synthetic_schema(5, 5);
    let mut rows = vec![0u64; schema.len()];
    for (name, c) in [
        ("T0", 10_000_000u64),
        ("T1", 1_000_000),
        ("T2", 1_000_000),
        ("T11", 100_000),
        ("T12", 100_000),
    ] {
        rows[schema.table_id(name).expect("paper schema")] = c;
    }
    // Attribute domains: uniform, high-cardinality but bounded (the paper's
    // bitmap-unfriendly case); distinct ≈ rows/10 capped at 100 K.
    let distinct: Vec<u64> = rows.iter().map(|r| (r / 10).clamp(1, 100_000)).collect();
    let sweep = (0..=5usize)
        .map(|x| {
            let input = SizeModelInput {
                schema: &schema,
                rows: &rows,
                distinct: &distinct,
                attrs_per_table: x,
                page_size: 2048,
            };
            (
                x,
                IndexScheme::all()
                    .into_iter()
                    .map(|s| (s, scheme_index_bytes(s, &input) as f64 / 1e6))
                    .collect(),
            )
        })
        .collect();
    let dbsize = db_raw_bytes(&schema, &rows) as f64 / 1e6;
    (sweep, dbsize)
}

/// Figure 7's real-dataset companion: index sizes on the medical schema at
/// its §6.2 cardinalities.
pub fn figure7_medical() -> SchemeSizes {
    let ds = MedicalDataset::generate(1.0, 7);
    let schema = &ds.schema;
    let (m, p, d, dr) = ds.cardinalities();
    let mut rows = vec![0u64; schema.len()];
    rows[schema.table_id("Measurements").expect("m")] = m;
    rows[schema.table_id("Patients").expect("p")] = p;
    rows[schema.table_id("Doctors").expect("d")] = d;
    rows[schema.table_id("Drugs").expect("dr")] = dr;
    // Indexed hidden attrs per table in the real schema: P has 5, D has 2,
    // Drugs 1, M 0 → average ≈ 2; the model takes a uniform count, use 2.
    let distinct: Vec<u64> = rows.iter().map(|r| (*r).clamp(1, 100_000)).collect();
    let input = SizeModelInput {
        schema,
        rows: &rows,
        distinct: &distinct,
        attrs_per_table: 2,
        page_size: 2048,
    };
    let mut out: Vec<(IndexScheme, f64)> = IndexScheme::all()
        .into_iter()
        .map(|s| (s, scheme_index_bytes(s, &input) as f64 / 1e6))
        .collect();
    out.push((
        // DBSize marker rides along as a pseudo-scheme entry in the print.
        IndexScheme::Full,
        db_raw_bytes(schema, &rows) as f64 / 1e6,
    ));
    out
}

/// Build the medical database and its Figure 16 query factory.
pub fn build_medical(scale: f64) -> (MedicalDataset, Database) {
    let ds = MedicalDataset::generate(scale, 7);
    let db = ds.build().expect("medical build");
    (ds, db)
}

/// The Figure 16 query: same structure as Q with T0→Measurements,
/// T1→Patients, T12→Doctors.
pub fn medical_q(ds: &MedicalDataset, db: &Database, sv: f64) -> SpjQuery {
    let m = db.schema.table_id("Measurements").expect("m");
    let p = db.schema.table_id("Patients").expect("p");
    let d = db.schema.table_id("Doctors").expect("d");
    let mut q = SpjQuery::new()
        .pred(p, ds.visible_pred(sv))
        .pred(d, ds.hidden_pred(SH))
        .project(m, "id")
        .project(p, "id")
        .project(d, "id")
        .project(p, "first_name");
    q.text = format!("Q-medical(sv={sv})");
    q
}

/// Table 1: the platform parameters in force.
pub fn table1(db: &Database) -> Vec<(String, String)> {
    let timing = db.token.flash.timing();
    vec![
        (
            "Communication throughput (MB/s)".into(),
            format!(
                "{:.2} (swept in Figure 14)",
                db.token.channel.throughput() as f64 / 1e6
            ),
        ),
        ("Size of an ID (bytes)".into(), "4".into()),
        (
            "Size of a page in Flash (bytes)".into(),
            db.token.flash.page_size().to_string(),
        ),
        (
            "RAM size (bytes)".into(),
            db.token.ram.total_bytes().to_string(),
        ),
        (
            "Time to read a page in Flash (µs)".into(),
            timing.read_page_us.to_string(),
        ),
        (
            "Time to write a page in Flash (µs)".into(),
            timing.program_page_us.to_string(),
        ),
        (
            "Time to transfer a byte between Data Register and RAM (ns)".into(),
            timing.transfer_ns_per_byte.to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_runs_at_paper_scale() {
        let (sweep, dbsize) = figure7();
        assert_eq!(sweep.len(), 6);
        assert!(dbsize > 1000.0, "paper DBSize is ≈1.25 GB, got {dbsize} MB");
        // Ordering at x=5: Full ≥ Basic > Star > Join.
        let last = &sweep[5].1;
        assert!(last[0].1 >= last[1].1);
        assert!(last[1].1 > last[2].1);
        assert!(last[2].1 > last[3].1);
    }

    #[test]
    fn tiny_sweep_produces_sane_shapes() {
        let (ds, mut db) = build_synthetic(0.0005); // T0 = 5000
        let q = query_q(&ds, &db, 0.01, false);
        let pre = run_with(&mut db, &q, VisStrategy::CrossPre, ProjectAlgo::Project);
        let post = run_with(&mut db, &q, VisStrategy::CrossPost, ProjectAlgo::Project);
        assert!(pre.total().as_ns() > 0 && post.total().as_ns() > 0);
        // At high selectivity (sV = 0.5) Cross-Post should not lose badly —
        // and pre/post must agree on result cardinality at any sv.
        assert_eq!(pre.result_rows, post.result_rows);
    }
}
