//! Regenerate every table and figure of the GhostDB paper evaluation (§6).
//!
//! ```text
//! repro [--scale 0.1] [--medical-scale 1.0] [--figure all|7|8|9|10|11|12|13|14|15|16|table1]
//! ```
//!
//! `--scale 1.0` is paper scale (T0 = 10 M tuples); the default 0.1 keeps
//! the whole suite in laptop territory while preserving every shape (all
//! costs are linear in I/O volume). Reported times are simulated times from
//! the Table 1 cost model — deterministic across runs.

use ghostdb_bench::*;
use ghostdb_exec::strategy::VisStrategy;

const USAGE: &str = "\
repro — regenerate the GhostDB paper evaluation (§6)

USAGE:
    repro [--scale F] [--medical-scale F] [--figure WHICH]

OPTIONS:
    --scale F          synthetic dataset scale, 1.0 = paper scale, T0 = 10M
                       tuples (default 0.1)
    --medical-scale F  medical dataset scale (default 1.0)
    --figure WHICH     all|7|8|9|10|11|12|13|14|15|16|table1 (default all)
    -h, --help         print this help and exit

Reported times are simulated times from the Table 1 cost model and are
deterministic across runs.";

const FIGURES: [&str; 12] = [
    "all", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16", "table1",
];

fn usage_error(msg: &str) -> ! {
    ghostdb_bench::cli::usage_error(msg, USAGE)
}

/// Parse a scale flag: must be a finite, strictly positive number. Zero or
/// negative scales used to slip through and silently produce degenerate
/// datasets (every table clamped to its floor cardinality) — reject them
/// loudly instead.
fn parse_scale(flag: &str, raw: &str) -> f64 {
    ghostdb_bench::cli::parse_positive(flag, raw, USAGE)
}

fn parse_args() -> (f64, f64, String) {
    let mut scale = 0.1f64;
    let mut med_scale = 1.0f64;
    let mut figure = "all".to_string();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value_of = |args: &[String], i: usize| -> String {
        match args.get(i + 1) {
            Some(v) => v.clone(),
            None => usage_error(&format!("{} requires a value", args[i])),
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--scale" => {
                scale = parse_scale("--scale", &value_of(&args, i));
                i += 2;
            }
            "--medical-scale" => {
                med_scale = parse_scale("--medical-scale", &value_of(&args, i));
                i += 2;
            }
            "--figure" => {
                figure = value_of(&args, i);
                if !FIGURES.contains(&figure.as_str()) {
                    usage_error(&format!("unknown figure {figure:?}"));
                }
                i += 2;
            }
            other => usage_error(&format!("unknown argument {other}")),
        }
    }
    (scale, med_scale, figure)
}

fn print_sweep(title: &str, xlabel: &str, points: &[SweepPoint]) {
    println!("\n== {title} ==");
    let names: Vec<&str> = points[0].series.iter().map(|(n, _)| n.as_str()).collect();
    print!("{xlabel:>10}");
    for n in &names {
        print!(" {n:>20}");
    }
    println!();
    for p in points {
        print!("{:>10.3}", p.x);
        for (_, v) in &p.series {
            match v {
                Some(secs) => print!(" {:>19.3}s", secs),
                None => print!(" {:>20}", "-"),
            }
        }
        println!();
    }
}

fn want(figure: &str, name: &str) -> bool {
    figure == "all" || figure == name
}

fn main() {
    let (scale, med_scale, figure) = parse_args();
    println!("GhostDB evaluation reproduction — synthetic scale {scale} (1.0 = T0 10M), medical scale {med_scale}");

    if want(&figure, "7") {
        let (sweep, dbsize) = figure7();
        println!("\n== Figure 7: storage cost of the indexing schemes (MB, paper-scale model) ==");
        println!(
            "{:>22} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "x (hidden attrs/table)", "FullIndex", "BasicIndex", "StarIndex", "JoinIndex", "DBSize"
        );
        for (x, schemes) in &sweep {
            print!("{x:>22}");
            for (_, mb) in schemes {
                print!(" {mb:>12.1}");
            }
            println!(" {dbsize:>12.1}");
        }
        println!("\n-- Figure 7 (real/medical dataset sizes, MB) --");
        let med = figure7_medical();
        let labels = [
            "FullIndex",
            "BasicIndex",
            "StarIndex",
            "JoinIndex",
            "DBSize",
        ];
        for (label, (_, mb)) in labels.iter().zip(&med) {
            println!("{label:>12}: {mb:>10.1} MB");
        }
    }

    let needs_synth = ["8", "9", "10", "11", "12", "13", "14", "15", "table1"]
        .iter()
        .any(|f| want(&figure, f));
    if needs_synth {
        eprintln!("building synthetic dataset (scale {scale})...");
        let (ds, mut db) = build_synthetic(scale);

        if want(&figure, "table1") {
            println!("\n== Table 1: performance parameters of the simulated USB key ==");
            for (k, v) in table1(&db) {
                println!("  {k:<58} {v}");
            }
        }
        if want(&figure, "8") {
            let pts = figure_filtering(
                &ds,
                &mut db,
                &[
                    VisStrategy::Pre,
                    VisStrategy::CrossPre,
                    VisStrategy::Post,
                    VisStrategy::CrossPost,
                ],
            );
            print_sweep("Figure 8: Filtering vs Cross-Filtering", "sV", &pts);
        }
        if want(&figure, "9") {
            let pts = figure_filtering(
                &ds,
                &mut db,
                &[VisStrategy::CrossPre, VisStrategy::CrossPost],
            );
            print_sweep("Figure 9: Cross-Pre vs Cross-Post", "sV", &pts);
        }
        if want(&figure, "10") {
            let pts = figure_filtering(
                &ds,
                &mut db,
                &[VisStrategy::Pre, VisStrategy::Post, VisStrategy::NoFilter],
            );
            print_sweep("Figure 10: Pre vs Post-Filtering (no Cross)", "sV", &pts);
        }
        if want(&figure, "11") {
            let pts = figure_filtering(
                &ds,
                &mut db,
                &[
                    VisStrategy::Post,
                    VisStrategy::PostSelect,
                    VisStrategy::CrossPost,
                    VisStrategy::CrossPostSelect,
                ],
            );
            print_sweep("Figure 11: Post-Filtering alternatives", "sV", &pts);
        }
        if want(&figure, "12") {
            let pts = figure_projection(&ds, &mut db, VisStrategy::CrossPre);
            print_sweep(
                "Figure 12: Projection under Cross-Pre-Filtering",
                "sV",
                &pts,
            );
        }
        if want(&figure, "13") {
            let pts = figure_projection(&ds, &mut db, VisStrategy::CrossPost);
            print_sweep(
                "Figure 13: Projection under Cross-Post-Filtering",
                "sV",
                &pts,
            );
        }
        if want(&figure, "14") {
            let pts = figure_throughput(&ds, &mut db);
            print_sweep(
                "Figure 14: Impact of communication throughput (Cross-Pre, sV=0.01)",
                "MB/s",
                &pts,
            );
        }
        if want(&figure, "15") {
            println!("\n== Figure 15: cost decomposition, synthetic dataset (seconds, comm. excluded) ==");
            let mut queries = Vec::new();
            for sv in [0.01, 0.05, 0.2] {
                queries.push(query_q(&ds, &db, sv, false));
            }
            let mut mk_query = {
                let queries = queries.clone();
                move |sv: f64| {
                    let idx = if sv == 0.01 {
                        0
                    } else if sv == 0.05 {
                        1
                    } else {
                        2
                    };
                    queries[idx].clone()
                }
            };
            let rows = figure_decomposition(&mut mk_query, &mut db);
            print_decomposition(&rows);
        }
    }

    if want(&figure, "16") {
        eprintln!("building medical dataset (scale {med_scale})...");
        let (mds, mut mdb) = build_medical(med_scale);
        println!(
            "\n== Figure 16: cost decomposition, medical dataset (seconds, comm. excluded) =="
        );
        let mut queries = Vec::new();
        for sv in [0.01, 0.05, 0.2] {
            queries.push(medical_q(&mds, &mdb, sv));
        }
        let mut mk_query = {
            let queries = queries.clone();
            move |sv: f64| {
                let idx = if sv == 0.01 {
                    0
                } else if sv == 0.05 {
                    1
                } else {
                    2
                };
                queries[idx].clone()
            }
        };
        let rows = figure_decomposition(&mut mk_query, &mut mdb);
        print_decomposition(&rows);
    }
}

fn print_decomposition(rows: &[(String, [(String, f64); 4])]) {
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "config", "Merge", "Sjoin", "Store", "Project", "total"
    );
    for (label, buckets) in rows {
        let total: f64 = buckets.iter().map(|(_, v)| v).sum();
        println!(
            "{label:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {total:>10.3}",
            buckets[0].1, buckets[1].1, buckets[2].1, buckets[3].1
        );
    }
}
