//! Wall-clock performance baseline for the repo: runs a deterministic
//! scenario matrix (synthetic scales × filtering strategies × projection
//! algorithms, plus the medical workload and per-operator microbenches)
//! and writes a machine-readable `BENCH.json` — the number every future
//! perf PR is judged against.
//!
//! ```text
//! perfbench [--smoke] [--out BENCH.json] [--scale F] [--scale2 F]
//!           [--medical-scale F] [--iters N] [--threads N]
//!           [--intra-threads N] [--spill-policy P] [--padded]
//!           [--read-ahead N] [--serve]
//! perfbench --check BENCH.json
//! perfbench --compare A.json B.json [--tolerance PCT] [--exact]
//! ```
//!
//! Timing is `std::time::Instant` with warmup + median-of-N; simulated
//! times ride along from the Table 1 cost model (deterministic). The
//! microbenches measure each optimised operator against its naive
//! reference implementation, so the harness output itself carries the
//! before/after evidence for every hot-path change.
//!
//! `--threads N` fans the query sweeps across N worker threads (each with
//! its own private database — `ghostdb_exec::parallel::fan_out`), cutting
//! total harness wall-clock on multi-core machines. The scenario list is
//! byte-identical to the serial harness (`--compare` proves it) and
//! `simulated_s`/`ops`/`bytes_io` stay bit-identical, but per-point
//! `wall_ns` is timed while sibling points contend for memory bandwidth
//! and cache — compare wall numbers only between runs with the same
//! `--threads` (the emitted document records it). The committed baseline
//! is always a serial (`threads = 1`) run. Microbenches stay serial.

use ghostdb_bench::json::{
    check_bench, compare_exact_sim, compare_micro_wall, compare_scenarios, Json,
};
use ghostdb_bench::perf::{bench_doc, measure, percentile, BenchEntry, RunStats};
use ghostdb_bench::{
    build_medical, build_synthetic, build_synthetic_zipf, medical_q, query_q, run_with_tuned,
};
use ghostdb_bloom::hash::hash_i;
use ghostdb_bloom::{BlockedBloomFilter, BloomFilter};
use ghostdb_exec::merge::{merge_to_vec, merge_to_vec_streaming};
use ghostdb_exec::parallel::fan_out;
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::sjoin::sjoin_stream;
use ghostdb_exec::source::{IdSource, NaiveUnionStream, UnionStream};
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::{
    CiPrefetch, ExecCtx, ExecOptions, ExecReport, GhostDbServer, ServeConfig, SpillPolicy,
};
use ghostdb_flash::{
    FlashDevice, FlashGeometry, FlashTiming, Segment, SegmentAllocator, SimDuration,
};
use ghostdb_index::{ClimbingSpec, FkData, IndexBuilder, LevelSpec};
use ghostdb_storage::idlist::write_id_list;
use ghostdb_storage::schema::paper_synthetic_schema;
use ghostdb_storage::Id;
use ghostdb_storage::IdListReader;
use ghostdb_token::RamArena;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "\
perfbench — wall-clock performance baseline emitting BENCH.json

USAGE:
    perfbench [--smoke] [--out PATH] [--scale F] [--scale2 F]
              [--medical-scale F] [--iters N] [--threads N]
              [--intra-threads N] [--spill-policy P] [--padded]
              [--read-ahead N] [--serve]
    perfbench --check PATH
    perfbench --compare PATH PATH [--tolerance PCT] [--exact]

OPTIONS:
    --smoke            reduced matrix (one synthetic scale, fewer
                       iterations) targeting < 60 s — the CI configuration
    --out PATH         where to write BENCH.json (default BENCH.json)
    --scale F          first synthetic scale (default 0.01, T0 = 100 000;
                       smoke 0.002)
    --scale2 F         second synthetic scale, full mode only
                       (default 0.05, T0 = 500 000)
    --medical-scale F  medical dataset scale (default 0.2; smoke 0.01)
    --iters N          timed iterations per scenario (default 5; smoke 3)
    --threads N        worker threads for the query sweeps (default 1 =
                       serial; each worker owns a private database).
                       simulated_s/ops/bytes_io keep their serial values;
                       wall_ns is timed under concurrent sweep load, so
                       only compare it between runs with equal --threads —
                       keep the committed baseline a serial run
    --intra-threads N  worker lanes *inside* each query (operator-level
                       fan-out: per-table MJoin passes, host merges).
                       simulated_s/ops/bytes_io are bit-identical to the
                       serial executor at any value — only wall_ns moves
    --spill-policy P   reduction-phase spill policy: widest-smallest
                       (default) or global-smallest-k; recorded in the
                       document so alternatives A/B by number
    --padded           run the query sweeps with volume-padded Vis
                       shipments (power-of-two row buckets, the SECURITY.md
                       countermeasure); recorded in the document. The
                       dedicated synthetic-padded/ exact-vs-pow2 pairs run
                       in every document regardless of this flag
    --read-ahead N     run the query sweeps with an N-page vectored
                       read-ahead window on B+-tree leaf scans and probe
                       runs (0 = serial issue, the default).
                       simulated_s/ops/bytes_io are bit-identical at any
                       window — batching moves only the channel clock;
                       recorded in the document. The dedicated
                       micro/io/scan-vectored pair measures the win in
                       every document regardless of this flag
    --serve            add the serve-mode family: a closed-loop load
                       generator driving a `GhostDbServer` (sessions ×
                       batching on/off, deterministic arrival order) whose
                       `serve/…` entries carry per-query p50/p95/p99
                       submit→outcome latencies, an open-loop (timed
                       arrival schedule) pair whose percentiles are
                       arrival→outcome — coordinated-omission-free — plus
                       the micro/serve/batch-vs-solo isolation pair. Always
                       serial (the server is the concurrency)
    --check PATH       validate an existing BENCH.json and exit
    --compare A B      validate two BENCH.json files and fail if their
                       scenario names drift (parallel vs serial harness)
    --tolerance PCT    with --compare: judge the common micro/* wall times
                       instead of the name matrix, failing on regressions
                       beyond PCT percent (the CI perf gate; query names
                       may differ, e.g. committed full baseline vs smoke;
                       0 demands exactly-equal wall times)
    --exact            with --compare: additionally require bit-identical
                       simulated_s/ops/bytes_io per scenario (the intra-
                       parallel gate; wall_ns stays free)
    -h, --help         print this help and exit

The scenario set is a pure function of the flags: two runs with the same
flags emit the same scenarios in the same order (fixed dataset seeds, fixed
matrix). Wall times are medians over the timed iterations; simulated times
come from the Table 1 cost model and are bit-identical across runs.";

struct Opts {
    smoke: bool,
    out: String,
    scale: f64,
    scale2: f64,
    medical_scale: f64,
    iters: usize,
    threads: usize,
    intra_threads: usize,
    spill: SpillPolicy,
    padded: bool,
    read_ahead: usize,
    serve: bool,
    check: Option<String>,
    compare: Option<(String, String)>,
    tolerance: Option<f64>,
    exact: bool,
}

fn usage_error(msg: &str) -> ! {
    ghostdb_bench::cli::usage_error(msg, USAGE)
}

fn parse_positive(flag: &str, raw: &str) -> f64 {
    ghostdb_bench::cli::parse_positive(flag, raw, USAGE)
}

fn parse_count(flag: &str, raw: &str) -> usize {
    ghostdb_bench::cli::parse_count(flag, raw, USAGE)
}

fn parse_nonnegative(flag: &str, raw: &str) -> f64 {
    ghostdb_bench::cli::parse_nonnegative(flag, raw, USAGE)
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        smoke: false,
        out: "BENCH.json".into(),
        scale: 0.0, // resolved after --smoke is known
        scale2: 0.05,
        medical_scale: 0.0, // resolved after --smoke is known
        iters: 0,           // resolved after --smoke is known
        threads: 1,
        intra_threads: 1,
        spill: SpillPolicy::WidestSmallest,
        padded: false,
        read_ahead: 0,
        serve: false,
        check: None,
        compare: None,
        tolerance: None,
        exact: false,
    };
    let mut scale_set = false;
    let mut scale2_set = false;
    let mut medical_set = false;
    let mut iters_set = false;
    let args: Vec<String> = std::env::args().collect();
    let value_of = |args: &[String], i: usize| -> String {
        match args.get(i + 1) {
            Some(v) => v.clone(),
            None => usage_error(&format!("{} requires a value", args[i])),
        }
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--smoke" => {
                opts.smoke = true;
                i += 1;
            }
            "--out" => {
                opts.out = value_of(&args, i);
                i += 2;
            }
            "--scale" => {
                opts.scale = parse_positive("--scale", &value_of(&args, i));
                scale_set = true;
                i += 2;
            }
            "--scale2" => {
                opts.scale2 = parse_positive("--scale2", &value_of(&args, i));
                scale2_set = true;
                i += 2;
            }
            "--medical-scale" => {
                opts.medical_scale = parse_positive("--medical-scale", &value_of(&args, i));
                medical_set = true;
                i += 2;
            }
            "--iters" => {
                opts.iters = parse_count("--iters", &value_of(&args, i));
                iters_set = true;
                i += 2;
            }
            "--threads" => {
                opts.threads = parse_count("--threads", &value_of(&args, i));
                i += 2;
            }
            "--intra-threads" => {
                opts.intra_threads = parse_count("--intra-threads", &value_of(&args, i));
                i += 2;
            }
            "--spill-policy" => {
                let raw = value_of(&args, i);
                opts.spill = SpillPolicy::parse(&raw).unwrap_or_else(|| {
                    usage_error(&format!(
                        "bad --spill-policy {raw} (expected widest-smallest or global-smallest-k)"
                    ))
                });
                i += 2;
            }
            "--padded" => {
                opts.padded = true;
                i += 1;
            }
            "--read-ahead" => {
                let raw = value_of(&args, i);
                opts.read_ahead = raw.parse().unwrap_or_else(|_| {
                    usage_error(&format!("bad --read-ahead {raw} (expected an integer ≥ 0)"))
                });
                i += 2;
            }
            "--serve" => {
                opts.serve = true;
                i += 1;
            }
            "--tolerance" => {
                opts.tolerance = Some(parse_nonnegative("--tolerance", &value_of(&args, i)));
                i += 2;
            }
            "--exact" => {
                opts.exact = true;
                i += 1;
            }
            "--check" => {
                opts.check = Some(value_of(&args, i));
                i += 2;
            }
            "--compare" => {
                let a = value_of(&args, i);
                let b = match args.get(i + 2) {
                    Some(v) => v.clone(),
                    None => usage_error("--compare requires two paths"),
                };
                opts.compare = Some((a, b));
                i += 3;
            }
            other => usage_error(&format!("unknown argument {other}")),
        }
    }
    if !scale_set {
        opts.scale = if opts.smoke { 0.002 } else { 0.01 };
    }
    if !medical_set {
        opts.medical_scale = if opts.smoke { 0.01 } else { 0.2 };
    }
    if !iters_set {
        opts.iters = if opts.smoke { 3 } else { 5 };
    }
    // Degenerate matrices fail fast instead of after minutes of benching:
    // equal scales would emit duplicate scenario names (rejected by the
    // schema), and --scale2 is silently dead weight under --smoke.
    if opts.smoke && scale2_set {
        usage_error("--scale2 has no effect with --smoke (one synthetic scale)");
    }
    if !opts.smoke && opts.scale == opts.scale2 {
        usage_error("--scale and --scale2 must differ (duplicate scenarios)");
    }
    if (opts.tolerance.is_some() || opts.exact) && opts.compare.is_none() {
        usage_error("--tolerance/--exact only apply to --compare");
    }
    opts
}

fn load_doc(verb: &str, path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfbench {verb}: cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("perfbench {verb}: {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

fn run_compare(a: &str, b: &str, tolerance: Option<f64>, exact: bool) -> ! {
    let da = load_doc("--compare", a);
    let db = load_doc("--compare", b);
    let fail = |e: String| -> ! {
        eprintln!("perfbench --compare: {a} vs {b}: {e}");
        std::process::exit(1);
    };
    // The perf regression gate: judge micro wall times within tolerance.
    if let Some(pct) = tolerance {
        match compare_micro_wall(&da, &db, pct) {
            Ok(n) => println!("{a} vs {b}: OK — {n} micro scenarios within +{pct}%"),
            Err(e) => fail(e),
        }
    }
    // The intra-parallel gate: names + deterministic observations.
    if exact {
        match compare_exact_sim(&da, &db) {
            Ok(n) => println!(
                "{a} vs {b}: OK — {n} scenarios, identical names and \
                 bit-identical simulated observations"
            ),
            Err(e) => fail(e),
        }
    }
    if tolerance.is_none() && !exact {
        match compare_scenarios(&da, &db) {
            Ok(n) => println!("{a} and {b}: OK — {n} scenarios, identical names and order"),
            Err(e) => fail(e),
        }
    }
    std::process::exit(0);
}

fn run_check(path: &str) -> ! {
    let doc = load_doc("--check", path);
    match check_bench(&doc) {
        Ok(s) => {
            println!(
                "{path}: OK — {} entries ({} query scenarios, {} microbenches)",
                s.entries, s.scenarios, s.micro
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("perfbench --check: {path} violates the BENCH schema: {e}");
            std::process::exit(1);
        }
    }
}

fn report_stats(report: &ExecReport) -> RunStats {
    RunStats {
        simulated_s: report.total().as_secs(),
        ops: report.result_rows,
        bytes_io: report.io.bytes_to_ram + report.io.bytes_from_ram,
        channel: None,
    }
}

/// Fan sweep points across `threads` workers, each owning its private
/// database, in deterministic point order. `threads == 1` is the plain
/// serial loop (one database, no spawn), so the serial harness is
/// bit-for-bit the pre-parallel one.
fn sweep<S: Send>(
    label: &str,
    points: usize,
    threads: usize,
    build: impl Fn() -> S + Sync,
    run_point: impl Fn(&mut S, usize) -> BenchEntry + Sync,
) -> Vec<BenchEntry> {
    eprintln!("perfbench: {label}: {points} points on {threads} thread(s)");
    fan_out(points, threads, || Ok(build()), |s, i| Ok(run_point(s, i))).unwrap_or_else(|e| {
        eprintln!("perfbench: {label} sweep failed: {e}");
        std::process::exit(1);
    })
}

/// Visible selectivities the synthetic matrix sweeps for the `Project`
/// algorithm (the paper's x-axis lives on a log scale; these are its low,
/// middle and high anchor points). `BruteForce` runs at the middle point
/// only — its curve shape is selectivity-insensitive by construction (it
/// always loads the whole QEPSJ result), so sweeping it would triple the
/// matrix for flat lines.
const SV_POINTS: [f64; 3] = [0.001, 0.01, 0.1];
const SV_MID: f64 = 0.01;

/// The synthetic query matrix at one scale: full `VisStrategy` sweep under
/// `Project` across the sV anchors, plus the full sweep under `BruteForce`
/// at the middle anchor.
fn synthetic_scenarios(
    scale: f64,
    warmup: usize,
    iters: usize,
    tune: Tuning,
    out: &mut Vec<BenchEntry>,
) {
    let strategies = [
        VisStrategy::Pre,
        VisStrategy::CrossPre,
        VisStrategy::Post,
        VisStrategy::CrossPost,
        VisStrategy::PostSelect,
        VisStrategy::CrossPostSelect,
        VisStrategy::NoFilter,
    ];
    let mut points: Vec<(f64, VisStrategy, ProjectAlgo)> = Vec::new();
    for sv in SV_POINTS {
        for s in strategies {
            points.push((sv, s, ProjectAlgo::Project));
        }
    }
    for s in strategies {
        points.push((SV_MID, s, ProjectAlgo::BruteForce));
    }
    out.extend(sweep(
        &format!("synthetic x{scale}"),
        points.len(),
        tune.threads,
        || build_synthetic(scale),
        |(ds, db), i| {
            let (sv, strategy, algo) = points[i];
            let q = query_q(ds, db, sv, false);
            let name = format!(
                "synthetic/x{scale}/sv{sv}/{}/{}",
                strategy.name(),
                algo.name()
            );
            eprintln!("perfbench: {name}");
            measure(name, warmup, iters, || {
                report_stats(&run_with_tuned(
                    db,
                    &q,
                    strategy,
                    algo,
                    tune.intra,
                    tune.spill,
                    tune.padded,
                    tune.read_ahead,
                ))
            })
        },
    ));
}

/// The Zipf-skewed synthetic variant: heavy-headed value distributions at
/// the primary scale, Cross strategies under `Project` (§6.4's Q shape).
fn zipf_scenarios(
    scale: f64,
    warmup: usize,
    iters: usize,
    tune: Tuning,
    out: &mut Vec<BenchEntry>,
) {
    let points = [VisStrategy::CrossPre, VisStrategy::CrossPost];
    out.extend(sweep(
        &format!("synthetic-zipf x{scale}"),
        points.len(),
        tune.threads,
        || build_synthetic_zipf(scale),
        |(ds, db), i| {
            let strategy = points[i];
            let q = query_q(ds, db, 0.1, false);
            let name = format!("synthetic-zipf/x{scale}/{}", strategy.name());
            eprintln!("perfbench: {name}");
            measure(name, warmup, iters, || {
                report_stats(&run_with_tuned(
                    db,
                    &q,
                    strategy,
                    ProjectAlgo::Project,
                    tune.intra,
                    tune.spill,
                    tune.padded,
                    tune.read_ahead,
                ))
            })
        },
    ));
}

/// High-cardinality Cross scenarios: the hidden selection sits on `T1.h1`
/// — one distinct key per row, so the index B+-tree spans hundreds of
/// leaves and the CI scan is a visible share of the query. This is where
/// the single-traversal multi-level read path shows up end to end, not
/// just in the `micro/ci/multi-*` isolation pair.
fn hicard_scenarios(
    scale: f64,
    warmup: usize,
    iters: usize,
    tune: Tuning,
    out: &mut Vec<BenchEntry>,
) {
    let points = [VisStrategy::CrossPre, VisStrategy::CrossPost];
    out.extend(sweep(
        &format!("synthetic-hicard x{scale}"),
        points.len(),
        tune.threads,
        || build_synthetic(scale),
        |(ds, db), i| {
            let strategy = points[i];
            let q = ghostdb_bench::query_q_hicard(ds, db, 0.01, 0.25);
            let name = format!("synthetic-hicard/x{scale}/{}", strategy.name());
            eprintln!("perfbench: {name}");
            measure(name, warmup, iters, || {
                report_stats(&run_with_tuned(
                    db,
                    &q,
                    strategy,
                    ProjectAlgo::Project,
                    tune.intra,
                    tune.spill,
                    tune.padded,
                    tune.read_ahead,
                ))
            })
        },
    ));
}

/// Exact-vs-pow2 padding A/B pairs: the same Cross query at sV = 0.1 run
/// once with exact-volume Vis shipments and once with the power-of-two
/// padded mode (the SECURITY.md wire-volume countermeasure), so every
/// BENCH.json carries the padding overhead regardless of `--padded`. The
/// pad mode is set per point here, independent of `tune.padded`.
fn padded_scenarios(
    scale: f64,
    warmup: usize,
    iters: usize,
    tune: Tuning,
    out: &mut Vec<BenchEntry>,
) {
    let points = [
        (VisStrategy::CrossPre, false),
        (VisStrategy::CrossPre, true),
        (VisStrategy::CrossPost, false),
        (VisStrategy::CrossPost, true),
    ];
    out.extend(sweep(
        &format!("synthetic-padded x{scale}"),
        points.len(),
        tune.threads,
        || build_synthetic(scale),
        |(ds, db), i| {
            let (strategy, padded) = points[i];
            let q = query_q(ds, db, 0.1, false);
            let name = format!(
                "synthetic-padded/x{scale}/{}/{}",
                strategy.name(),
                if padded { "pow2" } else { "exact" }
            );
            eprintln!("perfbench: {name}");
            measure(name, warmup, iters, || {
                report_stats(&run_with_tuned(
                    db,
                    &q,
                    strategy,
                    ProjectAlgo::Project,
                    tune.intra,
                    tune.spill,
                    padded,
                    tune.read_ahead,
                ))
            })
        },
    ));
}

fn medical_scenarios(
    scale: f64,
    warmup: usize,
    iters: usize,
    tune: Tuning,
    out: &mut Vec<BenchEntry>,
) {
    let points = [VisStrategy::CrossPre, VisStrategy::CrossPost];
    out.extend(sweep(
        &format!("medical x{scale}"),
        points.len(),
        tune.threads,
        || build_medical(scale),
        |(ds, db), i| {
            let strategy = points[i];
            let q = medical_q(ds, db, 0.05);
            let name = format!("medical/x{scale}/{}", strategy.name());
            eprintln!("perfbench: {name}");
            measure(name, warmup, iters, || {
                report_stats(&run_with_tuned(
                    db,
                    &q,
                    strategy,
                    ProjectAlgo::Project,
                    tune.intra,
                    tune.spill,
                    tune.padded,
                    tune.read_ahead,
                ))
            })
        },
    ));
}

/// The serve-mode family: a closed-loop load generator driving a
/// [`GhostDbServer`] over the synthetic dataset. Every query carries the
/// same hidden probe (`T12.h2` at the paper's sH), so concurrently queued
/// queries share one climbing-index traversal when batching is on; the
/// visible selectivity cycles so result shapes vary. The matrix is
/// sessions {1, 4} × batching {on, off}; arrival order is deterministic
/// (round-robin across sessions, waves of `queue_depth`). `wall_ns` is the
/// median whole-run time as everywhere else; the `serve/…` entries
/// additionally record per-query submit→outcome latency percentiles —
/// the numbers a closed-loop client actually feels under load.
/// Batching must not change `simulated_s`/`ops`/`bytes_io` (the as-if-solo
/// billing contract, `tests/serve_equivalence.rs`), so those stay under
/// the `--compare --exact` gate like every other scenario.
fn serve_scenarios(scale: f64, warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    const DEPTH: usize = 8;
    const WAVES: usize = 3;
    const SESSIONS: [usize; 2] = [1, 4];
    for n_sessions in SESSIONS {
        for batching in [true, false] {
            let (ds, db) = build_synthetic(scale);
            let queries: Vec<_> = (0..DEPTH * WAVES)
                .map(|i| query_q(&ds, &db, [0.001, 0.01, 0.1][i % 3], false))
                .collect();
            let opts = ExecOptions::new().strategy(VisStrategy::CrossPost);
            let server =
                GhostDbServer::new(db, ServeConfig::new().queue_depth(DEPTH).batching(batching))
                    .unwrap_or_else(|e| {
                        eprintln!("perfbench: serve server build failed: {e}");
                        std::process::exit(1);
                    });
            let sessions: Vec<_> = (0..n_sessions).map(|_| server.session()).collect();
            let name = format!(
                "serve/x{scale}/s{n_sessions}/{}",
                if batching { "batch" } else { "nobatch" }
            );
            eprintln!("perfbench: {name}");
            let mut lat: Vec<u128> = Vec::new();
            let mut entry = measure(name.as_str(), warmup, iters, || {
                let mut stats = RunStats::default();
                for wave in queries.chunks(DEPTH) {
                    let mut submitted: Vec<Instant> = Vec::with_capacity(wave.len());
                    for (i, q) in wave.iter().enumerate() {
                        submitted.push(Instant::now());
                        sessions[i % n_sessions]
                            .submit(q, &opts)
                            .unwrap_or_else(|e| {
                                eprintln!("perfbench: {name}: admission failed: {e}");
                                std::process::exit(1);
                            });
                    }
                    server.drain().unwrap_or_else(|e| {
                        eprintln!("perfbench: {name}: drain failed: {e}");
                        std::process::exit(1);
                    });
                    let done = Instant::now();
                    for t in submitted {
                        lat.push(done.duration_since(t).as_nanos());
                    }
                    for s in &sessions {
                        while let Some(o) = s.take() {
                            let o = o.unwrap_or_else(|e| {
                                eprintln!("perfbench: {name}: served query failed: {e}");
                                std::process::exit(1);
                            });
                            stats.simulated_s += o.report.total().as_secs();
                            stats.ops += o.report.result_rows;
                            stats.bytes_io += o.report.io.bytes_to_ram + o.report.io.bytes_from_ram;
                        }
                    }
                }
                stats
            });
            // Percentiles over the timed iterations only (each run pushes
            // one sample per query, warmup first).
            let timed = &lat[warmup * queries.len()..];
            entry.percentiles = Some((
                percentile(timed, 0.5),
                percentile(timed, 0.95),
                percentile(timed, 0.99),
            ));
            out.push(entry);
            let saved = server.batch_stats().saved_traversals;
            if batching && saved == 0 {
                eprintln!("perfbench: {name}: the batch scheduler never engaged");
                std::process::exit(1);
            }
            if !batching && saved != 0 {
                eprintln!("perfbench: {name}: batching disabled yet traversals were shared");
                std::process::exit(1);
            }
            eprintln!("perfbench: {name}: {saved} traversals saved");
        }
    }
}

/// The open-loop (timed-arrival) serve family. The closed-loop generator
/// above waits for each wave to drain before submitting the next, so
/// queueing delay hides behind client coordination (coordinated omission);
/// here queries arrive on a fixed schedule regardless of server progress,
/// and each latency sample runs from the query's *scheduled arrival* — not
/// the instant it was actually submitted — to the drain that completed it.
/// The inter-arrival gap is calibrated once per point from an untimed
/// closed-loop wave (per-query service time at full depth), so offered
/// load sits at ≈ capacity and queue build-up is visible in the tail.
/// Entries are `serve/x{scale}/open/{batch,nobatch}`; their percentiles
/// are arrival→outcome. Simulated observations stay deterministic and
/// schedule-independent (the as-if-solo billing contract), so these
/// entries sit under `--compare --exact` like every other scenario.
fn serve_open_scenarios(scale: f64, warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    const DEPTH: usize = 8;
    const WAVES: usize = 3;
    for batching in [true, false] {
        let (ds, db) = build_synthetic(scale);
        let queries: Vec<_> = (0..DEPTH * WAVES)
            .map(|i| query_q(&ds, &db, [0.001, 0.01, 0.1][i % 3], false))
            .collect();
        let opts = ExecOptions::new().strategy(VisStrategy::CrossPost);
        let server =
            GhostDbServer::new(db, ServeConfig::new().queue_depth(DEPTH).batching(batching))
                .unwrap_or_else(|e| {
                    eprintln!("perfbench: serve-open server build failed: {e}");
                    std::process::exit(1);
                });
        let session = server.session();
        let name = format!(
            "serve/x{scale}/open/{}",
            if batching { "batch" } else { "nobatch" }
        );
        eprintln!("perfbench: {name}");
        let fail = |what: &str, e: String| -> ! {
            eprintln!("perfbench: {name}: {what}: {e}");
            std::process::exit(1);
        };
        // Calibrate the arrival schedule: one untimed closed-loop wave
        // gives the per-query service time at full depth.
        let cal = Instant::now();
        for q in &queries[..DEPTH] {
            session
                .submit(q, &opts)
                .unwrap_or_else(|e| fail("calibration admission failed", e.to_string()));
        }
        server
            .drain()
            .unwrap_or_else(|e| fail("calibration drain failed", e.to_string()));
        let gap = cal.elapsed() / DEPTH as u32;
        while let Some(o) = session.take() {
            o.unwrap_or_else(|e| fail("calibration query failed", e.to_string()));
        }
        let mut lat: Vec<u128> = Vec::new();
        let mut entry = measure(name.as_str(), warmup, iters, || {
            let mut stats = RunStats::default();
            let t0 = Instant::now();
            for (w, wave) in queries.chunks(DEPTH).enumerate() {
                for (i, q) in wave.iter().enumerate() {
                    // Hold the submission to its scheduled arrival.
                    let due = t0 + gap * (w * DEPTH + i) as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    session
                        .submit(q, &opts)
                        .unwrap_or_else(|e| fail("admission failed", e.to_string()));
                }
                server
                    .drain()
                    .unwrap_or_else(|e| fail("drain failed", e.to_string()));
                let done = t0.elapsed().as_nanos();
                for i in 0..wave.len() {
                    let arrival = (gap * (w * DEPTH + i) as u32).as_nanos();
                    lat.push(done.saturating_sub(arrival));
                }
                while let Some(o) = session.take() {
                    let o = o.unwrap_or_else(|e| fail("served query failed", e.to_string()));
                    stats.simulated_s += o.report.total().as_secs();
                    stats.ops += o.report.result_rows;
                    stats.bytes_io += o.report.io.bytes_to_ram + o.report.io.bytes_from_ram;
                }
            }
            stats
        });
        let timed = &lat[warmup * queries.len()..];
        entry.percentiles = Some((
            percentile(timed, 0.5),
            percentile(timed, 0.95),
            percentile(timed, 0.99),
        ));
        out.push(entry);
    }
}

/// Bulk ingest through the `GhostDb` facade: stage rows pre-finalize, then
/// time the whole burn — vertical partitioning, download onto the token's
/// flash, and batched per-segment index construction (`finalize()` →
/// `Database::assemble`). `ops` is the staged row count, so rows/sec falls
/// straight out of `ops / (wall_ns / 1e9)`; `simulated_s`/`bytes_io` carry
/// the token-side flash cost of the load (deterministic, so these entries
/// sit under the `--compare --exact` gate).
fn ingest_scenarios(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    use ghostdb_core::{GhostDb, GhostDbConfig};
    use ghostdb_storage::Value;
    for rows in [1024u64, 4096] {
        let name = format!("ingest/ghostdb/rows{rows}");
        eprintln!("perfbench: {name}");
        let entry = measure(name.as_str(), warmup, iters, || {
            let mut db = GhostDb::new(GhostDbConfig::default());
            db.execute(
                "CREATE TABLE Accounts (id INT, branch CHAR(10), balance INT HIDDEN, \
                 owner CHAR(20) HIDDEN)",
            )
            .unwrap_or_else(|e| {
                eprintln!("perfbench: ingest DDL failed: {e}");
                std::process::exit(1);
            });
            db.insert_rows(
                "Accounts",
                (0..rows as i64)
                    .map(|i| {
                        vec![
                            Value::Str(format!("BR{:02}", i % 32)),
                            Value::Int(1_000 + i * 13),
                            Value::Str(format!("owner-{i}")),
                        ]
                    })
                    .collect(),
            )
            .unwrap_or_else(|e| {
                eprintln!("perfbench: ingest staging failed: {e}");
                std::process::exit(1);
            });
            db.finalize().unwrap_or_else(|e| {
                eprintln!("perfbench: ingest finalize failed: {e}");
                std::process::exit(1);
            });
            let flash = &db.database().expect("loaded").token.flash;
            let io = flash.stats();
            RunStats {
                simulated_s: flash.elapsed_since(&Default::default()).as_secs(),
                ops: rows,
                bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                channel: None,
            }
        });
        eprintln!(
            "perfbench: {name}: {:.0} rows/s",
            rows as f64 / (entry.wall_ns.max(1) as f64 / 1e9)
        );
        out.push(entry);
    }
}

/// The GC-pressure family: sustained mixed read/write traffic on a device
/// already past the GC watermark (every logical page mapped before the
/// clock starts). Arrivals are open-loop — a fixed schedule calibrated to
/// ≈ capacity from an untimed burst, with each latency sample running from
/// the op's *scheduled arrival* to its completion — so GC stalls surface
/// in the tail instead of hiding behind client coordination, exactly like
/// the `serve/…/open/…` entries. Per-op counters are a pure function of
/// the op sequence (placement never feeds back into billing), so
/// `simulated_s`/`ops`/`bytes_io` stay bit-identical across runs and sit
/// under the `--compare --exact` gate; the in-binary assertion that blocks
/// were actually erased keeps the family honest about being past the
/// watermark.
fn gc_pressure_scenarios(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    const CAL: usize = 256;
    const OPS: usize = 3000;
    for chips in [1usize, 4] {
        let name = format!("gc-pressure/c{chips}/mixed");
        eprintln!("perfbench: {name}");
        let mut lat: Vec<u128> = Vec::new();
        let mut erased = 0u64;
        let mut entry = {
            let lat = &mut lat;
            let erased = &mut erased;
            measure(name.as_str(), warmup, iters, || {
                // A fresh device per run keeps the counter deltas a pure
                // function of the op sequence (no cross-iteration GC state).
                let mut dev = FlashDevice::with_chips(
                    FlashGeometry {
                        page_size: 2048,
                        pages_per_block: 32,
                        block_count: 64,
                        spare_blocks: 8,
                    },
                    FlashTiming::default(),
                    chips,
                );
                let span = dev.logical_pages();
                let page_size = dev.page_size();
                let image = vec![0xA5u8; page_size];
                for lpn in 0..span {
                    dev.write(lpn, &image).expect("pre-fill");
                }
                // Deterministic mixed op stream: 2/3 full-page overwrites
                // (steady GC pressure), 1/3 reads.
                let mut seed = 0x2545F4914F6CDD1Du64;
                let mut next = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                let mut buf = vec![0u8; 256];
                let mut run_op = |dev: &mut FlashDevice, r: u64| {
                    let lpn = (r >> 8) % span;
                    if r.is_multiple_of(3) {
                        dev.read(lpn, 0, &mut buf).expect("gc-pressure read");
                    } else {
                        let fill = vec![r as u8; page_size];
                        dev.write(lpn, &fill).expect("gc-pressure write");
                    }
                };
                // Calibrate the arrival schedule from an untimed burst.
                let cal = Instant::now();
                for _ in 0..CAL {
                    run_op(&mut dev, next());
                }
                let gap = cal.elapsed() / CAL as u32;
                // The measured window: open-loop arrivals at ≈ capacity.
                let snap = dev.snapshot();
                let t0 = Instant::now();
                for i in 0..OPS {
                    let due = t0 + gap * i as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    run_op(&mut dev, next());
                    let arrival = (gap * i as u32).as_nanos();
                    lat.push(t0.elapsed().as_nanos().saturating_sub(arrival));
                }
                let io = dev.stats_since(&snap);
                *erased = io.blocks_erased;
                RunStats {
                    simulated_s: dev.elapsed_since(&snap).as_secs(),
                    ops: OPS as u64,
                    bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                    channel: None,
                }
            })
        };
        if erased == 0 {
            eprintln!(
                "perfbench: {name}: no blocks erased during the measured window — \
                 the device never reached GC pressure"
            );
            std::process::exit(1);
        }
        let timed = &lat[warmup * OPS..];
        entry.percentiles = Some((
            percentile(timed, 0.5),
            percentile(timed, 0.95),
            percentile(timed, 0.99),
        ));
        eprintln!("perfbench: {name}: {erased} blocks erased under load");
        out.push(entry);
    }
}

fn micro_device() -> (FlashDevice, SegmentAllocator, RamArena) {
    let dev = FlashDevice::new(
        FlashGeometry::for_capacity(64 * 1024 * 1024),
        FlashTiming::default(),
    );
    let alloc = SegmentAllocator::new(dev.logical_pages());
    (dev, alloc, RamArena::paper_default())
}

/// k-way union: naive scan-per-element vs binary heap, over 16 flash lists.
fn micro_union(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    let (mut dev, mut alloc, ram) = micro_device();
    let sources: Vec<IdSource> = (0..16u32)
        .map(|k| {
            let ids: Vec<Id> = (0..4000u32).map(|i| i * (k % 5 + 1) + k).collect();
            IdSource::Flash(write_id_list(&mut dev, &mut alloc, &ram, &ids).unwrap())
        })
        .collect();
    out.push(measure("micro/merge/union16_naive", warmup, iters, || {
        let mut u = NaiveUnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        let mut n = 0u64;
        while u.next(&mut dev).unwrap().is_some() {
            n += 1;
        }
        RunStats {
            ops: n,
            ..Default::default()
        }
    }));
    out.push(measure("micro/merge/union16_heap", warmup, iters, || {
        let mut u = UnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        let mut n = 0u64;
        while u.next(&mut dev).unwrap().is_some() {
            n += 1;
        }
        RunStats {
            ops: n,
            ..Default::default()
        }
    }));
}

/// Host-resident CNF merge: streaming machinery vs galloping fast path.
fn micro_intersect(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    let mut db = ghostdb_exec::testkit::tiny_db();
    let a: Arc<Vec<Id>> = Arc::new((0..200_000u32).map(|i| i * 2).collect());
    let b: Arc<Vec<Id>> = Arc::new((0..200_000u32).map(|i| i * 3).collect());
    let groups = |a: &Arc<Vec<Id>>, b: &Arc<Vec<Id>>| {
        vec![
            vec![IdSource::Host(a.clone())],
            vec![IdSource::Host(b.clone())],
        ]
    };
    out.push(measure(
        "micro/idlist/intersect_stream",
        warmup,
        iters,
        || {
            let mut ctx = ExecCtx::new(&mut db);
            let ids = merge_to_vec_streaming(&mut ctx, groups(&a, &b)).unwrap();
            RunStats {
                ops: ids.len() as u64,
                ..Default::default()
            }
        },
    ));
    out.push(measure(
        "micro/idlist/intersect_gallop",
        warmup,
        iters,
        || {
            let mut ctx = ExecCtx::new(&mut db);
            let ids = merge_to_vec(&mut ctx, groups(&a, &b)).unwrap();
            RunStats {
                ops: ids.len() as u64,
                ..Default::default()
            }
        },
    ));
}

/// Bloom build + probe: per-index rehashing vs single-pair double hashing.
fn micro_bloom(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    let n = 100_000u64;
    let m_bits = 8 * n;
    let k = 4u32;
    let bytes = (m_bits as usize).div_ceil(8);
    out.push(measure("micro/bloom/build_naive", warmup, iters, || {
        let mut bits = vec![0u8; bytes];
        for key in 0..n {
            for i in 0..k {
                let bit = hash_i(key, i) % m_bits;
                bits[(bit / 8) as usize] |= 1u8 << (bit % 8);
            }
        }
        std::hint::black_box(&bits);
        RunStats {
            ops: n,
            ..Default::default()
        }
    }));
    out.push(measure("micro/bloom/build_dh", warmup, iters, || {
        let mut bf = BloomFilter::new(vec![0u8; bytes], m_bits, k);
        for key in 0..n {
            bf.insert(key);
        }
        std::hint::black_box(&bf);
        RunStats {
            ops: n,
            ..Default::default()
        }
    }));

    let mut bf = BloomFilter::new(vec![0u8; bytes], m_bits, k);
    let mut naive_bits = vec![0u8; bytes];
    for key in (0..2 * n).step_by(2) {
        bf.insert(key);
        for i in 0..k {
            let bit = hash_i(key, i) % m_bits;
            naive_bits[(bit / 8) as usize] |= 1u8 << (bit % 8);
        }
    }
    let probes: Vec<u64> = (0..2 * n).collect();
    let mut naive_scratch: Vec<u64> = Vec::new();
    out.push(measure("micro/bloom/probe_naive", warmup, iters, || {
        naive_scratch.clear();
        naive_scratch.extend(probes.iter().copied().filter(|&key| {
            (0..k).all(|i| {
                let bit = hash_i(key, i) % m_bits;
                naive_bits[(bit / 8) as usize] & (1u8 << (bit % 8)) != 0
            })
        }));
        std::hint::black_box(naive_scratch.len());
        RunStats {
            ops: probes.len() as u64,
            ..Default::default()
        }
    }));
    let mut scratch: Vec<u64> = Vec::new();
    out.push(measure("micro/bloom/probe_dh", warmup, iters, || {
        bf.retain_into(&probes, &mut scratch);
        std::hint::black_box(scratch.len());
        RunStats {
            ops: probes.len() as u64,
            ..Default::default()
        }
    }));

    // The blocked ("split") candidate: one cache line per key, judged
    // against double hashing. The executor only adopts it if these show a
    // wall-clock win — on cache-resident token-sized filters the locality
    // argument is weak, and this pair records the measured verdict.
    out.push(measure("micro/bloom/build_blocked", warmup, iters, || {
        let mut bf = BlockedBloomFilter::new(vec![0u8; bytes], m_bits, k);
        for key in 0..n {
            bf.insert(key);
        }
        std::hint::black_box(&bf);
        RunStats {
            ops: n,
            ..Default::default()
        }
    }));
    let mut blk = BlockedBloomFilter::new(vec![0u8; bytes], m_bits, k);
    for key in (0..2 * n).step_by(2) {
        blk.insert(key);
    }
    let mut blk_scratch: Vec<u64> = Vec::new();
    out.push(measure("micro/bloom/probe_blocked", warmup, iters, || {
        blk.retain_into(&probes, &mut blk_scratch);
        std::hint::black_box(blk_scratch.len());
        RunStats {
            ops: probes.len() as u64,
            ..Default::default()
        }
    }));
}

/// Climbing-index equality probes: per-id descents vs the batched
/// ascending run sharing the cached leaf.
fn micro_ci_probe(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    let schema = paper_synthetic_schema(1, 1);
    let (mut dev, mut alloc, ram) = micro_device();
    let t0 = schema.table_id("T0").unwrap();
    let t1 = schema.table_id("T1").unwrap();
    let t2 = schema.table_id("T2").unwrap();
    let t11 = schema.table_id("T11").unwrap();
    let t12 = schema.table_id("T12").unwrap();
    let (n0, n1) = (40_000u64, 20_000u64);
    let mut rows = vec![0u64; schema.len()];
    rows[t0] = n0;
    rows[t1] = n1;
    rows[t2] = 10;
    rows[t11] = 5;
    rows[t12] = 4;
    let mut fks = FkData::default();
    fks.insert(t0, t1, (0..n0).map(|i| (i / 2) as Id).collect());
    fks.insert(t0, t2, (0..n0).map(|i| (i % 10) as Id).collect());
    fks.insert(t1, t11, (0..n1).map(|i| (i % 5) as Id).collect());
    fks.insert(t1, t12, (0..n1).map(|i| (i % 4) as Id).collect());
    let builder = IndexBuilder::new(schema, rows, fks);
    let keys: Vec<u64> = (0..n1).map(|r| r % 5000).collect();
    let ci = builder
        .build_climbing(
            &mut dev,
            &mut alloc,
            ClimbingSpec {
                table: t1,
                column: "h1",
                keys: &keys,
                levels: LevelSpec::FullClimb,
                exact: true,
            },
        )
        .unwrap();
    let probes: Vec<u64> = (0..2000u64).map(|i| i * 2).collect();
    out.push(measure("micro/ci/probe_scalar", warmup, iters, || {
        let mut probe = ci.probe(&ram).unwrap();
        let mut found = 0u64;
        for &key in &probes {
            if probe.lookup_eq(&mut dev, key, 1).unwrap().is_some() {
                found += 1;
            }
        }
        RunStats {
            ops: found,
            ..Default::default()
        }
    }));
    out.push(measure("micro/ci/probe_run", warmup, iters, || {
        let mut probe = ci.probe(&ram).unwrap();
        let lists = probe.lookup_eq_run(&mut dev, &probes, 1).unwrap();
        RunStats {
            ops: lists.len() as u64,
            ..Default::default()
        }
    }));
}

/// Multi-level climbing-index range scans: the naive per-level traversal
/// vs the single traversal decoding every requested level per leaf entry
/// (the Cross-Post "redundant lookup" fix). A 4-deep chain schema
/// `C0 ← C1 ← C2 ← C3` gives the index 4 levels (48-byte payloads, 36 leaf
/// entries per 2 KiB page), so the full-domain scan walks ~330 leaves —
/// the naive path re-reads them once per extra level.
fn micro_ci_multi(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    use ghostdb_storage::schema::{Column, SchemaTree, TableDef};
    use ghostdb_storage::ColumnType;
    let col = || Column::hidden("h", ColumnType::char(8));
    let schema = SchemaTree::new(vec![
        TableDef::new("C0").with_column(col()).with_fk("fk1", "C1"),
        TableDef::new("C1").with_column(col()).with_fk("fk2", "C2"),
        TableDef::new("C2").with_column(col()).with_fk("fk3", "C3"),
        TableDef::new("C3").with_column(col()),
    ])
    .expect("chain schema");
    let (mut dev, mut alloc, ram) = micro_device();
    let rows = vec![80_000u64, 40_000, 20_000, 30_000]; // C0..C3
    let mut fks = FkData::default();
    for parent in 0..3usize {
        let child_rows = rows[parent + 1];
        fks.insert(
            parent,
            parent + 1,
            (0..rows[parent]).map(|i| (i % child_rows) as Id).collect(),
        );
    }
    let keys: Vec<u64> = (0..rows[3]).map(|r| r % 12_000).collect();
    let ci = IndexBuilder::new(schema, rows, fks)
        .build_climbing(
            &mut dev,
            &mut alloc,
            ClimbingSpec {
                table: 3,
                column: "h",
                keys: &keys,
                levels: LevelSpec::FullClimb,
                exact: true,
            },
        )
        .expect("chain index builds");
    assert_eq!(ci.levels.len(), 4);
    let (lo, hi) = (0u64, 12_000u64);
    // Unlike the host-side micros, these record `bytes_io` too: the
    // naive-vs-single flash-byte ratio (≈ levels requested) is the
    // Cross-Post CI cost reduction, carried straight into BENCH.json.
    for (tag, levels) in [("2lvl", vec![0usize, 3]), ("4lvl", vec![0, 1, 2, 3])] {
        let naive_levels = levels.clone();
        out.push(measure(
            format!("micro/ci/multi-{tag}_naive"),
            warmup,
            iters,
            || {
                let mut probe = ci.probe(&ram).unwrap();
                let snap = dev.snapshot();
                let mut lists = 0u64;
                for &level in &naive_levels {
                    lists += probe
                        .naive_lookup_range(&mut dev, lo, hi, level)
                        .unwrap()
                        .len() as u64;
                }
                let io = dev.stats_since(&snap);
                RunStats {
                    ops: lists,
                    bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                    ..Default::default()
                }
            },
        ));
        out.push(measure(
            format!("micro/ci/multi-{tag}_single"),
            warmup,
            iters,
            || {
                let mut probe = ci.probe(&ram).unwrap();
                let snap = dev.snapshot();
                let all = probe.lookup_range_multi(&mut dev, lo, hi, &levels).unwrap();
                let io = dev.stats_since(&snap);
                RunStats {
                    ops: all.iter().map(|l| l.len() as u64).sum(),
                    bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                    ..Default::default()
                }
            },
        ));
    }
}

/// SJoin stream throughput over the synthetic SKT.
fn micro_sjoin(scale: f64, warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    let (_, mut db) = build_synthetic(scale);
    let root = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let t12 = db.schema.table_id("T12").unwrap();
    let rows = db.rows[root].min(20_000);
    out.push(measure("micro/sjoin/stream", warmup, iters, || {
        let mut ctx = ExecCtx::new(&mut db);
        let skt = ctx.skt(root).unwrap();
        let mut next = 0 as Id;
        let emitted = sjoin_stream(
            &mut ctx,
            skt,
            &[t1, t12],
            |_ctx| {
                if (next as u64) < rows {
                    let v = next;
                    next += 1;
                    Ok(Some(v))
                } else {
                    Ok(None)
                }
            },
            |_ctx, _id, _targets| Ok(()),
        )
        .unwrap();
        RunStats {
            ops: emitted,
            ..Default::default()
        }
    }));
}

/// Disjoint-chip channel scaling on the sharded flash device — the
/// multi-chip array's bank gate. Four independent id-list jobs (write +
/// full readback) run against a 4-chip device three ways: all through one
/// chip slice (`serial`), pinned round-robin onto 2 chips (`x2`), and onto
/// all 4 (`x4`) — the same per-chip slice carving `ExecCtx::run_lanes`
/// performs, issued through forked per-chunk device handles. Every per-op
/// cost is placement-independent, so issue order cannot change any chip's
/// busy time: the channel-makespan delta (busiest chip) is exactly the
/// completion time of that many concurrently streaming channels, measured
/// deterministically even on a single-core host. `simulated_s` carries the
/// single-channel issue sum for `serial` and the makespan for `x2`/`x4`;
/// the ≥1.7x / ≥3x scaling floors are asserted right here, so every
/// perfbench run doubles as the lane-scaling smoke gate.
fn micro_lanes(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    const CHIPS: usize = 4;
    const JOBS: usize = 4;
    const IDS_PER_JOB: u64 = 20_000;
    let mut dev = FlashDevice::with_chips(
        FlashGeometry::for_capacity(8 * 1024 * 1024),
        FlashTiming::default(),
        CHIPS,
    );
    let mut alloc = SegmentAllocator::with_chips(dev.logical_pages(), CHIPS);
    let ram = RamArena::paper_default();
    let chip_pages = dev.chip_pages();
    let page_size = dev.page_size();
    let mut ratios = [0.0f64; 3];
    for (slot, (lanes, name)) in [
        (1usize, "micro/lanes/serial"),
        (2, "micro/lanes/x2"),
        (4, "micro/lanes/x4"),
    ]
    .into_iter()
    .enumerate()
    {
        let ratio = &mut ratios[slot];
        let dev = &mut dev;
        let alloc = &mut alloc;
        out.push(measure(name, warmup, iters, || {
            let io_before = dev.stats();
            let busy_before: Vec<SimDuration> = (0..CHIPS).map(|c| dev.chip_elapsed(c)).collect();
            // One slice per lane, lane j pinned to chip j (run_lanes's
            // round-robin over eligible chips), each lane driving its own
            // forked handle — per-op, per-chip lock scopes, no whole-device
            // critical section.
            let mut lane_rt: Vec<(FlashDevice, SegmentAllocator, Segment)> = (0..lanes)
                .map(|j| {
                    let c = j as u64;
                    let seg = alloc
                        .alloc_in_range(chip_pages / 2, c * chip_pages, (c + 1) * chip_pages)
                        .expect("lane slice");
                    let slice = SegmentAllocator::over(seg.start(), seg.pages());
                    (dev.fork(), slice, seg)
                })
                .collect();
            let mut ops = 0u64;
            for i in 0..JOBS {
                let (fork, slice, _) = &mut lane_rt[i % lanes];
                let ids: Vec<Id> = (0..IDS_PER_JOB)
                    .map(|k| (i as u64 * 1_000_000 + k) as Id)
                    .collect();
                let list = write_id_list(fork, slice, &ram, &ids).expect("write id list");
                let mut r = IdListReader::open(list, &ram, page_size).expect("open id list");
                while r.next_id(fork).expect("read id").is_some() {
                    ops += 1;
                }
            }
            let deltas: Vec<u128> = (0..CHIPS)
                .map(|c| dev.chip_elapsed(c).as_ns() - busy_before[c].as_ns())
                .collect();
            let sum: u128 = deltas.iter().sum();
            let makespan: u128 = *deltas.iter().max().expect("chips > 0");
            let io = dev.stats() - io_before;
            // Return the slices (trim is metadata-only, so the busy window
            // measured above is unaffected).
            for (_, _, seg) in lane_rt {
                alloc.free(seg, dev).expect("free lane slice");
            }
            *ratio = sum as f64 / makespan.max(1) as f64;
            let sim_ns = if lanes == 1 { sum } else { makespan };
            RunStats {
                simulated_s: sim_ns as f64 / 1e9,
                ops,
                bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                channel: Some((sum as f64 / 1e9, makespan as f64 / 1e9)),
            }
        }));
    }
    eprintln!(
        "perfbench: lane channel scaling — x2 {:.2}x, x4 {:.2}x \
         (single-channel issue sum / busiest chip)",
        ratios[1], ratios[2]
    );
    for (lanes, floor, got) in [(2usize, 1.7f64, ratios[1]), (4, 3.0, ratios[2])] {
        if got < floor {
            eprintln!(
                "perfbench: micro/lanes/x{lanes}: channel makespan speedup {got:.2}x is \
                 below the {floor}x floor — disjoint-chip lanes are not scaling"
            );
            std::process::exit(1);
        }
    }
}

/// The vectored-I/O pair: a climbing-index range scan over a B+-tree whose
/// leaves stripe a 4-chip device (`alloc_striped` rotation), run with
/// serial leaf issue vs an 8-page read-ahead window
/// (`CiProbe::set_read_ahead` → `BTreeCursor` scan-chain prefetch).
/// Counters are batch-invariant by construction — `bytes_io` equality is
/// asserted right here — so `simulated_s` carries the issue sum for both
/// entries while the `issue_s`/`makespan_s` pair records where they
/// differ: the read-ahead run's batches stream up to 4 channels
/// concurrently, and the ≥1.5x channel-time floor is asserted in-binary,
/// so every perfbench run doubles as the vectored-I/O smoke gate.
fn micro_io(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    const CHIPS: usize = 4;
    const WINDOW: usize = 8;
    let schema = paper_synthetic_schema(1, 1);
    let mut dev = FlashDevice::with_chips(
        FlashGeometry::for_capacity(64 * 1024 * 1024),
        FlashTiming::default(),
        CHIPS,
    );
    let mut alloc = SegmentAllocator::with_chips(dev.logical_pages(), CHIPS);
    let ram = RamArena::paper_default();
    let t0 = schema.table_id("T0").unwrap();
    let t1 = schema.table_id("T1").unwrap();
    let t2 = schema.table_id("T2").unwrap();
    let t11 = schema.table_id("T11").unwrap();
    let t12 = schema.table_id("T12").unwrap();
    let (n0, n1) = (40_000u64, 20_000u64);
    let mut rows = vec![0u64; schema.len()];
    rows[t0] = n0;
    rows[t1] = n1;
    rows[t2] = 10;
    rows[t11] = 5;
    rows[t12] = 4;
    let mut fks = FkData::default();
    fks.insert(t0, t1, (0..n0).map(|i| (i / 2) as Id).collect());
    fks.insert(t0, t2, (0..n0).map(|i| (i % 10) as Id).collect());
    fks.insert(t1, t11, (0..n1).map(|i| (i % 5) as Id).collect());
    fks.insert(t1, t12, (0..n1).map(|i| (i % 4) as Id).collect());
    let keys: Vec<u64> = (0..n1).map(|r| r % 5000).collect();
    let ci = IndexBuilder::new(schema, rows, fks)
        .build_climbing(
            &mut dev,
            &mut alloc,
            ClimbingSpec {
                table: t1,
                column: "h1",
                keys: &keys,
                levels: LevelSpec::FullClimb,
                exact: true,
            },
        )
        .unwrap();
    let (lo, hi) = (0u64, 5000u64);
    let mut chan = [(0.0f64, 0.0f64); 2];
    let mut bytes = [0u64; 2];
    for (slot, (window, name)) in [
        (0usize, "micro/io/scan-vectored_serial"),
        (WINDOW, "micro/io/scan-vectored_ra8"),
    ]
    .into_iter()
    .enumerate()
    {
        let dev = &dev;
        let slot_chan = &mut chan[slot];
        let slot_bytes = &mut bytes[slot];
        out.push(measure(name, warmup, iters, || {
            // A fresh fork per run: zeroed local counters AND a zeroed
            // overlap clock, so both clocks below are this run's alone.
            let mut fork = dev.fork();
            let snap = fork.snapshot();
            let mut probe = ci.probe(&ram).unwrap();
            probe.set_read_ahead(window);
            let lists = probe.lookup_range(&mut fork, lo, hi, 0).unwrap();
            let io = fork.stats_since(&snap);
            let issue = fork.elapsed_since(&snap);
            let makespan = fork.overlap_elapsed();
            *slot_chan = (issue.as_secs(), makespan.as_secs());
            *slot_bytes = io.bytes_to_ram + io.bytes_from_ram;
            RunStats {
                simulated_s: issue.as_secs(),
                ops: lists.len() as u64,
                bytes_io: *slot_bytes,
                channel: Some(*slot_chan),
            }
        }));
    }
    if bytes[0] != bytes[1] {
        eprintln!(
            "perfbench: micro/io/scan-vectored: read-ahead moved {} flash bytes \
             vs {} serial — batching must be counter-neutral",
            bytes[1], bytes[0]
        );
        std::process::exit(1);
    }
    let speedup = chan[0].0 / chan[1].1.max(f64::MIN_POSITIVE);
    eprintln!(
        "perfbench: vectored scan channel speedup {speedup:.2}x \
         (serial issue sum / read-ahead batch makespan, {CHIPS} chips)"
    );
    if speedup < 1.5 {
        eprintln!(
            "perfbench: micro/io/scan-vectored: channel speedup {speedup:.2}x is \
             below the 1.5x floor — leaf read-ahead batches are not overlapping chips"
        );
        std::process::exit(1);
    }
}

/// The vectored-write pair: the same 384-page program stream, round-robin
/// across a 4-chip device, issued page-at-a-time (`FlashDevice::write`) vs
/// in 8-page vectored batches (`FlashDevice::write_batch`). Counters are
/// batch-invariant by construction — `bytes_io` equality is asserted right
/// here — so `simulated_s` carries the issue sum for both entries while
/// `issue_s`/`makespan_s` records the difference: each batch bins its
/// programs per chip and the overlap clock advances by the busiest chip
/// only, and the ≥1.5x channel-time floor is asserted in-binary, so every
/// perfbench run doubles as the write-vectoring smoke gate. Fresh devices
/// per run keep every observation a pure function of the write sequence.
fn micro_write(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    use ghostdb_flash::PageWrite;
    const CHIPS: usize = 4;
    const BATCH: usize = 8;
    const BATCHES: usize = 48;
    let geometry = FlashGeometry {
        page_size: 2048,
        pages_per_block: 32,
        block_count: 40,
        spare_blocks: 8,
    };
    let mut chan = [(0.0f64, 0.0f64); 2];
    let mut bytes = [0u64; 2];
    for (slot, (vectored, name)) in [
        (false, "micro/io/write-vectored_serial"),
        (true, "micro/io/write-vectored_batched"),
    ]
    .into_iter()
    .enumerate()
    {
        let slot_chan = &mut chan[slot];
        let slot_bytes = &mut bytes[slot];
        out.push(measure(name, warmup, iters, || {
            let mut dev = FlashDevice::with_chips(geometry, FlashTiming::default(), CHIPS);
            let chip_pages = dev.chip_pages();
            let page_size = dev.page_size();
            let snap = dev.snapshot();
            let mut written = 0u64;
            for w in 0..BATCHES {
                // Page j of batch w lands on chip j % CHIPS: every batch
                // spreads evenly, the overlap win is BATCH / (BATCH/CHIPS).
                let images: Vec<Vec<u8>> = (0..BATCH)
                    .map(|j| vec![(w * BATCH + j) as u8; page_size])
                    .collect();
                let lpns: Vec<u64> = (0..BATCH)
                    .map(|j| {
                        let i = (w * BATCH + j) as u64;
                        (i % CHIPS as u64) * chip_pages + i / CHIPS as u64
                    })
                    .collect();
                if vectored {
                    let reqs: Vec<PageWrite> = lpns
                        .iter()
                        .zip(&images)
                        .map(|(&lpn, image)| PageWrite { lpn, image })
                        .collect();
                    dev.write_batch(&reqs).expect("vectored write");
                } else {
                    for (&lpn, image) in lpns.iter().zip(&images) {
                        dev.write(lpn, image).expect("serial write");
                    }
                }
                written += BATCH as u64;
            }
            let io = dev.stats_since(&snap);
            let issue = dev.elapsed_since(&snap);
            let makespan = dev.overlap_elapsed();
            *slot_chan = (issue.as_secs(), makespan.as_secs());
            *slot_bytes = io.bytes_to_ram + io.bytes_from_ram;
            RunStats {
                simulated_s: issue.as_secs(),
                ops: written,
                bytes_io: *slot_bytes,
                channel: Some(*slot_chan),
            }
        }));
    }
    if bytes[0] != bytes[1] {
        eprintln!(
            "perfbench: micro/io/write-vectored: batching moved {} flash bytes \
             vs {} serial — write vectoring must be counter-neutral",
            bytes[1], bytes[0]
        );
        std::process::exit(1);
    }
    let speedup = chan[0].0 / chan[1].1.max(f64::MIN_POSITIVE);
    eprintln!(
        "perfbench: vectored write channel speedup {speedup:.2}x \
         (serial issue sum / batched makespan, {CHIPS} chips)"
    );
    if speedup < 1.5 {
        eprintln!(
            "perfbench: micro/io/write-vectored: channel speedup {speedup:.2}x is \
             below the 1.5x floor — write batches are not overlapping chips"
        );
        std::process::exit(1);
    }
}

/// The maintenance-strategy judgment pair: the same deterministic stream
/// of 96 inserts/deletes against a two-level maintained climbing index,
/// absorbed via tombstone-merge (host-side delta, merge every 16 ops) vs
/// rebuild-per-op. Both preserve the query contract exactly
/// (`tests/maintain_equivalence.rs`); this pair records which one earns
/// the write path, in wall time and — via `bytes_io`/`simulated_s` — in
/// flash traffic. The loser stays in-tree as the measured-and-rejected
/// variant (the `BlockedBloomFilter` pattern).
fn micro_maint(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    use ghostdb_index::{MaintainedIndex, MaintenanceStrategy};
    const UPDATES: u64 = 96;
    for (strategy, name) in [
        (
            MaintenanceStrategy::TombstoneMerge,
            "micro/maint/update-tombstone",
        ),
        (
            MaintenanceStrategy::RebuildSegment,
            "micro/maint/update-rebuild",
        ),
    ] {
        out.push(measure(name, warmup, iters, || {
            let mut dev = FlashDevice::new(
                FlashGeometry {
                    page_size: 2048,
                    pages_per_block: 32,
                    block_count: 64,
                    spare_blocks: 8,
                },
                FlashTiming::default(),
            );
            let mut alloc = SegmentAllocator::new(dev.logical_pages());
            let initial = vec![
                (0..768u64).map(|i| i % 96).collect::<Vec<_>>(),
                (0..384u64).map(|i| i % 96).collect::<Vec<_>>(),
            ];
            let mut mi = MaintainedIndex::build(
                &mut dev,
                &mut alloc,
                1,
                "k",
                vec![1, 0],
                true,
                &initial,
                strategy,
                16,
            )
            .expect("maintained index builds");
            let snap = dev.snapshot();
            let mut seed = 0x9E3779B97F4A7C15u64;
            let mut next = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            for _ in 0..UPDATES {
                let r = next();
                let level = (r as usize >> 3) % 2;
                if r % 4 != 0 {
                    mi.insert(&mut dev, &mut alloc, level, (r >> 8) % 96)
                        .expect("insert");
                } else {
                    // Ids are dense from the bulk load, so a random draw
                    // below the live count lands on a mostly-live id.
                    let id = ((r >> 8) % 800) as Id;
                    mi.delete(&mut dev, &mut alloc, level, id).expect("delete");
                }
            }
            mi.flush(&mut dev, &mut alloc).expect("flush");
            let io = dev.stats_since(&snap);
            RunStats {
                simulated_s: dev.elapsed_since(&snap).as_secs(),
                ops: UPDATES,
                bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                channel: None,
            }
        }));
    }
    let pair: Vec<&BenchEntry> = out
        .iter()
        .filter(|e| e.scenario.starts_with("micro/maint/"))
        .collect();
    if let [t, r] = pair[..] {
        let (winner, loser) = if t.wall_ns <= r.wall_ns {
            ("tombstone-merge", "rebuild-per-op")
        } else {
            ("rebuild-per-op", "tombstone-merge")
        };
        eprintln!(
            "perfbench: maintenance strategy verdict — {winner} wins \
             ({} ns vs {} ns wall, {} vs {} flash bytes); {loser} stays \
             in-tree as the measured-and-rejected variant",
            t.wall_ns.min(r.wall_ns),
            t.wall_ns.max(r.wall_ns),
            t.bytes_io.min(r.bytes_io),
            t.bytes_io.max(r.bytes_io),
        );
    }
}

/// The batch scheduler's traversal sharing in isolation: 8 queued queries
/// probing the same climbing-index range, run as 8 independent traversals
/// (what the unbatched server does) vs one banked all-levels traversal
/// (`CiPrefetch::insert_traversal`) demultiplexed to all 8 (what the batch
/// scheduler does). Identical sublist counts, ~8x fewer leaf reads —
/// `bytes_io` carries the flash-byte ratio into BENCH.json alongside the
/// wall win.
fn micro_serve(warmup: usize, iters: usize, out: &mut Vec<BenchEntry>) {
    let schema = paper_synthetic_schema(1, 1);
    let (mut dev, mut alloc, ram) = micro_device();
    let t0 = schema.table_id("T0").unwrap();
    let t1 = schema.table_id("T1").unwrap();
    let t2 = schema.table_id("T2").unwrap();
    let t11 = schema.table_id("T11").unwrap();
    let t12 = schema.table_id("T12").unwrap();
    let (n0, n1) = (40_000u64, 20_000u64);
    let mut rows = vec![0u64; schema.len()];
    rows[t0] = n0;
    rows[t1] = n1;
    rows[t2] = 10;
    rows[t11] = 5;
    rows[t12] = 4;
    let mut fks = FkData::default();
    fks.insert(t0, t1, (0..n0).map(|i| (i / 2) as Id).collect());
    fks.insert(t0, t2, (0..n0).map(|i| (i % 10) as Id).collect());
    fks.insert(t1, t11, (0..n1).map(|i| (i % 5) as Id).collect());
    fks.insert(t1, t12, (0..n1).map(|i| (i % 4) as Id).collect());
    let keys: Vec<u64> = (0..n1).map(|r| r % 5000).collect();
    let ci = IndexBuilder::new(schema, rows, fks)
        .build_climbing(
            &mut dev,
            &mut alloc,
            ClimbingSpec {
                table: t1,
                column: "h1",
                keys: &keys,
                levels: LevelSpec::FullClimb,
                exact: true,
            },
        )
        .unwrap();
    let n_levels = ci.levels.len();
    const QUEUED: usize = 8;
    let (lo, hi) = (0u64, 5000u64);
    out.push(measure(
        "micro/serve/batch-vs-solo_solo",
        warmup,
        iters,
        || {
            let snap = dev.snapshot();
            let mut lists = 0u64;
            for i in 0..QUEUED {
                let mut probe = ci.probe(&ram).unwrap();
                lists += probe
                    .lookup_range(&mut dev, lo, hi, i % n_levels)
                    .unwrap()
                    .len() as u64;
            }
            let io = dev.stats_since(&snap);
            RunStats {
                ops: lists,
                bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                ..Default::default()
            }
        },
    ));
    out.push(measure(
        "micro/serve/batch-vs-solo_batched",
        warmup,
        iters,
        || {
            let snap = dev.snapshot();
            let mut bank = CiPrefetch::new();
            bank.insert_traversal(&mut dev, &ram, &ci, lo, hi, 0)
                .unwrap();
            let mut lists = 0u64;
            for i in 0..QUEUED {
                let hit = bank.get(&ci, lo, hi).unwrap();
                lists += hit.level(i % n_levels).len() as u64;
            }
            let io = dev.stats_since(&snap);
            RunStats {
                ops: lists,
                bytes_io: io.bytes_to_ram + io.bytes_from_ram,
                ..Default::default()
            }
        },
    ));
}

/// Print the naive-vs-optimised pairs: the measured improvement every
/// operator optimisation banks, straight from the harness output.
fn print_improvements(entries: &[BenchEntry]) {
    let wall = |name: &str| -> Option<u128> {
        entries
            .iter()
            .find(|e| e.scenario == name)
            .map(|e| e.wall_ns)
    };
    println!("\noperator improvements (median wall time, naive → optimised):");
    for (naive, opt) in [
        ("micro/merge/union16_naive", "micro/merge/union16_heap"),
        ("micro/bloom/build_naive", "micro/bloom/build_dh"),
        ("micro/bloom/probe_naive", "micro/bloom/probe_dh"),
        ("micro/bloom/build_dh", "micro/bloom/build_blocked"),
        ("micro/bloom/probe_dh", "micro/bloom/probe_blocked"),
        ("micro/ci/probe_scalar", "micro/ci/probe_run"),
        ("micro/ci/multi-2lvl_naive", "micro/ci/multi-2lvl_single"),
        ("micro/ci/multi-4lvl_naive", "micro/ci/multi-4lvl_single"),
        (
            "micro/serve/batch-vs-solo_solo",
            "micro/serve/batch-vs-solo_batched",
        ),
        (
            "micro/idlist/intersect_stream",
            "micro/idlist/intersect_gallop",
        ),
        (
            "micro/io/write-vectored_serial",
            "micro/io/write-vectored_batched",
        ),
        ("micro/maint/update-rebuild", "micro/maint/update-tombstone"),
    ] {
        if let (Some(a), Some(b)) = (wall(naive), wall(opt)) {
            println!(
                "  {naive:<34} {:>12} ns  →  {:>12} ns  ({:.2}x)",
                a,
                b,
                a as f64 / b.max(1) as f64
            );
        }
    }
}

/// The execution knobs every query sweep threads through.
#[derive(Clone, Copy)]
struct Tuning {
    threads: usize,
    intra: usize,
    spill: SpillPolicy,
    padded: bool,
    read_ahead: usize,
}

fn main() {
    let opts = parse_args();
    if let Some((a, b)) = &opts.compare {
        run_compare(a, b, opts.tolerance, opts.exact);
    }
    if let Some(path) = &opts.check {
        run_check(path);
    }
    let mode = if opts.smoke { "smoke" } else { "full" };
    let warmup = 1usize;
    let iters = opts.iters;
    let threads = opts.threads;
    let tune = Tuning {
        threads,
        intra: opts.intra_threads,
        spill: opts.spill,
        padded: opts.padded,
        read_ahead: opts.read_ahead,
    };
    eprintln!(
        "perfbench: mode {mode}, {iters} timed iterations per scenario \
         (+{warmup} warmup), {threads} sweep thread(s), {} intra lane(s), \
         spill {}",
        tune.intra,
        tune.spill.name()
    );

    let mut entries: Vec<BenchEntry> = Vec::new();
    synthetic_scenarios(opts.scale, warmup, iters, tune, &mut entries);
    if !opts.smoke {
        synthetic_scenarios(opts.scale2, warmup, iters, tune, &mut entries);
    }
    zipf_scenarios(opts.scale, warmup, iters, tune, &mut entries);
    hicard_scenarios(opts.scale, warmup, iters, tune, &mut entries);
    padded_scenarios(opts.scale, warmup, iters, tune, &mut entries);
    medical_scenarios(opts.medical_scale, warmup, iters, tune, &mut entries);
    eprintln!("perfbench: write-path scenarios...");
    ingest_scenarios(warmup, iters, &mut entries);
    gc_pressure_scenarios(warmup, iters, &mut entries);
    if opts.serve {
        serve_scenarios(opts.scale, warmup, iters, &mut entries);
        serve_open_scenarios(opts.scale, warmup, iters, &mut entries);
    }

    eprintln!("perfbench: operator microbenches...");
    micro_union(warmup, iters, &mut entries);
    micro_intersect(warmup, iters, &mut entries);
    micro_bloom(warmup, iters, &mut entries);
    micro_ci_probe(warmup, iters, &mut entries);
    micro_ci_multi(warmup, iters, &mut entries);
    micro_sjoin(opts.scale, warmup, iters, &mut entries);
    micro_lanes(warmup, iters, &mut entries);
    micro_io(warmup, iters, &mut entries);
    micro_write(warmup, iters, &mut entries);
    micro_maint(warmup, iters, &mut entries);
    if opts.serve {
        micro_serve(warmup, iters, &mut entries);
    }

    let doc = bench_doc(
        mode,
        threads,
        tune.intra,
        tune.spill.name(),
        tune.padded,
        tune.read_ahead,
        &entries,
    );
    let summary = check_bench(&doc).unwrap_or_else(|e| {
        eprintln!("perfbench: generated document violates its own schema: {e}");
        std::process::exit(1);
    });
    std::fs::write(&opts.out, doc.render()).unwrap_or_else(|e| {
        eprintln!("perfbench: cannot write {}: {e}", opts.out);
        std::process::exit(1);
    });
    println!(
        "wrote {} — {} entries ({} query scenarios, {} microbenches)",
        opts.out, summary.entries, summary.scenarios, summary.micro
    );
    if threads > 1 {
        eprintln!(
            "perfbench: note: sweep points were timed concurrently ({threads} threads); \
             wall_ns is only comparable to other --threads {threads} runs — do not commit \
             this file as the serial baseline"
        );
    }
    print_improvements(&entries);
}
