//! The in-memory columnar visible store of the Untrusted PC.
//!
//! Columns are kept **encoded** at their declared fixed width (a `char(10)`
//! cell costs 10 bytes, not a heap string), so paper-scale visible
//! partitions (millions of rows) stay cheap on the host.

use ghostdb_storage::{ColumnType, Id, Predicate, Result, StorageError, TableId, Value};

/// A visible column: name, type and the encoded cells (row order = tuple
/// id, since the id is replicated on both sides, §2.1).
#[derive(Debug, Clone)]
pub struct VisibleColumn {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    data: Vec<u8>,
    rows: u64,
}

impl VisibleColumn {
    /// Build from a value generator.
    pub fn from_gen(
        name: &str,
        ty: ColumnType,
        rows: u64,
        mut gen: impl FnMut(Id) -> Value,
    ) -> Result<Self> {
        let w = ty.width();
        let mut data = vec![0u8; w * rows as usize];
        for r in 0..rows {
            gen(r as Id).encode(&ty, &mut data[r as usize * w..(r as usize + 1) * w])?;
        }
        Ok(VisibleColumn {
            name: name.into(),
            ty,
            data,
            rows,
        })
    }

    /// Build from explicit values (tests, small loads).
    pub fn from_values(name: &str, ty: ColumnType, values: &[Value]) -> Result<Self> {
        let mut it = values.iter();
        VisibleColumn::from_gen(name, ty, values.len() as u64, |_| {
            it.next().expect("length checked").clone()
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Decode the value of one row.
    pub fn value(&self, row: Id) -> Value {
        let w = self.ty.width();
        Value::decode(
            &self.ty,
            &self.data[row as usize * w..(row as usize + 1) * w],
        )
    }

    /// Raw encoded cell (wire shipping).
    pub fn raw(&self, row: Id) -> &[u8] {
        let w = self.ty.width();
        &self.data[row as usize * w..(row as usize + 1) * w]
    }
}

/// The visible partition of one table.
#[derive(Debug, Clone, Default)]
pub struct VisibleTable {
    /// Visible columns.
    pub columns: Vec<VisibleColumn>,
    /// Cardinality (kept even when no column is visible: ids are public).
    pub rows: u64,
}

impl VisibleTable {
    /// Find a column.
    pub fn column(&self, name: &str) -> Result<&VisibleColumn> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| StorageError::Unknown(format!("visible column {name}")))
    }
}

/// The visible partitions of every table, indexed by [`TableId`].
#[derive(Debug, Clone, Default)]
pub struct VisibleStore {
    tables: Vec<VisibleTable>,
}

impl VisibleStore {
    /// Store with `n` empty tables.
    pub fn new(n: usize) -> Self {
        VisibleStore {
            tables: (0..n).map(|_| VisibleTable::default()).collect(),
        }
    }

    /// Install the visible partition of a table.
    pub fn set_table(&mut self, t: TableId, table: VisibleTable) {
        self.tables[t] = table;
    }

    /// The visible partition of a table.
    pub fn table(&self, t: TableId) -> &VisibleTable {
        &self.tables[t]
    }

    /// Sorted ids of `t` satisfying **all** the given visible predicates
    /// (the PC evaluates the conjunction locally; an empty predicate list
    /// selects everything, e.g. when a query only projects visible values).
    /// A predicate on `"id"` compares against the surrogate itself.
    pub fn select(&self, t: TableId, preds: &[Predicate]) -> Result<Vec<Id>> {
        let table = &self.tables[t];
        let cols: Vec<Option<&VisibleColumn>> = preds
            .iter()
            .map(|p| {
                if p.column == "id" {
                    Ok(None)
                } else {
                    table.column(&p.column).map(Some)
                }
            })
            .collect::<Result<_>>()?;
        let mut out = Vec::new();
        'rows: for id in 0..table.rows {
            for (p, c) in preds.iter().zip(&cols) {
                let v = match c {
                    Some(c) => c.value(id as Id),
                    None => Value::Int(id as i64),
                };
                if !p.matches(&v) {
                    continue 'rows;
                }
            }
            out.push(id as Id);
        }
        Ok(out)
    }

    /// Values of the named visible columns for the given ids.
    pub fn project(&self, t: TableId, ids: &[Id], columns: &[String]) -> Result<Vec<Vec<Value>>> {
        let table = &self.tables[t];
        let cols: Vec<&VisibleColumn> = columns
            .iter()
            .map(|c| table.column(c))
            .collect::<Result<_>>()?;
        Ok(ids
            .iter()
            .map(|id| cols.iter().map(|c| c.value(*id)).collect())
            .collect())
    }

    /// Exact count of ids matching visible predicates — free selectivity
    /// estimation for the planner (the PC's compute is not the bottleneck).
    pub fn count(&self, t: TableId, preds: &[Predicate]) -> Result<u64> {
        Ok(self.select(t, preds)?.len() as u64)
    }

    /// Cardinality of a table.
    pub fn rows(&self, t: TableId) -> u64 {
        self.tables[t].rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_storage::CmpOp;

    fn store() -> VisibleStore {
        let mut s = VisibleStore::new(1);
        s.set_table(
            0,
            VisibleTable {
                columns: vec![
                    VisibleColumn::from_gen("age", ColumnType::Int { width: 2 }, 10, |i| {
                        Value::Int(20 + i as i64)
                    })
                    .unwrap(),
                    VisibleColumn::from_gen("city", ColumnType::char(10), 10, |i| {
                        Value::Str(if i % 2 == 0 { "Paris" } else { "NYC" }.into())
                    })
                    .unwrap(),
                ],
                rows: 10,
            },
        );
        s
    }

    #[test]
    fn conjunctive_selection() {
        let s = store();
        let ids = s
            .select(
                0,
                &[
                    Predicate::new("age", CmpOp::Ge, Value::Int(24), None),
                    Predicate::eq("city", Value::Str("Paris".into())),
                ],
            )
            .unwrap();
        assert_eq!(ids, vec![4, 6, 8]);
    }

    #[test]
    fn id_predicate_uses_surrogate() {
        let s = store();
        let ids = s
            .select(0, &[Predicate::new("id", CmpOp::Lt, Value::Int(3), None)])
            .unwrap();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_predicates_select_all() {
        let s = store();
        assert_eq!(s.select(0, &[]).unwrap().len(), 10);
        assert_eq!(s.count(0, &[]).unwrap(), 10);
    }

    #[test]
    fn projection_fetches_values() {
        let s = store();
        let vals = s.project(0, &[1, 3], &["age".into()]).unwrap();
        assert_eq!(vals, vec![vec![Value::Int(21)], vec![Value::Int(23)]]);
    }

    #[test]
    fn encoded_storage_roundtrips_values() {
        let col = VisibleColumn::from_values("v", ColumnType::char(6), &[Value::Str("abc".into())])
            .unwrap();
        assert_eq!(col.value(0), Value::Str("abc".into()));
        assert_eq!(col.raw(0), &[b'a', b'b', b'c', 0, 0, 0]);
    }

    #[test]
    fn unknown_column_errors() {
        let s = store();
        assert!(s
            .select(0, &[Predicate::eq("nope", Value::Int(0))])
            .is_err());
    }
}
