//! # ghostdb-untrusted
//!
//! The **Untrusted** side of GhostDB: the powerful but insecure PC (or
//! remote server) holding the *Visible* partition of the database.
//!
//! §3.3: "Because Untrusted is fast, we want Untrusted to do as much work as
//! possible. … Untrusted is granted permission to: (1) compute Visible
//! predicates of a query Q, (2) project the result of this computation on
//! any Visible column, and (3) send the result to Secure. There is no leak
//! of Hidden data simply because no information leaves Secure."
//!
//! The visible store is plain host memory — the PC's resources are not the
//! bottleneck and its compute cost is neglected, exactly as in the paper.
//! What *is* modelled byte-for-byte is the traffic it pushes through the
//! [`ghostdb_token::Channel`]: sorted ID lists and visible attribute values,
//! each transfer recorded in the channel transcript the leak auditor
//! inspects. The [`HostTrace`] widens that record to the host's own view —
//! every store request the engine makes, with shapes and post-padding
//! volumes — and [`PadMode`] adds the power-of-two volume padding
//! countermeasure (see `SECURITY.md` at the repo root for the contract
//! these two enforce).

pub mod host;
pub mod store;
pub mod trace;

pub use host::{UntrustedHost, VisShipment};
pub use store::{VisibleColumn, VisibleStore, VisibleTable};
pub use trace::{HostOp, HostTrace, HostTraceEvent, PadMode};
