//! The host-observable trace: an ordered record of every request the
//! execution engine makes of the Untrusted PC.
//!
//! The channel transcript (`ghostdb_token::Channel`) models what a *wire
//! snooper* sees; the [`HostTrace`] models the strictly larger view of the
//! *host itself* — which store operations it was asked to perform
//! ([`HostOp`]), over which tables, with which request shapes, and how many
//! bytes each response put on the wire. The leakage property suite
//! (`tests/leakage.rs`, `tests/host_trace_determinism.rs`) asserts the
//! GhostDB invariant directly on this trace: it must be a function of the
//! query text and the visible data alone, never of hidden values, and it
//! must be bit-identical across repeats and intra-query thread counts.
//!
//! [`PadMode`] is the volume-channel countermeasure: in
//! [`PadMode::PowerOfTwo`] every `Vis` shipment is padded to the next
//! power-of-two row bucket, so a snooper comparing wire volumes across
//! queries learns only `⌈log2(selected rows)⌉` instead of the exact count.

use ghostdb_storage::TableId;

/// The kind of request the host served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOp {
    /// The query text was handed to the host for forwarding to the token.
    SubmitQuery,
    /// The planner asked for an exact visible-predicate count.
    Count,
    /// A visible selection: sorted ids under a predicate conjunction.
    Select,
    /// A visible projection: column values for a selected id list.
    Project,
}

impl HostOp {
    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            HostOp::SubmitQuery => "submit-query",
            HostOp::Count => "count",
            HostOp::Select => "select",
            HostOp::Project => "project",
        }
    }
}

/// One host-observable request/response pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostTraceEvent {
    /// What the host was asked to do.
    pub op: HostOp,
    /// Table the request addressed (`None` for query submission).
    pub table: Option<TableId>,
    /// The request shape as the host sees it: predicate conjunction for
    /// `count`/`select`, projected column list for `project`, the query
    /// byte length for `submit-query`. Everything in here is information
    /// the host legitimately holds (the query is public, §3.3).
    pub shape: String,
    /// Bytes of the request itself (the query text for `submit-query`;
    /// zero for store operations, which are implied by the public query).
    pub request_bytes: u64,
    /// Bytes the response contributed to the wire, **after padding** — this
    /// is the volume a snooper measures.
    pub response_bytes: u64,
    /// Logical items in the response before padding (ids selected, rows
    /// projected, the exact count). The host knows this number regardless
    /// of padding: it computed the selection itself.
    pub items: u64,
}

/// The ordered host-observable trace of one query (or session).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostTrace {
    events: Vec<HostTraceEvent>,
}

impl HostTrace {
    /// Empty trace.
    pub fn new() -> Self {
        HostTrace::default()
    }

    /// Append an event (in host-observation order).
    pub fn record(&mut self, ev: HostTraceEvent) {
        self.events.push(ev);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[HostTraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all events (start of a new query).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Total response volume on the wire (post-padding).
    pub fn response_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.response_bytes).sum()
    }
}

impl std::fmt::Display for HostTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(
                f,
                "{i:>3}. {:<12} table={:<4} shape={} req={}B resp={}B items={}",
                e.op.name(),
                e.table.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
                e.shape,
                e.request_bytes,
                e.response_bytes,
                e.items,
            )?;
        }
        Ok(())
    }
}

/// Wire-volume padding policy for `Vis` shipments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PadMode {
    /// Ship exactly the selected rows (the paper's baseline: the row count
    /// of every visible selection is observable on the wire).
    #[default]
    Exact,
    /// Pad every shipment to the next power-of-two row bucket with zero
    /// filler, quantising the observable volume to `2^⌈log2 n⌉` rows.
    PowerOfTwo,
}

impl PadMode {
    /// The padded row count for `n` selected rows. In [`PadMode::Exact`]
    /// this is `n` itself; in [`PadMode::PowerOfTwo`] it is the next power
    /// of two (empty selections still ship one row's worth of filler, so
    /// "matched nothing" is indistinguishable from "matched one").
    pub fn bucket(&self, n: usize) -> usize {
        match self {
            PadMode::Exact => n,
            PadMode::PowerOfTwo => n.max(1).next_power_of_two(),
        }
    }

    /// CLI / transcript-tag name.
    pub fn name(&self) -> &'static str {
        match self {
            PadMode::Exact => "exact",
            PadMode::PowerOfTwo => "pow2",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_bucket_quantises() {
        let p = PadMode::PowerOfTwo;
        assert_eq!(p.bucket(0), 1);
        assert_eq!(p.bucket(1), 1);
        assert_eq!(p.bucket(2), 2);
        assert_eq!(p.bucket(3), 4);
        assert_eq!(p.bucket(5), 8);
        assert_eq!(p.bucket(8), 8);
        assert_eq!(p.bucket(1000), 1024);
    }

    #[test]
    fn exact_bucket_is_identity() {
        let p = PadMode::Exact;
        for n in [0usize, 1, 3, 17, 1000] {
            assert_eq!(p.bucket(n), n);
        }
    }

    #[test]
    fn trace_accumulates_in_order() {
        let mut t = HostTrace::new();
        assert!(t.is_empty());
        t.record(HostTraceEvent {
            op: HostOp::Select,
            table: Some(0),
            shape: "*".into(),
            request_bytes: 0,
            response_bytes: 40,
            items: 10,
        });
        t.record(HostTraceEvent {
            op: HostOp::Project,
            table: Some(0),
            shape: "v1".into(),
            request_bytes: 0,
            response_bytes: 100,
            items: 10,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.response_bytes(), 140);
        assert_eq!(t.events()[0].op, HostOp::Select);
        let shown = t.to_string();
        assert!(shown.contains("select"));
        assert!(shown.contains("project"));
        t.clear();
        assert!(t.is_empty());
    }
}
