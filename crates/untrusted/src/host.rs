//! The `Vis` operator's PC half: evaluate visible predicates, ship sorted
//! ids (and optionally visible values) into the token over the channel.

use crate::store::VisibleStore;
use ghostdb_storage::{Id, Predicate, Result, TableId, Value, ID_BYTES};
use ghostdb_token::Channel;

/// What a `Vis(Q, T, π)` call delivered into the token.
///
/// The payload conceptually streams through the token's dedicated channel
/// buffer (§3.4: "a specific buffer is dedicated to the communication
/// channel … no RAM consumption"), so operators may iterate it without
/// charging the RAM arena; its transfer cost is charged to the channel at
/// ship time.
#[derive(Debug, Clone)]
pub struct VisShipment {
    /// Table the shipment is about.
    pub table: TableId,
    /// Sorted ids satisfying the visible predicates.
    pub ids: Vec<Id>,
    /// Projected visible columns (parallel to `ids`), in request order.
    pub columns: Vec<(String, Vec<Value>)>,
}

impl VisShipment {
    /// Wire size in bytes: 4 bytes per id plus the fixed column widths.
    pub fn wire_bytes(&self, widths: &[usize]) -> u64 {
        let per_row: usize = ID_BYTES + widths.iter().sum::<usize>();
        self.ids.len() as u64 * per_row as u64
    }
}

/// The Untrusted PC: visible store + the sending end of the channel.
#[derive(Debug)]
pub struct UntrustedHost {
    store: VisibleStore,
}

impl UntrustedHost {
    /// Host over a loaded visible store.
    pub fn new(store: VisibleStore) -> Self {
        UntrustedHost { store }
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &VisibleStore {
        &self.store
    }

    /// Receive the query (PC → token metadata transfer; this is the *only*
    /// thing the token ever acknowledges back, and the only flow a snooper
    /// sees leaving the PC besides visible data).
    pub fn submit_query(&self, channel: &mut Channel, query_text: &str) {
        channel.send_to_secure("query", query_text.as_bytes());
    }

    /// `Vis(Q, T, π)`: evaluate all visible predicates of `Q` on `T`, ship
    /// the sorted id list plus the values of the `π` columns.
    ///
    /// The transfer is recorded on the channel with a tag naming the table
    /// and projection so the transcript is self-describing.
    pub fn vis(
        &self,
        channel: &mut Channel,
        table: TableId,
        table_name: &str,
        preds: &[Predicate],
        projection: &[String],
    ) -> Result<VisShipment> {
        let ids = self.store.select(table, preds)?;
        let rows = self.store.project(table, &ids, projection)?;
        let mut columns: Vec<(String, Vec<Value>)> = projection
            .iter()
            .map(|c| (c.clone(), Vec::with_capacity(ids.len())))
            .collect();
        for row in rows {
            for (slot, v) in columns.iter_mut().zip(row) {
                slot.1.push(v);
            }
        }
        // Serialise for the wire: ids then column values, fixed widths.
        let vis_table = self.store.table(table);
        let mut payload = Vec::with_capacity(ids.len() * ID_BYTES);
        for id in &ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        for (name, values) in &columns {
            let ty = vis_table.column(name)?.ty;
            let mut buf = vec![0u8; ty.width()];
            for v in values {
                v.encode(&ty, &mut buf)?;
                payload.extend_from_slice(&buf);
            }
        }
        let tag = if projection.is_empty() {
            format!("Vis({table_name}).ids")
        } else {
            format!("Vis({table_name}).ids+{}", projection.join("+"))
        };
        channel.send_to_secure(&tag, &payload);
        Ok(VisShipment {
            table,
            ids,
            columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{VisibleColumn, VisibleTable};
    use ghostdb_storage::{CmpOp, ColumnType};

    fn host() -> UntrustedHost {
        let mut s = VisibleStore::new(1);
        s.set_table(
            0,
            VisibleTable {
                columns: vec![
                    VisibleColumn::from_gen("v1", ColumnType::char(10), 100, |i| {
                        Value::Str(format!("{i:09}"))
                    })
                    .expect("column"),
                ],
                rows: 100,
            },
        );
        UntrustedHost::new(s)
    }

    #[test]
    fn vis_ships_ids_and_values_with_exact_byte_count() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        let preds = [Predicate::new(
            "v1",
            CmpOp::Lt,
            Value::Str("000000010".into()),
            None,
        )];
        let shipment = h
            .vis(&mut ch, 0, "T1", &preds, &["v1".to_string()])
            .unwrap();
        assert_eq!(shipment.ids, (0..10).collect::<Vec<u32>>());
        assert_eq!(shipment.columns[0].1.len(), 10);
        // 10 rows × (4 id + 10 char) = 140 bytes on the wire.
        assert_eq!(ch.bytes_to_secure(), 140);
        assert_eq!(ch.transcript().len(), 1);
        assert!(ch.transcript()[0].tag.contains("Vis(T1)"));
    }

    #[test]
    fn ids_only_shipment() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        let shipment = h.vis(&mut ch, 0, "T1", &[], &[]).unwrap();
        assert_eq!(shipment.ids.len(), 100);
        assert_eq!(ch.bytes_to_secure(), 400);
    }

    #[test]
    fn query_submission_is_the_only_outbound_flow() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        h.submit_query(&mut ch, "SELECT T0.id FROM T0");
        assert_eq!(ch.bytes_to_secure(), 20);
        assert_eq!(ch.bytes_to_untrusted(), 0);
    }
}
