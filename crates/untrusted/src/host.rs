//! The `Vis` operator's PC half: evaluate visible predicates, ship sorted
//! ids (and optionally visible values) into the token over the channel.
//!
//! Every request the engine makes of the host is recorded in a
//! [`HostTrace`] — the leakage auditor's ground truth for "what did the
//! untrusted side observe" — and every shipment can be padded to a
//! power-of-two row bucket ([`PadMode::PowerOfTwo`]) to quantise the
//! volume a wire snooper measures.

use crate::store::VisibleStore;
use crate::trace::{HostOp, HostTrace, HostTraceEvent, PadMode};
use ghostdb_storage::{CmpOp, Id, Predicate, Result, TableId, Value, ID_BYTES};
use ghostdb_token::Channel;
use std::sync::{Arc, Mutex};

/// What a `Vis(Q, T, π)` call delivered into the token.
///
/// The payload conceptually streams through the token's dedicated channel
/// buffer (§3.4: "a specific buffer is dedicated to the communication
/// channel … no RAM consumption"), so operators may iterate it without
/// charging the RAM arena; its transfer cost is charged to the channel at
/// ship time.
#[derive(Debug, Clone)]
pub struct VisShipment {
    /// Table the shipment is about.
    pub table: TableId,
    /// Sorted ids satisfying the visible predicates.
    pub ids: Vec<Id>,
    /// Projected visible columns (parallel to `ids`), in request order.
    pub columns: Vec<(String, Vec<Value>)>,
}

impl VisShipment {
    /// Wire size in bytes: 4 bytes per id plus the fixed column widths.
    pub fn wire_bytes(&self, widths: &[usize]) -> u64 {
        let per_row: usize = ID_BYTES + widths.iter().sum::<usize>();
        self.ids.len() as u64 * per_row as u64
    }
}

/// Canonical request-shape string for a predicate conjunction, as the host
/// sees it (values included: the query is public, §3.3).
fn fmt_preds(preds: &[Predicate]) -> String {
    if preds.is_empty() {
        return "*".into();
    }
    preds
        .iter()
        .map(|p| match (&p.op, &p.value2) {
            (CmpOp::Between, Some(hi)) => {
                format!("{} between {:?} and {hi:?}", p.column, p.value)
            }
            _ => {
                let op = match p.op {
                    CmpOp::Eq => "=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                    CmpOp::Between => "between",
                };
                format!("{}{op}{:?}", p.column, p.value)
            }
        })
        .collect::<Vec<_>>()
        .join(" & ")
}

/// The Untrusted PC: visible store + the sending end of the channel + the
/// host-observable request trace.
#[derive(Debug)]
pub struct UntrustedHost {
    /// Shared read-only after load: forks (worker-isolated executions)
    /// see the same store without copying it.
    store: Arc<VisibleStore>,
    /// Interior mutability: the catalog lane hands out `&UntrustedHost`
    /// shared across worker lanes, yet every host contact happens on the
    /// root lane (workers get no channel), so the lock is uncontended and
    /// the recorded order is the true serial host-observation order.
    trace: Mutex<HostTrace>,
}

impl UntrustedHost {
    /// Host over a loaded visible store.
    pub fn new(store: VisibleStore) -> Self {
        UntrustedHost {
            store: Arc::new(store),
            trace: Mutex::new(HostTrace::new()),
        }
    }

    /// A host over the same store with an empty trace — what one
    /// worker-isolated query execution records onto. Equivalent to this
    /// host after `reset_trace()`: the store is shared, the trace fresh.
    pub fn fork(&self) -> UntrustedHost {
        UntrustedHost {
            store: Arc::clone(&self.store),
            trace: Mutex::new(HostTrace::new()),
        }
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &VisibleStore {
        &self.store
    }

    /// Snapshot of the host-observable trace recorded so far.
    pub fn trace(&self) -> HostTrace {
        self.trace.lock().expect("host trace lock").clone()
    }

    /// Clear the trace (start of a new query).
    pub fn reset_trace(&self) {
        self.trace.lock().expect("host trace lock").clear();
    }

    fn record(&self, ev: HostTraceEvent) {
        self.trace.lock().expect("host trace lock").record(ev);
    }

    /// Receive the query (PC → token metadata transfer; this is the *only*
    /// thing the token ever acknowledges back, and the only flow a snooper
    /// sees leaving the PC besides visible data). Only the byte length
    /// enters the trace shape: the text itself is in the channel
    /// transcript, and keeping it out of the trace makes "same-shape
    /// queries trace identically" directly assertable.
    pub fn submit_query(&self, channel: &mut Channel, query_text: &str) {
        self.record(HostTraceEvent {
            op: HostOp::SubmitQuery,
            table: None,
            shape: format!("query[{}B]", query_text.len()),
            request_bytes: query_text.len() as u64,
            response_bytes: 0,
            items: 0,
        });
        channel.send_to_secure("query", query_text.as_bytes());
    }

    /// Exact visible-predicate count for the planner, recorded as a host
    /// observation. No bytes move: the count is knowledge the host already
    /// has (it evaluates the selection itself), which is exactly why the
    /// trace must carry it — it is part of what the untrusted side sees.
    pub fn count(&self, t: TableId, preds: &[Predicate]) -> Result<u64> {
        let n = self.store.count(t, preds)?;
        self.record(HostTraceEvent {
            op: HostOp::Count,
            table: Some(t),
            shape: fmt_preds(preds),
            request_bytes: 0,
            response_bytes: 0,
            items: n,
        });
        Ok(n)
    }

    /// `Vis(Q, T, π)` at the default (exact, unpadded) volume.
    pub fn vis(
        &self,
        channel: &mut Channel,
        table: TableId,
        table_name: &str,
        preds: &[Predicate],
        projection: &[String],
    ) -> Result<VisShipment> {
        self.vis_with(
            channel,
            table,
            table_name,
            preds,
            projection,
            PadMode::Exact,
        )
    }

    /// `Vis(Q, T, π)`: evaluate all visible predicates of `Q` on `T`, ship
    /// the sorted id list plus the values of the `π` columns, padded to
    /// `pad`'s row bucket with zero filler.
    ///
    /// The transfer is recorded on the channel with a tag naming the table,
    /// projection and (when padding) the bucket, so the transcript is
    /// self-describing; the select/project requests land in the
    /// [`HostTrace`] with their post-padding wire volumes.
    pub fn vis_with(
        &self,
        channel: &mut Channel,
        table: TableId,
        table_name: &str,
        preds: &[Predicate],
        projection: &[String],
        pad: PadMode,
    ) -> Result<VisShipment> {
        let ids = self.store.select(table, preds)?;
        let rows = self.store.project(table, &ids, projection)?;
        let bucket = pad.bucket(ids.len());
        let filler_rows = bucket - ids.len();
        self.record(HostTraceEvent {
            op: HostOp::Select,
            table: Some(table),
            shape: fmt_preds(preds),
            request_bytes: 0,
            response_bytes: (bucket * ID_BYTES) as u64,
            items: ids.len() as u64,
        });
        let mut columns: Vec<(String, Vec<Value>)> = projection
            .iter()
            .map(|c| (c.clone(), Vec::with_capacity(ids.len())))
            .collect();
        for row in rows {
            for (slot, v) in columns.iter_mut().zip(row) {
                slot.1.push(v);
            }
        }
        // Serialise for the wire: ids then column values, fixed widths,
        // each block zero-filled to the pad bucket.
        let vis_table = self.store.table(table);
        let mut payload = Vec::with_capacity(bucket * ID_BYTES);
        for id in &ids {
            payload.extend_from_slice(&id.to_le_bytes());
        }
        payload.resize(bucket * ID_BYTES, 0);
        let mut widths_sum = 0usize;
        for (name, values) in &columns {
            let ty = vis_table.column(name)?.ty;
            widths_sum += ty.width();
            let mut buf = vec![0u8; ty.width()];
            for v in values {
                v.encode(&ty, &mut buf)?;
                payload.extend_from_slice(&buf);
            }
            payload.resize(payload.len() + filler_rows * ty.width(), 0);
        }
        if !projection.is_empty() {
            self.record(HostTraceEvent {
                op: HostOp::Project,
                table: Some(table),
                shape: projection.join("+"),
                request_bytes: 0,
                response_bytes: (bucket * widths_sum) as u64,
                items: ids.len() as u64,
            });
        }
        let mut tag = if projection.is_empty() {
            format!("Vis({table_name}).ids")
        } else {
            format!("Vis({table_name}).ids+{}", projection.join("+"))
        };
        if pad != PadMode::Exact {
            tag.push_str(&format!(".pad{bucket}"));
        }
        channel.send_to_secure(&tag, &payload);
        Ok(VisShipment {
            table,
            ids,
            columns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{VisibleColumn, VisibleTable};
    use ghostdb_storage::{CmpOp, ColumnType};

    fn host() -> UntrustedHost {
        let mut s = VisibleStore::new(1);
        s.set_table(
            0,
            VisibleTable {
                columns: vec![
                    VisibleColumn::from_gen("v1", ColumnType::char(10), 100, |i| {
                        Value::Str(format!("{i:09}"))
                    })
                    .expect("column"),
                ],
                rows: 100,
            },
        );
        UntrustedHost::new(s)
    }

    #[test]
    fn vis_ships_ids_and_values_with_exact_byte_count() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        let preds = [Predicate::new(
            "v1",
            CmpOp::Lt,
            Value::Str("000000010".into()),
            None,
        )];
        let shipment = h
            .vis(&mut ch, 0, "T1", &preds, &["v1".to_string()])
            .unwrap();
        assert_eq!(shipment.ids, (0..10).collect::<Vec<u32>>());
        assert_eq!(shipment.columns[0].1.len(), 10);
        // 10 rows × (4 id + 10 char) = 140 bytes on the wire.
        assert_eq!(ch.bytes_to_secure(), 140);
        assert_eq!(ch.transcript().len(), 1);
        assert!(ch.transcript()[0].tag.contains("Vis(T1)"));
        // The host saw one select and one project, volumes matching the wire.
        let trace = h.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].op, HostOp::Select);
        assert_eq!(trace.events()[0].items, 10);
        assert_eq!(trace.events()[1].op, HostOp::Project);
        assert_eq!(trace.response_bytes(), 140);
    }

    #[test]
    fn ids_only_shipment() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        let shipment = h.vis(&mut ch, 0, "T1", &[], &[]).unwrap();
        assert_eq!(shipment.ids.len(), 100);
        assert_eq!(ch.bytes_to_secure(), 400);
        assert_eq!(h.trace().events()[0].shape, "*");
    }

    #[test]
    fn query_submission_is_the_only_outbound_flow() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        h.submit_query(&mut ch, "SELECT T0.id FROM T0");
        assert_eq!(ch.bytes_to_secure(), 20);
        assert_eq!(ch.bytes_to_untrusted(), 0);
        let trace = h.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].op, HostOp::SubmitQuery);
        assert_eq!(trace.events()[0].request_bytes, 20);
    }

    #[test]
    fn padded_shipment_rounds_to_power_of_two_rows() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        let preds = [Predicate::new(
            "v1",
            CmpOp::Lt,
            Value::Str("000000010".into()),
            None,
        )];
        // 10 selected rows pad to a 16-row bucket: 16 × (4 + 10) = 224 B.
        let shipment = h
            .vis_with(
                &mut ch,
                0,
                "T1",
                &preds,
                &["v1".to_string()],
                PadMode::PowerOfTwo,
            )
            .unwrap();
        assert_eq!(shipment.ids.len(), 10, "padding never changes the result");
        assert_eq!(ch.bytes_to_secure(), 224);
        let tag = &ch.transcript()[0].tag;
        assert!(
            tag.starts_with("Vis(T1)"),
            "padded tag keeps the Vis( prefix"
        );
        assert!(tag.ends_with(".pad16"));
        let trace = h.trace();
        assert_eq!(trace.response_bytes(), 224);
        assert_eq!(trace.events()[0].items, 10, "true count stays in the trace");
    }

    #[test]
    fn padded_empty_selection_still_ships_one_row() {
        let h = host();
        let mut ch = Channel::usb_full_speed();
        let preds = [Predicate::eq("v1", Value::Str("nope".into()))];
        let shipment = h
            .vis_with(&mut ch, 0, "T1", &preds, &[], PadMode::PowerOfTwo)
            .unwrap();
        assert!(shipment.ids.is_empty());
        assert_eq!(ch.bytes_to_secure(), ID_BYTES as u64);
    }

    #[test]
    fn count_is_traced_without_wire_traffic() {
        let h = host();
        let n = h
            .count(0, &[Predicate::new("id", CmpOp::Lt, Value::Int(7), None)])
            .unwrap();
        assert_eq!(n, 7);
        let trace = h.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events()[0].op, HostOp::Count);
        assert_eq!(trace.events()[0].items, 7);
        assert_eq!(trace.response_bytes(), 0);
        h.reset_trace();
        assert!(h.trace().is_empty());
    }
}
