//! End-to-end executor tests: every strategy and every projection algorithm
//! must produce identical, ground-truth results on the tiny deterministic
//! database, while respecting the secure-RAM budget and keeping the channel
//! transcript clean of hidden data.

use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::query::SpjQuery;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::testkit::{pad8, tiny_db, tiny_truth, TINY_ROWS};
use ghostdb_exec::{ExecOptions, Executor, ResultSet};
use ghostdb_storage::{CmpOp, Predicate, Value};
use ghostdb_token::Direction;

/// The paper's query Q (§6.4) on the tiny database: visible selection on
/// T1, hidden selection on T12, joins up to T0, projecting
/// T0.id, T1.id, T12.id, T1.v1.
fn query_q(db: &ghostdb_exec::Database, s: u64, k: u64) -> SpjQuery {
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let t12 = db.schema.table_id("T12").unwrap();
    let mut q = SpjQuery::new()
        .pred(t1, Predicate::new("v1", CmpOp::Lt, pad8(s), None))
        .pred(t12, Predicate::eq("h2", pad8(k)))
        .project(t0, "id")
        .project(t1, "id")
        .project(t12, "id")
        .project(t1, "v1");
    q.text = format!(
        "SELECT T0.id, T1.id, T12.id, T1.v1 FROM T0, T1, T12 \
         WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '{s:08}' AND T12.h2 = '{k:08}'"
    );
    q
}

fn expected_q(s: u64, k: u64) -> Vec<Vec<Value>> {
    let roots = tiny_truth(|_t0, t1, _t2, _t11, t12| t1 < s && t12 % 8 == k);
    roots
        .into_iter()
        .map(|r| {
            let t1 = r as u64 % TINY_ROWS[1];
            let t12 = t1 % TINY_ROWS[4];
            vec![
                Value::Int(r as i64),
                Value::Int(t1 as i64),
                Value::Int(t12 as i64),
                pad8(t1),
            ]
        })
        .collect()
}

fn run(db: &mut ghostdb_exec::Database, q: &SpjQuery, opts: &ExecOptions) -> ResultSet {
    let (rs, report) = Executor::run(db, q, opts).expect("query runs");
    assert!(
        report.peak_ram_buffers <= db.token.ram.capacity(),
        "RAM overflow: {} > {}",
        report.peak_ram_buffers,
        db.token.ram.capacity()
    );
    rs
}

#[test]
fn all_strategies_agree_with_ground_truth() {
    let mut db = tiny_db();
    let q = query_q(&db, 30, 3);
    let expected = expected_q(30, 3);
    assert!(!expected.is_empty(), "test query must select something");
    for strategy in [
        VisStrategy::Pre,
        VisStrategy::CrossPre,
        VisStrategy::Post,
        VisStrategy::CrossPost,
        VisStrategy::PostSelect,
        VisStrategy::CrossPostSelect,
        VisStrategy::NoFilter,
    ] {
        let rs = run(&mut db, &q, &ExecOptions::new().strategy(strategy));
        assert_eq!(
            rs.sorted().rows,
            expected,
            "strategy {} diverges",
            strategy.name()
        );
    }
}

#[test]
fn all_projection_algorithms_agree() {
    let mut db = tiny_db();
    let q = query_q(&db, 45, 1);
    let expected = expected_q(45, 1);
    for algo in [
        ProjectAlgo::Project,
        ProjectAlgo::ProjectNoBf,
        ProjectAlgo::BruteForce,
    ] {
        for strategy in [VisStrategy::CrossPre, VisStrategy::CrossPost] {
            let opts = ExecOptions::new().strategy(strategy).project(algo);
            let rs = run(&mut db, &q, &opts);
            assert_eq!(
                rs.sorted().rows,
                expected,
                "{} under {} diverges",
                algo.name(),
                strategy.name()
            );
        }
    }
}

#[test]
fn auto_strategy_matches_forced() {
    let mut db = tiny_db();
    for s in [2u64, 12, 60, 110] {
        let q = query_q(&db, s, 5);
        let rs = run(&mut db, &q, &ExecOptions::auto());
        assert_eq!(rs.sorted().rows, expected_q(s, 5), "sV = {}/120", s);
    }
}

#[test]
fn hidden_projection_reads_hidden_image() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let mut q = SpjQuery::new()
        .pred(t1, Predicate::new("v1", CmpOp::Lt, pad8(10), None))
        .project(t0, "id")
        .project(t1, "h1");
    q.text = "SELECT T0.id, T1.h1 FROM T0, T1 WHERE T1.v1 < '00000010'".into();
    let rs = run(&mut db, &q, &ExecOptions::auto());
    let expected: Vec<Vec<Value>> = tiny_truth(|_r, t1, _, _, _| t1 < 10)
        .into_iter()
        .map(|r| {
            let t1 = r as u64 % TINY_ROWS[1];
            vec![Value::Int(r as i64), pad8(t1 % 4)]
        })
        .collect();
    assert_eq!(rs.sorted().rows, expected);
}

#[test]
fn root_predicates_and_projections() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let mut q = SpjQuery::new()
        .pred(t0, Predicate::eq("h1", pad8(2)))
        .pred(t0, Predicate::new("v1", CmpOp::Lt, pad8(100), None))
        .project(t0, "id")
        .project(t0, "v2")
        .project(t0, "h2");
    q.text =
        "SELECT T0.id, T0.v2, T0.h2 FROM T0 WHERE T0.h1='00000002' AND T0.v1<'00000100'".into();
    let rs = run(&mut db, &q, &ExecOptions::auto());
    let expected: Vec<Vec<Value>> = tiny_truth(|r, _, _, _, _| r % 4 == 2 && r < 100)
        .into_iter()
        .map(|r| {
            vec![
                Value::Int(r as i64),
                pad8(r as u64 % 10),
                pad8(r as u64 % 8),
            ]
        })
        .collect();
    assert!(!expected.is_empty());
    assert_eq!(rs.sorted().rows, expected);
}

#[test]
fn hidden_only_query() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let t2 = db.schema.table_id("T2").unwrap();
    let mut q = SpjQuery::new()
        .pred(t2, Predicate::eq("h1", pad8(1)))
        .project(t0, "id");
    q.text = "SELECT T0.id FROM T0, T2 WHERE T0.fk2 = T2.id AND T2.h1 = '00000001'".into();
    let rs = run(&mut db, &q, &ExecOptions::auto());
    let expected: Vec<Vec<Value>> = tiny_truth(|_r, _t1, t2, _, _| t2 % 4 == 1)
        .into_iter()
        .map(|r| vec![Value::Int(r as i64)])
        .collect();
    assert_eq!(rs.sorted().rows, expected);
}

#[test]
fn visible_only_query_runs_and_matches() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let mut q = SpjQuery::new()
        .pred(t1, Predicate::eq("v2", pad8(3)))
        .project(t0, "id")
        .project(t1, "v1");
    q.text = "SELECT T0.id, T1.v1 FROM T0, T1 WHERE T1.v2 = '00000003'".into();
    let rs = run(&mut db, &q, &ExecOptions::auto());
    let expected: Vec<Vec<Value>> = tiny_truth(|_r, t1, _, _, _| t1 % 10 == 3)
        .into_iter()
        .map(|r| {
            let t1 = r as u64 % TINY_ROWS[1];
            vec![Value::Int(r as i64), pad8(t1)]
        })
        .collect();
    assert_eq!(rs.sorted().rows, expected);
}

#[test]
fn range_predicates_on_hidden_attributes() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let mut q = SpjQuery::new()
        .pred(
            t1,
            Predicate::new("h2", CmpOp::Between, pad8(2), Some(pad8(5))),
        )
        .project(t0, "id");
    q.text = "SELECT T0.id FROM T0, T1 WHERE T1.h2 BETWEEN '00000002' AND '00000005'".into();
    let rs = run(&mut db, &q, &ExecOptions::auto());
    let expected: Vec<Vec<Value>> = tiny_truth(|_r, t1, _, _, _| (2..=5).contains(&(t1 % 8)))
        .into_iter()
        .map(|r| vec![Value::Int(r as i64)])
        .collect();
    assert_eq!(rs.sorted().rows, expected);
}

#[test]
fn empty_result_queries() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let mut q = SpjQuery::new()
        .pred(t1, Predicate::eq("v1", pad8(99_999)))
        .pred(t1, Predicate::eq("h1", pad8(1)))
        .project(t0, "id");
    q.text = "SELECT T0.id FROM T0, T1 WHERE T1.v1='00099999' AND T1.h1='00000001'".into();
    for strategy in [VisStrategy::Pre, VisStrategy::CrossPre, VisStrategy::Post] {
        let rs = run(&mut db, &q, &ExecOptions::new().strategy(strategy));
        assert!(rs.is_empty(), "{}", strategy.name());
    }
}

#[test]
fn no_hidden_data_ever_crosses_the_channel() {
    let mut db = tiny_db();
    db.token.channel.set_capture(true);
    let q = query_q(&db, 40, 2);
    let _ = run(&mut db, &q, &ExecOptions::auto());
    // Outbound flows (token → PC) must only ever be the query ack; inbound
    // flows are the query and visible shipments.
    for entry in db.token.channel.transcript() {
        match entry.direction {
            Direction::ToUntrusted => {
                assert_eq!(entry.tag, "query-ack", "unexpected outbound flow");
                assert!(entry.bytes <= 4);
            }
            Direction::ToSecure => {
                assert!(
                    entry.tag == "query" || entry.tag.starts_with("Vis("),
                    "unexpected inbound tag {}",
                    entry.tag
                );
            }
        }
    }
}

#[test]
fn report_buckets_are_populated() {
    let mut db = tiny_db();
    let q = query_q(&db, 30, 3);
    let (_, report) = Executor::run(
        &mut db,
        &q,
        &ExecOptions::new().strategy(VisStrategy::CrossPre),
    )
    .unwrap();
    assert!(report.total().as_ns() > 0);
    assert!(report.comm.as_ns() > 0);
    assert!(report.bytes_to_secure > 0);
    let buckets = report.fig15_buckets();
    let project_time = buckets[3].1;
    assert!(project_time.as_ns() > 0, "projection must cost something");
    assert_eq!(report.result_rows, expected_q(30, 3).len() as u64);
}

#[test]
fn spill_policies_agree_on_results() {
    // A wide Pre-Filter probe (110 of 120 T1 ids) delivers more sublists
    // than RAM buffers, forcing the reduction phase; both spill policies
    // must deliver identical rows (they only reorder which group's
    // sublists are unioned into temps first).
    let mut db = tiny_db();
    let q = query_q(&db, 110, 3);
    let expected = expected_q(110, 3);
    assert!(!expected.is_empty());
    for policy in [
        ghostdb_exec::SpillPolicy::WidestSmallest,
        ghostdb_exec::SpillPolicy::GlobalSmallestK,
    ] {
        let opts = ExecOptions::new()
            .strategy(VisStrategy::Pre)
            .spill_policy(policy);
        let rs = run(&mut db, &q, &opts);
        assert_eq!(rs.sorted().rows, expected, "policy {:?}", policy);
    }
}

#[test]
fn strategies_not_applicable_error_cleanly() {
    let mut db = tiny_db();
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    // No hidden predicate anywhere: Cross strategies must refuse.
    let mut q = SpjQuery::new()
        .pred(t1, Predicate::new("v1", CmpOp::Lt, pad8(10), None))
        .project(t0, "id");
    q.text = "SELECT T0.id FROM T0, T1 WHERE T1.v1 < '00000010'".into();
    let err = Executor::run(
        &mut db,
        &q,
        &ExecOptions::new().strategy(VisStrategy::CrossPre),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ghostdb_exec::ExecError::StrategyNotApplicable(_)
    ));
}
