//! Differential property suite for the multi-level climbing-index read
//! path. The volume-leakage literature (Practical Volume-Based Attacks on
//! Encrypted Databases; ObliDB) is blunt about why this matters: two plans
//! that are supposed to be equivalent must stay equivalent in their
//! *access patterns*, not just their answers. So the single-traversal
//! `lookup_range_multi` / `select_sublists_multi` path is locked to the
//! per-level reference three ways:
//!
//! 1. **Index level** — proptest-generated climbing indexes over a 4-deep
//!    chain schema (random key distributions, duplicate keys, level counts
//!    1–4, ranges that are empty / inverted / single-leaf /
//!    leaf-boundary-spanning): `lookup_range_multi` must return exactly the
//!    sublists per-level `lookup_range` returns, and its traversal must
//!    read exactly the pages of ONE single-level scan — never more, no
//!    matter how many levels decode.
//! 2. **Operator level** — `select_sublists_multi` vs
//!    `naive_select_sublists_multi` on a real database: identical decoded
//!    id lists, identical `OpKind` bucket *shape* (all I/O in `Ci`,
//!    nothing anywhere else), multi cost ≤ naive cost with equality at one
//!    level, and run-to-run determinism of `ops`/`bytes_io`.
//! 3. **Plan level** — Cross-Post/Cross-Pre queries through the full
//!    executor: results and every `ExecReport` field bit-identical across
//!    repeats and `intra_threads ∈ {1, 2, 4}`.
//!
//! Deepen with `PROPTEST_CASES=1024 cargo test --release …` (the CI
//! `proptest-deep` leg).

use ghostdb_exec::ci_ops::{naive_select_sublists_multi, select_sublists_multi};
use ghostdb_exec::project::ProjectAlgo;
use ghostdb_exec::source::IdSource;
use ghostdb_exec::strategy::VisStrategy;
use ghostdb_exec::testkit::{pad8, tiny_db};
use ghostdb_exec::{Database, ExecCtx, ExecOptions, ExecReport, Executor, OpKind, SpjQuery};
use ghostdb_flash::{FlashDevice, FlashGeometry, FlashStats, FlashTiming, SegmentAllocator};
use ghostdb_index::{ClimbingSpec, FkData, IndexBuilder, LevelSpec};
use ghostdb_storage::schema::{Column, SchemaTree, TableDef};
use ghostdb_storage::{CmpOp, ColumnType, Id, IdListReader, Predicate};
use ghostdb_token::RamArena;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Index level: lookup_range_multi ≡ per-level lookup_range
// ---------------------------------------------------------------------------

/// SplitMix64 — deterministic derivation of rows/fks/keys from one seed, so
/// a case is fully described by its sampled scalars (the stub proptest has
/// no flat-map to generate dependent collections directly).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 4-deep chain schema `C0 ← C1 ← C2 ← C3` (each parent holds a hidden
/// fk to its child): FullClimb indexes on C3..C0 expose level counts 4..1.
fn chain_schema() -> SchemaTree {
    let col = || Column::hidden("h", ColumnType::char(8));
    SchemaTree::new(vec![
        TableDef::new("C0").with_column(col()).with_fk("fk1", "C1"),
        TableDef::new("C1").with_column(col()).with_fk("fk2", "C2"),
        TableDef::new("C2").with_column(col()).with_fk("fk3", "C3"),
        TableDef::new("C3").with_column(col()),
    ])
    .expect("chain schema is a valid tree")
}

struct ChainCase {
    dev: FlashDevice,
    ram: RamArena,
    ci: ghostdb_index::ClimbingIndex,
}

/// Build a climbing index with `depth` levels over random data: the table
/// `C{depth-1}` gets `n_rows` rows with keys drawn (with duplicates) from
/// `0..key_mod`; every other cardinality and every fk column derives from
/// `seed`.
fn build_chain_case(depth: usize, n_rows: usize, key_mod: u64, seed: u64) -> ChainCase {
    let schema = chain_schema();
    let indexed = depth - 1; // FullClimb from C{depth-1} spans `depth` levels
    let mut rows = vec![0u64; 4];
    for (t, r) in rows.iter_mut().enumerate() {
        *r = if t == indexed {
            n_rows as u64
        } else {
            1 + mix(seed, 100 + t as u64) % 50
        };
    }
    let mut fks = FkData::default();
    for parent in 0..3usize {
        let child = parent + 1;
        let fk: Vec<Id> = (0..rows[parent])
            .map(|j| (mix(seed, (parent as u64) << 32 | j) % rows[child]) as Id)
            .collect();
        fks.insert(parent, child, fk);
    }
    let keys: Vec<u64> = (0..n_rows as u64).map(|r| mix(seed, r) % key_mod).collect();
    let mut dev = FlashDevice::new(
        FlashGeometry::for_capacity(8 * 1024 * 1024),
        FlashTiming::default(),
    );
    let mut alloc = SegmentAllocator::new(dev.logical_pages());
    let builder = IndexBuilder::new(schema, rows, fks);
    let ci = builder
        .build_climbing(
            &mut dev,
            &mut alloc,
            ClimbingSpec {
                table: indexed,
                column: "h",
                keys: &keys,
                levels: LevelSpec::FullClimb,
                exact: true,
            },
        )
        .expect("chain index builds");
    assert_eq!(ci.levels.len(), depth);
    let ram = RamArena::paper_default();
    ChainCase { dev, ram, ci }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core differential: multi-level lists equal per-level lists for
    /// every level, and the multi traversal's I/O equals ONE single-level
    /// scan's — bit for bit, on every counter — regardless of depth.
    #[test]
    fn multi_matches_per_level_lists_and_single_scan_io(
        depth in 1usize..=4,
        n_rows in 1usize..=240,
        key_mod in 1u64..=200,
        seed in any::<u64>(),
        lo_raw in any::<u64>(),
        hi_raw in any::<u64>(),
    ) {
        let ChainCase { mut dev, ram, ci } = build_chain_case(depth, n_rows, key_mod, seed);
        // Span 1.5× the key domain so ranges land empty, clipped, inverted
        // and fully covering; small mods keep everything in one leaf while
        // large ones span several (63+ entries per leaf at depth ≤ 2).
        let span = key_mod + key_mod / 2 + 2;
        let (lo, hi) = (lo_raw % span, hi_raw % span);
        let levels: Vec<usize> = (0..depth).collect();

        let mut per_level: Vec<Vec<ghostdb_storage::IdList>> = Vec::new();
        let mut single_io: Option<FlashStats> = None;
        for &level in &levels {
            let mut probe = ci.probe(&ram).unwrap();
            let snap = dev.snapshot();
            per_level.push(probe.lookup_range(&mut dev, lo, hi, level).unwrap());
            let io = dev.stats_since(&snap);
            // Every single-level scan of the same range costs the same.
            if let Some(first) = &single_io {
                prop_assert_eq!(&io, first, "level {} scan I/O drifts", level);
            } else {
                single_io = Some(io);
            }
        }

        let mut probe = ci.probe(&ram).unwrap();
        let snap = dev.snapshot();
        let multi = probe.lookup_range_multi(&mut dev, lo, hi, &levels).unwrap();
        let multi_io = dev.stats_since(&snap);

        prop_assert_eq!(&multi, &per_level, "range [{}, {}]", lo, hi);
        prop_assert_eq!(
            &multi_io,
            single_io.as_ref().unwrap(),
            "multi traversal must cost exactly one single-level scan"
        );

        // Determinism: repeating the multi scan on a fresh probe replays
        // the identical I/O trace.
        let mut probe = ci.probe(&ram).unwrap();
        let snap = dev.snapshot();
        let again = probe.lookup_range_multi(&mut dev, lo, hi, &levels).unwrap();
        prop_assert_eq!(&again, &multi);
        prop_assert_eq!(&dev.stats_since(&snap), &multi_io);
    }

    /// Requesting a subset (with repeats) of the levels returns exactly the
    /// matching single-level scans, still at one scan's I/O.
    #[test]
    fn multi_level_subsets_and_repeats(
        n_rows in 1usize..=160,
        key_mod in 1u64..=120,
        seed in any::<u64>(),
        lo_raw in any::<u64>(),
        pick in (0usize..4, 0usize..4, 0usize..4),
    ) {
        let depth = 4;
        let ChainCase { mut dev, ram, ci } = build_chain_case(depth, n_rows, key_mod, seed);
        let lo = lo_raw % (key_mod + 2);
        let hi = lo + key_mod / 2;
        let levels = [pick.0, pick.1, pick.2]; // repeats welcome
        let mut probe = ci.probe(&ram).unwrap();
        let snap = dev.snapshot();
        let multi = probe.lookup_range_multi(&mut dev, lo, hi, &levels).unwrap();
        let multi_io = dev.stats_since(&snap);
        for (i, &level) in levels.iter().enumerate() {
            let mut single = ci.probe(&ram).unwrap();
            let snap = dev.snapshot();
            let want = single.lookup_range(&mut dev, lo, hi, level).unwrap();
            let single_io = dev.stats_since(&snap);
            prop_assert_eq!(&multi[i], &want, "slot {} (level {})", i, level);
            prop_assert_eq!(&multi_io, &single_io, "slot {} (level {})", i, level);
        }
    }
}

// ---------------------------------------------------------------------------
// Operator level: select_sublists_multi ≡ naive_select_sublists_multi
// ---------------------------------------------------------------------------

/// Decode every flash sublist to concrete ids (charged outside any tracked
/// scope, after attribution has been snapshotted).
fn decode(ctx: &mut ExecCtx<'_>, groups: &[Vec<IdSource>]) -> Vec<Vec<Vec<Id>>> {
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    groups
        .iter()
        .map(|level| {
            level
                .iter()
                .map(|src| match src {
                    IdSource::Flash(list) => {
                        let reader = IdListReader::open(*list, &ram, page_size).unwrap();
                        ctx.lane.with_flash(|dev| reader.drain(dev).unwrap())
                    }
                    other => panic!("select_sublists_multi emitted {other:?}"),
                })
                .collect()
        })
        .collect()
}

/// Ci attribution and lane I/O of one ci_ops call on a fresh context.
fn run_ci_op(
    db: &mut Database,
    f: impl Fn(&mut ExecCtx<'_>) -> Vec<Vec<IdSource>>,
) -> (Vec<Vec<Vec<Id>>>, u128, FlashStats, Vec<u128>) {
    let mut ctx = ExecCtx::new(db);
    let groups = f(&mut ctx);
    let ci_ns = ctx.cost.op(OpKind::Ci).as_ns();
    let io = ctx.lane.io();
    let others: Vec<u128> = OpKind::ALL
        .iter()
        .filter(|op| **op != OpKind::Ci)
        .map(|op| ctx.cost.op(*op).as_ns())
        .collect();
    let ids = decode(&mut ctx, &groups);
    (ids, ci_ns, io, others)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random hidden predicates over the tiny database: the batched
    /// operator and its naive reference must decode identical id lists,
    /// charge *only* the Ci bucket, and the batched path must never read
    /// more than the naive one (strictly less I/O is the win; equality is
    /// required at a single level).
    #[test]
    fn select_sublists_multi_matches_naive_reference(
        table_pick in 0usize..4,
        column_pick in 0usize..2,
        bound in 0u64..10,
        op_pick in 0usize..2,
    ) {
        let mut db = tiny_db();
        let names = ["T12", "T11", "T1", "T2"];
        let t = db.schema.table_id(names[table_pick]).unwrap();
        let root = db.schema.root();
        let column = ["h1", "h2"][column_pick];
        let cmp = [CmpOp::Lt, CmpOp::Eq][op_pick];
        let pred = Predicate::new(column, cmp, pad8(bound), None);
        let targets_multi = [t, root];
        let targets_single = [root];

        for targets in [&targets_multi[..], &targets_single[..]] {
            let (ids_m, ci_m, io_m, others_m) = run_ci_op(&mut db, |ctx| {
                let ci = ctx.attr_index(t, column).unwrap();
                select_sublists_multi(ctx, ci, &pred, targets).unwrap()
            });
            let (ids_n, ci_n, io_n, others_n) = run_ci_op(&mut db, |ctx| {
                let ci = ctx.attr_index(t, column).unwrap();
                naive_select_sublists_multi(ctx, ci, &pred, targets).unwrap()
            });
            prop_assert_eq!(&ids_m, &ids_n, "decoded ids diverge for {:?}", targets);
            prop_assert!(
                others_m.iter().all(|ns| *ns == 0) && others_n.iter().all(|ns| *ns == 0),
                "CI scans must charge only the Ci bucket"
            );
            prop_assert!(ci_m <= ci_n, "batched Ci cost exceeds naive");
            prop_assert!(
                io_m.pages_read <= io_n.pages_read && io_m.bytes_to_ram <= io_n.bytes_to_ram,
                "batched path read more than naive"
            );
            if targets.len() == 1 {
                prop_assert_eq!(ci_m, ci_n, "single-level multi must equal naive exactly");
                prop_assert_eq!(io_m, io_n);
            }
            // Determinism: the batched call replays identically.
            let (ids_m2, ci_m2, io_m2, _) = run_ci_op(&mut db, |ctx| {
                let ci = ctx.attr_index(t, column).unwrap();
                select_sublists_multi(ctx, ci, &pred, targets).unwrap()
            });
            prop_assert_eq!(&ids_m, &ids_m2);
            prop_assert_eq!(ci_m, ci_m2);
            prop_assert_eq!(io_m, io_m2);
        }
    }
}

// ---------------------------------------------------------------------------
// Plan level: Cross plans through the full executor
// ---------------------------------------------------------------------------

/// Every observable field of two reports must match bit for bit (the same
/// lock `intra_equivalence` uses).
fn assert_report_identical(label: &str, want: &ExecReport, got: &ExecReport) {
    for op in OpKind::ALL {
        assert_eq!(
            want.op(op),
            got.op(op),
            "{label}: {} bucket diverges",
            op.name()
        );
    }
    assert_eq!(
        want.flash_total(),
        got.flash_total(),
        "{label}: flash_total"
    );
    assert_eq!(want.comm, got.comm, "{label}: comm");
    assert_eq!(
        want.bytes_to_secure, got.bytes_to_secure,
        "{label}: bytes_to_secure"
    );
    assert_eq!(want.result_rows, got.result_rows, "{label}: result_rows");
    assert_eq!(want.io, got.io, "{label}: io counters");
    assert_eq!(
        want.peak_ram_buffers, got.peak_ram_buffers,
        "{label}: peak_ram_buffers"
    );
}

/// The §6.4-shaped query over the tiny database: visible selection on T1,
/// hidden selection on T12 (inside T1's subtree so every Cross strategy
/// applies, and so Cross-Post exercises the banked-root-sublists path).
fn cross_query(db: &Database, vis_k: u64, hid_k: u64) -> SpjQuery {
    let t0 = db.schema.root();
    let t1 = db.schema.table_id("T1").expect("T1");
    let t12 = db.schema.table_id("T12").expect("T12");
    let mut q = SpjQuery::new()
        .pred(t1, Predicate::new("v1", CmpOp::Lt, pad8(vis_k), None))
        .pred(t12, Predicate::new("h1", CmpOp::Lt, pad8(hid_k), None))
        .project(t0, "id")
        .project(t1, "id");
    q.text = format!("cross-q(v<{vis_k}, h<{hid_k})");
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross plans with random selectivities: results and complete
    /// `ExecReport`s are bit-identical across repeats and worker-lane
    /// counts — the access pattern of the single-traversal read path is a
    /// pure function of the plan, never of scheduling.
    #[test]
    fn cross_plans_deterministic_across_intra_threads(
        vis_k in 1u64..=120,
        hid_k in 0u64..=4,
        strat_pick in 0usize..3,
    ) {
        let strategy = [
            VisStrategy::CrossPost,
            VisStrategy::CrossPostSelect,
            VisStrategy::CrossPre,
        ][strat_pick];
        let mut base_db = tiny_db();
        let q = cross_query(&base_db, vis_k, hid_k);
        let base_opts = ExecOptions::new().strategy(strategy)
            .project(ProjectAlgo::Project)
            .intra_threads(1);
        let (want_rs, want_rep) =
            Executor::run(&mut base_db, &q, &base_opts).expect("serial run");
        for threads in [1usize, 2, 4] {
            let mut db = tiny_db();
            let opts = ExecOptions::new().strategy(strategy)
                .project(ProjectAlgo::Project)
                .intra_threads(threads);
            for repeat in 0..2 {
                let (rs, rep) = Executor::run(&mut db, &q, &opts).expect("cross run");
                let tag = format!(
                    "{}/threads={threads}/repeat={repeat}",
                    strategy.name()
                );
                prop_assert_eq!(&rs, &want_rs, "{}: results diverge", &tag);
                assert_report_identical(&tag, &want_rep, &rep);
            }
        }
    }
}

/// Like `testkit::tiny_db`, but `h1` on T1 is distinct per row, so its
/// climbing index spans several B+-tree leaves ((2048-8)/44 = 46 entries
/// per leaf at 3 levels) and per-level rescans actually pay leaf I/O.
fn wide_key_db() -> Database {
    use ghostdb_exec::database::{ColumnLoad, TableLoad};
    use ghostdb_storage::schema::paper_synthetic_schema;
    use ghostdb_token::TokenConfig;
    let schema = paper_synthetic_schema(2, 2);
    let [n0, n1, n2, n11, n12] = [600u64, 120, 40, 20, 16];
    let table = |name: &str, rows: u64, fks: Vec<(String, Vec<Id>)>| TableLoad {
        table: name.into(),
        rows,
        fks,
        columns: vec![
            ColumnLoad {
                name: "v1".into(),
                gen: Box::new(|r| pad8(r as u64)),
                index: false,
                exact: None,
            },
            ColumnLoad {
                name: "v2".into(),
                gen: Box::new(|r| pad8(r as u64 % 10)),
                index: false,
                exact: None,
            },
            ColumnLoad {
                name: "h1".into(),
                gen: Box::new(|r| pad8(r as u64)), // distinct per row
                index: true,
                exact: Some(true),
            },
            ColumnLoad {
                name: "h2".into(),
                gen: Box::new(|r| pad8(r as u64 % 8)),
                index: true,
                exact: Some(true),
            },
        ],
    };
    let loads = vec![
        table(
            "T0",
            n0,
            vec![
                ("fk1".into(), (0..n0).map(|i| (i % n1) as Id).collect()),
                ("fk2".into(), (0..n0).map(|i| (i % n2) as Id).collect()),
            ],
        ),
        table(
            "T1",
            n1,
            vec![
                ("fk11".into(), (0..n1).map(|i| (i % n11) as Id).collect()),
                ("fk12".into(), (0..n1).map(|i| (i % n12) as Id).collect()),
            ],
        ),
        table("T2", n2, vec![]),
        table("T11", n11, vec![]),
        table("T12", n12, vec![]),
    ];
    Database::assemble(
        schema,
        &TokenConfig::paper_platform(16 * 1024 * 1024),
        loads,
    )
    .expect("wide-key db assembles")
}

/// The headline number, pinned as a test: on the Cross-Post shape (cross
/// level + root level from one index) the single-traversal path must
/// charge materially less Ci I/O than the naive per-level reference — the
/// ROADMAP's "roughly halve Cross-Post CI flash cost" claim, kept honest
/// in-tree.
#[test]
fn cross_post_ci_bytes_materially_reduced() {
    let mut db = wide_key_db();
    let root = db.schema.root();
    let t1 = db.schema.table_id("T1").unwrap();
    let pred = Predicate::new("h1", CmpOp::Lt, pad8(120), None); // every key
    let targets = [t1, root];
    let (ids_m, ci_multi, io_multi, _) = run_ci_op(&mut db, |ctx| {
        let ci = ctx.attr_index(t1, "h1").unwrap();
        select_sublists_multi(ctx, ci, &pred, &targets).unwrap()
    });
    let (ids_n, ci_naive, io_naive, _) = run_ci_op(&mut db, |ctx| {
        let ci = ctx.attr_index(t1, "h1").unwrap();
        naive_select_sublists_multi(ctx, ci, &pred, &targets).unwrap()
    });
    assert_eq!(ids_m, ids_n, "identical sublists");
    assert!(
        2 * io_multi.bytes_to_ram <= io_naive.bytes_to_ram + 2 * 4096,
        "two-level scan should read about half the naive bytes \
         (multi {} vs naive {})",
        io_multi.bytes_to_ram,
        io_naive.bytes_to_ram
    );
    assert!(ci_multi < ci_naive, "Ci attribution must shrink");
}
