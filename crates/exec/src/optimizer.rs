//! Automatic strategy selection — the cost-based optimizer the paper lists
//! as future work, distilled from its own measurements.
//!
//! The visible selectivity `sV` is exact and free: the PC computes it (its
//! cycles are not the bottleneck and the count leaks nothing — the query is
//! public). The decision rules come straight from the evaluation:
//!
//! * Cross-filtering applies whenever a hidden selection exists on the
//!   table or its subtree, and "is beneficial whatever the selectivity"
//!   (Figure 8) — so use it whenever applicable;
//! * with Cross: Cross-Pre wins below sV ≈ 0.1, Cross-Post above
//!   (Figure 9's crossover);
//! * without Cross: Pre wins below sV ≈ 0.05 (Figure 10); Post is used
//!   above only while the Bloom filter stays useful, otherwise the
//!   selection is deferred to projection (the sV = 0.5 cutoff).

use crate::ctx::ExecCtx;
use crate::query::Analyzed;
use crate::strategy::{VisDecision, VisStrategy};
use crate::Result;
use ghostdb_bloom::worth_post_filtering;

/// Figure 9 crossover: Cross-Pre vs Cross-Post.
pub const CROSS_PRE_POST_CUTOFF: f64 = 0.1;
/// Figure 10 crossover: Pre vs Post.
pub const PRE_POST_CUTOFF: f64 = 0.05;

/// Decide a strategy for every table carrying visible predicates.
pub fn decide(ctx: &ExecCtx<'_>, a: &Analyzed) -> Result<Vec<VisDecision>> {
    let mut out = Vec::new();
    for (t, preds) in &a.vis_preds {
        let rows = ctx.cat.rows[*t].max(1);
        let matching = ctx.cat.untrusted.count(*t, preds)?;
        let sv = matching as f64 / rows as f64;
        let cross_applicable =
            *t != ctx.cat.schema.root() && !a.hidden_in_subtree(ctx.cat.schema, *t).is_empty();
        let strategy = if cross_applicable {
            if sv <= CROSS_PRE_POST_CUTOFF {
                VisStrategy::CrossPre
            } else {
                VisStrategy::CrossPost
            }
        } else if sv <= PRE_POST_CUTOFF {
            VisStrategy::Pre
        } else if worth_post_filtering(matching, sv, ctx.ram().total_bytes() / 2) {
            VisStrategy::Post
        } else {
            VisStrategy::NoFilter
        };
        out.push(VisDecision {
            table: *t,
            strategy,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::analyze;
    use crate::testkit::{self, pad8, TINY_ROWS};
    use crate::SpjQuery;
    use ghostdb_bloom::worth_post_filtering;
    use ghostdb_storage::{CmpOp, Predicate};

    /// Decide the strategy for T1 carrying `v1 < pad8(k)` (sv = k/120),
    /// optionally with a hidden selection on T12 (⊂ T1's subtree) making
    /// cross-filtering applicable.
    fn decide_t1(k: u64, with_hidden: bool) -> VisStrategy {
        let mut db = testkit::tiny_db();
        let t1 = db.schema.table_id("T1").unwrap();
        let t12 = db.schema.table_id("T12").unwrap();
        let mut q = SpjQuery::new().pred(t1, Predicate::new("v1", CmpOp::Lt, pad8(k), None));
        if with_hidden {
            q = q.pred(t12, Predicate::eq("h1", pad8(1)));
        }
        let a = analyze(&db.schema, &q).unwrap();
        let ctx = crate::ExecCtx::new(&mut db);
        let decisions = decide(&ctx, &a).unwrap();
        decisions
            .iter()
            .find(|d| d.table == t1)
            .expect("T1 decided")
            .strategy
    }

    #[test]
    fn pre_post_crossover_boundary() {
        let n1 = TINY_ROWS[1] as f64;
        // sv exactly at the Figure 10 cutoff stays Pre...
        assert_eq!(6.0 / n1, PRE_POST_CUTOFF);
        assert_eq!(decide_t1(6, false), VisStrategy::Pre);
        // ...one row more tips it past the cutoff into Post.
        assert_eq!(decide_t1(7, false), VisStrategy::Post);
    }

    #[test]
    fn cross_pre_post_crossover_boundary() {
        let n1 = TINY_ROWS[1] as f64;
        assert_eq!(12.0 / n1, CROSS_PRE_POST_CUTOFF);
        assert_eq!(decide_t1(12, true), VisStrategy::CrossPre);
        assert_eq!(decide_t1(13, true), VisStrategy::CrossPost);
    }

    #[test]
    fn saturated_bloom_falls_back_to_no_filter() {
        // sv = 90/120 = 0.75: the filter would pass ~3/4 of the SJoin
        // stream — Figure 10's "Post-Filter is simply not executed".
        assert_eq!(decide_t1(90, false), VisStrategy::NoFilter);
        // And the pure saturation case: more elements than budget bits
        // (< 1 bit/element) makes the filter hopeless regardless of sv.
        assert!(!worth_post_filtering(500_000, 0.01, 65_536 / 2));
    }

    #[test]
    fn cross_needs_a_subtree_hidden_selection() {
        // Same low selectivity: without a hidden selection below T1 the
        // cross strategies are not applicable and plain Pre wins.
        assert_eq!(decide_t1(2, true), VisStrategy::CrossPre);
        assert_eq!(decide_t1(2, false), VisStrategy::Pre);
    }

    #[test]
    fn root_table_never_crosses() {
        // A visible selection on the root cannot cross-filter (the probe
        // list climbs *to* the root); even with hidden selections present
        // the decision stays in the Pre/Post family.
        let mut db = testkit::tiny_db();
        let t0 = db.schema.root();
        let t12 = db.schema.table_id("T12").unwrap();
        let q = SpjQuery::new()
            .pred(t0, Predicate::new("v1", CmpOp::Lt, pad8(6), None))
            .pred(t12, Predicate::eq("h1", pad8(1)));
        let a = analyze(&db.schema, &q).unwrap();
        let ctx = crate::ExecCtx::new(&mut db);
        let d = decide(&ctx, &a).unwrap();
        assert_eq!(d[0].strategy, VisStrategy::Pre);
    }
}
