//! Automatic strategy selection — the cost-based optimizer the paper lists
//! as future work, distilled from its own measurements.
//!
//! The visible selectivity `sV` is exact and free: the PC computes it (its
//! cycles are not the bottleneck and the count leaks nothing — the query is
//! public). The decision rules come straight from the evaluation:
//!
//! * Cross-filtering applies whenever a hidden selection exists on the
//!   table or its subtree, and "is beneficial whatever the selectivity"
//!   (Figure 8) — so use it whenever applicable;
//! * with Cross: Cross-Pre wins below sV ≈ 0.1, Cross-Post above
//!   (Figure 9's crossover);
//! * without Cross: Pre wins below sV ≈ 0.05 (Figure 10); Post is used
//!   above only while the Bloom filter stays useful, otherwise the
//!   selection is deferred to projection (the sV = 0.5 cutoff).

use crate::ctx::ExecCtx;
use crate::query::Analyzed;
use crate::strategy::{VisDecision, VisStrategy};
use crate::Result;
use ghostdb_bloom::worth_post_filtering;

/// Figure 9 crossover: Cross-Pre vs Cross-Post.
pub const CROSS_PRE_POST_CUTOFF: f64 = 0.1;
/// Figure 10 crossover: Pre vs Post.
pub const PRE_POST_CUTOFF: f64 = 0.05;

/// Decide a strategy for every table carrying visible predicates.
pub fn decide(ctx: &ExecCtx<'_>, a: &Analyzed) -> Result<Vec<VisDecision>> {
    let mut out = Vec::new();
    for (t, preds) in &a.vis_preds {
        let rows = ctx.rows[*t].max(1);
        let matching = ctx.untrusted.store().count(*t, preds)?;
        let sv = matching as f64 / rows as f64;
        let cross_applicable =
            *t != ctx.schema.root() && !a.hidden_in_subtree(ctx.schema, *t).is_empty();
        let strategy = if cross_applicable {
            if sv <= CROSS_PRE_POST_CUTOFF {
                VisStrategy::CrossPre
            } else {
                VisStrategy::CrossPost
            }
        } else if sv <= PRE_POST_CUTOFF {
            VisStrategy::Pre
        } else if worth_post_filtering(matching, sv, ctx.ram().total_bytes() / 2) {
            VisStrategy::Post
        } else {
            VisStrategy::NoFilter
        };
        out.push(VisDecision {
            table: *t,
            strategy,
        });
    }
    Ok(out)
}
