//! Sorted-ID sources and the k-way union/intersection machinery beneath the
//! `Merge` operator.
//!
//! A source is a sorted ID stream coming from flash (a climbing-index
//! sublist or a materialised temp list), from the channel (a `Vis`
//! shipment, §3.4: streamed through the dedicated channel buffer at no RAM
//! cost), or the dense range `0..n` (no selection on the table).

use crate::Result;
use ghostdb_flash::FlashDevice;
use ghostdb_storage::{Id, IdList, IdListReader};
use ghostdb_token::RamArena;
use std::rc::Rc;

/// A sorted stream of tuple IDs.
#[derive(Debug, Clone)]
pub enum IdSource {
    /// A sorted run on flash (reading costs I/O and one RAM buffer).
    Flash(IdList),
    /// A host-resident sorted list (a `Vis` shipment already paid for on
    /// the channel; zero flash and RAM cost to re-stream).
    Host(Rc<Vec<Id>>),
    /// The dense range `start..end` (no selection).
    Range {
        /// First id.
        start: Id,
        /// One past the last id.
        end: Id,
    },
}

impl IdSource {
    /// Number of IDs in the source.
    pub fn count(&self) -> u64 {
        match self {
            IdSource::Flash(l) => l.count,
            IdSource::Host(v) => v.len() as u64,
            IdSource::Range { start, end } => (*end - *start) as u64,
        }
    }

    /// RAM buffers needed to open a reader.
    pub fn buffers_needed(&self) -> usize {
        match self {
            IdSource::Flash(_) => 1,
            _ => 0,
        }
    }
}

/// An open reader over an [`IdSource`].
#[derive(Debug)]
pub enum SourceReader {
    /// Flash-backed reader.
    Flash(IdListReader),
    /// Host list cursor.
    Host {
        /// The list.
        ids: Rc<Vec<Id>>,
        /// Cursor.
        pos: usize,
    },
    /// Range cursor.
    Range {
        /// Next id.
        next: Id,
        /// One past the last id.
        end: Id,
    },
}

impl SourceReader {
    /// Open a reader (Flash sources take one RAM buffer).
    pub fn open(source: &IdSource, ram: &RamArena, page_size: usize) -> Result<Self> {
        Ok(match source {
            IdSource::Flash(list) => {
                SourceReader::Flash(IdListReader::open(*list, ram, page_size)?)
            }
            IdSource::Host(ids) => SourceReader::Host {
                ids: ids.clone(),
                pos: 0,
            },
            IdSource::Range { start, end } => SourceReader::Range {
                next: *start,
                end: *end,
            },
        })
    }

    /// Peek the next ID without consuming.
    pub fn peek(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        Ok(match self {
            SourceReader::Flash(r) => r.peek(dev)?,
            SourceReader::Host { ids, pos } => ids.get(*pos).copied(),
            SourceReader::Range { next, end } => (*next < *end).then_some(*next),
        })
    }

    /// Consume and return the next ID.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        Ok(match self {
            SourceReader::Flash(r) => r.next_id(dev)?,
            SourceReader::Host { ids, pos } => {
                let v = ids.get(*pos).copied();
                if v.is_some() {
                    *pos += 1;
                }
                v
            }
            SourceReader::Range { next, end } => {
                if *next < *end {
                    let v = *next;
                    *next += 1;
                    Some(v)
                } else {
                    None
                }
            }
        })
    }
}

/// Ascending, duplicate-free union over a set of sorted readers.
#[derive(Debug)]
pub struct UnionStream {
    readers: Vec<SourceReader>,
}

impl UnionStream {
    /// Union over open readers.
    pub fn new(readers: Vec<SourceReader>) -> Self {
        UnionStream { readers }
    }

    /// Open readers for all sources of a group.
    pub fn open(sources: &[IdSource], ram: &RamArena, page_size: usize) -> Result<Self> {
        let readers = sources
            .iter()
            .map(|s| SourceReader::open(s, ram, page_size))
            .collect::<Result<Vec<_>>>()?;
        Ok(UnionStream { readers })
    }

    /// Next ID of the union.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        let mut min: Option<Id> = None;
        for r in self.readers.iter_mut() {
            if let Some(v) = r.peek(dev)? {
                min = Some(match min {
                    Some(m) => m.min(v),
                    None => v,
                });
            }
        }
        let Some(m) = min else { return Ok(None) };
        for r in self.readers.iter_mut() {
            while let Some(v) = r.peek(dev)? {
                if v == m {
                    r.next(dev)?;
                } else {
                    break;
                }
            }
        }
        Ok(Some(m))
    }

    /// Peekable wrapper used by the intersection driver.
    pub fn peek(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        let mut min: Option<Id> = None;
        for r in self.readers.iter_mut() {
            if let Some(v) = r.peek(dev)? {
                min = Some(match min {
                    Some(m) => m.min(v),
                    None => v,
                });
            }
        }
        Ok(min)
    }

    /// Advance the union until its head is ≥ `target`; returns the head.
    pub fn seek_at_least(&mut self, dev: &mut FlashDevice, target: Id) -> Result<Option<Id>> {
        loop {
            match self.peek(dev)? {
                None => return Ok(None),
                Some(v) if v >= target => return Ok(Some(v)),
                Some(_) => {
                    self.next(dev)?;
                }
            }
        }
    }
}

/// Intersection across groups of unions: yields IDs present in *every*
/// group (the `∩i{∪j{...}}` of the paper's `Merge`).
#[derive(Debug)]
pub struct IntersectStream {
    groups: Vec<UnionStream>,
}

impl IntersectStream {
    /// Intersection over open unions.
    pub fn new(groups: Vec<UnionStream>) -> Self {
        IntersectStream { groups }
    }

    /// Next ID of the intersection.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        if self.groups.is_empty() {
            return Ok(None);
        }
        let Some(mut candidate) = self.groups[0].peek(dev)? else {
            return Ok(None);
        };
        loop {
            let mut all_match = true;
            for g in self.groups.iter_mut() {
                match g.seek_at_least(dev, candidate)? {
                    None => return Ok(None),
                    Some(v) if v == candidate => {}
                    Some(v) => {
                        candidate = v;
                        all_match = false;
                        break;
                    }
                }
            }
            if all_match {
                for g in self.groups.iter_mut() {
                    g.next(dev)?;
                }
                return Ok(Some(candidate));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::{FlashGeometry, FlashTiming, SegmentAllocator};
    use ghostdb_storage::idlist::write_id_list;

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(4 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        (dev, alloc, RamArena::paper_default())
    }

    fn drain_union(mut u: UnionStream, dev: &mut FlashDevice) -> Vec<Id> {
        let mut out = Vec::new();
        while let Some(v) = u.next(dev).unwrap() {
            out.push(v);
        }
        out
    }

    #[test]
    fn union_of_mixed_sources() {
        let (mut dev, mut alloc, ram) = setup();
        let flash = write_id_list(&mut dev, &mut alloc, &ram, &[2, 4, 6, 8]).unwrap();
        let sources = vec![
            IdSource::Flash(flash),
            IdSource::Host(Rc::new(vec![1, 4, 9])),
            IdSource::Range { start: 6, end: 9 },
        ];
        let u = UnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        assert_eq!(drain_union(u, &mut dev), vec![1, 2, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn intersection_across_groups() {
        let (mut dev, mut alloc, ram) = setup();
        let a = write_id_list(&mut dev, &mut alloc, &ram, &[1, 3, 5, 7, 9]).unwrap();
        let b = write_id_list(&mut dev, &mut alloc, &ram, &[3, 4, 5, 9]).unwrap();
        let g1 = UnionStream::open(&[IdSource::Flash(a)], &ram, dev.page_size()).unwrap();
        let g2 = UnionStream::open(&[IdSource::Flash(b)], &ram, dev.page_size()).unwrap();
        let g3 = UnionStream::open(
            &[IdSource::Host(Rc::new(vec![2, 3, 9, 11]))],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let mut i = IntersectStream::new(vec![g1, g2, g3]);
        let mut out = Vec::new();
        while let Some(v) = i.next(&mut dev).unwrap() {
            out.push(v);
        }
        assert_eq!(out, vec![3, 9]);
    }

    #[test]
    fn union_within_groups_intersect_across() {
        let (mut dev, _alloc, ram) = setup();
        // (∪ {1,2} {5,6}) ∩ (∪ {2,5} {6})  = {2,5,6}
        let g1 = UnionStream::open(
            &[
                IdSource::Host(Rc::new(vec![1, 2])),
                IdSource::Host(Rc::new(vec![5, 6])),
            ],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let g2 = UnionStream::open(
            &[
                IdSource::Host(Rc::new(vec![2, 5])),
                IdSource::Host(Rc::new(vec![6])),
            ],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let mut i = IntersectStream::new(vec![g1, g2]);
        let mut out = Vec::new();
        while let Some(v) = i.next(&mut dev).unwrap() {
            out.push(v);
        }
        assert_eq!(out, vec![2, 5, 6]);
    }

    #[test]
    fn empty_group_yields_empty_intersection() {
        let (mut dev, _alloc, ram) = setup();
        let g1 =
            UnionStream::open(&[IdSource::Host(Rc::new(vec![]))], &ram, dev.page_size()).unwrap();
        let g2 = UnionStream::open(
            &[IdSource::Host(Rc::new(vec![1, 2]))],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let mut i = IntersectStream::new(vec![g1, g2]);
        assert_eq!(i.next(&mut dev).unwrap(), None);
    }

    #[test]
    fn duplicates_across_sources_collapse() {
        let (mut dev, _alloc, ram) = setup();
        let u = UnionStream::open(
            &[
                IdSource::Host(Rc::new(vec![1, 2, 3])),
                IdSource::Host(Rc::new(vec![1, 2, 3])),
            ],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        assert_eq!(drain_union(u, &mut dev), vec![1, 2, 3]);
    }
}
