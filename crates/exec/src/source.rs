//! Sorted-ID sources and the k-way union/intersection machinery beneath the
//! `Merge` operator.
//!
//! A source is a sorted ID stream coming from flash (a climbing-index
//! sublist or a materialised temp list), from the channel (a `Vis`
//! shipment, §3.4: streamed through the dedicated channel buffer at no RAM
//! cost), or the dense range `0..n` (no selection on the table).

use crate::Result;
use ghostdb_flash::FlashDevice;
use ghostdb_storage::{Id, IdList, IdListReader};
use ghostdb_token::RamArena;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Shared-ownership sorted id list. Every shared id/row payload in the
/// execution data plane routes through this alias so the pointer type is a
/// one-line swap; `Arc` keeps the whole operator tree `Send + Sync`, which
/// is what lets [`crate::parallel::run_many`] fan plans across threads.
pub type SharedIds = Arc<Vec<Id>>;

/// A sorted stream of tuple IDs.
#[derive(Debug, Clone)]
pub enum IdSource {
    /// A sorted run on flash (reading costs I/O and one RAM buffer).
    Flash(IdList),
    /// A host-resident sorted list (a `Vis` shipment already paid for on
    /// the channel; zero flash and RAM cost to re-stream).
    Host(SharedIds),
    /// The dense range `start..end` (no selection).
    Range {
        /// First id.
        start: Id,
        /// One past the last id.
        end: Id,
    },
}

impl IdSource {
    /// Number of IDs in the source.
    pub fn count(&self) -> u64 {
        match self {
            IdSource::Flash(l) => l.count,
            IdSource::Host(v) => v.len() as u64,
            IdSource::Range { start, end } => (*end - *start) as u64,
        }
    }

    /// RAM buffers needed to open a reader.
    pub fn buffers_needed(&self) -> usize {
        match self {
            IdSource::Flash(_) => 1,
            _ => 0,
        }
    }
}

/// An open reader over an [`IdSource`].
#[derive(Debug)]
pub enum SourceReader {
    /// Flash-backed reader.
    Flash(IdListReader),
    /// Host list cursor.
    Host {
        /// The list.
        ids: SharedIds,
        /// Cursor.
        pos: usize,
    },
    /// Range cursor.
    Range {
        /// Next id.
        next: Id,
        /// One past the last id.
        end: Id,
    },
}

impl SourceReader {
    /// Open a reader (Flash sources take one RAM buffer).
    pub fn open(source: &IdSource, ram: &RamArena, page_size: usize) -> Result<Self> {
        Ok(match source {
            IdSource::Flash(list) => {
                SourceReader::Flash(IdListReader::open(*list, ram, page_size)?)
            }
            IdSource::Host(ids) => SourceReader::Host {
                ids: ids.clone(),
                pos: 0,
            },
            IdSource::Range { start, end } => SourceReader::Range {
                next: *start,
                end: *end,
            },
        })
    }

    /// Peek the next ID without consuming.
    pub fn peek(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        Ok(match self {
            SourceReader::Flash(r) => r.peek(dev)?,
            SourceReader::Host { ids, pos } => ids.get(*pos).copied(),
            SourceReader::Range { next, end } => (*next < *end).then_some(*next),
        })
    }

    /// Consume and return the next ID.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        Ok(match self {
            SourceReader::Flash(r) => r.next_id(dev)?,
            SourceReader::Host { ids, pos } => {
                let v = ids.get(*pos).copied();
                if v.is_some() {
                    *pos += 1;
                }
                v
            }
            SourceReader::Range { next, end } => {
                if *next < *end {
                    let v = *next;
                    *next += 1;
                    Some(v)
                } else {
                    None
                }
            }
        })
    }
}

/// Ascending, duplicate-free union over a set of sorted readers.
///
/// A binary min-heap of `(head, reader)` pairs makes each delivered ID cost
/// `O(log k)` reader touches instead of the `O(k)` full scan of the naive
/// union — the dominant host-side cost of wide merges (one heap entry per
/// reader, readers with equal heads drained together so duplicates still
/// collapse). I/O behaviour is identical: every reader is consumed strictly
/// forward, so the same pages are read exactly once either way.
#[derive(Debug)]
pub struct UnionStream {
    readers: Vec<SourceReader>,
    /// Min-heap over `(Reverse(head), reader index)`; one entry per
    /// non-exhausted reader. Primed lazily because priming needs the device.
    heap: BinaryHeap<(Reverse<Id>, usize)>,
    primed: bool,
}

impl UnionStream {
    /// Union over open readers.
    pub fn new(readers: Vec<SourceReader>) -> Self {
        UnionStream {
            heap: BinaryHeap::with_capacity(readers.len()),
            readers,
            primed: false,
        }
    }

    /// Open readers for all sources of a group.
    pub fn open(sources: &[IdSource], ram: &RamArena, page_size: usize) -> Result<Self> {
        let readers = sources
            .iter()
            .map(|s| SourceReader::open(s, ram, page_size))
            .collect::<Result<Vec<_>>>()?;
        Ok(UnionStream::new(readers))
    }

    fn prime(&mut self, dev: &mut FlashDevice) -> Result<()> {
        if self.primed {
            return Ok(());
        }
        // Fault the first page of every flash reader in with one vectored
        // read: counters get the same per-reader deltas as the serial peeks
        // below, but pages on different chips overlap on the channel clock.
        {
            let mut flash: Vec<&mut IdListReader> = self
                .readers
                .iter_mut()
                .filter_map(|r| match r {
                    SourceReader::Flash(r) => Some(r),
                    _ => None,
                })
                .collect();
            ghostdb_storage::prime_readers(dev, &mut flash)?;
        }
        for (i, r) in self.readers.iter_mut().enumerate() {
            if let Some(v) = r.peek(dev)? {
                self.heap.push((Reverse(v), i));
            }
        }
        self.primed = true;
        Ok(())
    }

    /// Consume reader `i` past every value equal to `m`, then re-enter it
    /// into the heap with its new head (if any).
    fn advance_past(&mut self, dev: &mut FlashDevice, i: usize, m: Id) -> Result<()> {
        let r = &mut self.readers[i];
        while let Some(v) = r.peek(dev)? {
            if v == m {
                r.next(dev)?;
            } else {
                self.heap.push((Reverse(v), i));
                break;
            }
        }
        Ok(())
    }

    /// Next ID of the union.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        self.prime(dev)?;
        let Some((Reverse(m), i)) = self.heap.pop() else {
            return Ok(None);
        };
        self.advance_past(dev, i, m)?;
        // Drain every other reader whose head ties with the minimum.
        while let Some(&(Reverse(v), j)) = self.heap.peek() {
            if v != m {
                break;
            }
            self.heap.pop();
            self.advance_past(dev, j, m)?;
        }
        Ok(Some(m))
    }

    /// Peekable wrapper used by the intersection driver.
    pub fn peek(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        self.prime(dev)?;
        Ok(self.heap.peek().map(|&(Reverse(v), _)| v))
    }

    /// Advance the union until its head is ≥ `target`; returns the head.
    /// Readers below the target skip straight there without heap churn.
    pub fn seek_at_least(&mut self, dev: &mut FlashDevice, target: Id) -> Result<Option<Id>> {
        self.prime(dev)?;
        while let Some(&(Reverse(v), i)) = self.heap.peek() {
            if v >= target {
                return Ok(Some(v));
            }
            self.heap.pop();
            let r = &mut self.readers[i];
            while let Some(v) = r.peek(dev)? {
                if v < target {
                    r.next(dev)?;
                } else {
                    break;
                }
            }
            if let Some(v) = r.peek(dev)? {
                self.heap.push((Reverse(v), i));
            }
        }
        Ok(None)
    }
}

/// The scan-per-element union the heap version replaced, kept as the
/// reference implementation: equivalence tests assert both produce
/// byte-identical streams, and `perfbench` measures the heap's win against
/// it. Not used on any query path.
#[derive(Debug)]
pub struct NaiveUnionStream {
    readers: Vec<SourceReader>,
}

impl NaiveUnionStream {
    /// Union over open readers.
    pub fn new(readers: Vec<SourceReader>) -> Self {
        NaiveUnionStream { readers }
    }

    /// Open readers for all sources of a group.
    pub fn open(sources: &[IdSource], ram: &RamArena, page_size: usize) -> Result<Self> {
        let readers = sources
            .iter()
            .map(|s| SourceReader::open(s, ram, page_size))
            .collect::<Result<Vec<_>>>()?;
        Ok(NaiveUnionStream { readers })
    }

    /// Next ID of the union: scan all readers for the minimum, then consume
    /// it from every reader holding it.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        let mut min: Option<Id> = None;
        for r in self.readers.iter_mut() {
            if let Some(v) = r.peek(dev)? {
                min = Some(match min {
                    Some(m) => m.min(v),
                    None => v,
                });
            }
        }
        let Some(m) = min else { return Ok(None) };
        for r in self.readers.iter_mut() {
            while let Some(v) = r.peek(dev)? {
                if v == m {
                    r.next(dev)?;
                } else {
                    break;
                }
            }
        }
        Ok(Some(m))
    }
}

/// Intersection across groups of unions: yields IDs present in *every*
/// group (the `∩i{∪j{...}}` of the paper's `Merge`).
#[derive(Debug)]
pub struct IntersectStream {
    groups: Vec<UnionStream>,
}

impl IntersectStream {
    /// Intersection over open unions.
    pub fn new(groups: Vec<UnionStream>) -> Self {
        IntersectStream { groups }
    }

    /// Next ID of the intersection.
    pub fn next(&mut self, dev: &mut FlashDevice) -> Result<Option<Id>> {
        if self.groups.is_empty() {
            return Ok(None);
        }
        let Some(mut candidate) = self.groups[0].peek(dev)? else {
            return Ok(None);
        };
        loop {
            let mut all_match = true;
            for g in self.groups.iter_mut() {
                match g.seek_at_least(dev, candidate)? {
                    None => return Ok(None),
                    Some(v) if v == candidate => {}
                    Some(v) => {
                        candidate = v;
                        all_match = false;
                        break;
                    }
                }
            }
            if all_match {
                for g in self.groups.iter_mut() {
                    g.next(dev)?;
                }
                return Ok(Some(candidate));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::{FlashGeometry, FlashTiming, SegmentAllocator};
    use ghostdb_storage::idlist::write_id_list;

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(4 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        (dev, alloc, RamArena::paper_default())
    }

    fn drain_union(mut u: UnionStream, dev: &mut FlashDevice) -> Vec<Id> {
        let mut out = Vec::new();
        while let Some(v) = u.next(dev).unwrap() {
            out.push(v);
        }
        out
    }

    #[test]
    fn union_of_mixed_sources() {
        let (mut dev, mut alloc, ram) = setup();
        let flash = write_id_list(&mut dev, &mut alloc, &ram, &[2, 4, 6, 8]).unwrap();
        let sources = vec![
            IdSource::Flash(flash),
            IdSource::Host(Arc::new(vec![1, 4, 9])),
            IdSource::Range { start: 6, end: 9 },
        ];
        let u = UnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        assert_eq!(drain_union(u, &mut dev), vec![1, 2, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn intersection_across_groups() {
        let (mut dev, mut alloc, ram) = setup();
        let a = write_id_list(&mut dev, &mut alloc, &ram, &[1, 3, 5, 7, 9]).unwrap();
        let b = write_id_list(&mut dev, &mut alloc, &ram, &[3, 4, 5, 9]).unwrap();
        let g1 = UnionStream::open(&[IdSource::Flash(a)], &ram, dev.page_size()).unwrap();
        let g2 = UnionStream::open(&[IdSource::Flash(b)], &ram, dev.page_size()).unwrap();
        let g3 = UnionStream::open(
            &[IdSource::Host(Arc::new(vec![2, 3, 9, 11]))],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let mut i = IntersectStream::new(vec![g1, g2, g3]);
        let mut out = Vec::new();
        while let Some(v) = i.next(&mut dev).unwrap() {
            out.push(v);
        }
        assert_eq!(out, vec![3, 9]);
    }

    #[test]
    fn union_within_groups_intersect_across() {
        let (mut dev, _alloc, ram) = setup();
        // (∪ {1,2} {5,6}) ∩ (∪ {2,5} {6})  = {2,5,6}
        let g1 = UnionStream::open(
            &[
                IdSource::Host(Arc::new(vec![1, 2])),
                IdSource::Host(Arc::new(vec![5, 6])),
            ],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let g2 = UnionStream::open(
            &[
                IdSource::Host(Arc::new(vec![2, 5])),
                IdSource::Host(Arc::new(vec![6])),
            ],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let mut i = IntersectStream::new(vec![g1, g2]);
        let mut out = Vec::new();
        while let Some(v) = i.next(&mut dev).unwrap() {
            out.push(v);
        }
        assert_eq!(out, vec![2, 5, 6]);
    }

    #[test]
    fn empty_group_yields_empty_intersection() {
        let (mut dev, _alloc, ram) = setup();
        let g1 =
            UnionStream::open(&[IdSource::Host(Arc::new(vec![]))], &ram, dev.page_size()).unwrap();
        let g2 = UnionStream::open(
            &[IdSource::Host(Arc::new(vec![1, 2]))],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        let mut i = IntersectStream::new(vec![g1, g2]);
        assert_eq!(i.next(&mut dev).unwrap(), None);
    }

    #[test]
    fn heap_union_matches_naive_union_and_io() {
        // The heap-based union must deliver the byte-identical stream the
        // naive scan-based union delivers, at the same simulated I/O cost.
        let (mut dev, mut alloc, ram) = setup();
        let lists: Vec<Vec<Id>> = (0..6)
            .map(|k| (0..400u32).map(|i| i * (k + 2) + k).collect())
            .collect();
        let mut sources: Vec<IdSource> = lists
            .iter()
            .map(|ids| IdSource::Flash(write_id_list(&mut dev, &mut alloc, &ram, ids).unwrap()))
            .collect();
        sources.push(IdSource::Host(Arc::new(vec![3, 5, 1000, 4000])));
        sources.push(IdSource::Range {
            start: 90,
            end: 120,
        });

        let snap = dev.snapshot();
        let mut naive = NaiveUnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        let mut expect = Vec::new();
        while let Some(v) = naive.next(&mut dev).unwrap() {
            expect.push(v);
        }
        let naive_io = dev.stats_since(&snap);
        drop(naive);

        let snap = dev.snapshot();
        let heap = UnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        let got = drain_union(heap, &mut dev);
        let heap_io = dev.stats_since(&snap);

        assert_eq!(got, expect);
        assert_eq!(heap_io.pages_read, naive_io.pages_read);
        assert_eq!(heap_io.bytes_to_ram, naive_io.bytes_to_ram);
    }

    #[test]
    fn heap_union_seek_skips_equivalently() {
        let (mut dev, mut alloc, ram) = setup();
        let a = write_id_list(&mut dev, &mut alloc, &ram, &[1, 4, 9, 16, 25, 36]).unwrap();
        let sources = [
            IdSource::Flash(a),
            IdSource::Host(Arc::new(vec![2, 9, 30, 36, 50])),
        ];
        let mut u = UnionStream::open(&sources, &ram, dev.page_size()).unwrap();
        assert_eq!(u.seek_at_least(&mut dev, 10).unwrap(), Some(16));
        assert_eq!(u.next(&mut dev).unwrap(), Some(16));
        assert_eq!(u.seek_at_least(&mut dev, 37).unwrap(), Some(50));
        assert_eq!(u.seek_at_least(&mut dev, 51).unwrap(), None);
    }

    #[test]
    fn duplicates_across_sources_collapse() {
        let (mut dev, _alloc, ram) = setup();
        let u = UnionStream::open(
            &[
                IdSource::Host(Arc::new(vec![1, 2, 3])),
                IdSource::Host(Arc::new(vec![1, 2, 3])),
            ],
            &ram,
            dev.page_size(),
        )
        .unwrap();
        assert_eq!(drain_union(u, &mut dev), vec![1, 2, 3]);
    }
}
