//! The `SJoin` operator: key semi-join against a Subtree Key Table (§3.3).
//!
//! `SJoin({idT}, SKT_T, π)` scans an ascending stream of `T` ids, reads the
//! SKT row of each (ascending access: every touched page is loaded exactly
//! once), and emits `<idT, idTi, idTj …>` projected on π. It needs two
//! buffers to scan its operands and one to write the result (§3.4).

use crate::ctx::ExecCtx;
use crate::report::OpKind;
use crate::Result;
use ghostdb_index::SubtreeKeyTable;
use ghostdb_storage::row::RowLayout;
use ghostdb_storage::table::{FlashTableReader, FlashTableWriter};
use ghostdb_storage::{FlashTable, Id, TableId};

/// An SJoin output description: the materialised rows and their column
/// tables (column 0 is always the owner id, i.e. the root id for SKT_T0).
#[derive(Debug, Clone)]
pub struct SJoinTable {
    /// Materialised rows.
    pub table: FlashTable,
    /// Table of each column (column 0 = SKT owner).
    pub cols: Vec<TableId>,
}

impl SJoinTable {
    /// Column index of `t`.
    pub fn col_of(&self, t: TableId) -> Option<usize> {
        self.cols.iter().position(|c| *c == t)
    }
}

/// Streaming SJoin driver. The caller feeds ascending owner ids via
/// `next_id` and receives projected rows via `sink` (id + projected target
/// ids, in `targets` order). SKT read time is attributed to `SJoin`.
pub fn sjoin_stream(
    ctx: &mut ExecCtx<'_>,
    skt: &SubtreeKeyTable,
    targets: &[TableId],
    mut next_id: impl FnMut(&mut ExecCtx<'_>) -> Result<Option<Id>>,
    mut sink: impl FnMut(&mut ExecCtx<'_>, Id, &[Id]) -> Result<()>,
) -> Result<u64> {
    let col_idx: Vec<Option<usize>> = targets
        .iter()
        .map(|t| {
            if *t == skt.table {
                None // the owner id itself
            } else {
                Some(
                    skt.column_of(*t)
                        .expect("planner only projects SKT descendants"),
                )
            }
        })
        .collect();
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let mut reader: FlashTableReader = skt.flash.reader(&ram, page_size)?;
    let layout = skt.flash.layout.clone();
    let mut out_ids = vec![0 as Id; targets.len()];
    let mut emitted = 0u64;
    while let Some(id) = next_id(ctx)? {
        ctx.tracked(OpKind::SJoin, |dev| -> Result<()> {
            let row = reader.row_at(dev, id as u64)?;
            for (slot, col) in out_ids.iter_mut().zip(&col_idx) {
                *slot = match col {
                    None => id,
                    Some(c) => layout.get_id(row, *c),
                };
            }
            Ok(())
        })?;
        sink(ctx, id, &out_ids)?;
        emitted += 1;
    }
    Ok(emitted)
}

/// A writer materialising `<owner_id, targets…>` rows; writes attributed to
/// `Store`.
pub struct SJoinWriter {
    writer: FlashTableWriter,
    layout: RowLayout,
    cols: Vec<TableId>,
}

impl SJoinWriter {
    /// Create a writer for up to `max_rows` rows over `owner` + `targets`.
    pub fn create(
        ctx: &mut ExecCtx<'_>,
        owner: TableId,
        targets: &[TableId],
        max_rows: u64,
    ) -> Result<Self> {
        let layout = RowLayout::ids(1 + targets.len());
        let ram = ctx.ram();
        let page_size = ctx.page_size();
        let writer =
            FlashTableWriter::create(ctx.lane.alloc(), &ram, layout.clone(), max_rows, page_size)?;
        let mut cols = vec![owner];
        cols.extend_from_slice(targets);
        Ok(SJoinWriter {
            writer,
            layout,
            cols,
        })
    }

    /// Append one row (owner id + target ids).
    pub fn push(&mut self, ctx: &mut ExecCtx<'_>, id: Id, targets: &[Id]) -> Result<()> {
        let mut row = vec![0u8; self.layout.size()];
        self.layout.put_id(&mut row, 0, id);
        for (i, t) in targets.iter().enumerate() {
            self.layout.put_id(&mut row, 1 + i, *t);
        }
        ctx.tracked(OpKind::Store, |dev| Ok(self.writer.push(dev, &row)?))
    }

    /// Finish, registering the segment as a query temp.
    pub fn finish(self, ctx: &mut ExecCtx<'_>) -> Result<SJoinTable> {
        let writer = self.writer;
        let table = ctx.tracked(OpKind::Store, move |dev| writer.finish(dev))?;
        ctx.add_temp(table.segment());
        Ok(SJoinTable {
            table,
            cols: self.cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn sjoin_projects_descendant_ids() {
        let mut db = testkit::tiny_db();
        let t0 = db.schema.root();
        let t1 = db.schema.table_id("T1").unwrap();
        let t12 = db.schema.table_id("T12").unwrap();
        let mut ctx = ExecCtx::new(&mut db);
        let skt = ctx.skt(t0).unwrap();
        let ids: Vec<Id> = vec![0, 7, 130, 599];
        let mut feed = ids.clone().into_iter();
        let mut got: Vec<(Id, Vec<Id>)> = Vec::new();
        sjoin_stream(
            &mut ctx,
            skt,
            &[t1, t12],
            |_ctx| Ok(feed.next()),
            |_ctx, id, targets| {
                got.push((id, targets.to_vec()));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(got.len(), 4);
        for (id, targets) in got {
            let exp_t1 = id % 120;
            let exp_t12 = exp_t1 % 16;
            assert_eq!(targets, vec![exp_t1, exp_t12], "id {id}");
        }
    }

    #[test]
    fn sjoin_ascending_reads_each_page_once() {
        let mut db = testkit::tiny_db();
        let t0 = db.schema.root();
        let t1 = db.schema.table_id("T1").unwrap();
        let mut ctx = ExecCtx::new(&mut db);
        let skt = ctx.skt(t0).unwrap();
        // 600 rows × 16-byte rows = 128 rows/page → 5 pages.
        let ids: Vec<Id> = (0..600).collect();
        let mut feed = ids.into_iter();
        let before = ctx.lane.io();
        sjoin_stream(
            &mut ctx,
            skt,
            &[t1],
            |_ctx| Ok(feed.next()),
            |_ctx, _id, _t| Ok(()),
        )
        .unwrap();
        let d = ctx.lane.io() - before;
        assert_eq!(d.pages_read, 5);
    }

    #[test]
    fn sjoin_writer_materialises_rows() {
        let mut db = testkit::tiny_db();
        let t0 = db.schema.root();
        let t1 = db.schema.table_id("T1").unwrap();
        let mut ctx = ExecCtx::new(&mut db);
        let mut w = SJoinWriter::create(&mut ctx, t0, &[t1], 10).unwrap();
        w.push(&mut ctx, 5, &[50]).unwrap();
        w.push(&mut ctx, 6, &[60]).unwrap();
        let out = w.finish(&mut ctx).unwrap();
        assert_eq!(out.table.rows(), 2);
        assert_eq!(out.col_of(t1), Some(1));
        assert_eq!(out.col_of(t0), Some(0));
        assert!(ctx.cost.op(OpKind::Store).as_ns() > 0);
    }
}
