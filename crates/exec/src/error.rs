//! Error type for query execution.

use std::fmt;

/// Errors surfaced by the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Propagated storage error.
    Storage(ghostdb_storage::StorageError),
    /// Propagated token error.
    Token(ghostdb_token::TokenError),
    /// Propagated flash error.
    Flash(ghostdb_flash::FlashError),
    /// Query analysis failure (unknown column, predicate on the wrong side,
    /// unsupported shape…).
    Query(String),
    /// A plan required an index that was not built.
    MissingIndex {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Strategy not applicable (e.g. Cross filtering with no hidden
    /// predicate on the table or its descendants).
    StrategyNotApplicable(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Token(e) => write!(f, "token: {e}"),
            ExecError::Flash(e) => write!(f, "flash: {e}"),
            ExecError::Query(msg) => write!(f, "query: {msg}"),
            ExecError::MissingIndex { table, column } => {
                write!(f, "no climbing index on {table}.{column}")
            }
            ExecError::StrategyNotApplicable(msg) => write!(f, "strategy not applicable: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            ExecError::Token(e) => Some(e),
            ExecError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ghostdb_storage::StorageError> for ExecError {
    fn from(e: ghostdb_storage::StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<ghostdb_token::TokenError> for ExecError {
    fn from(e: ghostdb_token::TokenError) -> Self {
        ExecError::Token(e)
    }
}

impl From<ghostdb_flash::FlashError> for ExecError {
    fn from(e: ghostdb_flash::FlashError) -> Self {
        ExecError::Flash(e)
    }
}
