//! Deterministic miniature databases for tests (not part of the public
//! API; `ghostdb-datagen` provides the real generators).

use crate::database::{ColumnLoad, Database, TableLoad};
use ghostdb_storage::schema::paper_synthetic_schema;
use ghostdb_storage::{Id, Value};
use ghostdb_token::TokenConfig;

/// Zero-padded 8-digit decimal string: unique 8-byte prefix, so index keys
/// are exact and predicates compare like numbers.
pub fn pad8(n: u64) -> Value {
    Value::Str(format!("{n:08}"))
}

/// Cardinalities of the tiny instance, in schema declaration order
/// (T0, T1, T2, T11, T12).
pub const TINY_ROWS: [u64; 5] = [600, 120, 40, 20, 16];

/// A tiny instance of the paper's synthetic schema:
///
/// * fks: `T0.fk1 = id % |T1|`, `T0.fk2 = id % |T2|`,
///   `T1.fk11 = id % |T11|`, `T1.fk12 = id % |T12|`;
/// * every table: `v1 = pad8(id)` (unique), `v2 = pad8(id % 10)`,
///   `h1 = pad8(id % 4)`, `h2 = pad8(id % 8)`; `h1`/`h2` are indexed.
pub fn tiny_db() -> Database {
    tiny_db_chips(1)
}

/// [`tiny_db`] on a token whose flash is sharded across `chips` identical
/// chips on independent channels (same total capacity; per-op costs are
/// chip-count-independent, so queries are bit-identical at any count).
pub fn tiny_db_chips(chips: usize) -> Database {
    let schema = paper_synthetic_schema(2, 2);
    let [n0, n1, n2, n11, n12] = TINY_ROWS;
    let table = |name: &str, rows: u64, fks: Vec<(String, Vec<Id>)>| TableLoad {
        table: name.into(),
        rows,
        fks,
        columns: vec![
            ColumnLoad {
                name: "v1".into(),
                gen: Box::new(|r| pad8(r as u64)),
                index: false,
                exact: None,
            },
            ColumnLoad {
                name: "v2".into(),
                gen: Box::new(|r| pad8(r as u64 % 10)),
                index: false,
                exact: None,
            },
            ColumnLoad {
                name: "h1".into(),
                gen: Box::new(|r| pad8(r as u64 % 4)),
                index: true,
                exact: Some(true),
            },
            ColumnLoad {
                name: "h2".into(),
                gen: Box::new(|r| pad8(r as u64 % 8)),
                index: true,
                exact: Some(true),
            },
        ],
    };
    let loads = vec![
        table(
            "T0",
            n0,
            vec![
                ("fk1".into(), (0..n0).map(|i| (i % n1) as Id).collect()),
                ("fk2".into(), (0..n0).map(|i| (i % n2) as Id).collect()),
            ],
        ),
        table(
            "T1",
            n1,
            vec![
                ("fk11".into(), (0..n1).map(|i| (i % n11) as Id).collect()),
                ("fk12".into(), (0..n1).map(|i| (i % n12) as Id).collect()),
            ],
        ),
        table("T2", n2, vec![]),
        table("T11", n11, vec![]),
        table("T12", n12, vec![]),
    ];
    Database::assemble(
        schema,
        &TokenConfig::paper_platform_chips(16 * 1024 * 1024, chips),
        loads,
    )
    .expect("tiny db assembles")
}

/// Ground truth for the tiny database: root ids satisfying a caller
/// predicate over the joined tuple (t0, t1, t2, t11, t12 row ids).
pub fn tiny_truth(mut keep: impl FnMut(u64, u64, u64, u64, u64) -> bool) -> Vec<Id> {
    let [n0, n1, n2, n11, n12] = TINY_ROWS;
    (0..n0)
        .filter(|i| {
            let t1 = i % n1;
            let t2 = i % n2;
            let t11 = t1 % n11;
            let t12 = t1 % n12;
            keep(*i, t1, t2, t11, t12)
        })
        .map(|i| i as Id)
        .collect()
}
