//! Parallel fan-out of independent query plans across OS threads.
//!
//! GhostDB's evaluation workloads are embarrassingly parallel at the plan
//! level: a strategy sweep runs the same query under 7 `VisStrategy`
//! variants, and every sweep point is an independent plan over its own
//! simulated token. Since the whole execution data plane is `Send + Sync`
//! (shared id/row payloads are [`SharedIds`] = `Arc<Vec<Id>>`, the RAM
//! arena accounts atomically), a [`Database`] can be built *per worker
//! thread* and driven there, with zero shared mutable state between plans.
//!
//! [`run_many`] is the high-level entry point: it fans a batch of
//! `(SpjQuery, ExecOptions)` pairs over `threads` workers, each owning a
//! private database built by `db_factory`, and returns the results **in
//! input order** regardless of scheduling — two runs with the same inputs
//! produce byte-identical `ResultSet`s (determinism is locked in by
//! `tests/parallel_equivalence.rs` and the `parallel_property` suite).
//!
//! The token itself stays single-threaded: one worker drives one token's
//! sequential executor, exactly like the paper's secure chip. Parallelism
//! lives strictly *above* the token boundary (many tokens side by side),
//! so no simulated cost or RAM accounting changes — only wall-clock does.

use crate::database::Database;
use crate::error::ExecError;
use crate::executor::{ExecOptions, Executor};
use crate::query::SpjQuery;
use crate::report::ExecReport;
use crate::result::ResultSet;
use crate::source::{IdSource, SharedIds, SourceReader};
use crate::strategy::SjOutcome;
use crate::Result;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// A future `Rc` regression anywhere in the execution data plane fails to
// compile right here, not at the first multi-threaded call site.
const _: () = {
    const fn send<T: Send>() {}
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<IdSource>();
    send_sync::<SharedIds>();
    send_sync::<SjOutcome>();
    send_sync::<ghostdb_untrusted::VisShipment>();
    send::<SourceReader>();
    send::<Database>();
    send_sync::<SpjQuery>();
    send_sync::<ExecOptions>();
    send_sync::<ResultSet>();
    send_sync::<ExecReport>();
    send_sync::<ExecError>();
    // The execution-context lanes: an `Rc` (or any non-Send state) slipping
    // into the catalog, cost, or device lane breaks intra-query fan-out at
    // compile time, right here.
    send_sync::<crate::ctx::CatalogCtx<'static>>();
    send_sync::<crate::ctx::CostScope>();
    send_sync::<ghostdb_flash::FlashDevice>();
    send::<crate::ctx::DeviceLane<'static>>();
};

/// Run `jobs` work items over `threads` scoped workers, each with private
/// per-worker state from `init`, returning results in job-index order.
///
/// Workers pull the next job index from a shared counter, so scheduling is
/// dynamic (long jobs do not starve short ones) while the output stays
/// deterministic: slot `i` always holds job `i`'s result. `threads` is
/// clamped to the job count; `threads == 1` degenerates to a plain serial
/// loop on the calling thread, no spawn at all.
///
/// Errors: the first failing job (in index order) among the executed ones
/// is returned, and a failure cancels the batch — workers finish the job
/// they hold but claim no further ones, matching the serial path's
/// short-circuit at the first error. If a worker's `init` fails, surviving
/// workers still drain the queue; only when jobs went unexecuted (every
/// worker died) does the first recorded init error surface.
pub fn fan_out<S, T: Send>(
    jobs: usize,
    threads: usize,
    init: impl Fn() -> Result<S> + Sync,
    work: impl Fn(&mut S, usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    if threads == 0 {
        return Err(ExecError::Query("fan_out: threads must be ≥ 1".into()));
    }
    if jobs == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.min(jobs);
    if threads == 1 {
        let mut state = init()?;
        return (0..jobs).map(|i| work(&mut state, i)).collect();
    }

    let next = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let init_error: Mutex<Option<ExecError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = match init() {
                    Ok(s) => s,
                    Err(e) => {
                        // Keep the first failure: later cascades from other
                        // workers must not mask the root cause.
                        let mut slot = init_error.lock().expect("init-error lock");
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                };
                while !failed.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let out = work(&mut state, i);
                    if out.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().expect("slot lock") = Some(out);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(jobs);
    for slot in slots {
        match slot.into_inner().expect("slot lock") {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(init_error
                    .into_inner()
                    .expect("init-error lock")
                    .unwrap_or_else(|| {
                        ExecError::Query("fan_out: job skipped by dead worker".into())
                    }))
            }
        }
    }
    Ok(out)
}

/// Execute independent `(query, options)` pairs across `threads` worker
/// threads, each against a private database built by `db_factory`, and
/// return `(ResultSet, ExecReport)` pairs **in input order**.
///
/// Queries never mutate data (temporaries are reclaimed per query), so a
/// fresh factory-built database answers exactly like a reused serial one;
/// the equivalence suite asserts byte-identical results against the serial
/// [`Executor::run`] loop and across repeated parallel runs.
pub fn run_many<F>(
    db_factory: F,
    jobs: &[(SpjQuery, ExecOptions)],
    threads: usize,
) -> Result<Vec<(ResultSet, ExecReport)>>
where
    F: Fn() -> Result<Database> + Sync,
{
    fan_out(jobs.len(), threads, db_factory, |db, i| {
        Executor::run(db, &jobs[i].0, &jobs[i].1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::VisStrategy;
    use crate::testkit;

    fn tiny_jobs() -> Vec<(SpjQuery, ExecOptions)> {
        let db = testkit::tiny_db();
        let t0 = db.schema.root();
        let t1 = db.schema.table_id("T1").expect("T1");
        let strategies = [
            VisStrategy::Pre,
            VisStrategy::Post,
            VisStrategy::PostSelect,
            VisStrategy::NoFilter,
        ];
        strategies
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut q = SpjQuery::new()
                    .pred(
                        t1,
                        ghostdb_storage::Predicate::new(
                            "v2",
                            ghostdb_storage::CmpOp::Lt,
                            testkit::pad8(3 + i as u64),
                            None,
                        ),
                    )
                    .project(t0, "id")
                    .project(t1, "v1");
                q.text = format!("tiny {i}");
                (q, ExecOptions::new().strategy(*s))
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_on_the_tiny_db() {
        let jobs = tiny_jobs();
        let mut db = testkit::tiny_db();
        let serial: Vec<ResultSet> = jobs
            .iter()
            .map(|(q, o)| Executor::run(&mut db, q, o).expect("serial").0)
            .collect();
        for threads in [1, 2, 4, 8] {
            let parallel = run_many(|| Ok(testkit::tiny_db()), &jobs, threads).expect("parallel");
            assert_eq!(parallel.len(), serial.len());
            for (i, ((rs, report), want)) in parallel.iter().zip(&serial).enumerate() {
                assert_eq!(rs, want, "job {i} diverged at threads={threads}");
                assert!(report.total().as_ns() > 0);
            }
        }
    }

    #[test]
    fn results_keep_input_order() {
        // Queries with distinct result cardinalities: slot i must hold
        // job i's rows no matter which worker ran it.
        let jobs = tiny_jobs();
        let out = run_many(|| Ok(testkit::tiny_db()), &jobs, 4).expect("parallel");
        let mut db = testkit::tiny_db();
        for (i, (q, o)) in jobs.iter().enumerate() {
            let want = Executor::run(&mut db, q, o).expect("serial").0;
            assert_eq!(out[i].0, want, "slot {i} holds the wrong job");
        }
    }

    #[test]
    fn zero_threads_is_an_error_and_empty_jobs_are_free() {
        assert!(run_many(|| Ok(testkit::tiny_db()), &tiny_jobs(), 0).is_err());
        let none: Vec<(SpjQuery, ExecOptions)> = Vec::new();
        assert!(run_many(|| Ok(testkit::tiny_db()), &none, 4)
            .expect("empty")
            .is_empty());
    }

    #[test]
    fn factory_failure_surfaces_as_an_error() {
        let jobs = tiny_jobs();
        let err = run_many(|| Err(ExecError::Query("factory down".into())), &jobs, 3)
            .expect_err("factory error must propagate");
        assert!(matches!(err, ExecError::Query(_)));
    }

    #[test]
    fn job_failure_reports_the_first_failing_index() {
        // Job 1 asks for a strategy that is not applicable (Cross with no
        // hidden selection anywhere): the error comes back, not a panic.
        let db = testkit::tiny_db();
        let t0 = db.schema.root();
        let t1 = db.schema.table_id("T1").expect("T1");
        let mk = |strategy| {
            let mut q = SpjQuery::new()
                .pred(
                    t1,
                    ghostdb_storage::Predicate::new(
                        "v1",
                        ghostdb_storage::CmpOp::Lt,
                        testkit::pad8(5),
                        None,
                    ),
                )
                .project(t0, "id");
            q.text = "cross-fail".into();
            (q, ExecOptions::new().strategy(strategy))
        };
        let jobs = vec![
            mk(VisStrategy::Pre),
            mk(VisStrategy::CrossPre),
            mk(VisStrategy::Pre),
        ];
        let err = run_many(|| Ok(testkit::tiny_db()), &jobs, 2).expect_err("cross fails");
        assert!(matches!(err, ExecError::StrategyNotApplicable(_)));
    }
}
