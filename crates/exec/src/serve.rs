//! The in-process GhostDB server: sessions, admission control and the
//! cross-query batch scheduler.
//!
//! The paper's token serves one client; this module is the skeleton for
//! serving many. A [`GhostDbServer`] owns the finalized [`Database`] (one
//! immutable catalog — every execution borrows the same `CatalogCtx` from
//! it) and hands out [`Session`] handles whose methods all take `&self`
//! on the server: submissions land in a bounded admission queue
//! (configurable depth, [`ServeError::QueueFull`] past it) and execute
//! when the queue drains, each query on a `DeviceLane` built over the
//! shared device.
//!
//! The headline optimization is the **cross-query batch scheduler**: the
//! drain first fans query analysis across a [`crate::parallel::fan_out`]
//! worker pool to extract each queued query's climbing-index probe keys
//! (`(table, column, lo, hi)` — pure functions of public query text and
//! catalog), then runs ONE `lookup_range_multi` traversal over *all*
//! levels for every key demanded by ≥ 2 queued probes, banking the
//! per-level sublists and the traversal's flash-counter delta in a
//! [`CiPrefetch`]. Executions then run in arrival order; each probe hit
//! demultiplexes its own level slices and is billed the banked delta
//! as-if-solo (`DeviceLane::charge`), so per-query results, every
//! `ExecReport` field and the per-query host transcript are bit-identical
//! to unbatched execution — the cross-*query* generalization of PR 5's
//! cross-*level* single-traversal win. `probe_in` eq-runs are deliberately
//! NOT batched: their probe lists derive from host-shipped visible ids,
//! so grouping them across queries would either perturb the per-query
//! host transcript or require unrecorded host contact.
//!
//! Scheduling is deterministic: sequence numbers are assigned under the
//! queue lock at submission, traversal keys are banked in sorted order,
//! and execution replays arrival order on the one simulated token core —
//! batching compresses wall-clock work, never the simulated observations
//! (`tests/serve_equivalence.rs` pins all of this down).

use crate::ci_ops::{CiPrefetch, PrefetchKey};
use crate::ctx::{CatalogCtx, DeviceLane, ExecCtx};
use crate::database::Database;
use crate::error::ExecError;
use crate::executor::{ExecOptions, Executor};
use crate::query::{analyze, SpjQuery};
use crate::report::ExecReport;
use crate::result::ResultSet;
use ghostdb_flash::SegmentAllocator;
use ghostdb_token::{Channel, RamArena, TranscriptEntry};
use ghostdb_untrusted::{HostTrace, UntrustedHost};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum queries queued but not yet executed; submissions past it
    /// are rejected with [`ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Worker threads for the drain's analysis fan-out (execution itself
    /// serializes on the one simulated token core).
    pub workers: usize,
    /// Enable the cross-query batch scheduler. Off = every query runs
    /// exactly as solo; on = shared traversals, identical observations.
    pub batching: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 16,
            workers: 4,
            batching: true,
        }
    }
}

impl ServeConfig {
    /// Start a builder chain (same vocabulary as `ExecOptions`).
    pub fn new() -> Self {
        ServeConfig::default()
    }

    /// Admission-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Analysis worker-pool width.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Toggle the cross-query batch scheduler.
    pub fn batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Reject invalid combinations at build time.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue_depth must be ≥ 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::Config("workers must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The admission queue is full; resubmit after a drain.
    QueueFull {
        /// The configured depth that was hit.
        depth: usize,
    },
    /// Invalid server configuration.
    Config(String),
    /// The query itself failed (admission validation or execution).
    Exec(ExecError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth } => {
                write!(f, "admission queue full (depth {depth})")
            }
            ServeError::Config(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Exec(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        ServeError::Exec(e)
    }
}

/// Everything one executed query produced, captured immediately after it
/// ran and stored per session — so a later query (from any session)
/// cannot clobber what this one observed.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The query result.
    pub result: ResultSet,
    /// The execution report (bit-identical to solo execution).
    pub report: ExecReport,
    /// The host-observable trace of exactly this query.
    pub trace: HostTrace,
    /// The wire transcript of exactly this query.
    pub transcript: Vec<TranscriptEntry>,
}

/// Batch-scheduler observability counters (cumulative across drains).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Drains that executed at least one query.
    pub batches: u64,
    /// Queries executed.
    pub queries: u64,
    /// Traversal keys banked (demanded by ≥ 2 queued probes).
    pub shared_keys: u64,
    /// Lower bound on traversals saved: for a key demanded `n` times,
    /// `n - 1` (hits beyond the analyzed demand save more).
    pub saved_traversals: u64,
    /// Drains whose batch executed on the worker pool (per-query isolated
    /// resources) rather than the serial loop. Purely observational: the
    /// outcomes are bit-identical either way.
    pub parallel_drains: u64,
}

/// One admitted, not-yet-executed query.
struct Queued {
    seq: u64,
    session: usize,
    query: SpjQuery,
    opts: ExecOptions,
}

/// Per-session completion queue: `(seq, outcome)` in execution order,
/// plus the session's most recent successful host trace — kept even
/// after the outcome itself is taken, so [`Session::host_trace`] survives
/// delivery.
#[derive(Default)]
struct SessionSlot {
    done: VecDeque<(u64, Result<QueryOutcome, ServeError>)>,
    last_trace: Option<HostTrace>,
}

struct ServerState {
    db: Database,
    pending: VecDeque<Queued>,
    next_seq: u64,
    sessions: Vec<SessionSlot>,
    stats: BatchStats,
}

/// A persistent in-process GhostDB server. See the module docs.
pub struct GhostDbServer {
    cfg: ServeConfig,
    state: Mutex<ServerState>,
}

impl GhostDbServer {
    /// Take ownership of a finalized database and start serving.
    pub fn new(db: Database, cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        Ok(GhostDbServer {
            cfg,
            state: Mutex::new(ServerState {
                db,
                pending: VecDeque::new(),
                next_seq: 0,
                sessions: Vec::new(),
                stats: BatchStats::default(),
            }),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Open a new session. Sessions are cheap handles; everything they do
    /// takes `&self` on the server.
    pub fn session(&self) -> Session<'_> {
        let mut st = self.state.lock().expect("server state");
        let id = st.sessions.len();
        st.sessions.push(SessionSlot::default());
        Session { server: self, id }
    }

    /// Queries admitted but not yet executed.
    pub fn pending(&self) -> usize {
        self.state.lock().expect("server state").pending.len()
    }

    /// Cumulative batch-scheduler counters.
    pub fn batch_stats(&self) -> BatchStats {
        self.state.lock().expect("server state").stats
    }

    /// Execute every pending query in arrival order and deliver each
    /// outcome to its session. Returns the number of queries executed.
    ///
    /// Per-query failures are delivered to their sessions like results;
    /// `Err` here means the drain infrastructure itself failed (a banked
    /// traversal erroring), in which case no query of the batch ran and
    /// all were dropped from the queue.
    pub fn drain(&self) -> Result<usize, ServeError> {
        let mut guard = self.state.lock().expect("server state");
        let st = &mut *guard;
        let batch: Vec<Queued> = st.pending.drain(..).collect();
        if batch.is_empty() {
            return Ok(0);
        }

        // Phase 1 — analysis fan-out: extract each query's batchable
        // probe keys (its hidden selections' index + key range) on the
        // worker pool. Only text-derivable probes qualify; a query whose
        // analysis fails contributes no keys and reports its error from
        // execution below, identically to solo.
        let schema = &st.db.schema;
        let cis = &st.db.cis;
        let keys_per_query: Vec<Vec<PrefetchKey>> = crate::parallel::fan_out(
            batch.len(),
            self.cfg.workers,
            || Ok(()),
            |_, i| {
                let Ok(a) = analyze(schema, &batch[i].query) else {
                    return Ok(Vec::new());
                };
                Ok(a.hid_sels
                    .iter()
                    .filter(|sel| cis.contains_key(&(sel.table, sel.pred.column.clone())))
                    .map(|sel| {
                        let (lo, hi) = sel.pred.key_range();
                        (sel.table, sel.pred.column.clone(), lo, hi)
                    })
                    .collect())
            },
        )
        .map_err(ServeError::Exec)?;

        // Phase 2 — bank one shared traversal per key demanded ≥ 2 times,
        // in sorted key order (deterministic), on a scratch arena so the
        // token arena's monotone peak is untouched.
        let mut prefetch = CiPrefetch::new();
        if self.cfg.batching {
            let mut demand: BTreeMap<PrefetchKey, u64> = BTreeMap::new();
            for key in keys_per_query.iter().flatten() {
                *demand.entry(key.clone()).or_default() += 1;
            }
            let scratch = st.db.token.ram.fresh_like();
            // Shared traversals ride the widest read-ahead window any query
            // in the batch asked for: the banked counter delta (and so what
            // every hit bills) is window-independent, only the shared
            // traversal's channel clock improves.
            let bank_window = batch.iter().map(|b| b.opts.read_ahead).max().unwrap_or(0);
            for (key, n) in demand {
                if n < 2 {
                    continue;
                }
                let (table, column, lo, hi) = key;
                let ci = cis
                    .get(&(table, column))
                    .expect("demanded keys come from the catalog");
                prefetch
                    .insert_traversal(&mut st.db.token.flash, &scratch, ci, lo, hi, bank_window)
                    .map_err(ServeError::Exec)?;
                st.stats.shared_keys += 1;
                st.stats.saved_traversals += n - 1;
            }
        }

        // Phase 3 — execute the batch. With one worker (or one query) the
        // serial loop runs each query on the token's own resources, in
        // arrival order, exactly as a client looping `Executor::run` would.
        // With more workers, queries run concurrently on per-query isolated
        // resources — a forked flash handle onto the shared chip array, a
        // fresh arena and channel, a forked host, an allocator slice carved
        // in arrival order — and the outcomes are post-processed so every
        // observable is bit-identical to the serial loop
        // (`tests/serve_equivalence.rs`). The parallel attempt declines
        // (returns `None`) near the GC watermark or when slices cannot be
        // carved, and a GC-tainted attempt is torn down and replayed
        // serially, so parallel drains are always serial-equivalent.
        let bank = if prefetch.is_empty() {
            None
        } else {
            Some(&prefetch)
        };
        st.stats.batches += 1;
        st.stats.queries += batch.len() as u64;
        let executed = batch.len();
        let parallel = if self.cfg.workers > 1 && batch.len() > 1 {
            run_batch_parallel(&mut st.db, &batch, bank, self.cfg.workers)
        } else {
            None
        };
        let outcomes: Vec<Result<QueryOutcome, ServeError>> = match parallel {
            Some(done) => {
                st.stats.parallel_drains += 1;
                // Arrival-order arena-peak reconstruction: the serial loop
                // runs every query on the token arena, whose high-water
                // mark is monotone across the whole drain, so query i's
                // report carries max(own peak, all earlier peaks). Worker
                // jobs each ran on a fresh arena; replay that monotone
                // accumulation here, then merge the final mark back into
                // the token arena.
                let mut running = st.db.token.ram.peak();
                let mut outcomes = Vec::with_capacity(done.len());
                for job in done {
                    running = running.max(job.own_peak);
                    outcomes.push(match job.outcome {
                        Ok((result, mut report)) => {
                            report.peak_ram_buffers = report.peak_ram_buffers.max(running);
                            Ok(QueryOutcome {
                                result,
                                report,
                                trace: job.trace,
                                transcript: job.transcript,
                            })
                        }
                        Err(e) => Err(ServeError::Exec(e)),
                    });
                }
                st.db.token.ram.raise_peak(running);
                outcomes
            }
            None => batch
                .iter()
                .map(|item| {
                    match Executor::run_prefetched(&mut st.db, &item.query, &item.opts, bank) {
                        Ok((result, report)) => Ok(QueryOutcome {
                            result,
                            report,
                            trace: st.db.untrusted.trace(),
                            transcript: st.db.token.channel.transcript().to_vec(),
                        }),
                        Err(e) => Err(ServeError::Exec(e)),
                    }
                })
                .collect(),
        };
        for (item, outcome) in batch.into_iter().zip(outcomes) {
            let slot = &mut st.sessions[item.session];
            if let Ok(out) = &outcome {
                slot.last_trace = Some(out.trace.clone());
            }
            slot.done.push_back((item.seq, outcome));
        }
        Ok(executed)
    }

    /// Remove and return a specific completed query of a session.
    fn take_seq(&self, session: usize, seq: u64) -> Option<Result<QueryOutcome, ServeError>> {
        let mut st = self.state.lock().expect("server state");
        let slot = &mut st.sessions[session];
        let at = slot.done.iter().position(|(s, _)| *s == seq)?;
        slot.done.remove(at).map(|(_, outcome)| outcome)
    }
}

/// Everything one parallel drain job produced. The arena peak and the
/// observations are captured even for failed queries — a failing query
/// still raised the (monotone) token arena mark in the serial loop, so
/// reconstruction needs its peak regardless of outcome.
struct JobDone {
    outcome: Result<(ResultSet, ExecReport), ExecError>,
    own_peak: usize,
    trace: HostTrace,
    transcript: Vec<TranscriptEntry>,
}

/// Per-query isolated execution resources of one parallel drain job.
struct JobRes {
    flash: ghostdb_flash::FlashDevice,
    arena: RamArena,
    alloc: SegmentAllocator,
    channel: Channel,
    host: UntrustedHost,
}

/// Execute a drained batch on the worker pool, one isolated resource set
/// per query. Returns `None` when the parallel attempt declines or must
/// be discarded (near the GC watermark, slices unavailable, or GC fired
/// mid-batch) — the caller then runs the plain serial loop; the attempt
/// leaves no trace on the token (fresh channels/hosts are dropped, slice
/// frees trim every page the jobs wrote).
fn run_batch_parallel(
    db: &mut Database,
    batch: &[Queued],
    bank: Option<&CiPrefetch>,
    workers: usize,
) -> Option<Vec<JobDone>> {
    const MIN_JOB_SLICE_PAGES: u64 = 64;
    let n = batch.len();
    // Mirror run_lanes' GC precondition on the weakest chip: near the
    // watermark the serial loop is the only schedule with deterministic
    // GC placement.
    if db.token.flash.gc_headroom_pages() * 8 < db.token.flash.geometry().physical_pages() {
        return None;
    }
    // One allocator slice per query, carved in arrival order under the
    // drain lock — so flash placement is a pure function of the admitted
    // sequence, never of worker scheduling. On a chip-striped allocator
    // successive carves rotate across chips, which is what lets disjoint
    // queries run on disjoint channels.
    let per = db.alloc.free_pages() / (n as u64 + 1);
    if per < MIN_JOB_SLICE_PAGES {
        return None;
    }
    let mut carves = Vec::with_capacity(n);
    for _ in 0..n {
        match db.alloc.alloc(per) {
            Ok(seg) => carves.push(seg),
            Err(_) => {
                for seg in carves {
                    db.alloc
                        .free(seg, &mut db.token.flash)
                        .expect("returning an unused drain slice");
                }
                return None;
            }
        }
    }
    let gc_before = db.token.flash.stats();
    let resources: Vec<Mutex<JobRes>> = carves
        .iter()
        .map(|seg| {
            Mutex::new(JobRes {
                flash: db.token.flash.fork(),
                arena: db.token.ram.fresh_like(),
                alloc: SegmentAllocator::over(seg.start(), seg.pages()),
                channel: db.token.channel.fresh_like(),
                host: db.untrusted.fork(),
            })
        })
        .collect();
    let (schema, rows, hidden, skts, cis) = (&db.schema, &db.rows, &db.hidden, &db.skts, &db.cis);
    let done: Result<Vec<JobDone>, ExecError> = crate::parallel::fan_out(
        n,
        workers,
        || Ok(()),
        |_, i| {
            let mut res = resources[i].lock().expect("job resources");
            let JobRes {
                flash,
                arena,
                alloc,
                channel,
                host,
            } = &mut *res;
            let item = &batch[i];
            let outcome = (|| {
                item.opts.validate()?;
                let cat = CatalogCtx {
                    schema,
                    rows,
                    hidden,
                    skts,
                    cis,
                    untrusted: &*host,
                };
                let lane = DeviceLane::new(flash, arena.clone(), alloc);
                let mut ctx = ExecCtx::from_parts(cat, lane, Some(channel));
                ctx.intra = item.opts.intra_threads;
                ctx.spill = item.opts.spill_policy;
                ctx.padded = item.opts.padded;
                ctx.read_ahead = item.opts.read_ahead;
                ctx.prefetch = bank;
                Executor::run_body(&mut ctx, &item.query, &item.opts)
            })();
            Ok(JobDone {
                outcome,
                own_peak: res.arena.peak(),
                trace: res.host.trace(),
                transcript: res.channel.transcript().to_vec(),
            })
        },
    );
    // Return every slice: frees trim, so any page a job wrote (including
    // error-path stragglers its own free_temps never reached) is erased
    // from the logical image before anything else runs.
    for seg in carves {
        db.alloc
            .free(seg, &mut db.token.flash)
            .expect("returning a drain slice");
    }
    let done = done.ok()?;
    let gc_after = db.token.flash.stats();
    let gc_fired = gc_after.blocks_erased != gc_before.blocks_erased
        || gc_after.gc_pages_read != gc_before.gc_pages_read
        || gc_after.gc_pages_written != gc_before.gc_pages_written;
    if gc_fired {
        // Scheduling-dependent relocation costs leaked into the jobs'
        // lane mirrors: discard everything and let the serial loop replay
        // the batch with deterministic GC placement.
        return None;
    }
    Some(done)
}

/// A session handle: the admission and observation endpoint of one
/// client. All methods take `&self` on the server, so any number of
/// sessions can be driven concurrently.
pub struct Session<'s> {
    server: &'s GhostDbServer,
    id: usize,
}

impl Session<'_> {
    /// This session's id (stable for the server's lifetime).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Admit a query. Options are validated at admission (a 0-thread
    /// build is rejected here, before it queues). Returns the sequence
    /// ticket; redeem it implicitly via [`Session::take`] after a drain.
    pub fn submit(&self, q: &SpjQuery, opts: &ExecOptions) -> Result<u64, ServeError> {
        opts.validate().map_err(ServeError::Exec)?;
        let mut st = self.server.state.lock().expect("server state");
        if st.pending.len() >= self.server.cfg.queue_depth {
            return Err(ServeError::QueueFull {
                depth: self.server.cfg.queue_depth,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending.push_back(Queued {
            seq,
            session: self.id,
            query: q.clone(),
            opts: opts.clone(),
        });
        Ok(seq)
    }

    /// Submit, drain and return this query's outcome — the closed-loop
    /// convenience path (other queued queries execute in the same drain).
    pub fn query(&self, q: &SpjQuery, opts: &ExecOptions) -> Result<QueryOutcome, ServeError> {
        let seq = self.submit(q, opts)?;
        self.server.drain()?;
        self.server
            .take_seq(self.id, seq)
            .expect("drained query must deliver an outcome")
    }

    /// Pop this session's oldest undelivered outcome, if any.
    pub fn take(&self) -> Option<Result<QueryOutcome, ServeError>> {
        let mut st = self.server.state.lock().expect("server state");
        st.sessions[self.id].done.pop_front().map(|(_, o)| o)
    }

    /// The host trace of this session's most recently executed query —
    /// session-local (another session's traffic can never clobber it) and
    /// retained across [`Session::take`] delivery.
    pub fn host_trace(&self) -> Option<HostTrace> {
        let st = self.server.state.lock().expect("server state");
        st.sessions[self.id].last_trace.clone()
    }
}

// The server is the unit shared across client threads: the compiler must
// never let a non-Sync field regress that.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GhostDbServer>();
    assert_send_sync::<Session<'_>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    fn q(text: &str) -> SpjQuery {
        // Root-only projection on the tiny fixture (T0 is the root).
        let mut q = SpjQuery::new().project(0, "id");
        q.text = text.into();
        q
    }

    #[test]
    fn admission_queue_rejects_past_depth() {
        let db = testkit::tiny_db();
        let server = GhostDbServer::new(db, ServeConfig::new().queue_depth(2)).expect("server");
        let s = server.session();
        let query = q("admit-1");
        s.submit(&query, &ExecOptions::auto()).expect("admit 1");
        s.submit(&query, &ExecOptions::auto()).expect("admit 2");
        match s.submit(&query, &ExecOptions::auto()) {
            Err(ServeError::QueueFull { depth: 2 }) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Draining frees the queue.
        assert_eq!(server.drain().expect("drain"), 2);
        s.submit(&query, &ExecOptions::auto())
            .expect("admit after drain");
    }

    #[test]
    fn zero_config_rejected_at_build_time() {
        let db = testkit::tiny_db();
        assert!(matches!(
            GhostDbServer::new(db, ServeConfig::new().queue_depth(0)),
            Err(ServeError::Config(_))
        ));
        let db = testkit::tiny_db();
        assert!(matches!(
            GhostDbServer::new(db, ServeConfig::new().workers(0)),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn sessions_receive_their_own_outcomes_in_order() {
        let db = testkit::tiny_db();
        let server = GhostDbServer::new(db, ServeConfig::default()).expect("server");
        let a = server.session();
        let b = server.session();
        let qa = q("session-a");
        let qb = q("session-b");
        a.submit(&qa, &ExecOptions::auto()).expect("a1");
        b.submit(&qb, &ExecOptions::auto()).expect("b1");
        a.submit(&qa, &ExecOptions::auto()).expect("a2");
        assert_eq!(server.drain().expect("drain"), 3);
        assert_eq!(server.pending(), 0);
        // Two outcomes for a, one for b, each with a non-empty transcript.
        let a1 = a.take().expect("a has outcomes").expect("a1 ok");
        let a2 = a.take().expect("a has outcomes").expect("a2 ok");
        assert!(a.take().is_none());
        let b1 = b.take().expect("b has outcomes").expect("b1 ok");
        assert!(b.take().is_none());
        for out in [&a1, &a2, &b1] {
            assert!(!out.transcript.is_empty(), "every query contacts the host");
            assert!(!out.trace.is_empty());
        }
    }

    #[test]
    fn invalid_options_rejected_at_admission() {
        let db = testkit::tiny_db();
        let server = GhostDbServer::new(db, ServeConfig::default()).expect("server");
        let s = server.session();
        let query = q("bad-opts");
        assert!(matches!(
            s.submit(&query, &ExecOptions::new().intra_threads(0)),
            Err(ServeError::Exec(_))
        ));
        assert_eq!(server.pending(), 0, "rejected submissions must not queue");
    }
}
