//! The `CI` operator: climbing-index lookups (paper §3.3).
//!
//! `CI(I, P, π)` looks up index `I`, and for each entry satisfying `P`
//! delivers the sorted sublist of IDs of the table selected by `π`
//! (the indexed table or any ancestor the index climbs to). `P` is either
//! `attribute θ value` (range/equality) or `attribute ∈ {value}` (the
//! probe-list form produced by visible selections).

use crate::ctx::ExecCtx;
use crate::error::ExecError;
use crate::report::OpKind;
use crate::source::IdSource;
use crate::Result;
use ghostdb_flash::{FlashDevice, FlashStats};
use ghostdb_index::ClimbingIndex;
use ghostdb_storage::{Id, IdList, Predicate, TableId};
use ghostdb_token::RamArena;
use std::collections::HashMap;

/// Key of one shared climbing-index traversal: the probed index identity
/// plus the key range derived from the predicate. A pure function of
/// public query text and the catalog — never of host-returned data — so
/// grouping queries by this key reveals nothing the queries themselves
/// don't (see `SECURITY.md`).
pub type PrefetchKey = (TableId, String, u64, u64);

/// One banked traversal: every level's sublists decoded from a single
/// `CiProbe::lookup_range_multi` pass, plus the flash-counter delta that
/// pass cost. By the level-independence property the differential suite
/// pins down (`ci_multi_equivalence`), that delta equals what a solo
/// query's own traversal over the same range would charge regardless of
/// which level subset it asks for — which is what lets a hit bill the
/// served query as-if-solo, bit for bit.
#[derive(Debug)]
pub struct PrefetchEntry {
    levels: Vec<Vec<IdList>>,
    io: FlashStats,
}

impl PrefetchEntry {
    /// The banked sublists of one level.
    pub fn level(&self, level: usize) -> &[IdList] {
        &self.levels[level]
    }

    /// Flash cost of the banked traversal (what each hit charges).
    pub fn io(&self) -> FlashStats {
        self.io
    }
}

/// Cross-query climbing-index prefetch: the serve-mode batch scheduler's
/// bank of shared traversals. Built once per admission batch (one
/// `lookup_range_multi` over **all** levels per key demanded by ≥ 2
/// queued probes), then handed read-only to every execution in the batch
/// via `ExecCtx::prefetch`. Entries are never consumed: a query probing
/// the same key twice hits twice and is charged twice, exactly as its
/// solo execution would re-traverse.
#[derive(Debug, Default)]
pub struct CiPrefetch {
    entries: HashMap<PrefetchKey, PrefetchEntry>,
}

impl CiPrefetch {
    /// Empty bank.
    pub fn new() -> Self {
        CiPrefetch::default()
    }

    /// Number of banked traversals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was banked (the scheduler then skips the
    /// prefetch plumbing entirely).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Run and bank one shared traversal over **all** of `ci`'s levels.
    /// `ram` must be a scratch arena (`RamArena::fresh_like`), not the
    /// token's: the bank is built outside any query, and the token
    /// arena's peak is a monotone high-water mark shared across queries.
    /// `read_ahead` is the batch's leaf read-ahead window (pages; `0` =
    /// serial). The counter delta banked — and so what every hit bills —
    /// is identical at any window; only the shared traversal's channel
    /// clock improves.
    pub fn insert_traversal(
        &mut self,
        dev: &mut FlashDevice,
        ram: &RamArena,
        ci: &ClimbingIndex,
        lo: u64,
        hi: u64,
        read_ahead: usize,
    ) -> Result<()> {
        let mut probe = ci.probe(ram)?;
        probe.set_read_ahead(read_ahead);
        let levels: Vec<usize> = (0..ci.levels.len()).collect();
        let before = dev.snapshot();
        let lists = probe.lookup_range_multi(dev, lo, hi, &levels)?;
        let io = dev.stats_since(&before);
        self.entries.insert(
            (ci.table, ci.column.clone(), lo, hi),
            PrefetchEntry { levels: lists, io },
        );
        Ok(())
    }

    /// The banked traversal for `(ci, [lo, hi])`, if any.
    pub fn get(&self, ci: &ClimbingIndex, lo: u64, hi: u64) -> Option<&PrefetchEntry> {
        self.entries.get(&(ci.table, ci.column.clone(), lo, hi))
    }
}

/// Resolve the level index of `target` in `ci`, erroring with context.
pub fn level_of(ctx: &ExecCtx<'_>, ci: &ClimbingIndex, target: TableId) -> Result<usize> {
    ci.level_of(target).ok_or_else(|| {
        ExecError::StrategyNotApplicable(format!(
            "index on {}.{} does not climb to {}",
            ctx.cat.schema.def(ci.table).name,
            ci.column,
            ctx.cat.schema.def(target).name
        ))
    })
}

/// `CI(I, attribute θ value, target)`: one sorted sublist per matching
/// entry.
pub fn select_sublists(
    ctx: &mut ExecCtx<'_>,
    ci: &ClimbingIndex,
    pred: &Predicate,
    target: TableId,
) -> Result<Vec<IdSource>> {
    let level = level_of(ctx, ci, target)?;
    let (lo, hi) = pred.key_range();
    if let Some(hit) = ctx.prefetch.and_then(|p| p.get(ci, lo, hi)) {
        return ctx.track(OpKind::Ci, |ctx| {
            // Reproduce the solo probe's RAM pin (the arena peak is a
            // monotone high-water mark) and bill the banked traversal's
            // flash delta, so reports match solo execution bit for bit.
            let ram = ctx.ram();
            let _probe = ci.probe(&ram)?;
            ctx.lane.charge(hit.io());
            Ok(hit
                .level(level)
                .iter()
                .copied()
                .map(IdSource::Flash)
                .collect())
        });
    }
    ctx.track(OpKind::Ci, |ctx| {
        let ram = ctx.ram();
        let mut probe = ci.probe(&ram)?;
        probe.set_read_ahead(ctx.read_ahead);
        let lists = ctx
            .lane
            .with_flash(|dev| probe.lookup_range(dev, lo, hi, level))?;
        Ok(lists.into_iter().map(IdSource::Flash).collect())
    })
}

/// `CI(I, attribute θ value, {targets})`: sublists for several levels from
/// a **single** B+-tree traversal — the paper's remark that the "redundant
/// lookup" of Cross-Post plans "can be easily avoided in practice", since
/// every leaf payload carries all levels. Each qualifying leaf entry is
/// visited once (`CiProbe::lookup_range_multi` in `ghostdb_index`) and all
/// requested levels
/// decode from its payload, so the flash pages charged to `OpKind::Ci`
/// equal those of *one* per-level scan, independent of `targets.len()`.
///
/// [`naive_select_sublists_multi`] keeps the per-level reference path; the
/// differential suite (`ci_multi_equivalence`) and the `micro/ci/multi-*`
/// perfbench pair hold the two to identical sublists.
pub fn select_sublists_multi(
    ctx: &mut ExecCtx<'_>,
    ci: &ClimbingIndex,
    pred: &Predicate,
    targets: &[TableId],
) -> Result<Vec<Vec<IdSource>>> {
    let levels: Vec<usize> = targets
        .iter()
        .map(|t| level_of(ctx, ci, *t))
        .collect::<Result<_>>()?;
    let (lo, hi) = pred.key_range();
    if let Some(hit) = ctx.prefetch.and_then(|p| p.get(ci, lo, hi)) {
        return ctx.track(OpKind::Ci, |ctx| {
            let ram = ctx.ram();
            let _probe = ci.probe(&ram)?;
            ctx.lane.charge(hit.io());
            Ok(levels
                .iter()
                .map(|&l| hit.level(l).iter().copied().map(IdSource::Flash).collect())
                .collect())
        });
    }
    ctx.track(OpKind::Ci, |ctx| {
        let ram = ctx.ram();
        let mut probe = ci.probe(&ram)?;
        probe.set_read_ahead(ctx.read_ahead);
        let lists = ctx
            .lane
            .with_flash(|dev| probe.lookup_range_multi(dev, lo, hi, &levels))?;
        Ok(lists
            .into_iter()
            .map(|level| level.into_iter().map(IdSource::Flash).collect())
            .collect())
    })
}

/// Per-level reference for [`select_sublists_multi`]: one full
/// `CiProbe::naive_lookup_range` traversal per target level on a shared
/// probe — the pre-batching behaviour verbatim (mirroring the
/// `NaiveUnionStream` pattern). Same sublists; re-reads the range's leaf
/// pages and re-copies every payload once per level, so it is the honest
/// baseline the single-traversal path is judged against.
pub fn naive_select_sublists_multi(
    ctx: &mut ExecCtx<'_>,
    ci: &ClimbingIndex,
    pred: &Predicate,
    targets: &[TableId],
) -> Result<Vec<Vec<IdSource>>> {
    let levels: Vec<usize> = targets
        .iter()
        .map(|t| level_of(ctx, ci, *t))
        .collect::<Result<_>>()?;
    let (lo, hi) = pred.key_range();
    ctx.track(OpKind::Ci, |ctx| {
        let ram = ctx.ram();
        let mut probe = ci.probe(&ram)?;
        let mut out: Vec<Vec<IdSource>> = vec![Vec::new(); targets.len()];
        ctx.lane.with_flash(|dev| -> Result<()> {
            for (i, level) in levels.iter().enumerate() {
                let lists = probe.naive_lookup_range(dev, lo, hi, *level)?;
                out[i] = lists.into_iter().map(IdSource::Flash).collect();
            }
            Ok(())
        })?;
        Ok(out)
    })
}

/// `CI(I, id ∈ probe_ids, target)`: one sublist per present probe id.
///
/// Probe ids are sorted once (they normally arrive ascending from sorted
/// visible selections or merges, making the sort a single verification
/// pass) and the whole batch walks the B+-tree strictly forward, so runs of
/// ids falling in the same leaf are resolved in place without per-id
/// root-to-leaf descents.
pub fn probe_in(
    ctx: &mut ExecCtx<'_>,
    ci: &ClimbingIndex,
    probe_ids: &[Id],
    target: TableId,
) -> Result<Vec<IdSource>> {
    let level = level_of(ctx, ci, target)?;
    let mut keys: Vec<u64> = probe_ids.iter().map(|id| *id as u64).collect();
    keys.sort_unstable();
    ctx.track(OpKind::Ci, |ctx| {
        let ram = ctx.ram();
        let mut probe = ci.probe(&ram)?;
        probe.set_read_ahead(ctx.read_ahead);
        let lists = ctx
            .lane
            .with_flash(|dev| probe.lookup_eq_run(dev, &keys, level))?;
        Ok(lists
            .into_iter()
            .filter(|l| l.count > 0)
            .map(IdSource::Flash)
            .collect())
    })
}

/// Estimated selectivity of a hidden predicate from index statistics
/// (distinct-count uniformity assumption; used by the optimizer).
pub fn estimate_selectivity(ci: &ClimbingIndex, pred: &Predicate) -> f64 {
    let distinct = ci.distinct().max(1) as f64;
    match pred.op {
        ghostdb_storage::CmpOp::Eq => 1.0 / distinct,
        _ => {
            // Range selectivity from the key range: assume keys spread
            // uniformly — good enough to pick a strategy.
            let (lo, hi) = pred.key_range();
            if hi <= lo {
                return 0.0;
            }
            // Normalise against the full u64 span only when unbounded;
            // otherwise this is a heuristic third.
            if lo == 0 || hi == u64::MAX {
                0.33
            } else {
                0.5
            }
        }
    }
}
