//! Projection: the Figure 5 `Project` algorithm (paper §4), its `NoBF`
//! ablation and the `Brute-Force` baseline (Figures 12–13).
//!
//! Distinctive constraints (§4): the PC ships many values that will not
//! survive the query (it must not learn which); post-filter strategies left
//! Bloom false positives in the QEPSJ result; and RAM is still 64 KB. The
//! algorithm therefore works **table by table**: partition the QEPSJ result
//! into per-table ID columns, shrink the visible stream with a Bloom filter
//! (`σVH`), build complete tuples in RAM-bounded `MJoin` passes, and let the
//! final position-merge join drop every row a table failed to confirm —
//! which simultaneously kills Bloom false positives and deferred visible
//! selections, and runs the exact re-checks for non-injective index keys.
//!
//! The per-table σVH + MJoin passes are independent of each other (each
//! touches only its own id column, its own hidden columns and its own
//! shipments), which is why they are the projection's intra-query fan-out
//! point: every shipment is prefetched on the root lane (the channel's cost
//! model is a byte sum, so hoisting changes nothing), then each table runs
//! on its own [`crate::ctx::DeviceLane`] via [`ExecCtx::run_lanes`].

use crate::ctx::ExecCtx;
use crate::error::ExecError;
use crate::query::{Analyzed, TableProjection};
use crate::report::OpKind;
use crate::result::ResultSet;
use crate::sjoin::sjoin_stream;
use crate::source::{IdSource, SharedIds, SourceReader};
use crate::strategy::{RootIds, SjOutcome};
use crate::Result;
use ghostdb_bloom::calibrate;
use ghostdb_bloom::BloomFilter;
use ghostdb_storage::row::RowLayout;
use ghostdb_storage::table::{ColumnScan, FlashTableWriter};
use ghostdb_storage::{ColumnType, FlashTable, Id, IdListReader, Predicate, TableId, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Which projection algorithm to run (Figures 12–13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectAlgo {
    /// The full Figure 5 algorithm (Bloom-filtered σVH + MJoin).
    Project,
    /// Project without the Bloom optimisation: irrelevant visible values
    /// are not pre-eliminated, inflating MJoin passes.
    ProjectNoBf,
    /// Load the QEPSJ result in RAM and random-access every attribute.
    BruteForce,
}

impl ProjectAlgo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            ProjectAlgo::Project => "Project",
            ProjectAlgo::ProjectNoBf => "Project-NoBF",
            ProjectAlgo::BruteForce => "Brute-Force",
        }
    }
}

/// A materialised per-table projection run: rows `<pos, idTi, values…>`
/// sorted by `pos`.
struct ProjTable {
    table: FlashTable,
    vis: Vec<(String, ColumnType)>,
    hid: Vec<(String, ColumnType)>,
}

impl ProjTable {
    fn layout(vis: &[(String, ColumnType)], hid: &[(String, ColumnType)]) -> RowLayout {
        let mut widths = vec![4usize, 4usize]; // pos, idTi
        widths.extend(vis.iter().map(|(_, ty)| ty.width()));
        widths.extend(hid.iter().map(|(_, ty)| ty.width()));
        RowLayout::new(&widths)
    }

    fn field_of(&self, name: &str) -> Option<(usize, ColumnType)> {
        if let Some(i) = self.vis.iter().position(|(n, _)| n == name) {
            return Some((2 + i, self.vis[i].1));
        }
        self.hid
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (2 + self.vis.len() + i, self.hid[i].1))
    }
}

/// Everything one table's σVH + MJoin pass needs, prefetched on the root
/// lane so worker lanes never touch the channel.
struct TablePrep<'q> {
    tproj: &'q TableProjection,
    rechecks: Vec<&'q Predicate>,
    /// Ids satisfying the table's visible predicates (`None` when the table
    /// has no visible side at all → dense range).
    sigma_ids: Option<SharedIds>,
    /// Visible values for MJoin (second shipment, values included).
    vis_values: Option<ghostdb_untrusted::VisShipment>,
}

/// Execute projection and deliver the final result set.
pub fn execute(
    ctx: &mut ExecCtx<'_>,
    a: &Analyzed,
    sj: SjOutcome,
    algo: ProjectAlgo,
) -> Result<ResultSet> {
    let root = ctx.cat.schema.root();

    // Participation set: tables with projections, pending visible
    // filtering, or exact re-checks.
    let mut participants: Vec<TableId> = Vec::new();
    for (t, _) in &a.projections {
        if *t != root && !participants.contains(t) {
            participants.push(*t);
        }
    }
    for t in sj.approx_vis.iter().chain(&sj.deferred_vis) {
        if *t != root && !participants.contains(t) {
            participants.push(*t);
        }
    }
    for (t, _) in &sj.recheck {
        if *t != root && !participants.contains(t) {
            participants.push(*t);
        }
    }

    // Step 1: per-table ID columns in root order.
    let (root_col, id_cols) = partition(ctx, &sj.root, &participants)?;

    if algo == ProjectAlgo::BruteForce {
        return brute_force(ctx, a, &sj, root_col, &participants, &id_cols);
    }

    // Prefetch phase (root lane): every channel shipment the per-table
    // passes will need, in table order. The channel charges a byte sum, so
    // hoisting the shipments out of the per-table loop leaves `comm` and
    // `bytes_to_secure` exactly as the interleaved serial order did.
    let empty = TableProjection::default();
    let mut preps: Vec<TablePrep<'_>> = Vec::with_capacity(participants.len());
    for t in &participants {
        let tproj = a
            .projections
            .iter()
            .find(|(tt, _)| tt == t)
            .map(|(_, p)| p)
            .unwrap_or(&empty);
        let rechecks: Vec<&Predicate> = sj
            .recheck
            .iter()
            .filter(|(tt, _)| tt == t)
            .map(|(_, p)| p)
            .collect();
        let vis_preds = a.vis_preds_of(*t);
        let has_vis_side = !vis_preds.is_empty() || !tproj.vis.is_empty();
        let sigma_ids: Option<SharedIds> = if has_vis_side {
            Some(Arc::new(ctx.vis(*t, vis_preds, &[])?.ids))
        } else {
            None
        };
        let vis_values = if tproj.vis.is_empty() {
            None
        } else {
            Some(ctx.vis(*t, vis_preds, &tproj.vis)?)
        };
        preps.push(TablePrep {
            tproj,
            rechecks,
            sigma_ids,
            vis_values,
        });
    }

    // Steps 2–3, one job per participating table, fanned across lanes when
    // `--intra-threads` allows. Results land in table order either way, and
    // per-operator attribution merges back bit-identically to serial.
    let outs: Vec<ProjTable> = ctx.run_lanes(participants.len(), |ctx, i| {
        let t = participants[i];
        let prep = &preps[i];
        // σVH: the visible ids filtered against this table's QEPSJ column.
        let sigma: IdSource = match &prep.sigma_ids {
            Some(ids) => match algo {
                ProjectAlgo::Project => sigma_vh(ctx, &id_cols[i], ids)?,
                _ => IdSource::Host(ids.clone()),
            },
            None => IdSource::Range {
                start: 0,
                end: ctx.cat.rows[t] as Id,
            },
        };
        mjoin(
            ctx,
            t,
            prep.tproj,
            &prep.rechecks,
            &id_cols[i],
            sigma,
            prep.vis_values.as_ref(),
        )
    })?;
    let proj_tables: Vec<(TableId, ProjTable)> = participants.iter().copied().zip(outs).collect();

    // Step 4: the final position-merge join.
    final_join(ctx, a, &sj, root_col, proj_tables)
}

/// Figure 5, line 1: vertically partition the QEPSJ result into one ID
/// column per participating table (plus the root column), in root order.
fn partition(
    ctx: &mut ExecCtx<'_>,
    root_ids: &RootIds,
    tables: &[TableId],
) -> Result<(FlashTable, Vec<FlashTable>)> {
    let root = ctx.cat.schema.root();
    let layout = RowLayout::ids(1);
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let upper = match root_ids {
        RootIds::All => ctx.cat.rows[root],
        RootIds::List(l) => l.count,
        RootIds::Table(t) => t.table.rows(),
    };
    let mut root_writer =
        FlashTableWriter::create(ctx.lane.alloc(), &ram, layout.clone(), upper, page_size)?;
    let mut writers: Vec<FlashTableWriter> = tables
        .iter()
        .map(|_| {
            FlashTableWriter::create(ctx.lane.alloc(), &ram, layout.clone(), upper, page_size)
                .map_err(crate::error::ExecError::from)
        })
        .collect::<Result<_>>()?;

    match root_ids {
        RootIds::Table(f) => {
            // The SJoin already ran (footnote 7): one scan of F' splits it
            // into columns. Attributed to Partition (part of Project).
            let cols: Vec<usize> = tables
                .iter()
                .map(|t| f.col_of(*t).expect("planner included the column"))
                .collect();
            let mut reader = f.table.reader(&ram, page_size)?;
            ctx.track_rw(OpKind::Partition, OpKind::Partition, |ctx| {
                ctx.lane.with_flash(|dev| {
                    let mut cell = vec![0u8; 4];
                    while let Some(row) = reader.next_row(dev)? {
                        let row = row.to_vec();
                        cell.copy_from_slice(&row[..4]);
                        root_writer.push(dev, &cell)?;
                        for (w, c) in writers.iter_mut().zip(&cols) {
                            cell.copy_from_slice(&row[c * 4..c * 4 + 4]);
                            w.push(dev, &cell)?;
                        }
                    }
                    Ok(())
                })
            })?;
        }
        RootIds::List(list) => {
            // SJoin from the root-id list (reads → SJoin, writes → Store:
            // this is the SJoin whose cost dominates Figures 15–16 for
            // pre-filter plans).
            let mut feed = IdListReader::open(*list, &ram, page_size)?;
            if tables.is_empty() {
                ctx.track_rw(OpKind::SJoin, OpKind::Store, |ctx| {
                    ctx.lane.with_flash(|dev| {
                        while let Some(id) = feed.next_id(dev)? {
                            root_writer.push(dev, &id.to_le_bytes())?;
                        }
                        Ok(())
                    })
                })?;
            } else {
                let skt = ctx.skt(root)?;
                sjoin_stream(
                    ctx,
                    skt,
                    tables,
                    |ctx| ctx.tracked(OpKind::SJoin, |dev| Ok(feed.next_id(dev)?)),
                    |ctx, id, targets| {
                        ctx.tracked(OpKind::Store, |dev| {
                            root_writer.push(dev, &id.to_le_bytes())?;
                            for (w, tid) in writers.iter_mut().zip(targets) {
                                w.push(dev, &tid.to_le_bytes())?;
                            }
                            Ok(())
                        })
                    },
                )?;
            }
        }
        RootIds::All => {
            let rows = ctx.cat.rows[root];
            if tables.is_empty() {
                ctx.track_rw(OpKind::SJoin, OpKind::Store, |ctx| {
                    ctx.lane.with_flash(|dev| {
                        for id in 0..rows {
                            root_writer.push(dev, &(id as Id).to_le_bytes())?;
                        }
                        Ok(())
                    })
                })?;
            } else {
                let skt = ctx.skt(root)?;
                let mut next = 0 as Id;
                sjoin_stream(
                    ctx,
                    skt,
                    tables,
                    |_ctx| {
                        if (next as u64) < rows {
                            let v = next;
                            next += 1;
                            Ok(Some(v))
                        } else {
                            Ok(None)
                        }
                    },
                    |ctx, id, targets| {
                        ctx.tracked(OpKind::Store, |dev| {
                            root_writer.push(dev, &id.to_le_bytes())?;
                            for (w, tid) in writers.iter_mut().zip(targets) {
                                w.push(dev, &tid.to_le_bytes())?;
                            }
                            Ok(())
                        })
                    },
                )?;
            }
        }
    }

    let root_col = ctx.lane.with_flash(|dev| root_writer.finish(dev))?;
    ctx.add_temp(root_col.segment());
    let mut id_cols = Vec::with_capacity(writers.len());
    for w in writers {
        let t = ctx.lane.with_flash(|dev| w.finish(dev))?;
        ctx.add_temp(t.segment());
        id_cols.push(t);
    }
    Ok((root_col, id_cols))
}

/// Figure 5, lines 3–4: Bloom over the table's QEPSJ id column, probed with
/// the visible ids → σVH. "The Bloom filter is calibrated by default to
/// occupy the entire RAM" (§5) minus the scan buffers.
fn sigma_vh(ctx: &mut ExecCtx<'_>, id_col: &FlashTable, vis_ids: &SharedIds) -> Result<IdSource> {
    let n = id_col.rows();
    let budget = ctx.ram().available().saturating_sub(3) * ctx.ram().buf_size();
    let Some(cal) = calibrate(n, budget) else {
        // Hopeless filter: fall back to the unfiltered visible ids.
        return Ok(IdSource::Host(vis_ids.clone()));
    };
    let buffers = cal.bytes.div_ceil(ctx.ram().buf_size()).max(1);
    let region = ctx.ram().alloc_region(buffers)?;
    let mut bf = BloomFilter::new(region, cal.m_bits, cal.k);
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let mut reader = id_col.reader(&ram, page_size)?;
    ctx.track(OpKind::ProjBloom, |ctx| {
        ctx.lane.with_flash(|dev| {
            while let Some(row) = reader.next_row(dev)? {
                let id = u32::from_le_bytes(row[..4].try_into().expect("id cell"));
                bf.insert(id as u64);
            }
            Ok(())
        })
    })?;
    let filtered: Vec<Id> = vis_ids
        .iter()
        .copied()
        .filter(|id| bf.contains(*id as u64))
        .collect();
    Ok(IdSource::Host(Arc::new(filtered)))
}

/// Figure 5, line 6: MJoin — merge visible values, hidden columns and σVH
/// into complete tuples held in RAM (capacity minus the scan buffers), then
/// sweep the table's id column once per RAM-load emitting `<pos, tuple>`.
fn mjoin(
    ctx: &mut ExecCtx<'_>,
    t: TableId,
    tproj: &TableProjection,
    rechecks: &[&Predicate],
    id_col: &FlashTable,
    sigma: IdSource,
    vis_values: Option<&ghostdb_untrusted::VisShipment>,
) -> Result<ProjTable> {
    let def = ctx.cat.schema.def(t);
    let vis: Vec<(String, ColumnType)> = tproj
        .vis
        .iter()
        .map(|c| (c.clone(), def.column(c).expect("analyzed").ty))
        .collect();
    let hid: Vec<(String, ColumnType)> = tproj
        .hid
        .iter()
        .map(|c| (c.clone(), def.column(c).expect("analyzed").ty))
        .collect();
    let layout = ProjTable::layout(&vis, &hid);
    let entry_bytes = layout.size() - 4; // dict entries exclude pos

    // Hidden column scans: projected hidden columns + re-check columns.
    let image = &ctx.cat.hidden[t];
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let mut hid_scans: Vec<ColumnScan> = hid
        .iter()
        .map(|(name, _)| Ok(image.column(name)?.selective_scan(&ram, page_size)?))
        .collect::<Result<_>>()?;
    let mut recheck_scans: Vec<(ColumnScan, &Predicate)> = rechecks
        .iter()
        .map(|p| {
            Ok((
                image.column(&p.column)?.selective_scan(&ram, page_size)?,
                *p,
            ))
        })
        .collect::<Result<_>>()?;

    // Dict capacity: RAM minus two buffers (§4) and the open scans.
    let reserved = 2 + sigma.buffers_needed();
    let avail = ctx.ram().available();
    if avail <= reserved {
        return Err(ExecError::Token(ghostdb_token::TokenError::OutOfRam {
            requested: reserved + 1,
            available: avail,
            capacity: ctx.ram().capacity(),
        }));
    }
    let dict_buffers = avail - reserved;
    let dict_bytes = dict_buffers * ctx.ram().buf_size();
    let dict_capacity = (dict_bytes / entry_bytes.max(1)).max(1);
    let dict_region = ctx.ram().alloc_region(dict_buffers)?;

    // Host map for value lookup of the visible shipment.
    let vis_map: Option<HashMap<Id, usize>> =
        vis_values.map(|s| s.ids.iter().enumerate().map(|(i, id)| (*id, i)).collect());

    let mut sigma_reader = SourceReader::open(&sigma, &ram, page_size)?;
    let mut runs: Vec<FlashTable> = Vec::new();
    let mut exhausted = false;
    while !exhausted {
        // Fill the dict with the next RAM-load of σVH entries.
        let mut dict: HashMap<Id, Vec<u8>> = HashMap::new();
        ctx.track(OpKind::MJoin, |ctx| {
            ctx.lane.with_flash(|dev| {
                while dict.len() < dict_capacity {
                    let Some(id) = sigma_reader.next(dev)? else {
                        exhausted = true;
                        break;
                    };
                    // Re-checks: exact hidden predicate evaluation.
                    let mut keep = true;
                    for (scan, pred) in recheck_scans.iter_mut() {
                        let v = scan.value_at(dev, id)?;
                        if !pred.matches(&v) {
                            keep = false;
                        }
                    }
                    if !keep {
                        continue;
                    }
                    let mut entry = vec![0u8; entry_bytes];
                    entry[..4].copy_from_slice(&id.to_le_bytes());
                    let mut at = 4usize;
                    if let (Some(map), Some(shipment)) = (&vis_map, vis_values) {
                        let idx = match map.get(&id) {
                            Some(i) => *i,
                            None => continue, // not visible-selected
                        };
                        for (c, (_, ty)) in vis.iter().enumerate() {
                            let w = ty.width();
                            shipment.columns[c].1[idx].encode(ty, &mut entry[at..at + w])?;
                            at += w;
                        }
                    }
                    for (scan, (_, ty)) in hid_scans.iter_mut().zip(&hid) {
                        let v = scan.value_at(dev, id)?;
                        let w = ty.width();
                        v.encode(ty, &mut entry[at..at + w])?;
                        at += w;
                    }
                    dict.insert(id, entry);
                }
                Ok(())
            })
        })?;
        if dict.is_empty() {
            if exhausted && !runs.is_empty() {
                break;
            }
            if exhausted {
                break;
            }
            continue;
        }
        // Sweep the id column, emitting <pos, entry> for dict hits.
        let mut col_reader = id_col.reader(&ram, page_size)?;
        let mut writer = FlashTableWriter::create(
            ctx.lane.alloc(),
            &ram,
            layout.clone(),
            id_col.rows(),
            page_size,
        )?;
        ctx.track(OpKind::MJoin, |ctx| {
            ctx.lane.with_flash(|dev| {
                let mut pos = 0u32;
                let mut row = vec![0u8; layout.size()];
                while let Some(cell) = col_reader.next_row(dev)? {
                    let id = u32::from_le_bytes(cell[..4].try_into().expect("id cell"));
                    if let Some(entry) = dict.get(&id) {
                        row[..4].copy_from_slice(&pos.to_le_bytes());
                        row[4..].copy_from_slice(entry);
                        writer.push(dev, &row)?;
                    }
                    pos += 1;
                }
                Ok(())
            })
        })?;
        let run = ctx.lane.with_flash(|dev| writer.finish(dev))?;
        ctx.add_temp(run.segment());
        runs.push(run);
    }

    // Release the MJoin working RAM before merging the per-pass runs: the
    // run merge budgets its own buffers.
    drop(dict_region);
    drop(sigma_reader);
    drop(hid_scans);
    drop(recheck_scans);
    let table = match runs.len() {
        0 => {
            let empty = ctx.lane.with_flash_alloc(|dev, alloc| {
                FlashTable::bulk_load_with(dev, alloc, layout, 0, |_, _| {})
            })?;
            ctx.add_temp(empty.segment());
            empty
        }
        1 => runs.into_iter().next().expect("one run"),
        _ => merge_runs_by_pos(ctx, runs)?,
    };
    Ok(ProjTable { table, vis, hid })
}

/// K-way merge of MJoin runs by their `pos` field (field 0), batched so
/// each merge level holds at most `available - 1` run readers.
fn merge_runs_by_pos(ctx: &mut ExecCtx<'_>, mut runs: Vec<FlashTable>) -> Result<FlashTable> {
    loop {
        let fan_in = ctx.ram().available().saturating_sub(1).max(2);
        if runs.len() <= fan_in {
            return merge_runs_level(ctx, runs);
        }
        let batch: Vec<FlashTable> = runs.drain(..fan_in).collect();
        let merged = merge_runs_level(ctx, batch)?;
        runs.push(merged);
    }
}

/// One merge level over at most `available - 1` runs.
fn merge_runs_level(ctx: &mut ExecCtx<'_>, runs: Vec<FlashTable>) -> Result<FlashTable> {
    let layout = runs[0].layout.clone();
    let total: u64 = runs.iter().map(|r| r.rows()).sum();
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let mut readers = runs
        .iter()
        .map(|r| {
            r.reader(&ram, page_size)
                .map_err(crate::error::ExecError::from)
        })
        .collect::<Result<Vec<_>>>()?;
    let mut writer =
        FlashTableWriter::create(ctx.lane.alloc(), &ram, layout.clone(), total, page_size)?;
    ctx.track(OpKind::MJoin, |ctx| {
        ctx.lane.with_flash(|dev| {
            let mut heads: Vec<Option<Vec<u8>>> = Vec::new();
            for r in readers.iter_mut() {
                heads.push(r.next_row(dev)?.map(|x| x.to_vec()));
            }
            loop {
                let mut best: Option<usize> = None;
                for (i, h) in heads.iter().enumerate() {
                    if let Some(row) = h {
                        let pos = layout.get_id(row, 0);
                        let better = match best {
                            None => true,
                            Some(b) => pos < layout.get_id(heads[b].as_ref().expect("head"), 0),
                        };
                        if better {
                            best = Some(i);
                        }
                    }
                }
                let Some(b) = best else { break };
                let row = heads[b].take().expect("best");
                writer.push(dev, &row)?;
                heads[b] = readers[b].next_row(dev)?.map(|x| x.to_vec());
            }
            Ok(())
        })
    })?;
    let out = ctx.lane.with_flash(|dev| writer.finish(dev))?;
    ctx.add_temp(out.segment());
    Ok(out)
}

/// Figure 5, line 7: merge every per-table projection stream (and the root
/// streams) in position order; a row survives only if every participating
/// table confirmed its position.
fn final_join(
    ctx: &mut ExecCtx<'_>,
    a: &Analyzed,
    sj: &SjOutcome,
    root_col: FlashTable,
    proj_tables: Vec<(TableId, ProjTable)>,
) -> Result<ResultSet> {
    let root = ctx.cat.schema.root();
    let ram = ctx.ram();
    let page_size = ctx.page_size();

    // Root-side needs.
    let empty = TableProjection::default();
    let root_proj = a
        .projections
        .iter()
        .find(|(t, _)| *t == root)
        .map(|(_, p)| p)
        .unwrap_or(&empty);
    let root_vis_preds = a.vis_preds_of(root);
    let root_filter_pending = sj.approx_vis.contains(&root) || sj.deferred_vis.contains(&root);
    let root_shipment = if !root_proj.vis.is_empty() || root_filter_pending {
        Some(ctx.vis(root, root_vis_preds, &root_proj.vis)?)
    } else {
        None
    };
    let root_vis_map: Option<HashMap<Id, usize>> = root_shipment
        .as_ref()
        .map(|s| s.ids.iter().enumerate().map(|(i, id)| (*id, i)).collect());

    let image = &ctx.cat.hidden[root];
    let mut root_hid_scans: Vec<(String, ColumnScan)> = root_proj
        .hid
        .iter()
        .map(|c| Ok((c.clone(), image.column(c)?.selective_scan(&ram, page_size)?)))
        .collect::<Result<_>>()?;
    let mut root_recheck: Vec<(ColumnScan, &Predicate)> = sj
        .recheck
        .iter()
        .filter(|(t, _)| *t == root)
        .map(|(_, p)| Ok((image.column(&p.column)?.selective_scan(&ram, page_size)?, p)))
        .collect::<Result<_>>()?;

    let mut root_reader = root_col.reader(&ram, page_size)?;
    let mut table_readers: Vec<(
        TableId,
        &ProjTable,
        ghostdb_storage::table::FlashTableReader,
    )> = Vec::new();
    for (t, pt) in &proj_tables {
        table_readers.push((*t, pt, pt.table.reader(&ram, page_size)?));
    }

    let columns: Vec<String> = a
        .output
        .iter()
        .map(|(t, c)| format!("{}.{}", ctx.cat.schema.def(*t).name, c))
        .collect();
    let mut rows: Vec<Vec<Value>> = Vec::new();

    ctx.track(OpKind::FinalJoin, |ctx| {
        ctx.lane.with_flash(|dev| {
            let mut heads: Vec<Option<Vec<u8>>> = Vec::new();
            for (_, _, r) in table_readers.iter_mut() {
                heads.push(r.next_row(dev)?.map(|x| x.to_vec()));
            }
            let mut pos = 0u32;
            while let Some(cell) = root_reader.next_row(dev)? {
                let root_id = u32::from_le_bytes(cell[..4].try_into().expect("id cell"));
                // Advance each table stream to `pos`.
                let mut all_present = true;
                let mut current: Vec<Option<Vec<u8>>> = vec![None; table_readers.len()];
                for (i, (_, pt, r)) in table_readers.iter_mut().enumerate() {
                    loop {
                        match &heads[i] {
                            None => {
                                all_present = false;
                                break;
                            }
                            Some(row) => {
                                let rpos = pt.table.layout.get_id(row, 0);
                                if rpos < pos {
                                    heads[i] = r.next_row(dev)?.map(|x| x.to_vec());
                                } else if rpos == pos {
                                    current[i] = heads[i].clone();
                                    break;
                                } else {
                                    all_present = false;
                                    break;
                                }
                            }
                        }
                    }
                    if !all_present {
                        break;
                    }
                }
                // Root-side checks.
                let mut keep = all_present;
                if keep {
                    for (scan, pred) in root_recheck.iter_mut() {
                        let v = scan.value_at(dev, root_id)?;
                        if !pred.matches(&v) {
                            keep = false;
                        }
                    }
                }
                let root_idx = match (&root_vis_map, keep) {
                    (Some(map), true) => {
                        let idx = map.get(&root_id).copied();
                        if root_filter_pending && idx.is_none() {
                            keep = false;
                        }
                        idx
                    }
                    _ => None,
                };
                if keep {
                    let mut out_row = Vec::with_capacity(a.output.len());
                    for (t, cname) in &a.output {
                        if *t == root {
                            if cname == "id" {
                                out_row.push(Value::Int(root_id as i64));
                            } else if let Some(i) = root_proj.vis.iter().position(|c| c == cname) {
                                let shipment = root_shipment.as_ref().expect("vis projected");
                                let idx = root_idx.ok_or_else(|| {
                                    ExecError::Query(format!(
                                        "root id {root_id} missing from visible shipment"
                                    ))
                                })?;
                                out_row.push(shipment.columns[i].1[idx].clone());
                            } else {
                                let (_, scan) = root_hid_scans
                                    .iter_mut()
                                    .find(|(n, _)| n == cname)
                                    .expect("analyzed hidden projection");
                                out_row.push(scan.value_at(dev, root_id)?);
                            }
                        } else {
                            let i = table_readers
                                .iter()
                                .position(|(tt, _, _)| tt == t)
                                .expect("participating table");
                            let (_, pt, _) = &table_readers[i];
                            let row = current[i].as_ref().expect("present");
                            if cname == "id" {
                                out_row.push(Value::Int(pt.table.layout.get_id(row, 1) as i64));
                            } else {
                                let (field, ty) = pt.field_of(cname).expect("analyzed projection");
                                out_row.push(Value::decode(&ty, pt.table.layout.field(row, field)));
                            }
                        }
                    }
                    rows.push(out_row);
                }
                pos += 1;
            }
            Ok(())
        })
    })?;

    Ok(ResultSet { columns, rows })
}

/// Figure 12's Brute-Force baseline: load the QEPSJ result into RAM chunk
/// by chunk and random-access every projected attribute.
fn brute_force(
    ctx: &mut ExecCtx<'_>,
    a: &Analyzed,
    sj: &SjOutcome,
    root_col: FlashTable,
    participants: &[TableId],
    id_cols: &[FlashTable],
) -> Result<ResultSet> {
    let root = ctx.cat.schema.root();
    let ram = ctx.ram();
    let page_size = ctx.page_size();

    // Ship ids+values for every table with a visible side (one shipment).
    let empty = TableProjection::default();
    let mut shipments: HashMap<TableId, (ghostdb_untrusted::VisShipment, HashMap<Id, usize>)> =
        HashMap::new();
    let mut all_tables: Vec<TableId> = participants.to_vec();
    all_tables.push(root);
    for t in &all_tables {
        let tproj = a
            .projections
            .iter()
            .find(|(tt, _)| tt == t)
            .map(|(_, p)| p)
            .unwrap_or(&empty);
        let preds = a.vis_preds_of(*t);
        let pending = sj.approx_vis.contains(t) || sj.deferred_vis.contains(t);
        if !tproj.vis.is_empty() || (pending && !preds.is_empty()) {
            let s = ctx.vis(*t, preds, &tproj.vis)?;
            let map = s.ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
            shipments.insert(*t, (s, map));
        }
    }
    // Pending filters whose tables shipped nothing above: predicate without
    // projections — prefetch those shipments too, so the scan below runs
    // entirely below the channel. Eager shipment is what keeps serial and
    // intra-parallel comm identical, and it charges Vis per *plan* rather
    // than per consumed row: on an empty QEPSJ result the old lazy path
    // skipped these requests, so comm there now includes shipments the
    // plan declares even though the scan never reads them.
    for t in sj.approx_vis.iter().chain(&sj.deferred_vis) {
        if !shipments.contains_key(t) {
            let preds = a.vis_preds_of(*t);
            let s = ctx.vis(*t, preds, &[])?;
            let map = s.ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
            shipments.insert(*t, (s, map));
        }
    }

    let mut root_reader = root_col.reader(&ram, page_size)?;
    let mut col_readers = id_cols
        .iter()
        .map(|c| {
            c.reader(&ram, page_size)
                .map_err(crate::error::ExecError::from)
        })
        .collect::<Result<Vec<_>>>()?;

    // RAM chunk for "loading the result of QEPSJ in RAM": everything left.
    let chunk_buffers = ctx.ram().available();
    let _region = if chunk_buffers > 0 {
        Some(ctx.ram().alloc_region(chunk_buffers)?)
    } else {
        None
    };

    let columns: Vec<String> = a
        .output
        .iter()
        .map(|(t, c)| format!("{}.{}", ctx.cat.schema.def(*t).name, c))
        .collect();
    let mut rows = Vec::new();

    let hidden = ctx.cat.hidden;
    let schema = ctx.cat.schema;
    ctx.track(OpKind::BruteForce, |ctx| {
        ctx.lane.with_flash(|dev| {
            while let Some(cell) = root_reader.next_row(dev)? {
                let root_id = u32::from_le_bytes(cell[..4].try_into().expect("id"));
                let mut ids: HashMap<TableId, Id> = HashMap::new();
                ids.insert(root, root_id);
                for (t, r) in participants.iter().zip(col_readers.iter_mut()) {
                    let cell = r
                        .next_row(dev)?
                        .ok_or_else(|| ExecError::Query("column underrun".into()))?;
                    ids.insert(*t, u32::from_le_bytes(cell[..4].try_into().expect("id")));
                }
                // Filters: pending visible selections + exact re-checks, all
                // by random access.
                let mut keep = true;
                for t in sj.approx_vis.iter().chain(&sj.deferred_vis) {
                    let (_, map) = shipments.get(t).expect("prefetched above");
                    if !map.contains_key(&ids[t]) {
                        keep = false;
                    }
                }
                if keep {
                    for (t, pred) in &sj.recheck {
                        let col = hidden[*t].column(&pred.column)?.clone();
                        let v = col.get(dev, ids[t])?;
                        if !pred.matches(&v) {
                            keep = false;
                        }
                    }
                }
                if !keep {
                    continue;
                }
                let mut out_row = Vec::with_capacity(a.output.len());
                for (t, cname) in &a.output {
                    let id = ids[t];
                    if cname == "id" {
                        out_row.push(Value::Int(id as i64));
                        continue;
                    }
                    let def = schema.def(*t);
                    let col = def.column(cname).expect("analyzed");
                    match col.visibility {
                        ghostdb_storage::Visibility::Visible => {
                            let (shipment, map) =
                                shipments.get(t).expect("visible projection shipped");
                            let idx = *map.get(&id).ok_or_else(|| {
                                ExecError::Query(format!("id {id} missing from shipment"))
                            })?;
                            let c = shipment
                                .columns
                                .iter()
                                .position(|(n, _)| n == cname)
                                .expect("projected column shipped");
                            out_row.push(shipment.columns[c].1[idx].clone());
                        }
                        ghostdb_storage::Visibility::Hidden => {
                            // Random flash access — the whole point of the
                            // baseline's cost.
                            let hcol = hidden[*t].column(cname)?.clone();
                            out_row.push(hcol.get(dev, id)?);
                        }
                    }
                }
                rows.push(out_row);
            }
            Ok(())
        })
    })?;

    Ok(ResultSet { columns, rows })
}
