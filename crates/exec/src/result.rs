//! Query results, rendered on the token's secure display.
//!
//! Result rows never traverse the channel in the clear: the paper's
//! deployment renders them on the key's own screen, a trusted companion
//! display, or a secured remote socket. In the simulator they are host
//! values owned by the token side; the leak auditor checks the channel
//! transcript stayed clean.

use ghostdb_storage::Value;
use std::fmt;

/// A query result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Qualified column names (`"T1.v1"`).
    pub columns: Vec<String>,
    /// Rows of decoded values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sort rows lexicographically (stable display/compare order for tests
    /// and examples; GhostDB's natural order is root-id order).
    pub fn sorted(mut self) -> Self {
        self.rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b) {
                match x.cmp_value(y) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        self
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sort() {
        let rs = ResultSet {
            columns: vec!["T0.id".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        let sorted = rs.clone().sorted();
        assert_eq!(sorted.rows[0], vec![Value::Int(1)]);
        let text = format!("{rs}");
        assert!(text.contains("T0.id"));
        assert!(text.contains("(2 rows)"));
    }
}
