//! The assembled GhostDB database instance and its load path.
//!
//! "Burning the key" (§2.1): the database owner vertically partitions each
//! table, downloads the hidden partition plus all index structures onto the
//! token, and hands the visible partition to the PC. [`Database::assemble`]
//! is that process; every hidden byte reaches flash through accounted
//! sequential writes, and query measurements snapshot the counters
//! afterwards so load cost never pollutes them.

use crate::error::ExecError;
use crate::Result;
use ghostdb_flash::SegmentAllocator;
use ghostdb_index::{
    ClimbingIndex, ClimbingSpec, FkData, IndexBuilder, LevelSpec, SubtreeKeyTable,
};
use ghostdb_storage::{
    ColumnType, HiddenColumn, HiddenImage, Id, SchemaTree, TableId, Value, Visibility,
};
use ghostdb_token::{SecureToken, TokenConfig};
use ghostdb_untrusted::{UntrustedHost, VisibleColumn, VisibleStore, VisibleTable};
use std::collections::HashMap;

/// One column's load specification.
pub struct ColumnLoad {
    /// Column name (must exist in the schema with matching visibility).
    pub name: String,
    /// Deterministic value generator (row id → value).
    pub gen: Box<dyn Fn(Id) -> Value>,
    /// Build a climbing index on this column (hidden columns only).
    pub index: bool,
    /// Whether order-keys are injective for this column's data. `None`
    /// lets the loader verify (hashes every distinct value: fine for small
    /// loads, pass a hint for big ones).
    pub exact: Option<bool>,
}

/// One table's load specification.
pub struct TableLoad {
    /// Table name.
    pub table: String,
    /// Cardinality.
    pub rows: u64,
    /// Foreign-key arrays, one per fk column: `(column, child ids)`.
    pub fks: Vec<(String, Vec<Id>)>,
    /// Non-key columns.
    pub columns: Vec<ColumnLoad>,
}

/// A loaded GhostDB database. Loaders (`ghostdb-datagen`, `ghostdb-core`)
/// populate this; the executor runs queries against it.
#[derive(Debug)]
pub struct Database {
    /// The tree-structured schema.
    pub schema: SchemaTree,
    /// Cardinality per table.
    pub rows: Vec<u64>,
    /// Hidden image per table (columnar, id-sorted).
    pub hidden: Vec<HiddenImage>,
    /// SKT per non-leaf table.
    pub skts: Vec<Option<SubtreeKeyTable>>,
    /// Climbing indexes, keyed by (table, column); the primary-key index of
    /// a table is keyed by `(table, "id")` with ancestor levels only.
    pub cis: HashMap<(TableId, String), ClimbingIndex>,
    /// The secure USB key.
    pub token: SecureToken,
    /// Logical-space allocator of the token's flash (temporaries draw from
    /// it during query execution).
    pub alloc: SegmentAllocator,
    /// The untrusted PC.
    pub untrusted: UntrustedHost,
}

impl Database {
    /// Assemble a database on a fresh token.
    pub fn assemble(
        schema: SchemaTree,
        config: &TokenConfig,
        loads: Vec<TableLoad>,
    ) -> Result<Database> {
        let mut token = SecureToken::new(config);
        // Chip-striped allocation: on a multi-chip token, base segments
        // rotate across chips so scans fan out over independent channels.
        // Placement stays a pure function of the build's alloc sequence
        // (chip = deterministic rotation), never of hidden data.
        let mut alloc =
            SegmentAllocator::with_chips(token.flash.logical_pages(), token.flash.chip_count());
        let mut store = VisibleStore::new(schema.len());
        let mut hidden: Vec<HiddenImage> =
            (0..schema.len()).map(|_| HiddenImage::default()).collect();
        let mut rows = vec![0u64; schema.len()];
        let mut fk_data = FkData::default();
        // (table, column, keys, exact) for climbing-index builds.
        let mut pending_cis: Vec<(TableId, String, Vec<u64>, bool)> = Vec::new();

        for load in &loads {
            let t = schema.table_id(&load.table)?;
            rows[t] = load.rows;
            let def = schema.def(t).clone();
            let mut vis_table = VisibleTable {
                columns: Vec::new(),
                rows: load.rows,
            };
            let mut image = HiddenImage {
                columns: Vec::new(),
                rows: load.rows,
            };
            for col in &load.columns {
                let decl = def.column(&col.name).ok_or_else(|| {
                    ExecError::Query(format!("unknown column {}.{}", def.name, col.name))
                })?;
                match decl.visibility {
                    Visibility::Visible => {
                        vis_table.columns.push(VisibleColumn::from_gen(
                            &col.name,
                            decl.ty,
                            load.rows,
                            |r| (col.gen)(r),
                        )?);
                    }
                    Visibility::Hidden => {
                        image.columns.push(HiddenColumn::bulk_load_with(
                            &mut token.flash,
                            &mut alloc,
                            &col.name,
                            decl.ty,
                            load.rows,
                            |r| (col.gen)(r),
                        )?);
                        if col.index {
                            let mut keys = Vec::with_capacity(load.rows as usize);
                            for r in 0..load.rows {
                                keys.push((col.gen)(r as Id).order_key());
                            }
                            let exact = match col.exact {
                                Some(e) => e,
                                None => verify_exact(&decl.ty, load.rows, |r| (col.gen)(r)),
                            };
                            pending_cis.push((t, col.name.clone(), keys, exact));
                        }
                    }
                }
            }
            for (fk_col, ids) in &load.fks {
                if ids.len() as u64 != load.rows {
                    return Err(ExecError::Query(format!(
                        "fk array {}.{} has {} entries for {} rows",
                        def.name,
                        fk_col,
                        ids.len(),
                        load.rows
                    )));
                }
                let fk = def
                    .foreign_keys
                    .iter()
                    .find(|f| f.column == *fk_col)
                    .ok_or_else(|| {
                        ExecError::Query(format!("{}.{} is not a foreign key", def.name, fk_col))
                    })?;
                let child = schema.table_id(&fk.references)?;
                // Foreign keys are hidden columns: store them in the image
                // (they are raw data, counted in DBSize) and register for
                // index builds.
                image.columns.push(HiddenColumn::bulk_load_with(
                    &mut token.flash,
                    &mut alloc,
                    fk_col,
                    ColumnType::int(),
                    load.rows,
                    |r| Value::Int(ids[r as usize] as i64),
                )?);
                fk_data.insert(t, child, ids.clone());
            }
            store.set_table(t, vis_table);
            hidden[t] = image;
        }

        // Index construction.
        let builder = IndexBuilder::new(schema.clone(), rows.clone(), fk_data);
        let mut skts: Vec<Option<SubtreeKeyTable>> = vec![None; schema.len()];
        let mut cis = HashMap::new();
        for t in schema.tables() {
            if !schema.children(t).is_empty() {
                skts[t] = Some(builder.build_skt(&mut token.flash, &mut alloc, t)?);
            }
            if t != schema.root() {
                // Primary-key climbing index: keys are the ids themselves.
                let keys: Vec<u64> = (0..rows[t]).collect();
                let ci = builder.build_climbing(
                    &mut token.flash,
                    &mut alloc,
                    ClimbingSpec {
                        table: t,
                        column: "id",
                        keys: &keys,
                        levels: LevelSpec::AncestorsOnly,
                        exact: true,
                    },
                )?;
                cis.insert((t, "id".to_string()), ci);
            }
        }
        for (t, name, keys, exact) in pending_cis {
            let ci = builder.build_climbing(
                &mut token.flash,
                &mut alloc,
                ClimbingSpec {
                    table: t,
                    column: &name,
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact,
                },
            )?;
            cis.insert((t, name), ci);
        }

        Ok(Database {
            schema,
            rows,
            hidden,
            skts,
            cis,
            token,
            alloc,
            untrusted: UntrustedHost::new(store),
        })
    }

    /// Table name helper.
    pub fn table_name(&self, t: TableId) -> &str {
        &self.schema.def(t).name
    }

    /// The climbing index on `(t, column)`, if built.
    pub fn index(&self, t: TableId, column: &str) -> Option<&ClimbingIndex> {
        self.cis.get(&(t, column.to_string()))
    }

    /// Reset per-query channel state: transcript and byte counters. Flash
    /// stats are monotone; the executor snapshots them instead. The
    /// host-observable trace is deliberately NOT reset here — its reset
    /// belongs to the session (the executor for solo runs, the serving
    /// session otherwise), so concurrent sessions cannot clobber each
    /// other's captured traces.
    pub fn begin_query(&mut self) {
        self.token.channel.reset();
    }
}

impl std::fmt::Debug for ColumnLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnLoad")
            .field("name", &self.name)
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

/// Check key-encoding injectivity by hashing every distinct value.
fn verify_exact(ty: &ColumnType, rows: u64, gen: impl Fn(Id) -> Value) -> bool {
    use std::collections::HashSet;
    let mut values: HashSet<Vec<u8>> = HashSet::new();
    let mut keys: HashSet<u64> = HashSet::new();
    let mut buf = vec![0u8; ty.width()];
    for r in 0..rows {
        let v = gen(r as Id);
        if v.encode(ty, &mut buf).is_err() {
            return false;
        }
        values.insert(buf.clone());
        keys.insert(v.order_key());
    }
    values.len() == keys.len()
}
