//! # ghostdb-exec
//!
//! GhostDB query execution on the secure token (paper §3–§5): RAM-frugal
//! physical operators, the Pre/Post/Cross filtering strategies, and the
//! projection algorithms, all running against the simulated flash device,
//! the 64 KB RAM arena and the byte-accurate channel.
//!
//! The operator algebra follows §3.3 exactly:
//!
//! * `Vis(Q, T, π)` — sorted visible ids (+ values) shipped by the PC
//!   ([`ghostdb_untrusted`]);
//! * `CI(I, P, π)` — climbing-index lookups delivering per-entry sorted ID
//!   sublists for any target level ([`ci_ops`]);
//! * `Merge(∩{∪{id}})` — CNF evaluation over sorted (sub)lists with one RAM
//!   buffer per open sublist and a *reduction phase* when the sublists
//!   outnumber the buffers ([`merge`]);
//! * `SJoin` — key semi-join against a Subtree Key Table ([`sjoin`]);
//! * `BuildBF` / `ProbeBF` — Bloom post-filtering ([`bloom_ops`]);
//! * `MJoin` + final `Join` — the Figure 5 Project algorithm ([`project`]).
//!
//! [`executor::Executor`] assembles them into the Figure 6 global QEP under
//! a chosen [`strategy::VisStrategy`] and [`project::ProjectAlgo`], with
//! per-operator simulated-time attribution in [`report::ExecReport`]
//! (Figures 8–16) and an automatic, selectivity-driven strategy picker in
//! [`optimizer`] (the cost-based optimizer the paper lists as future work).

pub mod bloom_ops;
pub mod ci_ops;
pub mod ctx;
pub mod database;
pub mod error;
pub mod executor;
pub mod merge;
pub mod optimizer;
pub mod parallel;
pub mod project;
pub mod query;
pub mod report;
pub mod result;
pub mod serve;
pub mod sjoin;
pub mod source;
pub mod strategy;
#[doc(hidden)]
pub mod testkit;

pub use ci_ops::CiPrefetch;
pub use ctx::{CatalogCtx, CostScope, DeviceLane, ExecCtx, SpillPolicy};
pub use database::Database;
pub use error::ExecError;
pub use executor::{ExecOptions, Executor};
pub use parallel::run_many;
pub use project::ProjectAlgo;
pub use query::SpjQuery;
pub use report::{ExecReport, OpKind};
pub use result::ResultSet;
pub use serve::{BatchStats, GhostDbServer, QueryOutcome, ServeConfig, ServeError, Session};
pub use source::SharedIds;
pub use strategy::VisStrategy;

// The host-observability surface, re-exported so facade crates (and tests)
// can audit what the untrusted side saw without a direct dependency.
pub use ghostdb_untrusted::{HostOp, HostTrace, HostTraceEvent, PadMode};

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, ExecError>;
