//! Per-operator simulated-time attribution.
//!
//! Figures 8–14 plot total execution time; Figures 15–16 decompose it into
//! the dominant operators (Merge, SJoin, Store, Project) excluding
//! communication. The executor attributes every flash I/O to the operator
//! that issued it, splitting read-side and write-side costs so that
//! materialisation ("Store") is visible exactly as in the paper.

use ghostdb_flash::{FlashStats, FlashTiming, SimDuration};
use serde::{Deserialize, Serialize};

/// The operators the executor attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Visible shipments (channel time lives in `comm`, flash time ~0).
    Vis,
    /// Climbing-index lookups (B+-tree descents + sublist descriptor reads).
    Ci,
    /// Sorted-list CNF evaluation, including reduction-phase I/O.
    Merge,
    /// Key semi-join reads against an SKT.
    SJoin,
    /// Materialisation writes of intermediate results.
    Store,
    /// Bloom build/probe during select-join processing.
    Bloom,
    /// Vertical partitioning of the QEPSJ result (Figure 5, line 1).
    Partition,
    /// Bloom build/probe during projection (Figure 5, lines 3–4).
    ProjBloom,
    /// The MJoin of Figure 5 (line 6), including its multi-pass I/O.
    MJoin,
    /// The final position-merge join (Figure 5, line 7).
    FinalJoin,
    /// The Brute-Force projection baseline of Figure 12.
    BruteForce,
}

impl OpKind {
    /// All kinds, for iteration.
    pub const ALL: [OpKind; 11] = [
        OpKind::Vis,
        OpKind::Ci,
        OpKind::Merge,
        OpKind::SJoin,
        OpKind::Store,
        OpKind::Bloom,
        OpKind::Partition,
        OpKind::ProjBloom,
        OpKind::MJoin,
        OpKind::FinalJoin,
        OpKind::BruteForce,
    ];

    pub(crate) fn idx(self) -> usize {
        OpKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("known kind")
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Vis => "Vis",
            OpKind::Ci => "CI",
            OpKind::Merge => "Merge",
            OpKind::SJoin => "SJoin",
            OpKind::Store => "Store",
            OpKind::Bloom => "Bloom",
            OpKind::Partition => "Partition",
            OpKind::ProjBloom => "ProjBloom",
            OpKind::MJoin => "MJoin",
            OpKind::FinalJoin => "FinalJoin",
            OpKind::BruteForce => "BruteForce",
        }
    }
}

/// Execution report of one query. `PartialEq` compares every field
/// bit-for-bit — the equivalence suites (`intra_equivalence`,
/// `serve_equivalence`) rely on this to hold optimized schedules to the
/// solo/serial observation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    op_ns: Vec<u128>,
    /// Wire time (bytes / throughput).
    pub comm: SimDuration,
    /// Bytes shipped PC → token for this query.
    pub bytes_to_secure: u64,
    /// Rows in the final result.
    pub result_rows: u64,
    /// Aggregate I/O of the query.
    pub io: FlashStats,
    /// Peak concurrent RAM buffers observed (must never exceed the arena).
    pub peak_ram_buffers: usize,
}

impl ExecReport {
    /// Empty report.
    pub fn new() -> Self {
        ExecReport {
            op_ns: vec![0; OpKind::ALL.len()],
            ..Default::default()
        }
    }

    /// Attribute simulated time to an operator.
    pub fn add(&mut self, op: OpKind, d: SimDuration) {
        if self.op_ns.is_empty() {
            self.op_ns = vec![0; OpKind::ALL.len()];
        }
        self.op_ns[op.idx()] += d.as_ns();
    }

    /// Time attributed to an operator.
    pub fn op(&self, op: OpKind) -> SimDuration {
        SimDuration::from_ns(self.op_ns.get(op.idx()).copied().unwrap_or(0))
    }

    /// Total flash time (all operators, communication excluded) — the
    /// quantity decomposed in Figures 15–16.
    pub fn flash_total(&self) -> SimDuration {
        SimDuration::from_ns(self.op_ns.iter().sum())
    }

    /// Total execution time including communication (Figures 8–14).
    pub fn total(&self) -> SimDuration {
        self.flash_total() + self.comm
    }

    /// The Figure 15/16 buckets: (Merge, SJoin, Store, Project).
    /// "Project" covers the whole QEPP: partitioning, projection-time Bloom
    /// filters, MJoin, the final join, and the Brute-Force baseline.
    pub fn fig15_buckets(&self) -> [(&'static str, SimDuration); 4] {
        let project = self.op(OpKind::Partition)
            + self.op(OpKind::ProjBloom)
            + self.op(OpKind::MJoin)
            + self.op(OpKind::FinalJoin)
            + self.op(OpKind::BruteForce);
        [
            (
                "Merge",
                self.op(OpKind::Merge) + self.op(OpKind::Ci) + self.op(OpKind::Bloom),
            ),
            ("Sjoin", self.op(OpKind::SJoin)),
            ("Store", self.op(OpKind::Store)),
            ("Project", project),
        ]
    }

    /// Fold another report into this one (used by sweeps).
    pub fn merge_from(&mut self, other: &ExecReport) {
        if self.op_ns.is_empty() {
            self.op_ns = vec![0; OpKind::ALL.len()];
        }
        for (a, b) in self.op_ns.iter_mut().zip(&other.op_ns) {
            *a += b;
        }
        self.comm += other.comm;
        self.bytes_to_secure += other.bytes_to_secure;
        self.result_rows += other.result_rows;
        self.peak_ram_buffers = self.peak_ram_buffers.max(other.peak_ram_buffers);
    }
}

/// Split a flash-stats delta into its read-side and write-side simulated
/// times, so an operator's scan cost and its output-materialisation cost
/// can be attributed separately (SJoin vs Store in Figure 15).
pub fn split_rw(
    d: &FlashStats,
    timing: &FlashTiming,
    page_size: usize,
) -> (SimDuration, SimDuration) {
    let read_ns = d.pages_read as u128 * timing.read_page_us as u128 * 1_000
        + d.bytes_to_ram as u128 * timing.transfer_ns_per_byte as u128
        + d.gc_pages_read as u128 * timing.read_cost_ns(page_size);
    let write_ns = d.pages_written as u128 * timing.program_page_us as u128 * 1_000
        + d.bytes_from_ram as u128 * timing.transfer_ns_per_byte as u128
        + d.gc_pages_written as u128 * timing.write_cost_ns(page_size)
        + d.blocks_erased as u128 * timing.erase_cost_ns();
    (
        SimDuration::from_ns(read_ns),
        SimDuration::from_ns(write_ns),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_and_totals() {
        let mut r = ExecReport::new();
        r.add(OpKind::Merge, SimDuration::from_us(100));
        r.add(OpKind::SJoin, SimDuration::from_us(50));
        r.add(OpKind::Merge, SimDuration::from_us(10));
        r.comm = SimDuration::from_us(5);
        assert_eq!(r.op(OpKind::Merge), SimDuration::from_us(110));
        assert_eq!(r.flash_total(), SimDuration::from_us(160));
        assert_eq!(r.total(), SimDuration::from_us(165));
    }

    #[test]
    fn buckets_cover_projection_ops() {
        let mut r = ExecReport::new();
        r.add(OpKind::MJoin, SimDuration::from_us(30));
        r.add(OpKind::FinalJoin, SimDuration::from_us(20));
        r.add(OpKind::Partition, SimDuration::from_us(10));
        let buckets = r.fig15_buckets();
        assert_eq!(buckets[3].0, "Project");
        assert_eq!(buckets[3].1, SimDuration::from_us(60));
    }

    #[test]
    fn split_rw_partitions_the_cost_model() {
        let t = FlashTiming::default();
        let d = FlashStats {
            pages_read: 2,
            pages_written: 1,
            bytes_to_ram: 1000,
            bytes_from_ram: 2048,
            ..Default::default()
        };
        let (r, w) = split_rw(&d, &t, 2048);
        assert_eq!(r + w, d.elapsed(&t, 2048));
        assert_eq!(r.as_ns(), 2 * 25_000 + 1000 * 50);
    }

    #[test]
    fn merge_from_accumulates() {
        let mut a = ExecReport::new();
        a.add(OpKind::Ci, SimDuration::from_us(1));
        let mut b = ExecReport::new();
        b.add(OpKind::Ci, SimDuration::from_us(2));
        b.result_rows = 7;
        a.merge_from(&b);
        assert_eq!(a.op(OpKind::Ci), SimDuration::from_us(3));
        assert_eq!(a.result_rows, 7);
    }
}
