//! The executor: assembles the Figure 6 global QEP and runs it.

use crate::ctx::{ExecCtx, SpillPolicy};
use crate::database::Database;
use crate::error::ExecError;
use crate::optimizer;
use crate::project::{self, ProjectAlgo};
use crate::query::{analyze, SpjQuery};
use crate::report::ExecReport;
use crate::result::ResultSet;
use crate::strategy::{execute_sj, VisDecision};
use crate::Result;
use ghostdb_storage::TableId;

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Per-table pinned decisions (Mixed plans, §3.3); unlisted tables fall
    /// to `forced_strategy` or the optimizer.
    pub strategies: Vec<VisDecision>,
    /// Apply one strategy to every visible selection (the figures sweep a
    /// single visible predicate).
    pub forced_strategy: Option<crate::strategy::VisStrategy>,
    /// Projection algorithm (default: the full Project algorithm).
    pub project: Option<ProjectAlgo>,
    /// Intra-query worker lanes for operator fan-out (1 = serial; results
    /// and per-operator attribution are bit-identical at any value).
    pub intra_threads: usize,
    /// Reduction-phase spill policy (`merge::reduce`).
    pub spill_policy: SpillPolicy,
    /// Pad every `Vis` shipment to a power-of-two row bucket, quantising
    /// the wire volume a snooper observes (results are unchanged; the
    /// filler bytes are charged to the channel, so reports carry the
    /// padding overhead). See `SECURITY.md`.
    pub padded: bool,
    /// Climbing-index read-ahead window (pages). `0` (the default) keeps
    /// every traversal strictly serial; `W ≥ 2` lets range scans and
    /// ascending probe runs issue up to `W` leaf pages as one vectored
    /// flash read. Counters, results and the host trace are bit-identical
    /// at any value — only the side-band channel clock
    /// (`FlashDevice::overlap_elapsed`) improves on multi-chip devices.
    pub read_ahead: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            strategies: Vec::new(),
            forced_strategy: None,
            project: None,
            intra_threads: 1,
            spill_policy: SpillPolicy::default(),
            padded: false,
            read_ahead: 0,
        }
    }
}

impl ExecOptions {
    /// Fully automatic execution (alias of [`ExecOptions::new`]).
    pub fn auto() -> Self {
        ExecOptions::default()
    }

    /// Start a builder chain: `ExecOptions::new().strategy(s).padded(true)`.
    /// The same builder vocabulary is exposed (and threaded through) by the
    /// facade's `QueryOptions`, so there is exactly one way to spell an
    /// execution knob at every layer.
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// Force one strategy for every visible selection.
    pub fn strategy(mut self, strategy: crate::strategy::VisStrategy) -> Self {
        self.forced_strategy = Some(strategy);
        self
    }

    /// Pin the decision of one table (Mixed plans, §3.3).
    pub fn pin(mut self, decision: VisDecision) -> Self {
        self.strategies.push(decision);
        self
    }

    /// Projection algorithm override.
    pub fn project(mut self, algo: ProjectAlgo) -> Self {
        self.project = Some(algo);
        self
    }

    /// Intra-query worker budget.
    pub fn intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads;
        self
    }

    /// Reduction-phase spill policy.
    pub fn spill_policy(mut self, policy: SpillPolicy) -> Self {
        self.spill_policy = policy;
        self
    }

    /// Volume-padded `Vis` shipments (power-of-two row buckets).
    pub fn padded(mut self, padded: bool) -> Self {
        self.padded = padded;
        self
    }

    /// Climbing-index read-ahead window in pages (`0` = serial).
    pub fn read_ahead(mut self, window: usize) -> Self {
        self.read_ahead = window;
        self
    }

    /// Reject invalid combinations before any execution state is touched.
    /// Called by the executor, the facade and the server alike, so a bad
    /// build fails identically everywhere.
    pub fn validate(&self) -> Result<()> {
        if self.intra_threads == 0 {
            return Err(ExecError::Query("intra_threads must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// The query executor.
pub struct Executor;

impl Executor {
    /// Run a query and return its result with the execution report.
    pub fn run(
        db: &mut Database,
        q: &SpjQuery,
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecReport)> {
        Self::run_prefetched(db, q, opts, None)
    }

    /// [`Executor::run`] with an optional cross-query prefetch bank (the
    /// serve-mode batch scheduler's shared climbing-index traversals).
    /// With `None` this *is* solo execution; with a bank, probe hits are
    /// billed as-if-solo (`DeviceLane::charge`), so results, every
    /// `ExecReport` field and the host transcript are bit-identical either
    /// way (`tests/serve_equivalence.rs`).
    pub fn run_prefetched<'e>(
        db: &'e mut Database,
        q: &SpjQuery,
        opts: &ExecOptions,
        prefetch: Option<&'e crate::ci_ops::CiPrefetch>,
    ) -> Result<(ResultSet, ExecReport)> {
        opts.validate()?;
        db.begin_query();
        // The host-observable trace resets here — with the executor acting
        // as a session of one — not in `begin_query`: serve-mode sessions
        // snapshot their traces per query, so one session's next query
        // must not clobber what another session already observed.
        db.untrusted.reset_trace();
        let mut ctx = ExecCtx::new(db);
        ctx.intra = opts.intra_threads;
        ctx.spill = opts.spill_policy;
        ctx.padded = opts.padded;
        ctx.read_ahead = opts.read_ahead;
        ctx.prefetch = prefetch;
        Self::run_body(&mut ctx, q, opts)
    }

    /// The execution body, over an already-assembled context. Shared by
    /// the solo path above (a context over the token's own resources after
    /// a channel/trace reset) and serve-mode worker executions (a context
    /// over per-query isolated resources — forked flash handle, fresh
    /// arena and channel, forked host — which start in exactly the state a
    /// reset leaves behind, so the two paths observe identical worlds).
    pub(crate) fn run_body(
        ctx: &mut ExecCtx<'_>,
        q: &SpjQuery,
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecReport)> {
        let a = analyze(ctx.cat.schema, q)?;

        // The query travels to the token in the clear (it is the one thing
        // an observer legitimately learns), and the token acknowledges.
        let untrusted = ctx.cat.untrusted;
        let channel = ctx.channel()?;
        untrusted.submit_query(channel, &q.text);
        channel.send_to_untrusted("query-ack", &[1]);

        // Strategy decisions: pinned tables first, optimizer for the rest.
        let auto = optimizer::decide(ctx, &a)?;
        let mut decisions: Vec<VisDecision> = Vec::new();
        for d in &auto {
            let pinned = opts.strategies.iter().find(|p| p.table == d.table);
            let mut chosen = pinned.copied().unwrap_or(*d);
            if let Some(forced) = opts.forced_strategy {
                chosen.strategy = forced;
            }
            if let Some(p) = pinned {
                chosen.strategy = p.strategy;
            }
            decisions.push(chosen);
        }

        let root = ctx.cat.schema.root();
        let proj_tables: Vec<TableId> = a
            .projections
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| *t != root)
            .collect();

        let sj = execute_sj(ctx, &a, &decisions, &proj_tables)?;
        let algo = opts.project.unwrap_or(ProjectAlgo::Project);
        let result = project::execute(ctx, &a, sj, algo)?;

        ctx.free_temps()?;
        let mut report = ctx.finish_report();
        report.result_rows = result.rows.len() as u64;
        Ok((result, report))
    }
}
