//! The executor: assembles the Figure 6 global QEP and runs it.

use crate::ctx::{ExecCtx, SpillPolicy};
use crate::database::Database;
use crate::error::ExecError;
use crate::optimizer;
use crate::project::{self, ProjectAlgo};
use crate::query::{analyze, SpjQuery};
use crate::report::ExecReport;
use crate::result::ResultSet;
use crate::strategy::{execute_sj, VisDecision};
use crate::Result;
use ghostdb_storage::TableId;

/// Execution options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Per-table pinned decisions (Mixed plans, §3.3); unlisted tables fall
    /// to `forced_strategy` or the optimizer.
    pub strategies: Vec<VisDecision>,
    /// Apply one strategy to every visible selection (the figures sweep a
    /// single visible predicate).
    pub forced_strategy: Option<crate::strategy::VisStrategy>,
    /// Projection algorithm (default: the full Project algorithm).
    pub project: Option<ProjectAlgo>,
    /// Intra-query worker lanes for operator fan-out (1 = serial; results
    /// and per-operator attribution are bit-identical at any value).
    pub intra_threads: usize,
    /// Reduction-phase spill policy (`merge::reduce`).
    pub spill_policy: SpillPolicy,
    /// Pad every `Vis` shipment to a power-of-two row bucket, quantising
    /// the wire volume a snooper observes (results are unchanged; the
    /// filler bytes are charged to the channel, so reports carry the
    /// padding overhead). See `SECURITY.md`.
    pub padded: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            strategies: Vec::new(),
            forced_strategy: None,
            project: None,
            intra_threads: 1,
            spill_policy: SpillPolicy::default(),
            padded: false,
        }
    }
}

impl ExecOptions {
    /// Fully automatic execution.
    pub fn auto() -> Self {
        ExecOptions::default()
    }

    /// Force one strategy for every visible selection.
    pub fn with_strategy(strategy: crate::strategy::VisStrategy) -> Self {
        ExecOptions {
            forced_strategy: Some(strategy),
            ..Default::default()
        }
    }

    /// Projection algorithm override.
    pub fn with_project(mut self, algo: ProjectAlgo) -> Self {
        self.project = Some(algo);
        self
    }

    /// Intra-query worker budget.
    pub fn with_intra_threads(mut self, threads: usize) -> Self {
        self.intra_threads = threads;
        self
    }

    /// Reduction-phase spill policy.
    pub fn with_spill_policy(mut self, policy: SpillPolicy) -> Self {
        self.spill_policy = policy;
        self
    }

    /// Volume-padded `Vis` shipments (power-of-two row buckets).
    pub fn with_padded(mut self, padded: bool) -> Self {
        self.padded = padded;
        self
    }
}

/// The query executor.
pub struct Executor;

impl Executor {
    /// Run a query and return its result with the execution report.
    pub fn run(
        db: &mut Database,
        q: &SpjQuery,
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecReport)> {
        if opts.intra_threads == 0 {
            return Err(ExecError::Query("intra_threads must be ≥ 1".into()));
        }
        db.begin_query();
        let a = analyze(&db.schema, q)?;
        let mut ctx = ExecCtx::new(db);
        ctx.intra = opts.intra_threads;
        ctx.spill = opts.spill_policy;
        ctx.padded = opts.padded;

        // The query travels to the token in the clear (it is the one thing
        // an observer legitimately learns), and the token acknowledges.
        let untrusted = ctx.cat.untrusted;
        let channel = ctx.channel()?;
        untrusted.submit_query(channel, &q.text);
        channel.send_to_untrusted("query-ack", &[1]);

        // Strategy decisions: pinned tables first, optimizer for the rest.
        let auto = optimizer::decide(&ctx, &a)?;
        let mut decisions: Vec<VisDecision> = Vec::new();
        for d in &auto {
            let pinned = opts.strategies.iter().find(|p| p.table == d.table);
            let mut chosen = pinned.copied().unwrap_or(*d);
            if let Some(forced) = opts.forced_strategy {
                chosen.strategy = forced;
            }
            if let Some(p) = pinned {
                chosen.strategy = p.strategy;
            }
            decisions.push(chosen);
        }

        let root = ctx.cat.schema.root();
        let proj_tables: Vec<TableId> = a
            .projections
            .iter()
            .map(|(t, _)| *t)
            .filter(|t| *t != root)
            .collect();

        let sj = execute_sj(&mut ctx, &a, &decisions, &proj_tables)?;
        let algo = opts.project.unwrap_or(ProjectAlgo::Project);
        let result = project::execute(&mut ctx, &a, sj, algo)?;

        ctx.free_temps()?;
        let mut report = ctx.finish_report();
        report.result_rows = result.rows.len() as u64;
        Ok((result, report))
    }
}
