//! Execution-context lanes: catalog, device, cost.
//!
//! The execution state threaded through every operator is split into three
//! composable lanes so that independent sub-units of one plan can run on
//! concurrent workers without corrupting per-operator attribution:
//!
//! * [`CatalogCtx`] — the shared **read-only** lane: schema, cardinalities,
//!   hidden images, SKTs, climbing indexes and the untrusted PC. `Copy`, so
//!   every worker sees the same catalog at zero cost.
//! * [`DeviceLane`] — the per-worker **device** lane: a flash handle
//!   (the token's own on the serial path, a [`FlashDevice::fork`] under
//!   intra-query fan-out), a RAM arena, a segment-allocator slice and a
//!   temp registry. The lane mirrors every flash counter delta it causes
//!   into a **lane-local** [`FlashStats`], which is what makes cost
//!   tracking reentrant: concurrent lanes never read each other's deltas.
//!   Locking is **per page operation, per chip** inside the device — a
//!   whole tracked operator scope (an entire MJoin dict-fill) no longer
//!   holds any device-wide lock, so per-row CPU work overlaps across
//!   lanes, and lanes whose allocator slices sit on disjoint chips never
//!   contend at all.
//! * [`CostScope`] — the per-worker **cost** lane: local `OpKind →
//!   SimDuration` accumulation, merged into the parent scope in canonical
//!   operator order when workers join. Merging is associative and
//!   order-insensitive (checked by the property suite), so intra-parallel
//!   reports are bit-identical to serial ones.
//!
//! [`ExecCtx`] recomposes the three lanes (plus the channel, root lane
//! only) and is what operators borrow. [`ExecCtx::run_lanes`] is the
//! intra-query fan-out point: it gives each worker a forked device
//! handle, a fresh arena, an allocator slice carved on a GC-unpressured
//! chip and an empty cost scope, and deterministically merges results
//! and attribution back.

use crate::database::Database;
use crate::error::ExecError;
use crate::report::{split_rw, ExecReport, OpKind};
use crate::Result;
use ghostdb_flash::{FlashDevice, FlashStats, FlashTiming, Segment, SegmentAllocator, SimDuration};
use ghostdb_index::{ClimbingIndex, SubtreeKeyTable};
use ghostdb_storage::{HiddenImage, Predicate, SchemaTree, TableId};
use ghostdb_token::{Channel, RamArena};
use ghostdb_untrusted::{PadMode, UntrustedHost, VisShipment};
use std::collections::HashMap;
use std::sync::Mutex;

/// How the reduction phase picks sublists to spill (see `merge::reduce`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillPolicy {
    /// Reduce the group holding the most flash sublists, merging its
    /// smallest sublists first (the paper's "alternative 1" reading).
    #[default]
    WidestSmallest,
    /// Reduce the group containing the globally smallest flash sublist,
    /// merging its smallest sublists first (cheapest merge first).
    GlobalSmallestK,
}

impl SpillPolicy {
    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<SpillPolicy> {
        match name {
            "widest-smallest" => Some(SpillPolicy::WidestSmallest),
            "global-smallest-k" => Some(SpillPolicy::GlobalSmallestK),
            _ => None,
        }
    }

    /// CLI / BENCH.json name.
    pub fn name(&self) -> &'static str {
        match self {
            SpillPolicy::WidestSmallest => "widest-smallest",
            SpillPolicy::GlobalSmallestK => "global-smallest-k",
        }
    }
}

/// The shared read-only catalog lane.
#[derive(Debug, Clone, Copy)]
pub struct CatalogCtx<'a> {
    /// Schema (catalog lifetime: references escape accessor calls).
    pub schema: &'a SchemaTree,
    /// Cardinalities.
    pub rows: &'a [u64],
    /// Hidden images per table.
    pub hidden: &'a [HiddenImage],
    /// SKTs per table.
    pub skts: &'a [Option<SubtreeKeyTable>],
    /// Climbing indexes.
    pub cis: &'a HashMap<(TableId, String), ClimbingIndex>,
    /// The untrusted PC.
    pub untrusted: &'a UntrustedHost,
}

impl<'a> CatalogCtx<'a> {
    /// The primary-key climbing index of a table.
    pub fn pk_index(&self, t: TableId) -> Result<&'a ClimbingIndex> {
        self.cis
            .get(&(t, "id".to_string()))
            .ok_or_else(|| ExecError::MissingIndex {
                table: self.schema.def(t).name.clone(),
                column: "id".into(),
            })
    }

    /// The climbing index on an attribute.
    pub fn attr_index(&self, t: TableId, column: &str) -> Result<&'a ClimbingIndex> {
        self.cis
            .get(&(t, column.to_string()))
            .ok_or_else(|| ExecError::MissingIndex {
                table: self.schema.def(t).name.clone(),
                column: column.into(),
            })
    }

    /// The SKT of a table.
    pub fn skt(&self, t: TableId) -> Result<&'a SubtreeKeyTable> {
        self.skts[t]
            .as_ref()
            .ok_or_else(|| ExecError::Query(format!("no SKT on table {}", self.schema.def(t).name)))
    }
}

/// The per-worker device lane: flash handle + RAM arena + allocator slice +
/// temp registry, with a lane-local mirror of the flash counters.
///
/// The flash handle is exclusive to the lane ([`FlashDevice`] is itself a
/// forkable handle over the shared chip array): the serial path borrows
/// the token's own handle, worker lanes own a fork. All synchronisation
/// happens *inside* the device, per chip and per page operation, so a
/// lane never holds a device-wide lock across an operator scope — and the
/// handle-local `snapshot`/`stats_since` the mirror is built on stays
/// exact while sibling lanes drive the same chips.
#[derive(Debug)]
pub struct DeviceLane<'a> {
    flash: &'a mut FlashDevice,
    ram: RamArena,
    alloc: &'a mut SegmentAllocator,
    temps: Vec<Segment>,
    /// Flash I/O issued by THIS lane (concurrent lanes never show up here).
    io: FlashStats,
    timing: FlashTiming,
    page_size: usize,
}

impl<'a> DeviceLane<'a> {
    /// Build a lane over its resources. `flash` is the lane's exclusive
    /// handle: the token's own on the serial path, a fork on worker lanes.
    pub fn new(flash: &'a mut FlashDevice, ram: RamArena, alloc: &'a mut SegmentAllocator) -> Self {
        let (timing, page_size) = (*flash.timing(), flash.page_size());
        DeviceLane {
            flash,
            ram,
            alloc,
            temps: Vec::new(),
            io: FlashStats::default(),
            timing,
            page_size,
        }
    }

    /// Run `f` against the flash device, mirroring the counter delta it
    /// causes into the lane-local [`FlashStats`]. Chip locks are acquired
    /// (and released) per page operation inside the device, never across
    /// `f` as a whole.
    pub fn with_flash<T>(&mut self, f: impl FnOnce(&mut FlashDevice) -> T) -> T {
        self.with_flash_delta(f).0
    }

    /// [`Self::with_flash`], also returning the counter delta `f` caused —
    /// the hot-path variant per-operation attribution is built on (one
    /// snapshot, no re-derivation from the monotone lane counter). The
    /// delta diffs this handle's local counter, so it is exact even while
    /// sibling lanes drive the same chips.
    pub fn with_flash_delta<T>(
        &mut self,
        f: impl FnOnce(&mut FlashDevice) -> T,
    ) -> (T, FlashStats) {
        let start = self.flash.snapshot();
        let out = f(self.flash);
        let d = self.flash.stats_since(&start);
        self.io += d;
        (out, d)
    }

    /// Run `f` with both the device and this lane's allocator (bulk loads
    /// that allocate and write in one step), mirroring the counter delta.
    pub fn with_flash_alloc<T>(
        &mut self,
        f: impl FnOnce(&mut FlashDevice, &mut SegmentAllocator) -> T,
    ) -> T {
        let start = self.flash.snapshot();
        let out = f(self.flash, self.alloc);
        self.io += self.flash.stats_since(&start);
        out
    }

    /// A fresh handle onto this lane's device with zeroed local counters
    /// (what a worker lane is built over).
    pub fn fork_device(&self) -> FlashDevice {
        self.flash.fork()
    }

    /// The RAM arena (cheap clone of the shared handle).
    pub fn ram(&self) -> RamArena {
        self.ram.clone()
    }

    /// Flash page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Timing model in force.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// The lane's segment allocator (the root allocator on the serial path,
    /// a carved slice on worker lanes).
    pub fn alloc(&mut self) -> &mut SegmentAllocator {
        &mut *self.alloc
    }

    /// Flash I/O issued by this lane so far (monotone).
    pub fn io(&self) -> FlashStats {
        self.io
    }

    /// Charge a pre-measured counter delta to this lane, exactly as if the
    /// lane had issued the operations itself. This is how a cross-query
    /// prefetch hit (`ci_ops::CiPrefetch`) bills the served query the same
    /// flash cost its own traversal would have caused: the delta was
    /// snapshotted when the shared traversal ran, and charging it here
    /// makes `track` scopes and `finish_report` indistinguishable from the
    /// solo execution.
    pub fn charge(&mut self, d: FlashStats) {
        self.io += d;
    }

    /// Simulated time implied by a counter delta under this lane's model.
    pub fn elapsed_of(&self, d: &FlashStats) -> SimDuration {
        d.elapsed(&self.timing, self.page_size)
    }

    /// Register a temp segment to free when the query finishes.
    pub fn add_temp(&mut self, seg: Segment) {
        self.temps.push(seg);
    }
}

/// The per-worker cost lane: local per-operator attribution, merged into
/// the parent in canonical operator order on join.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostScope {
    op_ns: [u128; OpKind::ALL.len()],
    /// High-water mark of RAM buffers observed by this scope's lane.
    pub peak_ram: usize,
    /// Flash I/O the scope's lane issued (every operation, attributed or
    /// not). The query's aggregate `io` is the sum of accepted scopes —
    /// never the shared device counters, so a torn-down parallel attempt
    /// leaves no trace in the report.
    pub io: FlashStats,
}

impl CostScope {
    /// Empty scope.
    pub fn new() -> Self {
        CostScope::default()
    }

    /// Attribute simulated time to an operator.
    pub fn add(&mut self, op: OpKind, d: SimDuration) {
        self.op_ns[op.idx()] += d.as_ns();
    }

    /// Time attributed to an operator.
    pub fn op(&self, op: OpKind) -> SimDuration {
        SimDuration::from_ns(self.op_ns[op.idx()])
    }

    /// Total attributed time across all operators.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_ns(self.op_ns.iter().sum())
    }

    /// Fold another scope into this one. Element-wise `u128` addition per
    /// operator bucket plus a max over RAM peaks: associative and
    /// commutative, so any join order of worker scopes yields the same
    /// parent scope (the property suite pins this down).
    pub fn merge_from(&mut self, other: &CostScope) {
        for (a, b) in self.op_ns.iter_mut().zip(&other.op_ns) {
            *a += b;
        }
        self.peak_ram = self.peak_ram.max(other.peak_ram);
        self.io += other.io;
    }

    /// Write the buckets into a report, walking [`OpKind::ALL`] in its
    /// canonical order.
    pub fn apply_to(&self, report: &mut ExecReport) {
        for op in OpKind::ALL {
            let ns = self.op_ns[op.idx()];
            if ns > 0 {
                report.add(op, SimDuration::from_ns(ns));
            }
        }
        report.peak_ram_buffers = report.peak_ram_buffers.max(self.peak_ram);
    }
}

/// Execution state threaded through every operator: the three lanes, plus
/// the channel on the root lane (worker lanes never talk to the PC — every
/// shipment is prefetched before a fan-out).
pub struct ExecCtx<'a> {
    /// The shared read-only catalog lane.
    pub cat: CatalogCtx<'a>,
    /// This worker's device lane.
    pub lane: DeviceLane<'a>,
    /// This worker's cost lane.
    pub cost: CostScope,
    /// Intra-query worker budget for `run_lanes` (1 = serial).
    pub intra: usize,
    /// Reduction-phase spill policy.
    pub spill: SpillPolicy,
    /// Pad every `Vis` shipment to a power-of-two row bucket (the volume
    /// side-channel countermeasure; see `SECURITY.md`).
    pub padded: bool,
    /// Climbing-index read-ahead window in pages (`0` = serial). Forwarded
    /// to every `CiProbe` this context opens; counters and results are
    /// bit-identical at any value.
    pub read_ahead: usize,
    /// Cross-query climbing-index prefetch (the serve-mode batch
    /// scheduler's shared traversals). `None` on solo executions; hits are
    /// billed as-if-solo via [`DeviceLane::charge`], so the report is
    /// bit-identical either way.
    pub prefetch: Option<&'a crate::ci_ops::CiPrefetch>,
    channel: Option<&'a mut Channel>,
    /// Open `track`/`track_rw` scopes; guards the run_lanes nesting rule.
    track_depth: u32,
}

impl<'a> ExecCtx<'a> {
    /// Build a root context over a database (the token's own resources).
    pub fn new(db: &'a mut Database) -> Self {
        let token = &mut db.token;
        ExecCtx {
            cat: CatalogCtx {
                schema: &db.schema,
                rows: &db.rows,
                hidden: &db.hidden,
                skts: &db.skts,
                cis: &db.cis,
                untrusted: &db.untrusted,
            },
            lane: DeviceLane::new(&mut token.flash, token.ram.clone(), &mut db.alloc),
            cost: CostScope::new(),
            intra: 1,
            spill: SpillPolicy::default(),
            padded: false,
            read_ahead: 0,
            prefetch: None,
            channel: Some(&mut token.channel),
            track_depth: 0,
        }
    }

    /// Build a context from explicitly assembled parts: a catalog (with a
    /// possibly forked untrusted host), a device lane over any flash
    /// handle/arena/allocator, and an optional channel. This is the serve
    /// worker path — per-query isolated resources standing in for the
    /// token's own.
    pub(crate) fn from_parts(
        cat: CatalogCtx<'a>,
        lane: DeviceLane<'a>,
        channel: Option<&'a mut Channel>,
    ) -> Self {
        ExecCtx {
            cat,
            lane,
            cost: CostScope::new(),
            intra: 1,
            spill: SpillPolicy::default(),
            padded: false,
            read_ahead: 0,
            prefetch: None,
            channel,
            track_depth: 0,
        }
    }
    /// The RAM arena (cheap clone of the shared handle).
    pub fn ram(&self) -> RamArena {
        self.lane.ram()
    }

    /// Flash page size.
    pub fn page_size(&self) -> usize {
        self.lane.page_size()
    }

    /// The primary-key climbing index of a table.
    pub fn pk_index(&self, t: TableId) -> Result<&'a ClimbingIndex> {
        self.cat.pk_index(t)
    }

    /// The climbing index on an attribute.
    pub fn attr_index(&self, t: TableId, column: &str) -> Result<&'a ClimbingIndex> {
        self.cat.attr_index(t, column)
    }

    /// The SKT of a table.
    pub fn skt(&self, t: TableId) -> Result<&'a SubtreeKeyTable> {
        self.cat.skt(t)
    }

    /// The channel to the untrusted PC (root lane only; worker lanes run
    /// strictly below the channel).
    pub fn channel(&mut self) -> Result<&mut Channel> {
        self.channel
            .as_deref_mut()
            .ok_or_else(|| ExecError::Query("channel unavailable on a worker lane".into()))
    }

    /// `Vis(Q, T, π)`: ship the sorted visible ids (+ `projection` values)
    /// of `t` under `preds`, padded to a power-of-two row bucket when the
    /// context runs in padded mode. Root lane only.
    pub fn vis(
        &mut self,
        t: TableId,
        preds: &[Predicate],
        projection: &[String],
    ) -> Result<VisShipment> {
        let name = self.cat.schema.def(t).name.clone();
        let untrusted = self.cat.untrusted;
        let pad = if self.padded {
            PadMode::PowerOfTwo
        } else {
            PadMode::Exact
        };
        let channel = self.channel()?;
        Ok(untrusted.vis_with(channel, t, &name, preds, projection, pad)?)
    }

    /// Run `f` attributing all flash time **this lane** causes to `op`.
    /// Reentrant across lanes: the delta comes from the lane-local counter
    /// mirror, never from the (possibly shared) device counters.
    pub fn track<T>(&mut self, op: OpKind, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let before = self.lane.io();
        self.track_depth += 1;
        let out = f(self);
        self.track_depth -= 1;
        let d = self.lane.io() - before;
        self.cost.add(op, self.lane.elapsed_of(&d));
        out
    }

    /// Run `f` splitting this lane's flash time: read-side to `read_op`,
    /// write-side to `write_op` (e.g. SJoin scan vs Store materialisation).
    pub fn track_rw<T>(
        &mut self,
        read_op: OpKind,
        write_op: OpKind,
        f: impl FnOnce(&mut Self) -> Result<T>,
    ) -> Result<T> {
        let before = self.lane.io();
        self.track_depth += 1;
        let out = f(self);
        self.track_depth -= 1;
        let d = self.lane.io() - before;
        let (r, w) = split_rw(&d, self.lane.timing(), self.lane.page_size());
        self.cost.add(read_op, r);
        self.cost.add(write_op, w);
        out
    }

    /// One attributed flash scope: run `f` against the device and charge
    /// the simulated time it causes to `op`. Zero-I/O scopes (a row served
    /// from the reader's pinned buffer) skip the cost math entirely —
    /// adding a zero duration is a no-op, so attribution is unchanged.
    pub fn tracked<T>(&mut self, op: OpKind, f: impl FnOnce(&mut FlashDevice) -> T) -> T {
        let (out, d) = self.lane.with_flash_delta(f);
        if d != FlashStats::default() {
            self.cost.add(op, self.lane.elapsed_of(&d));
        }
        out
    }

    /// Register a temp segment to free when the query finishes.
    pub fn add_temp(&mut self, seg: Segment) {
        self.lane.add_temp(seg);
    }

    /// Free all temps (called by the executor at the end of the query).
    /// Trimming is metadata-only so it does not perturb measured time.
    pub fn free_temps(&mut self) -> Result<()> {
        let temps = std::mem::take(&mut self.lane.temps);
        self.lane.with_flash_alloc(|dev, alloc| {
            for seg in temps {
                alloc.free(seg, dev)?;
            }
            Ok(())
        })
    }

    /// Finalise the report: cost-lane buckets in canonical order, then
    /// channel and lane observations. `io` is the root lane's mirror plus
    /// every accepted worker scope — NOT the shared device counters, so a
    /// torn-down parallel attempt (see [`Self::run_lanes`]) cannot leak
    /// into the report.
    pub fn finish_report(&mut self) -> ExecReport {
        let mut report = ExecReport::new();
        self.cost.apply_to(&mut report);
        if let Some(ch) = self.channel.as_deref() {
            report.comm = ch.elapsed();
            report.bytes_to_secure = ch.bytes_to_secure();
        }
        report.io = self.lane.io() + self.cost.io;
        report.peak_ram_buffers = report.peak_ram_buffers.max(self.lane.ram().peak());
        report
    }

    /// Fan `jobs` independent sub-units of this plan across up to
    /// `self.intra` worker lanes and return their results in job order.
    ///
    /// Each worker runs on its own [`DeviceLane`] (fresh RAM arena of the
    /// same geometry, a segment-allocator slice carved on a GC-unpressured
    /// chip, a forked flash handle onto the shared chip array) and its own
    /// [`CostScope`]; scopes merge back into the parent in job order.
    /// Because every job issues exactly the flash operations it would
    /// issue serially, and every per-operation cost is
    /// placement-independent, results AND per-operator attribution are
    /// bit-identical to the serial loop (locked by the intra equivalence
    /// suite). Lanes whose slices land on disjoint chips never contend;
    /// lanes sharing a chip serialise per page operation inside the
    /// device, so per-row CPU work still overlaps.
    ///
    /// Falls back to the serial loop on this lane when `intra <= 1`, when
    /// there is at most one job, when the parent arena still holds buffers
    /// (worker arenas start empty, so a non-empty baseline would change
    /// RAM-driven decisions), when the allocator cannot carve a meaningful
    /// slice per worker (including a fragmented free list refusing a carve
    /// the page count allowed), or when **every** chip is close enough to
    /// its GC watermark that a fan-out's writes could trigger collection.
    /// GC pressure is judged per chip: a pressured chip simply stops
    /// hosting lane slices (its data stays readable — reads never program
    /// pages) while lanes keep fanning out across the unpressured chips;
    /// only a device with no unpressured chip left forces the whole
    /// fan-out serial. On a single-chip device this degenerates to the
    /// old all-or-nothing check.
    ///
    /// GC is the one scheduling-dependent cost: interleaved worker writes
    /// land in the FTL in thread-timing order, so a collection pass over
    /// such blocks has timing-dependent relocation counts. Three defences
    /// keep reports serial-identical: the headroom precondition keeps a
    /// fan-out from driving any chip to its watermark itself, the
    /// GC-taint window below tears down and serially replays any attempt a
    /// collection did overlap, and free_temps trims every worker page at
    /// query end so fan-out data does not linger as GC fodder. A workload
    /// that churns the device to the watermark *after* a fan-out (past the
    /// trim) can still reach GC over perturbed placement; keep
    /// `intra_threads = 1` for bit-exact reports under that regime.
    ///
    /// Must not be nested inside a `track` scope: worker I/O lands on the
    /// worker lanes and would escape the enclosing attribution window.
    pub fn run_lanes<T: Send>(
        &mut self,
        jobs: usize,
        work: impl Fn(&mut ExecCtx<'_>, usize) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        debug_assert_eq!(
            self.track_depth, 0,
            "run_lanes must not be nested inside a track scope: worker I/O \
             lands on worker lanes and would escape the enclosing window"
        );
        let lanes = self.intra.min(jobs);
        if lanes <= 1 || self.lane.ram().in_use() != 0 {
            return (0..jobs).map(|i| work(self, i)).collect();
        }
        const MIN_SLICE_PAGES: u64 = 64;
        // Per-chip GC pressure: GC only fires near physical exhaustion, so
        // a chip is eligible to host lane slices while at least 1/8 of its
        // physical pages remain programmable before a collection could
        // start. Within that margin typical temp bursts cannot reach the
        // watermark; the taint window below remains the hard guard.
        let (chips, chip_pages, chip_physical) = self.lane.with_flash(|dev| {
            (
                dev.chip_count() as u64,
                dev.chip_pages(),
                dev.geometry().physical_pages(),
            )
        });
        let mut eligible: Vec<u64> = Vec::new();
        for c in 0..chips {
            let headroom = self.lane.with_flash(|dev| dev.gc_headroom_of(c as usize));
            if headroom * 8 >= chip_physical {
                eligible.push(c);
            }
        }
        if eligible.is_empty() {
            return (0..jobs).map(|i| work(self, i)).collect();
        }
        // Round-robin lanes over the eligible chips; size each lane's
        // slice as an equal share of its chip's free pages, keeping one
        // share per chip in reserve for the parent's own later
        // allocations.
        let lane_chip: Vec<u64> = (0..lanes).map(|j| eligible[j % eligible.len()]).collect();
        let mut lanes_on = vec![0u64; chips as usize];
        for &c in &lane_chip {
            lanes_on[c as usize] += 1;
        }
        let mut slice_pages: Vec<u64> = Vec::with_capacity(lanes);
        for &c in &lane_chip {
            let free = self
                .lane
                .alloc()
                .free_in_range(c * chip_pages, (c + 1) * chip_pages);
            slice_pages.push(free / (lanes_on[c as usize] + 1));
        }
        if slice_pages.iter().any(|&p| p < MIN_SLICE_PAGES) {
            return (0..jobs).map(|i| work(self, i)).collect();
        }
        let mut carves: Vec<Segment> = Vec::with_capacity(lanes);
        let mut slices: Vec<SegmentAllocator> = Vec::with_capacity(lanes);
        for (j, &c) in lane_chip.iter().enumerate() {
            // A fragmented free list can refuse a carve the page count
            // allowed: return what was carved and run serially instead of
            // failing the query (and leaking the partial carves).
            match self.lane.alloc().alloc_in_range(
                slice_pages[j],
                c * chip_pages,
                (c + 1) * chip_pages,
            ) {
                Ok(seg) => {
                    slices.push(SegmentAllocator::over(seg.start(), seg.pages()));
                    carves.push(seg);
                }
                Err(_) => {
                    self.lane.with_flash_alloc(|dev, alloc| {
                        for seg in carves {
                            alloc.free(seg, dev)?;
                        }
                        Ok::<(), ExecError>(())
                    })?;
                    return (0..jobs).map(|i| work(self, i)).collect();
                }
            }
        }
        let cat = self.cat;
        let spill = self.spill;
        let padded = self.padded;
        let read_ahead = self.read_ahead;
        let prefetch = self.prefetch;
        let arena = self.lane.ram();
        let proto = self.lane.fork_device();
        // GC placement is the one scheduling-dependent cost in the FTL: if
        // garbage collection fires while workers interleave writes, victim
        // selection (and so relocation counts) depends on thread timing.
        // Snapshot the GC counters around the attempt; a GC-tainted run is
        // torn down and replayed serially below.
        let gc_before = self.lane.with_flash(|dev| dev.stats());
        let results: Result<Vec<(T, CostScope)>> = {
            let pool = Mutex::new(slices);
            crate::parallel::fan_out(
                jobs,
                lanes,
                || {
                    let alloc = pool
                        .lock()
                        .expect("slice pool")
                        .pop()
                        .ok_or_else(|| ExecError::Query("lane slice pool exhausted".into()))?;
                    Ok(WorkerLane {
                        alloc,
                        arena: arena.fresh_like(),
                        flash: proto.fork(),
                    })
                },
                |w, i| {
                    let mut ctx = ExecCtx {
                        cat,
                        lane: DeviceLane::new(&mut w.flash, w.arena.clone(), &mut w.alloc),
                        cost: CostScope::new(),
                        // Workers never re-fan: one level of intra-query
                        // parallelism keeps scheduling analysable.
                        intra: 1,
                        spill,
                        padded,
                        read_ahead,
                        prefetch,
                        channel: None,
                        track_depth: 0,
                    };
                    let out = work(&mut ctx, i)?;
                    let mut scope = ctx.cost;
                    scope.peak_ram = scope.peak_ram.max(w.arena.peak());
                    scope.io = ctx.lane.io();
                    Ok((out, scope))
                },
            )
        };
        let gc_after = self.lane.with_flash(|dev| dev.stats());
        let gc_fired = gc_after.blocks_erased != gc_before.blocks_erased
            || gc_after.gc_pages_read != gc_before.gc_pages_read
            || gc_after.gc_pages_written != gc_before.gc_pages_written;
        match results {
            Ok(res) if !gc_fired => {
                // Success: the carves become query temps — freeing them at
                // the end trims every page any worker wrote and returns the
                // slices to the parent pool.
                for seg in carves {
                    self.lane.add_temp(seg);
                }
                let mut out = Vec::with_capacity(jobs);
                for (value, scope) in res {
                    self.cost.merge_from(&scope);
                    out.push(value);
                }
                Ok(out)
            }
            outcome => {
                // A worker failed (e.g. its slice ran out of logical space
                // on a query the undivided pool could serve) or GC fired
                // mid-fan-out (scheduling-dependent relocation costs): tear
                // the attempt down — trims are metadata-only, worker scopes
                // are dropped unmerged, and `io` comes from lane mirrors so
                // the discarded work never reaches the report — and replay
                // the whole batch serially on this lane. Intra-parallel
                // execution is therefore *always* serial-equivalent; the
                // parallel path is strictly an optimisation.
                drop(outcome);
                self.lane.with_flash_alloc(|dev, alloc| {
                    for seg in carves {
                        alloc.free(seg, dev)?;
                    }
                    Ok::<(), ExecError>(())
                })?;
                (0..jobs).map(|i| work(self, i)).collect()
            }
        }
    }
}

/// Per-worker state of an intra-query fan-out: a fresh arena (same
/// geometry as the token's, so RAM-driven decisions match the serial path
/// exactly), an allocator slice carved on one chip, and a forked handle
/// onto the shared chip array.
struct WorkerLane {
    alloc: SegmentAllocator,
    arena: RamArena,
    flash: FlashDevice,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use ghostdb_storage::Id;
    use ghostdb_storage::IdListWriter;

    #[test]
    fn tracked_scopes_attribute_lane_local_io() {
        let mut db = testkit::tiny_db();
        let mut ctx = ExecCtx::new(&mut db);
        let page_size = ctx.page_size();
        let ram = ctx.ram();
        let mut writer = ctx
            .track(OpKind::Store, |ctx| {
                Ok(IdListWriter::create(
                    ctx.lane.alloc(),
                    &ram,
                    100,
                    page_size,
                )?)
            })
            .unwrap();
        ctx.tracked(OpKind::Store, |dev| {
            for id in 0..100u32 {
                writer.push(dev, id as Id).unwrap();
            }
            writer.finish(dev).unwrap()
        });
        assert!(ctx.cost.op(OpKind::Store).as_ns() > 0);
        assert_eq!(ctx.cost.op(OpKind::Merge).as_ns(), 0);
        assert!(ctx.lane.io().pages_written > 0);
    }

    #[test]
    fn cost_scope_merge_is_order_insensitive() {
        let mut a = CostScope::new();
        a.add(OpKind::Merge, SimDuration::from_us(5));
        a.peak_ram = 3;
        let mut b = CostScope::new();
        b.add(OpKind::Merge, SimDuration::from_us(7));
        b.add(OpKind::SJoin, SimDuration::from_us(1));
        b.peak_ram = 9;
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.op(OpKind::Merge), SimDuration::from_us(12));
        assert_eq!(ab.peak_ram, 9);
    }

    #[test]
    fn run_lanes_serial_and_parallel_agree() {
        // Pure-CPU jobs: results land in job order on any thread count and
        // the parent scope absorbs the (empty) worker scopes.
        let mut db = testkit::tiny_db();
        for intra in [1usize, 3] {
            let mut ctx = ExecCtx::new(&mut db);
            ctx.intra = intra;
            let out = ctx.run_lanes(5, |_ctx, i| Ok(i * 10)).unwrap();
            assert_eq!(out, vec![0, 10, 20, 30, 40]);
            ctx.free_temps().unwrap();
        }
    }

    #[test]
    fn run_lanes_workers_write_readable_temps() {
        // Each worker materialises an id list through its own lane; the
        // parent can read every list back and the Store attribution equals
        // the serial run's.
        let mut db = testkit::tiny_db();
        let write_lists = |ctx: &mut ExecCtx<'_>| -> (Vec<Vec<Id>>, CostScope) {
            let lists = ctx
                .run_lanes(4, |ctx, i| {
                    let ram = ctx.ram();
                    let page_size = ctx.page_size();
                    let mut w = ctx.track(OpKind::Store, |ctx| {
                        Ok(IdListWriter::create(
                            ctx.lane.alloc(),
                            &ram,
                            600,
                            page_size,
                        )?)
                    })?;
                    ctx.add_temp(w.segment());
                    let list = ctx.tracked(OpKind::Store, |dev| {
                        for k in 0..600u32 {
                            w.push(dev, (i as Id) * 1000 + k).unwrap();
                        }
                        w.finish(dev).unwrap()
                    });
                    Ok(list)
                })
                .unwrap();
            let ram = ctx.ram();
            let page_size = ctx.page_size();
            let read = lists
                .iter()
                .map(|l| {
                    let mut r = ghostdb_storage::IdListReader::open(*l, &ram, page_size).unwrap();
                    let mut ids = Vec::new();
                    ctx.lane.with_flash(|dev| {
                        while let Some(id) = r.next_id(dev).unwrap() {
                            ids.push(id);
                        }
                    });
                    ids
                })
                .collect();
            (read, ctx.cost.clone())
        };
        let mut serial_ctx = ExecCtx::new(&mut db);
        let (serial_lists, serial_cost) = write_lists(&mut serial_ctx);
        serial_ctx.free_temps().unwrap();
        let mut db2 = testkit::tiny_db();
        let mut par_ctx = ExecCtx::new(&mut db2);
        par_ctx.intra = 4;
        let (par_lists, par_cost) = write_lists(&mut par_ctx);
        par_ctx.free_temps().unwrap();
        assert_eq!(serial_lists, par_lists);
        assert_eq!(
            serial_cost.op(OpKind::Store),
            par_cost.op(OpKind::Store),
            "per-operator attribution must be bit-identical"
        );
    }

    #[test]
    fn worker_lanes_have_no_channel() {
        let mut db = testkit::tiny_db();
        let mut ctx = ExecCtx::new(&mut db);
        assert!(ctx.channel().is_ok());
        ctx.intra = 2;
        let errs = ctx
            .run_lanes(2, |ctx, _| Ok(ctx.channel().is_err()))
            .unwrap();
        assert_eq!(errs, vec![true, true]);
        ctx.free_temps().unwrap();
    }
}
