//! Execution context: borrowed device resources + cost attribution + temp
//! segment lifecycle.

use crate::database::Database;
use crate::error::ExecError;
use crate::report::{split_rw, ExecReport, OpKind};
use crate::Result;
use ghostdb_flash::{FlashDevice, Segment, SegmentAllocator};
use ghostdb_index::{ClimbingIndex, SubtreeKeyTable};
use ghostdb_storage::{HiddenImage, SchemaTree, TableId};
use ghostdb_token::{RamArena, SecureToken};
use ghostdb_untrusted::UntrustedHost;
use std::collections::HashMap;

/// Mutable execution state threaded through every operator.
pub struct ExecCtx<'a> {
    /// Schema (catalog lifetime: references escape accessor calls).
    pub schema: &'a SchemaTree,
    /// Cardinalities.
    pub rows: &'a [u64],
    /// Hidden images per table.
    pub hidden: &'a [HiddenImage],
    /// SKTs per table.
    pub skts: &'a [Option<SubtreeKeyTable>],
    /// Climbing indexes.
    pub cis: &'a HashMap<(TableId, String), ClimbingIndex>,
    /// The secure token (flash + RAM + channel).
    pub token: &'a mut SecureToken,
    /// Logical-space allocator for temporaries.
    pub alloc: &'a mut SegmentAllocator,
    /// The untrusted PC.
    pub untrusted: &'a UntrustedHost,
    /// Accumulating report.
    pub report: ExecReport,
    temps: Vec<Segment>,
}

impl<'a> ExecCtx<'a> {
    /// Build a context over a database.
    pub fn new(db: &'a mut Database) -> Self {
        ExecCtx {
            schema: &db.schema,
            rows: &db.rows,
            hidden: &db.hidden,
            skts: &db.skts,
            cis: &db.cis,
            token: &mut db.token,
            alloc: &mut db.alloc,
            untrusted: &db.untrusted,
            report: ExecReport::new(),
            temps: Vec::new(),
        }
    }

    /// The flash device.
    pub fn dev(&mut self) -> &mut FlashDevice {
        &mut self.token.flash
    }

    /// The RAM arena (cheap clone of the shared handle).
    pub fn ram(&self) -> RamArena {
        self.token.ram.clone()
    }

    /// Flash page size.
    pub fn page_size(&self) -> usize {
        self.token.flash.page_size()
    }

    /// The primary-key climbing index of a table.
    pub fn pk_index(&self, t: TableId) -> Result<&'a ClimbingIndex> {
        self.cis
            .get(&(t, "id".to_string()))
            .ok_or_else(|| ExecError::MissingIndex {
                table: self.schema.def(t).name.clone(),
                column: "id".into(),
            })
    }

    /// The climbing index on an attribute.
    pub fn attr_index(&self, t: TableId, column: &str) -> Result<&'a ClimbingIndex> {
        self.cis
            .get(&(t, column.to_string()))
            .ok_or_else(|| ExecError::MissingIndex {
                table: self.schema.def(t).name.clone(),
                column: column.into(),
            })
    }

    /// The SKT of a table.
    pub fn skt(&self, t: TableId) -> Result<&'a SubtreeKeyTable> {
        self.skts[t]
            .as_ref()
            .ok_or_else(|| ExecError::Query(format!("no SKT on table {}", self.schema.def(t).name)))
    }

    /// Run `f` attributing all flash time it causes to `op`.
    pub fn track<T>(&mut self, op: OpKind, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        let snap = self.token.flash.snapshot();
        let out = f(self);
        let d = self.token.flash.elapsed_since(&snap);
        self.report.add(op, d);
        out
    }

    /// Run `f` splitting its flash time: read-side to `read_op`, write-side
    /// to `write_op` (e.g. SJoin scan vs Store materialisation).
    pub fn track_rw<T>(
        &mut self,
        read_op: OpKind,
        write_op: OpKind,
        f: impl FnOnce(&mut Self) -> Result<T>,
    ) -> Result<T> {
        let snap = self.token.flash.snapshot();
        let out = f(self);
        let d = self.token.flash.stats_since(&snap);
        let timing = *self.token.flash.timing();
        let (r, w) = split_rw(&d, &timing, self.page_size());
        self.report.add(read_op, r);
        self.report.add(write_op, w);
        out
    }

    /// Register a temp segment to free when the query finishes.
    pub fn add_temp(&mut self, seg: Segment) {
        self.temps.push(seg);
    }

    /// Free all temps (called by the executor at the end of the query).
    /// Trimming is metadata-only so it does not perturb measured time.
    pub fn free_temps(&mut self) -> Result<()> {
        for seg in self.temps.drain(..) {
            self.alloc.free(seg, &mut self.token.flash)?;
        }
        Ok(())
    }

    /// Finalise the report with channel and RAM observations.
    pub fn finish_report(&mut self, flash_snap_at_start: &ghostdb_flash::FlashSnapshot) {
        self.report.comm = self.token.channel.elapsed();
        self.report.bytes_to_secure = self.token.channel.bytes_to_secure();
        self.report.io = self.token.flash.stats_since(flash_snap_at_start);
        self.report.peak_ram_buffers = self.token.ram.peak();
    }
}
