//! The `Merge` operator (paper §3.3–§3.4).
//!
//! `Merge(∩i{∪j{idT}↓})` evaluates a conjunctive expression over sorted ID
//! (sub)lists by a single synchronized scan — **provided the RAM can hold
//! one buffer per open sublist plus one output buffer**. When climbing-index
//! lookups deliver more sublists than buffers (range predicates, `∈`-probes
//! from visible selections), a **reduction phase** first unions the
//! *smallest* sublists of a group into materialised temporaries until the
//! remainder fits — the paper's "alternative 1", whose linear cost makes the
//! smallest sublists the best candidates.

use crate::ctx::ExecCtx;
use crate::error::ExecError;
use crate::report::OpKind;
use crate::source::{IdSource, IntersectStream, SourceReader, UnionStream};
use crate::Result;
use ghostdb_storage::idlist::{intersect_sorted, union_sorted};
use ghostdb_storage::{Id, IdList, IdListWriter};
use ghostdb_token::TokenError;

/// An opened, RAM-fitting merge: an intersection of per-group unions, plus
/// the temp segments produced by reduction (freed when the query ends).
pub struct MergeStream {
    intersect: IntersectStream,
}

impl MergeStream {
    /// Pull the next ID, attributing its I/O to `Merge`.
    pub fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Option<Id>> {
        let snap = ctx.token.flash.snapshot();
        let out = self.intersect.next(&mut ctx.token.flash);
        let d = ctx.token.flash.elapsed_since(&snap);
        ctx.report.add(OpKind::Merge, d);
        out
    }
}

/// Total RAM buffers the final merge pass would need for these groups.
fn flash_sources(groups: &[Vec<IdSource>]) -> usize {
    groups
        .iter()
        .flat_map(|g| g.iter())
        .map(|s| s.buffers_needed())
        .sum()
}

/// Reduction phase: union the smallest flash sublists of oversized groups
/// into single temp lists until one buffer per remaining sublist fits in
/// `available - reserve` buffers. Reduction I/O (reads *and* temp writes)
/// is Merge cost, matching the paper's accounting of its multi-pass nature.
fn reduce(ctx: &mut ExecCtx<'_>, groups: &mut [Vec<IdSource>], reserve: usize) -> Result<()> {
    loop {
        let avail = ctx.ram().available().saturating_sub(reserve);
        if flash_sources(groups) <= avail {
            return Ok(());
        }
        // At least two readers + one writer are needed to make progress.
        if avail < 2 || ctx.ram().available() < 3 {
            return Err(ExecError::Token(TokenError::OutOfRam {
                requested: 3,
                available: ctx.ram().available(),
                capacity: ctx.ram().capacity(),
            }));
        }
        // Group with the most flash sublists is reduced first.
        let gi = (0..groups.len())
            .max_by_key(|i| groups[*i].iter().map(|s| s.buffers_needed()).sum::<usize>())
            .expect("non-empty groups");
        // Partition: flash sublists (candidates) vs free sources.
        let group = std::mem::take(&mut groups[gi]);
        let (mut flash, other): (Vec<IdSource>, Vec<IdSource>) =
            group.into_iter().partition(|s| s.buffers_needed() > 0);
        // Smallest-first; merge as many as the arena allows at once
        // (readers k + 1 writer ≤ available).
        flash.sort_by_key(|s| s.count());
        let k = flash.len().min(ctx.ram().available() - 1);
        let batch: Vec<IdSource> = flash.drain(..k).collect();
        let merged = ctx.track(OpKind::Merge, |ctx| union_to_temp(ctx, &batch))?;
        let mut rebuilt = other;
        rebuilt.push(IdSource::Flash(merged));
        rebuilt.extend(flash);
        groups[gi] = rebuilt;
    }
}

/// Union a batch of sources into a fresh temp list.
fn union_to_temp(ctx: &mut ExecCtx<'_>, batch: &[IdSource]) -> Result<IdList> {
    let max_ids: u64 = batch.iter().map(|s| s.count()).sum();
    let page_size = ctx.page_size();
    let ram = ctx.ram();
    let mut writer = IdListWriter::create(ctx.alloc, &ram, max_ids, page_size)?;
    ctx.add_temp(writer.segment());
    let readers = batch
        .iter()
        .map(|s| SourceReader::open(s, &ram, page_size))
        .collect::<Result<Vec<_>>>()?;
    let mut union = UnionStream::new(readers);
    while let Some(id) = union.next(&mut ctx.token.flash)? {
        writer.push(&mut ctx.token.flash, id)?;
    }
    Ok(writer.finish(&mut ctx.token.flash)?)
}

/// Open a merge over CNF groups, reserving `reserve` RAM buffers for the
/// downstream consumer (pipelining budget, §3.4). Runs the reduction phase
/// if needed.
pub fn open_merge(
    ctx: &mut ExecCtx<'_>,
    mut groups: Vec<Vec<IdSource>>,
    reserve: usize,
) -> Result<MergeStream> {
    reduce(ctx, &mut groups, reserve)?;
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let unions = groups
        .iter()
        .map(|g| UnionStream::open(g, &ram, page_size))
        .collect::<Result<Vec<_>>>()?;
    Ok(MergeStream {
        intersect: IntersectStream::new(unions),
    })
}

/// Merge to a materialised sorted ID list on flash. Read side is Merge,
/// output writes are Store.
pub fn merge_to_list(ctx: &mut ExecCtx<'_>, groups: Vec<Vec<IdSource>>) -> Result<IdList> {
    let max_ids: u64 = groups
        .iter()
        .map(|g| g.iter().map(|s| s.count()).sum::<u64>())
        .min()
        .unwrap_or(0);
    // One output buffer reserved for the writer.
    let mut stream = open_merge(ctx, groups, 1)?;
    let page_size = ctx.page_size();
    let ram = ctx.ram();
    let mut writer = IdListWriter::create(ctx.alloc, &ram, max_ids, page_size)?;
    ctx.add_temp(writer.segment());
    loop {
        let id = stream.next(ctx)?;
        let Some(id) = id else { break };
        let snap = ctx.token.flash.snapshot();
        writer.push(&mut ctx.token.flash, id)?;
        let d = ctx.token.flash.elapsed_since(&snap);
        ctx.report.add(OpKind::Store, d);
    }
    let snap = ctx.token.flash.snapshot();
    let list = writer.finish(&mut ctx.token.flash)?;
    let d = ctx.token.flash.elapsed_since(&snap);
    ctx.report.add(OpKind::Store, d);
    Ok(list)
}

/// Merge straight into a host vector (used when the next consumer is a
/// channel-style probe list; the result is small by construction).
///
/// When every source is a host-resident list the merge costs no flash I/O
/// under either evaluation, so it short-circuits to galloping sorted-set
/// operations instead of spinning up the streaming machinery — same ids,
/// same (zero) simulated cost, far fewer host cycles. `Range` sources stay
/// on the streaming path: it walks them in O(1) memory, while the set
/// operations would materialise them.
pub fn merge_to_vec(ctx: &mut ExecCtx<'_>, groups: Vec<Vec<IdSource>>) -> Result<Vec<Id>> {
    if groups
        .iter()
        .all(|g| g.iter().all(|s| matches!(s, IdSource::Host(_))))
    {
        return Ok(merge_host_groups(&groups));
    }
    merge_to_vec_streaming(ctx, groups)
}

/// The streaming evaluation of [`merge_to_vec`] (always correct, charges
/// I/O for flash sources). Public within the crate so equivalence tests
/// and `perfbench` can pit the host fast path against it.
pub fn merge_to_vec_streaming(
    ctx: &mut ExecCtx<'_>,
    groups: Vec<Vec<IdSource>>,
) -> Result<Vec<Id>> {
    let mut stream = open_merge(ctx, groups, 0)?;
    let mut out = Vec::new();
    while let Some(id) = stream.next(ctx)? {
        out.push(id);
    }
    Ok(out)
}

/// `∩i{∪j{...}}` over host-resident sources: per-group sorted unions, then
/// galloping intersection across groups, smallest group first so the driver
/// side of every intersection stays minimal.
fn merge_host_groups(groups: &[Vec<IdSource>]) -> Vec<Id> {
    let host = |s: &IdSource| -> crate::source::SharedIds {
        match s {
            IdSource::Host(v) => v.clone(),
            _ => unreachable!("host fast path"),
        }
    };
    let mut unions: Vec<Vec<Id>> = groups
        .iter()
        .map(|g| match g.len() {
            0 => Vec::new(),
            // union_sorted against the empty list collapses duplicates
            // inside the single source, matching the stream.
            1 => union_sorted(&host(&g[0]), &[]),
            2 => union_sorted(&host(&g[0]), &host(&g[1])),
            // Wider groups: one concat + sort + dedup instead of repeated
            // pairwise unions re-copying the accumulator per source.
            _ => {
                let mut all: Vec<Id> =
                    Vec::with_capacity(g.iter().map(|s| s.count() as usize).sum());
                for s in g {
                    all.extend_from_slice(&host(s));
                }
                all.sort_unstable();
                all.dedup();
                all
            }
        })
        .collect();
    unions.sort_by_key(|u| u.len());
    let mut iter = unions.into_iter();
    let Some(mut acc) = iter.next() else {
        return Vec::new();
    };
    for u in iter {
        if acc.is_empty() {
            return acc;
        }
        acc = intersect_sorted(&acc, &u);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use std::sync::Arc;

    #[test]
    fn host_fast_path_matches_streaming_merge() {
        let mut db = testkit::tiny_db();
        let groups = |dup: bool| -> Vec<Vec<IdSource>> {
            vec![
                // Three sources: exercises the concat+sort wide-group arm.
                vec![
                    IdSource::Host(Arc::new((0..200).map(|i| i * 3).collect())),
                    IdSource::Host(Arc::new(if dup {
                        vec![1, 1, 5, 9, 9]
                    } else {
                        vec![1, 5, 9]
                    })),
                    IdSource::Host(Arc::new(vec![4, 300])),
                ],
                vec![IdSource::Host(Arc::new((0..300).collect()))],
                vec![IdSource::Host(Arc::new((0..150).map(|i| i * 2).collect()))],
            ]
        };
        for dup in [false, true] {
            let mut ctx = crate::ExecCtx::new(&mut db);
            let fast = merge_to_vec(&mut ctx, groups(dup)).unwrap();
            let streamed = merge_to_vec_streaming(&mut ctx, groups(dup)).unwrap();
            assert_eq!(fast, streamed);
            assert!(!fast.is_empty());
        }
    }

    #[test]
    fn range_sources_stay_on_the_streaming_path() {
        // Ranges must not be materialised by the fast path; the result is
        // still identical between entry point and streaming evaluation.
        let mut db = testkit::tiny_db();
        let groups = || -> Vec<Vec<IdSource>> {
            vec![
                vec![IdSource::Host(Arc::new((0..100).map(|i| i * 2).collect()))],
                vec![IdSource::Range {
                    start: 50,
                    end: 180,
                }],
            ]
        };
        let mut ctx = crate::ExecCtx::new(&mut db);
        let a = merge_to_vec(&mut ctx, groups()).unwrap();
        let b = merge_to_vec_streaming(&mut ctx, groups()).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_groups_and_empty_group_edge_cases() {
        let mut db = testkit::tiny_db();
        let mut ctx = crate::ExecCtx::new(&mut db);
        assert_eq!(merge_to_vec(&mut ctx, vec![]).unwrap(), Vec::<Id>::new());
        let groups = vec![
            vec![IdSource::Host(Arc::new(vec![1, 2, 3]))],
            vec![IdSource::Host(Arc::new(Vec::new()))],
        ];
        assert_eq!(merge_to_vec(&mut ctx, groups).unwrap(), Vec::<Id>::new());
    }
}
