//! The `Merge` operator (paper §3.3–§3.4).
//!
//! `Merge(∩i{∪j{idT}↓})` evaluates a conjunctive expression over sorted ID
//! (sub)lists by a single synchronized scan — **provided the RAM can hold
//! one buffer per open sublist plus one output buffer**. When climbing-index
//! lookups deliver more sublists than buffers (range predicates, `∈`-probes
//! from visible selections), a **reduction phase** first unions the
//! *smallest* sublists of a group into materialised temporaries until the
//! remainder fits — the paper's "alternative 1", whose linear cost makes the
//! smallest sublists the best candidates. Which group spills first is the
//! [`SpillPolicy`] (A/B-comparable by number through `perfbench
//! --spill-policy`).

use crate::ctx::{ExecCtx, SpillPolicy};
use crate::error::ExecError;
use crate::report::OpKind;
use crate::source::{IdSource, IntersectStream, SourceReader, UnionStream};
use crate::Result;
use ghostdb_storage::idlist::{intersect_sorted, union_sorted};
use ghostdb_storage::{Id, IdList, IdListWriter};
use ghostdb_token::TokenError;

/// An opened, RAM-fitting merge: an intersection of per-group unions, plus
/// the temp segments produced by reduction (freed when the query ends).
pub struct MergeStream {
    intersect: IntersectStream,
}

impl MergeStream {
    /// Pull the next ID, attributing its I/O to `Merge`.
    pub fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Option<Id>> {
        ctx.tracked(OpKind::Merge, |dev| self.intersect.next(dev))
    }
}

/// Total RAM buffers the final merge pass would need for these groups.
fn flash_sources(groups: &[Vec<IdSource>]) -> usize {
    groups
        .iter()
        .flat_map(|g| g.iter())
        .map(|s| s.buffers_needed())
        .sum()
}

/// Pick the group the reduction phase spills next, under `policy`. Only
/// groups with ≥ 2 flash sublists can make progress (unioning a single
/// sublist with nothing just copies it); `None` when no group qualifies.
fn pick_spill_group(groups: &[Vec<IdSource>], policy: SpillPolicy) -> Option<usize> {
    let reducible = |g: &Vec<IdSource>| g.iter().filter(|s| s.buffers_needed() > 0).count() >= 2;
    match policy {
        SpillPolicy::WidestSmallest => (0..groups.len())
            .filter(|i| reducible(&groups[*i]))
            .max_by_key(|i| groups[*i].iter().map(|s| s.buffers_needed()).sum::<usize>()),
        SpillPolicy::GlobalSmallestK => (0..groups.len())
            .filter(|i| reducible(&groups[*i]))
            .min_by_key(|i| {
                groups[*i]
                    .iter()
                    .filter(|s| s.buffers_needed() > 0)
                    .map(|s| s.count())
                    .min()
                    .unwrap_or(u64::MAX)
            }),
    }
}

/// Reduction phase: union the smallest flash sublists of oversized groups
/// into single temp lists until one buffer per remaining sublist fits in
/// `available - reserve` buffers. Reduction I/O (reads *and* temp writes)
/// is Merge cost, matching the paper's accounting of its multi-pass nature.
fn reduce(ctx: &mut ExecCtx<'_>, groups: &mut [Vec<IdSource>], reserve: usize) -> Result<()> {
    loop {
        let avail = ctx.ram().available().saturating_sub(reserve);
        if flash_sources(groups) <= avail {
            return Ok(());
        }
        // At least two readers + one writer are needed to make progress.
        if avail < 2 || ctx.ram().available() < 3 {
            return Err(ExecError::Token(TokenError::OutOfRam {
                requested: 3,
                available: ctx.ram().available(),
                capacity: ctx.ram().capacity(),
            }));
        }
        let Some(gi) = pick_spill_group(groups, ctx.spill) else {
            // Every oversized group holds a single (irreducible) sublist:
            // reduction cannot shrink the buffer need any further.
            return Err(ExecError::Token(TokenError::OutOfRam {
                requested: flash_sources(groups) + reserve,
                available: ctx.ram().available(),
                capacity: ctx.ram().capacity(),
            }));
        };
        // Partition: flash sublists (candidates) vs free sources.
        let group = std::mem::take(&mut groups[gi]);
        let (mut flash, other): (Vec<IdSource>, Vec<IdSource>) =
            group.into_iter().partition(|s| s.buffers_needed() > 0);
        // Smallest-first; merge as many as the arena allows at once
        // (readers k + 1 writer ≤ available).
        flash.sort_by_key(|s| s.count());
        let k = flash.len().min(ctx.ram().available() - 1);
        let batch: Vec<IdSource> = flash.drain(..k).collect();
        let merged = ctx.track(OpKind::Merge, |ctx| union_to_temp(ctx, &batch))?;
        let mut rebuilt = other;
        rebuilt.push(IdSource::Flash(merged));
        rebuilt.extend(flash);
        groups[gi] = rebuilt;
    }
}

/// Union a batch of sources into a fresh temp list.
fn union_to_temp(ctx: &mut ExecCtx<'_>, batch: &[IdSource]) -> Result<IdList> {
    let max_ids: u64 = batch.iter().map(|s| s.count()).sum();
    let page_size = ctx.page_size();
    let ram = ctx.ram();
    let mut writer = IdListWriter::create(ctx.lane.alloc(), &ram, max_ids, page_size)?;
    ctx.add_temp(writer.segment());
    let readers = batch
        .iter()
        .map(|s| SourceReader::open(s, &ram, page_size))
        .collect::<Result<Vec<_>>>()?;
    let mut union = UnionStream::new(readers);
    ctx.lane.with_flash(|dev| {
        while let Some(id) = union.next(dev)? {
            writer.push(dev, id)?;
        }
        Ok(writer.finish(dev)?)
    })
}

/// Open a merge over CNF groups, reserving `reserve` RAM buffers for the
/// downstream consumer (pipelining budget, §3.4). Runs the reduction phase
/// if needed.
pub fn open_merge(
    ctx: &mut ExecCtx<'_>,
    mut groups: Vec<Vec<IdSource>>,
    reserve: usize,
) -> Result<MergeStream> {
    reduce(ctx, &mut groups, reserve)?;
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let unions = groups
        .iter()
        .map(|g| UnionStream::open(g, &ram, page_size))
        .collect::<Result<Vec<_>>>()?;
    Ok(MergeStream {
        intersect: IntersectStream::new(unions),
    })
}

/// Merge to a materialised sorted ID list on flash. Read side is Merge,
/// output writes are Store.
pub fn merge_to_list(ctx: &mut ExecCtx<'_>, groups: Vec<Vec<IdSource>>) -> Result<IdList> {
    let max_ids: u64 = groups
        .iter()
        .map(|g| g.iter().map(|s| s.count()).sum::<u64>())
        .min()
        .unwrap_or(0);
    // One output buffer reserved for the writer.
    let mut stream = open_merge(ctx, groups, 1)?;
    let page_size = ctx.page_size();
    let ram = ctx.ram();
    let mut writer = IdListWriter::create(ctx.lane.alloc(), &ram, max_ids, page_size)?;
    ctx.add_temp(writer.segment());
    loop {
        let id = stream.next(ctx)?;
        let Some(id) = id else { break };
        ctx.tracked(OpKind::Store, |dev| writer.push(dev, id))?;
    }
    ctx.tracked(OpKind::Store, |dev| Ok(writer.finish(dev)?))
}

/// Merge straight into a host vector (used when the next consumer is a
/// channel-style probe list; the result is small by construction).
///
/// When every source is a host-resident list the merge costs no flash I/O
/// under either evaluation, so it short-circuits to galloping sorted-set
/// operations instead of spinning up the streaming machinery — same ids,
/// same (zero) simulated cost, far fewer host cycles. `Range` sources stay
/// on the streaming path: it walks them in O(1) memory, while the set
/// operations would materialise them.
pub fn merge_to_vec(ctx: &mut ExecCtx<'_>, groups: Vec<Vec<IdSource>>) -> Result<Vec<Id>> {
    if groups
        .iter()
        .all(|g| g.iter().all(|s| matches!(s, IdSource::Host(_))))
    {
        return merge_host_groups(&groups, ctx.intra);
    }
    merge_to_vec_streaming(ctx, groups)
}

/// The streaming evaluation of [`merge_to_vec`] (always correct, charges
/// I/O for flash sources). Public within the crate so equivalence tests
/// and `perfbench` can pit the host fast path against it.
pub fn merge_to_vec_streaming(
    ctx: &mut ExecCtx<'_>,
    groups: Vec<Vec<IdSource>>,
) -> Result<Vec<Id>> {
    let mut stream = open_merge(ctx, groups, 0)?;
    let mut out = Vec::new();
    while let Some(id) = stream.next(ctx)? {
        out.push(id);
    }
    Ok(out)
}

/// Host ids below this total are unioned on the calling thread: the spawn
/// cost of a worker pool dwarfs the merge itself.
const HOST_FAN_OUT_MIN_IDS: u64 = 16_384;

/// `∩i{∪j{...}}` over host-resident sources: per-group sorted unions, then
/// galloping intersection across groups, smallest group first so the driver
/// side of every intersection stays minimal.
///
/// The per-group unions — the inputs to the k-way intersection — are
/// independent pure-CPU jobs, so with `intra > 1` and enough ids they fan
/// across worker threads via [`crate::parallel::fan_out`]. The unions touch
/// neither flash nor RAM arena, so results and (zero) simulated cost are
/// trivially identical to the serial loop.
fn merge_host_groups(groups: &[Vec<IdSource>], intra: usize) -> Result<Vec<Id>> {
    let total_ids: u64 = groups
        .iter()
        .flat_map(|g| g.iter())
        .map(|s| s.count())
        .sum();
    let mut unions: Vec<Vec<Id>> =
        if intra > 1 && groups.len() > 1 && total_ids >= HOST_FAN_OUT_MIN_IDS {
            crate::parallel::fan_out(
                groups.len(),
                intra,
                || Ok(()),
                |_, i| Ok(union_host_group(&groups[i])),
            )?
        } else {
            groups.iter().map(|g| union_host_group(g)).collect()
        };
    unions.sort_by_key(|u| u.len());
    let mut iter = unions.into_iter();
    let Some(mut acc) = iter.next() else {
        return Ok(Vec::new());
    };
    for u in iter {
        if acc.is_empty() {
            return Ok(acc);
        }
        acc = intersect_sorted(&acc, &u);
    }
    Ok(acc)
}

/// Sorted, duplicate-free union of one host-only group.
fn union_host_group(g: &[IdSource]) -> Vec<Id> {
    let host = |s: &IdSource| -> crate::source::SharedIds {
        match s {
            IdSource::Host(v) => v.clone(),
            _ => unreachable!("host fast path"),
        }
    };
    match g.len() {
        0 => Vec::new(),
        // union_sorted against the empty list collapses duplicates
        // inside the single source, matching the stream.
        1 => union_sorted(&host(&g[0]), &[]),
        2 => union_sorted(&host(&g[0]), &host(&g[1])),
        // Wider groups: one concat + sort + dedup instead of repeated
        // pairwise unions re-copying the accumulator per source.
        _ => {
            let mut all: Vec<Id> = Vec::with_capacity(g.iter().map(|s| s.count() as usize).sum());
            for s in g {
                all.extend_from_slice(&host(s));
            }
            all.sort_unstable();
            all.dedup();
            all
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use std::sync::Arc;

    #[test]
    fn host_fast_path_matches_streaming_merge() {
        let mut db = testkit::tiny_db();
        let groups = |dup: bool| -> Vec<Vec<IdSource>> {
            vec![
                // Three sources: exercises the concat+sort wide-group arm.
                vec![
                    IdSource::Host(Arc::new((0..200).map(|i| i * 3).collect())),
                    IdSource::Host(Arc::new(if dup {
                        vec![1, 1, 5, 9, 9]
                    } else {
                        vec![1, 5, 9]
                    })),
                    IdSource::Host(Arc::new(vec![4, 300])),
                ],
                vec![IdSource::Host(Arc::new((0..300).collect()))],
                vec![IdSource::Host(Arc::new((0..150).map(|i| i * 2).collect()))],
            ]
        };
        for dup in [false, true] {
            let mut ctx = crate::ExecCtx::new(&mut db);
            let fast = merge_to_vec(&mut ctx, groups(dup)).unwrap();
            let streamed = merge_to_vec_streaming(&mut ctx, groups(dup)).unwrap();
            assert_eq!(fast, streamed);
            assert!(!fast.is_empty());
        }
    }

    #[test]
    fn host_fast_path_is_thread_count_invariant() {
        // The fanned per-group unions must return exactly the serial ids.
        let groups = || -> Vec<Vec<IdSource>> {
            vec![
                vec![
                    IdSource::Host(Arc::new((0..20_000).map(|i| i * 2).collect())),
                    IdSource::Host(Arc::new((0..5_000).map(|i| i * 7).collect())),
                ],
                vec![IdSource::Host(Arc::new((0..30_000).collect()))],
                vec![IdSource::Host(Arc::new(
                    (0..15_000).map(|i| i * 3).collect(),
                ))],
            ]
        };
        let serial = merge_host_groups(&groups(), 1).unwrap();
        assert!(!serial.is_empty());
        for intra in [2usize, 4, 8] {
            assert_eq!(merge_host_groups(&groups(), intra).unwrap(), serial);
        }
    }

    #[test]
    fn spill_policies_pick_progressable_groups() {
        // Host-only groups have no flash sublists: nothing to spill.
        let groups = vec![vec![IdSource::Host(Arc::new(vec![1, 2, 3]))]];
        assert_eq!(pick_spill_group(&groups, SpillPolicy::WidestSmallest), None);
        assert_eq!(
            pick_spill_group(&groups, SpillPolicy::GlobalSmallestK),
            None
        );
    }

    #[test]
    fn spill_policy_group_choice_differs() {
        let mut db = testkit::tiny_db();
        let mut ctx = crate::ExecCtx::new(&mut db);
        let ram = ctx.ram();
        let page_size = ctx.page_size();
        // Build flash lists: group 0 = two big lists, group 1 = three tiny.
        let mk = |ctx: &mut crate::ExecCtx<'_>, ids: &[Id]| -> IdSource {
            let mut w =
                IdListWriter::create(ctx.lane.alloc(), &ram, ids.len() as u64, page_size).unwrap();
            ctx.add_temp(w.segment());
            let list = ctx.lane.with_flash(|dev| {
                for id in ids {
                    w.push(dev, *id).unwrap();
                }
                w.finish(dev).unwrap()
            });
            IdSource::Flash(list)
        };
        let big: Vec<Id> = (0..2000).collect();
        let tiny: Vec<Id> = vec![1, 2, 3];
        let groups = vec![
            vec![mk(&mut ctx, &big), mk(&mut ctx, &big)],
            vec![
                mk(&mut ctx, &tiny),
                mk(&mut ctx, &tiny),
                mk(&mut ctx, &tiny),
            ],
        ];
        // Widest spills the 3-sublist group; global-smallest-k spills the
        // group holding the smallest sublist — here the same group, so
        // distinguish by count: group 1 has the smallest lists AND most
        // sublists. Make group 0 wider instead.
        assert_eq!(
            pick_spill_group(&groups, SpillPolicy::WidestSmallest),
            Some(1)
        );
        assert_eq!(
            pick_spill_group(&groups, SpillPolicy::GlobalSmallestK),
            Some(1)
        );
        let groups2 = vec![
            vec![
                groups[0][0].clone(),
                groups[0][1].clone(),
                groups[0][0].clone(),
            ],
            vec![groups[1][0].clone(), groups[1][1].clone()],
        ];
        assert_eq!(
            pick_spill_group(&groups2, SpillPolicy::WidestSmallest),
            Some(0)
        );
        assert_eq!(
            pick_spill_group(&groups2, SpillPolicy::GlobalSmallestK),
            Some(1)
        );
        ctx.free_temps().unwrap();
    }

    #[test]
    fn range_sources_stay_on_the_streaming_path() {
        // Ranges must not be materialised by the fast path; the result is
        // still identical between entry point and streaming evaluation.
        let mut db = testkit::tiny_db();
        let groups = || -> Vec<Vec<IdSource>> {
            vec![
                vec![IdSource::Host(Arc::new((0..100).map(|i| i * 2).collect()))],
                vec![IdSource::Range {
                    start: 50,
                    end: 180,
                }],
            ]
        };
        let mut ctx = crate::ExecCtx::new(&mut db);
        let a = merge_to_vec(&mut ctx, groups()).unwrap();
        let b = merge_to_vec_streaming(&mut ctx, groups()).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn empty_groups_and_empty_group_edge_cases() {
        let mut db = testkit::tiny_db();
        let mut ctx = crate::ExecCtx::new(&mut db);
        assert_eq!(merge_to_vec(&mut ctx, vec![]).unwrap(), Vec::<Id>::new());
        let groups = vec![
            vec![IdSource::Host(Arc::new(vec![1, 2, 3]))],
            vec![IdSource::Host(Arc::new(Vec::new()))],
        ];
        assert_eq!(merge_to_vec(&mut ctx, groups).unwrap(), Vec::<Id>::new());
    }
}
