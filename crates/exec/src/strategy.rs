//! Filtering strategies for visible selections (paper §3.3, Figures 8–11).
//!
//! Every visible selection can be processed by:
//!
//! * **Pre-Filter** — ship the visible ids, probe the primary-key climbing
//!   index once per id, and merge the resulting root sublists (pushes the
//!   selection before the joins; suffers repetitive lookups + huge merges
//!   at low selectivity);
//! * **Cross-Pre** — first intersect the visible ids with hidden selections
//!   climbing to the *same* table, shrinking the probe list;
//! * **Post-Filter** — build a Bloom filter over the visible ids and probe
//!   it behind `SJoin` (pushes the selection after the joins; introduces
//!   false positives discarded at projection time);
//! * **Cross-Post** — Bloom over the cross-intersected set (smaller filter,
//!   fewer false positives);
//! * **Post-Select / Cross-Post-Select** — the exact-RAM-filter baseline of
//!   Figure 11;
//! * **NoFilter** — defer the visible selection entirely to projection time
//!   (also the automatic fallback when a Bloom filter would saturate,
//!   reproducing the Figure 10 cutoff at sV = 0.5).

use crate::bloom_ops::{build_bloom, BloomHandle};
use crate::ci_ops::{probe_in, select_sublists, select_sublists_multi};
use crate::ctx::ExecCtx;
use crate::error::ExecError;
use crate::merge::{merge_to_list, merge_to_vec, open_merge};
use crate::query::Analyzed;
use crate::report::OpKind;
use crate::sjoin::{sjoin_stream, SJoinTable, SJoinWriter};
use crate::source::{IdSource, SharedIds};
use crate::Result;
use ghostdb_bloom::calibrate;
use ghostdb_storage::{Id, IdList, Predicate, TableId};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Strategy for one visible selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisStrategy {
    /// Selection before joins via pk-index probes.
    Pre,
    /// Pre with cross-filtering against subtree hidden selections.
    CrossPre,
    /// Bloom filter behind SJoin.
    Post,
    /// Bloom over the cross-intersected set.
    CrossPost,
    /// Exact RAM filter behind SJoin (Figure 11 baseline).
    PostSelect,
    /// Exact RAM filter over the cross-intersected set.
    CrossPostSelect,
    /// Defer the visible selection to projection time.
    NoFilter,
}

impl VisStrategy {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            VisStrategy::Pre => "Pre-Filter",
            VisStrategy::CrossPre => "Cross-Pre-Filter",
            VisStrategy::Post => "Post-Filter",
            VisStrategy::CrossPost => "Cross-Post-Filter",
            VisStrategy::PostSelect => "Post-Select",
            VisStrategy::CrossPostSelect => "Cross-Post-Select",
            VisStrategy::NoFilter => "NoFilter",
        }
    }

    fn is_cross(&self) -> bool {
        matches!(
            self,
            VisStrategy::CrossPre | VisStrategy::CrossPost | VisStrategy::CrossPostSelect
        )
    }

    /// True for strategies that filter behind the SJoin.
    pub fn is_post(&self) -> bool {
        matches!(
            self,
            VisStrategy::Post
                | VisStrategy::CrossPost
                | VisStrategy::PostSelect
                | VisStrategy::CrossPostSelect
        )
    }
}

/// Per-visible-table strategy decision.
#[derive(Debug, Clone, Copy)]
pub struct VisDecision {
    /// The table carrying visible predicates.
    pub table: TableId,
    /// Chosen strategy.
    pub strategy: VisStrategy,
}

/// The select-join result.
#[derive(Debug)]
pub enum RootIds {
    /// No selection at all: every root tuple qualifies.
    All,
    /// Sorted, duplicate-free root ids (pre-filter outcomes; exact up to
    /// deferred/approximate components listed in the outcome).
    List(IdList),
    /// Materialised `<idT0, idTi …>` rows (post-filter outcomes).
    Table(SJoinTable),
}

/// Outcome of QEPSJ, handed to the projection phase.
#[derive(Debug)]
pub struct SjOutcome {
    /// The surviving root tuples.
    pub root: RootIds,
    /// Visible tables filtered approximately (Bloom): projection must
    /// discard false positives with the exact visible id set.
    pub approx_vis: Vec<TableId>,
    /// Visible tables whose selection was not applied at all in QEPSJ:
    /// projection must apply it.
    pub deferred_vis: Vec<TableId>,
    /// Hidden predicates needing exact re-checks at projection time
    /// (non-injective index keys).
    pub recheck: Vec<(TableId, Predicate)>,
}

impl SjOutcome {
    /// True when the root set may contain rows that must still be filtered
    /// out during projection.
    pub fn needs_projection_filtering(&self) -> bool {
        !self.approx_vis.is_empty() || !self.deferred_vis.is_empty() || !self.recheck.is_empty()
    }
}

struct PostPlan {
    table: TableId,
    strategy: VisStrategy,
    /// Ids the filter is built over (vis ids, or the cross-intersected set).
    ids: SharedIds,
}

/// Execute the select-join part of the plan under the given per-table
/// strategies. `proj_tables` lists tables the projection phase will need id
/// columns for (they are folded into the SJoin projection, footnote 7).
pub fn execute_sj(
    ctx: &mut ExecCtx<'_>,
    a: &Analyzed,
    decisions: &[VisDecision],
    proj_tables: &[TableId],
) -> Result<SjOutcome> {
    let schema = ctx.cat.schema;
    let root = schema.root();
    let mut groups: Vec<Vec<IdSource>> = Vec::new();
    let mut crossed: HashSet<usize> = HashSet::new();
    // Root-level sublists banked by Cross-Post traversals: the hidden loop
    // below consumes these instead of re-walking the B+-tree (the paper's
    // "redundant lookup" of Cross-Post plans, avoided via the multi-level
    // read path).
    let mut root_prefetch: HashMap<usize, Vec<IdSource>> = HashMap::new();
    let mut post_plans: Vec<PostPlan> = Vec::new();
    let mut approx_vis = Vec::new();
    let mut deferred_vis = Vec::new();

    // Visible selections, per decision.
    for (t, preds) in &a.vis_preds {
        let decision = decisions
            .iter()
            .find(|d| d.table == *t)
            .copied()
            .unwrap_or(VisDecision {
                table: *t,
                strategy: VisStrategy::Pre,
            });
        let strategy = decision.strategy;
        if strategy == VisStrategy::NoFilter {
            deferred_vis.push(*t);
            continue;
        }
        // Ship the sorted visible id list (ids only at this stage).
        let shipment = ctx.vis(*t, preds, &[])?;
        let vis_ids: SharedIds = Arc::new(shipment.ids);

        // Cross-intersection with subtree hidden selections.
        let cross_ids: Option<SharedIds> = if strategy.is_cross() {
            let sels: Vec<(usize, &crate::query::HiddenSel)> = a
                .hid_sels
                .iter()
                .enumerate()
                .filter(|(_, h)| schema.is_ancestor_or_self(*t, h.table))
                .collect();
            if sels.is_empty() {
                return Err(ExecError::StrategyNotApplicable(format!(
                    "{} on {}: no hidden selection on the table or its subtree",
                    strategy.name(),
                    schema.def(*t).name
                )));
            }
            let mut lgroups: Vec<Vec<IdSource>> = vec![vec![IdSource::Host(vis_ids.clone())]];
            for (i, sel) in &sels {
                let ci = ctx.attr_index(sel.table, &sel.pred.column)?;
                // Cross-PRE applies these hidden selections exactly through
                // the probe; they leave the root groups. Cross-POST keeps
                // them (the Bloom filter is approximate), so the same index
                // is walked again for the root level in the hidden loop
                // below — decode both levels from one traversal instead.
                if strategy == VisStrategy::CrossPre {
                    lgroups.push(select_sublists(ctx, ci, &sel.pred, *t)?);
                    crossed.insert(*i);
                } else if root_prefetch.contains_key(i) {
                    // An earlier visible table already banked the root
                    // sublists of this hidden selection; only the cross
                    // level is needed here.
                    lgroups.push(select_sublists(ctx, ci, &sel.pred, *t)?);
                } else {
                    let mut both = select_sublists_multi(ctx, ci, &sel.pred, &[*t, root])?;
                    let root_subs = both.pop().expect("two requested levels");
                    lgroups.push(both.pop().expect("two requested levels"));
                    root_prefetch.insert(*i, root_subs);
                }
            }
            Some(Arc::new(merge_to_vec(ctx, lgroups)?))
        } else {
            None
        };

        match strategy {
            VisStrategy::Pre | VisStrategy::CrossPre => {
                let probe_list = cross_ids.unwrap_or_else(|| vis_ids.clone());
                if *t == root {
                    groups.push(vec![IdSource::Host(probe_list)]);
                } else {
                    let ci = ctx.pk_index(*t)?;
                    let subs = probe_in(ctx, ci, &probe_list, root)?;
                    if subs.is_empty() {
                        // Empty selection: empty group → empty intersection.
                        groups.push(vec![IdSource::Host(Arc::new(Vec::new()))]);
                    } else {
                        groups.push(subs);
                    }
                }
            }
            VisStrategy::Post
            | VisStrategy::CrossPost
            | VisStrategy::PostSelect
            | VisStrategy::CrossPostSelect => {
                post_plans.push(PostPlan {
                    table: *t,
                    strategy,
                    ids: cross_ids.unwrap_or(vis_ids),
                });
            }
            VisStrategy::NoFilter => unreachable!("handled above"),
        }
    }

    // Hidden selections not folded into a Cross-Pre probe climb to the
    // root — via the sublists a Cross-Post traversal already banked where
    // possible, a fresh single-level scan otherwise.
    for (i, sel) in a.hid_sels.iter().enumerate() {
        if crossed.contains(&i) {
            continue;
        }
        let subs = match root_prefetch.remove(&i) {
            Some(subs) => subs,
            None => {
                let ci = ctx.attr_index(sel.table, &sel.pred.column)?;
                select_sublists(ctx, ci, &sel.pred, root)?
            }
        };
        if subs.is_empty() {
            groups.push(vec![IdSource::Host(Arc::new(Vec::new()))]);
        } else {
            groups.push(subs);
        }
    }

    // Exact re-checks the projection must run.
    let recheck: Vec<(TableId, Predicate)> = a
        .hid_sels
        .iter()
        .filter(|h| !h.exact)
        .map(|h| (h.table, h.pred.clone()))
        .collect();

    if post_plans.is_empty() {
        let root_ids = if groups.is_empty() {
            RootIds::All
        } else {
            RootIds::List(merge_to_list(ctx, groups)?)
        };
        return Ok(SjOutcome {
            root: root_ids,
            approx_vis,
            deferred_vis,
            recheck,
        });
    }

    // Post side: Bloom filters (or exact RAM filters) probed behind SJoin.
    let mut bloom_filters: Vec<(TableId, BloomHandle)> = Vec::new();
    let mut exact_filters: Vec<(TableId, SharedIds)> = Vec::new();
    for plan in post_plans {
        match plan.strategy {
            VisStrategy::Post | VisStrategy::CrossPost => {
                // Leave merge + SJoin room: 2 scan buffers, 1 output, and a
                // little merge headroom; everything else may go to the BF.
                let reserve = 6usize.min(ctx.ram().capacity() / 2);
                let budget = (ctx.ram().available().saturating_sub(reserve)) * ctx.ram().buf_size();
                let n = plan.ids.len() as u64;
                let useful = calibrate(n, budget)
                    .map(|c| {
                        // Fraction of the SJoin stream the filter passes:
                        // genuine matches + fp on the rest.
                        let sel = n as f64 / ctx.cat.rows[plan.table].max(1) as f64;
                        sel + (1.0 - sel) * c.expected_fp < 0.7
                    })
                    .unwrap_or(false);
                if !useful {
                    // Figure 10: "Post-Filter is simply not executed and the
                    // selection is postponed to projection time."
                    deferred_vis.push(plan.table);
                    continue;
                }
                let sources = vec![IdSource::Host(plan.ids.clone())];
                let bf = build_bloom(ctx, OpKind::Bloom, n, &sources, budget)?
                    .expect("calibrate() succeeded above");
                approx_vis.push(plan.table);
                bloom_filters.push((plan.table, bf));
            }
            VisStrategy::PostSelect | VisStrategy::CrossPostSelect => {
                exact_filters.push((plan.table, plan.ids));
            }
            _ => unreachable!("post_plans only hold post strategies"),
        }
    }

    // Column set of F': root + post/filter tables + projection tables.
    let mut cols: Vec<TableId> = Vec::new();
    for t in bloom_filters
        .iter()
        .map(|(t, _)| *t)
        .chain(exact_filters.iter().map(|(t, _)| *t))
        .chain(proj_tables.iter().copied())
        .chain(recheck.iter().map(|(t, _)| *t))
        .chain(deferred_vis.iter().copied())
    {
        if t != root && !cols.contains(&t) {
            cols.push(t);
        }
    }

    // Merge → SJoin → ProbeBF, pipelined (reduction guarantees the merge
    // fits beside the already-allocated Bloom RAM; SJoin needs 2 buffers +
    // 1 writer buffer → reserve 3).
    if groups.is_empty() {
        groups.push(vec![IdSource::Range {
            start: 0,
            end: ctx.cat.rows[root] as Id,
        }]);
    }
    let upper: u64 = groups
        .iter()
        .map(|g| g.iter().map(|s| s.count()).sum::<u64>())
        .min()
        .unwrap_or(0);
    let mut stream = open_merge(ctx, groups, 3)?;
    if cols.is_empty() {
        // Root-only plan (single-table schema or all filters on the root):
        // no SKT is involved, probe the owner ids directly.
        let mut writer = SJoinWriter::create(ctx, root, &cols, upper)?;
        'ids: while let Some(id) = stream.next(ctx)? {
            for (_, bf) in &bloom_filters {
                if !bf.contains(id) {
                    continue 'ids;
                }
            }
            writer.push(ctx, id, &[])?;
        }
        drop(bloom_filters);
        let mut table = writer.finish(ctx)?;
        for (t, ids) in exact_filters {
            table = post_select_pass(ctx, table, t, &ids)?;
        }
        return Ok(SjOutcome {
            root: RootIds::Table(table),
            approx_vis,
            deferred_vis,
            recheck,
        });
    }
    let skt = ctx.skt(root)?;
    let mut writer = SJoinWriter::create(ctx, root, &cols, upper)?;
    let col_tables = cols.clone();
    sjoin_stream(
        ctx,
        skt,
        &cols,
        |ctx| stream.next(ctx),
        |ctx, id, targets| {
            for (t, bf) in &bloom_filters {
                // Root-table filters probe the owner id itself.
                let probe = if *t == root {
                    id
                } else {
                    let idx = col_tables.iter().position(|c| c == t).expect("col present");
                    targets[idx]
                };
                if !bf.contains(probe) {
                    return Ok(());
                }
            }
            writer.push(ctx, id, targets)
        },
    )?;
    drop(bloom_filters);
    let mut table = writer.finish(ctx)?;

    // Exact post-selects (Figure 11): RAM-chunked passes over F'.
    for (t, ids) in exact_filters {
        table = post_select_pass(ctx, table, t, &ids)?;
    }

    Ok(SjOutcome {
        root: RootIds::Table(table),
        approx_vis,
        deferred_vis,
        recheck,
    })
}

/// Post-Select: filter F' against an exact id set, loading the set into RAM
/// chunk by chunk and re-scanning F' per chunk (the multi-pass behaviour
/// that makes Figure 11's Post-Select curve expensive at low selectivity).
fn post_select_pass(
    ctx: &mut ExecCtx<'_>,
    table: SJoinTable,
    t: TableId,
    ids: &[Id],
) -> Result<SJoinTable> {
    let col = table
        .col_of(t)
        .ok_or_else(|| ExecError::Query("post-select column missing in F'".into()))?;
    // RAM chunk: leave 3 buffers for the scan + writer.
    let chunk_ids = ((ctx.ram().available().saturating_sub(3)) * ctx.ram().buf_size() / 4).max(1);
    let n_chunks = (ids.len() as u64).div_ceil(chunk_ids as u64).max(1);

    // Each pass scans F' fully and emits survivors of its chunk; since a row
    // matches exactly one chunk (chunks partition the id set), passes append
    // disjoint row sets. Rows must end sorted by root id: passes emit in F'
    // order, so we merge the per-pass runs at the end.
    let mut runs: Vec<SJoinTable> = Vec::new();
    for c in 0..n_chunks {
        let lo = (c * chunk_ids as u64) as usize;
        let hi = ((c + 1) * chunk_ids as u64).min(ids.len() as u64) as usize;
        let chunk: HashSet<Id> = ids[lo..hi].iter().copied().collect();
        // Hold the chunk in a RAM region (honest accounting of "loads in
        // RAM the IDs resulting from the Visible selection").
        let buffers_needed = (((hi - lo) * 4).div_ceil(ctx.ram().buf_size())).max(1);
        let _region = ctx
            .ram()
            .alloc_region(buffers_needed.min(ctx.ram().available().saturating_sub(3).max(1)))?;
        let ram = ctx.ram();
        let page_size = ctx.page_size();
        let mut reader = table.table.reader(&ram, page_size)?;
        let mut writer =
            SJoinWriter::create(ctx, table.cols[0], &table.cols[1..], table.table.rows())?;
        loop {
            // One attributed scope per row: read + decode + chunk probe.
            let next = ctx.tracked(OpKind::SJoin, |dev| -> Result<_> {
                let row = reader.next_row(dev)?;
                let Some(row) = row else { return Ok(None) };
                let layout = &table.table.layout;
                let owner = layout.get_id(row, 0);
                let mut targets = Vec::with_capacity(table.cols.len() - 1);
                for i in 1..table.cols.len() {
                    targets.push(layout.get_id(row, i));
                }
                let keep = chunk.contains(&targets[col - 1]);
                Ok(Some((owner, targets, keep)))
            })?;
            let Some((owner, targets, keep)) = next else {
                break;
            };
            if keep {
                writer.push(ctx, owner, &targets)?;
            }
        }
        runs.push(writer.finish(ctx)?);
    }
    if runs.len() == 1 {
        return Ok(runs.into_iter().next().expect("one run"));
    }
    merge_sjoin_runs(ctx, runs)
}

/// K-way merge of SJoin run tables by root id (column 0).
fn merge_sjoin_runs(ctx: &mut ExecCtx<'_>, runs: Vec<SJoinTable>) -> Result<SJoinTable> {
    let cols = runs[0].cols.clone();
    let total: u64 = runs.iter().map(|r| r.table.rows()).sum();
    let ram = ctx.ram();
    let page_size = ctx.page_size();
    let mut readers = runs
        .iter()
        .map(|r| {
            r.table
                .reader(&ram, page_size)
                .map_err(crate::error::ExecError::from)
        })
        .collect::<Result<Vec<_>>>()?;
    let mut heads: Vec<Option<Vec<u8>>> = Vec::new();
    for r in readers.iter_mut() {
        let h = ctx.tracked(OpKind::SJoin, |dev| {
            Ok::<_, crate::ExecError>(r.next_row(dev)?.map(|row| row.to_vec()))
        })?;
        heads.push(h);
    }
    let mut writer = SJoinWriter::create(ctx, cols[0], &cols[1..], total)?;
    let layout = runs[0].table.layout.clone();
    loop {
        let mut best: Option<usize> = None;
        for (i, h) in heads.iter().enumerate() {
            if let Some(row) = h {
                let key = layout.get_id(row, 0);
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let bkey = layout.get_id(heads[b].as_ref().expect("best"), 0);
                        if key < bkey {
                            best = Some(i);
                        }
                    }
                }
            }
        }
        let Some(b) = best else { break };
        let row = heads[b].take().expect("best head");
        let owner = layout.get_id(&row, 0);
        let targets: Vec<Id> = (1..cols.len()).map(|i| layout.get_id(&row, i)).collect();
        writer.push(ctx, owner, &targets)?;
        heads[b] = ctx.tracked(OpKind::SJoin, |dev| {
            Ok::<_, crate::ExecError>(readers[b].next_row(dev)?.map(|r| r.to_vec()))
        })?;
    }
    writer.finish(ctx)
}
