//! `BuildBF` / `ProbeBF` operators (paper §3.3–§3.4).

use crate::ctx::ExecCtx;
use crate::report::OpKind;
use crate::source::{IdSource, SourceReader, UnionStream};
use crate::Result;
use ghostdb_bloom::{calibrate, BloomCalibration, BloomFilter};
use ghostdb_storage::Id;
use ghostdb_token::RamRegion;

/// A Bloom filter held in secure-RAM buffers.
pub struct BloomHandle {
    filter: BloomFilter<RamRegion>,
    /// Calibration that produced it.
    pub calibration: BloomCalibration,
}

impl BloomHandle {
    /// Membership probe.
    pub fn contains(&self, id: Id) -> bool {
        self.filter.contains(id as u64)
    }

    /// Elements inserted.
    pub fn inserted(&self) -> u64 {
        self.filter.inserted()
    }
}

/// Calibrate and build a Bloom filter over a set of ID sources within
/// `budget_bytes` of RAM. Returns `None` when even a degraded filter is
/// hopeless (< 1 bit per element), per §3.4.
///
/// `op` attributes the build I/O: `Bloom` during select-join processing,
/// `ProjBloom` during projection.
pub fn build_bloom(
    ctx: &mut ExecCtx<'_>,
    op: OpKind,
    n: u64,
    sources: &[IdSource],
    budget_bytes: usize,
) -> Result<Option<BloomHandle>> {
    let Some(cal) = calibrate(n, budget_bytes) else {
        return Ok(None);
    };
    let buf_size = ctx.ram().buf_size();
    let buffers = cal.bytes.div_ceil(buf_size).max(1);
    let region = ctx.ram().alloc_region(buffers)?;
    let mut filter = BloomFilter::new(region, cal.m_bits, cal.k);
    ctx.track(op, |ctx| {
        let ram = ctx.ram();
        let readers = sources
            .iter()
            .map(|s| SourceReader::open(s, &ram, ctx.page_size()))
            .collect::<Result<Vec<_>>>()?;
        let mut union = UnionStream::new(readers);
        ctx.lane.with_flash(|dev| {
            while let Some(id) = union.next(dev)? {
                filter.insert(id as u64);
            }
            Ok(())
        })
    })?;
    Ok(Some(BloomHandle {
        filter,
        calibration: cal,
    }))
}

/// Build a Bloom filter from an ID iterator already streaming through the
/// token (e.g. a pipelined merge); the caller attributes the producer's I/O.
pub fn build_bloom_from_iter(
    ctx: &mut ExecCtx<'_>,
    n_estimate: u64,
    budget_bytes: usize,
    mut next: impl FnMut(&mut ExecCtx<'_>) -> Result<Option<Id>>,
) -> Result<Option<BloomHandle>> {
    let Some(cal) = calibrate(n_estimate, budget_bytes) else {
        return Ok(None);
    };
    let buf_size = ctx.ram().buf_size();
    let buffers = cal.bytes.div_ceil(buf_size).max(1);
    let region = ctx.ram().alloc_region(buffers)?;
    let mut filter = BloomFilter::new(region, cal.m_bits, cal.k);
    while let Some(id) = next(ctx)? {
        filter.insert(id as u64);
    }
    Ok(Some(BloomHandle {
        filter,
        calibration: cal,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::testkit;

    #[test]
    fn bloom_over_sources_has_no_false_negatives() {
        let mut db: Database = testkit::tiny_db();
        let mut ctx = ExecCtx::new(&mut db);
        let ids: Vec<Id> = (0..500).map(|i| i * 2).collect();
        let sources = vec![IdSource::Host(std::sync::Arc::new(ids.clone()))];
        let bf = build_bloom(&mut ctx, OpKind::Bloom, 500, &sources, 4096)
            .unwrap()
            .unwrap();
        for id in ids {
            assert!(bf.contains(id));
        }
        assert_eq!(bf.inserted(), 500);
    }

    #[test]
    fn hopeless_budget_yields_none() {
        let mut db: Database = testkit::tiny_db();
        let mut ctx = ExecCtx::new(&mut db);
        let sources = vec![IdSource::Range {
            start: 0,
            end: 1_000_000,
        }];
        assert!(
            build_bloom(&mut ctx, OpKind::Bloom, 1_000_000, &sources, 1024)
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn bloom_consumes_arena_buffers_and_releases_on_drop() {
        let mut db: Database = testkit::tiny_db();
        let mut ctx = ExecCtx::new(&mut db);
        let before = ctx.ram().available();
        let sources = vec![IdSource::Range {
            start: 0,
            end: 8000,
        }];
        let bf = build_bloom(&mut ctx, OpKind::Bloom, 8000, &sources, 16384)
            .unwrap()
            .unwrap();
        // 8000 elements × 8 bits = 8000 bytes = 4 × 2KB buffers.
        assert_eq!(ctx.ram().available(), before - 4);
        drop(bf);
        assert_eq!(ctx.ram().available(), before);
    }
}
