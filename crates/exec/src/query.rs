//! Select-Project-Join query model and analysis (paper §3, "queries of
//! interest": exact-match and range selections followed by equi-joins on
//! key attributes over a tree schema, projections on any attributes).

use crate::error::ExecError;
use crate::Result;
use ghostdb_storage::{Predicate, SchemaTree, TableId, Visibility};

/// A Select-Project-Join query over the tree schema.
///
/// Join predicates are implicit: every mentioned table joins its parent
/// along the schema tree (`Ti.fkj = Tj.id`), and the result unit is one row
/// per root tuple surviving all selections — exactly the paper's generic
/// query form (§3, Figure 3).
#[derive(Debug, Clone)]
pub struct SpjQuery {
    /// Query text as observable on the wire (set by the SQL layer; builder
    /// queries synthesise a canonical form).
    pub text: String,
    /// Tables mentioned in FROM (the root is implied if missing).
    pub tables: Vec<TableId>,
    /// Conjunctive selection predicates, each bound to one table.
    pub predicates: Vec<(TableId, Predicate)>,
    /// Projected columns as (table, column); `"id"` projects the surrogate.
    pub projections: Vec<(TableId, String)>,
}

impl SpjQuery {
    /// Start building a query.
    pub fn new() -> Self {
        SpjQuery {
            text: String::new(),
            tables: Vec::new(),
            predicates: Vec::new(),
            projections: Vec::new(),
        }
    }

    /// Builder: mention a table.
    pub fn table(mut self, t: TableId) -> Self {
        if !self.tables.contains(&t) {
            self.tables.push(t);
        }
        self
    }

    /// Builder: add a predicate.
    pub fn pred(mut self, t: TableId, p: Predicate) -> Self {
        self = self.table(t);
        self.predicates.push((t, p));
        self
    }

    /// Builder: project a column.
    pub fn project(mut self, t: TableId, column: &str) -> Self {
        self = self.table(t);
        self.projections.push((t, column.to_string()));
        self
    }
}

impl Default for SpjQuery {
    fn default() -> Self {
        SpjQuery::new()
    }
}

/// A hidden selection, bound to its climbing index by the analyzer.
#[derive(Debug, Clone)]
pub struct HiddenSel {
    /// Table carrying the predicate.
    pub table: TableId,
    /// The predicate.
    pub pred: Predicate,
    /// Whether index keys are exact for this predicate (no re-check needed).
    pub exact: bool,
}

/// Per-table projection requirements.
#[derive(Debug, Clone, Default)]
pub struct TableProjection {
    /// Visible columns to project.
    pub vis: Vec<String>,
    /// Hidden columns to project.
    pub hid: Vec<String>,
    /// Project the surrogate id.
    pub id: bool,
}

/// The analyzed query the planner and executor work from.
#[derive(Debug, Clone)]
pub struct Analyzed {
    /// Tables involved, root first, then the rest in mention order.
    pub tables: Vec<TableId>,
    /// Visible predicates grouped per table.
    pub vis_preds: Vec<(TableId, Vec<Predicate>)>,
    /// Hidden selections.
    pub hid_sels: Vec<HiddenSel>,
    /// Projection requirements per table (only tables projecting something).
    pub projections: Vec<(TableId, TableProjection)>,
    /// Output column order as (table, column) pairs.
    pub output: Vec<(TableId, String)>,
}

impl Analyzed {
    /// Visible predicates of one table (empty slice if none).
    pub fn vis_preds_of(&self, t: TableId) -> &[Predicate] {
        self.vis_preds
            .iter()
            .find(|(tt, _)| *tt == t)
            .map(|(_, p)| p.as_slice())
            .unwrap_or(&[])
    }

    /// Hidden selections on `t` or any table in `t`'s subtree.
    pub fn hidden_in_subtree(&self, schema: &SchemaTree, t: TableId) -> Vec<&HiddenSel> {
        self.hid_sels
            .iter()
            .filter(|h| schema.is_ancestor_or_self(t, h.table))
            .collect()
    }
}

/// Validate and analyze a query against a schema.
///
/// Checks: tables exist; predicate and projection columns exist with known
/// visibility; the root is included (added implicitly when missing), since
/// result rows are root-anchored.
pub fn analyze(schema: &SchemaTree, q: &SpjQuery) -> Result<Analyzed> {
    let root = schema.root();
    let mut tables = vec![root];
    for t in &q.tables {
        if *t >= schema.len() {
            return Err(ExecError::Query(format!("unknown table id {t}")));
        }
        if !tables.contains(t) {
            tables.push(*t);
        }
    }

    let mut vis_preds: Vec<(TableId, Vec<Predicate>)> = Vec::new();
    let mut hid_sels = Vec::new();
    for (t, p) in &q.predicates {
        let def = schema.def(*t);
        if p.column == "id" {
            // The surrogate is replicated on both sides; the PC can always
            // evaluate it, so treat it as visible.
            push_vis(&mut vis_preds, *t, p.clone());
            continue;
        }
        let col = def
            .column(&p.column)
            .ok_or_else(|| ExecError::Query(format!("unknown column {}.{}", def.name, p.column)))?;
        let p = &coerce(&def.name, col, p)?;
        match col.visibility {
            Visibility::Visible => push_vis(&mut vis_preds, *t, p.clone()),
            Visibility::Hidden => {
                let exact = match &col.ty {
                    ghostdb_storage::ColumnType::Char { width } => *width as usize <= 8,
                    _ => true,
                };
                hid_sels.push(HiddenSel {
                    table: *t,
                    pred: p.clone(),
                    exact,
                });
            }
        }
    }

    let mut projections: Vec<(TableId, TableProjection)> = Vec::new();
    let mut output = Vec::new();
    for (t, cname) in &q.projections {
        let def = schema.def(*t);
        let slot = match projections.iter_mut().find(|(tt, _)| tt == t) {
            Some((_, s)) => s,
            None => {
                projections.push((*t, TableProjection::default()));
                &mut projections.last_mut().expect("just pushed").1
            }
        };
        if cname == "id" {
            slot.id = true;
        } else {
            let col = def.column(cname).ok_or_else(|| {
                ExecError::Query(format!("unknown column {}.{}", def.name, cname))
            })?;
            match col.visibility {
                Visibility::Visible => slot.vis.push(cname.clone()),
                Visibility::Hidden => slot.hid.push(cname.clone()),
            }
        }
        output.push((*t, cname.clone()));
    }

    Ok(Analyzed {
        tables,
        vis_preds,
        hid_sels,
        projections,
        output,
    })
}

/// Type-check and coerce a predicate's literals to the column type, so
/// exact evaluation and order-key ranges agree with the stored encoding
/// (e.g. `bodymassindex > 25` coerces the integer literal to a float).
fn coerce(table: &str, col: &ghostdb_storage::Column, p: &Predicate) -> Result<Predicate> {
    let fix = |v: &ghostdb_storage::Value| -> Result<ghostdb_storage::Value> {
        use ghostdb_storage::{ColumnType, Value};
        match (&col.ty, v) {
            (ColumnType::Int { .. }, Value::Int(_)) => Ok(v.clone()),
            (ColumnType::Float { .. }, Value::Float(_)) => Ok(v.clone()),
            (ColumnType::Float { .. }, Value::Int(i)) => Ok(Value::Float(*i as f64)),
            (ColumnType::Char { .. }, Value::Str(_)) => Ok(v.clone()),
            _ => Err(ExecError::Query(format!(
                "predicate value {v:?} does not match the type of {table}.{}",
                col.name
            ))),
        }
    };
    Ok(Predicate {
        column: p.column.clone(),
        op: p.op,
        value: fix(&p.value)?,
        value2: p.value2.as_ref().map(&fix).transpose()?,
    })
}

fn push_vis(acc: &mut Vec<(TableId, Vec<Predicate>)>, t: TableId, p: Predicate) {
    match acc.iter_mut().find(|(tt, _)| *tt == t) {
        Some((_, v)) => v.push(p),
        None => acc.push((t, vec![p])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_storage::schema::paper_synthetic_schema;
    use ghostdb_storage::{CmpOp, Value};

    #[test]
    fn analyze_classifies_predicates() {
        let s = paper_synthetic_schema(2, 2);
        let t1 = s.table_id("T1").unwrap();
        let t12 = s.table_id("T12").unwrap();
        let q = SpjQuery::new()
            .pred(
                t1,
                Predicate::new("v1", CmpOp::Lt, Value::Str("5".into()), None),
            )
            .pred(t12, Predicate::eq("h2", Value::Str("x".into())))
            .project(s.root(), "id")
            .project(t1, "v1");
        let a = analyze(&s, &q).unwrap();
        assert_eq!(a.tables[0], s.root());
        assert!(a.tables.contains(&t1) && a.tables.contains(&t12));
        assert_eq!(a.vis_preds_of(t1).len(), 1);
        assert_eq!(a.hid_sels.len(), 1);
        assert_eq!(a.hid_sels[0].table, t12);
        assert!(!a.hid_sels[0].exact, "char(10) keys are prefix-approximate");
        assert_eq!(a.output.len(), 2);
    }

    #[test]
    fn id_predicates_are_visible() {
        let s = paper_synthetic_schema(1, 1);
        let t1 = s.table_id("T1").unwrap();
        let q = SpjQuery::new().pred(t1, Predicate::new("id", CmpOp::Lt, Value::Int(5), None));
        let a = analyze(&s, &q).unwrap();
        assert_eq!(a.vis_preds_of(t1).len(), 1);
        assert!(a.hid_sels.is_empty());
    }

    #[test]
    fn unknown_column_rejected() {
        let s = paper_synthetic_schema(1, 1);
        let t1 = s.table_id("T1").unwrap();
        let q = SpjQuery::new().pred(t1, Predicate::eq("zzz", Value::Int(0)));
        assert!(analyze(&s, &q).is_err());
    }

    #[test]
    fn subtree_hidden_lookup() {
        let s = paper_synthetic_schema(1, 1);
        let t1 = s.table_id("T1").unwrap();
        let t12 = s.table_id("T12").unwrap();
        let t2 = s.table_id("T2").unwrap();
        let q = SpjQuery::new()
            .pred(t12, Predicate::eq("h1", Value::Str("a".into())))
            .pred(t2, Predicate::eq("h1", Value::Str("b".into())));
        let a = analyze(&s, &q).unwrap();
        // T12's predicate is in T1's subtree; T2's is not.
        assert_eq!(a.hidden_in_subtree(&s, t1).len(), 1);
        assert_eq!(a.hidden_in_subtree(&s, s.root()).len(), 2);
    }
}
