//! # ghostdb-datagen
//!
//! Seeded, deterministic dataset generators for the two data sets of the
//! paper's evaluation (§6.2):
//!
//! * [`synthetic`] — the five-table tree schema (`T0` 10 M tuples at paper
//!   scale, `T1`/`T2` 1 M, `T11`/`T12` 100 K) with uniformly distributed
//!   attributes. Attribute values are random **permutations** of
//!   `0..rows`, so a predicate `v < k` selects *exactly* `k` rows — the
//!   experiments sweep selectivity without sampling noise.
//! * [`medical`] — a synthetic stand-in for the paper's sanitized diabetes
//!   database (Doctors 4.5 K, Patients 14 K, Measurements 1.3 M, Drugs 45)
//!   with the §6.2 schema, widths and hidden/visible split. Substituted
//!   because the original data is private; the experiments depend only on
//!   schema shape, cardinalities and selectivities.
//!
//! Both generators build a ready [`ghostdb_exec::Database`] and can mirror
//! themselves into a [`ghostdb_reference::RefDb`] for oracle checks.

pub mod medical;
pub mod spec;
pub mod synthetic;

pub use medical::MedicalDataset;
pub use spec::SyntheticSpec;
pub use synthetic::SyntheticDataset;

/// Fixed-width value helper: zero-padded 8-digit decimal in a `char(10)`
/// cell. The 8 significant bytes make order keys injective, so climbing
/// indexes are exact (no re-check overhead in the measured figures).
pub fn pad8(n: u64) -> ghostdb_storage::Value {
    ghostdb_storage::Value::Str(format!("{n:08}"))
}
