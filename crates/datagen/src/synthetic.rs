//! The synthetic dataset of §6.2, with exact-selectivity attributes.

use crate::pad8;
use crate::spec::SyntheticSpec;
use ghostdb_exec::database::{ColumnLoad, Database, TableLoad};
use ghostdb_exec::Result;
use ghostdb_reference::{RefDb, RefTable};
use ghostdb_storage::schema::paper_synthetic_schema;
use ghostdb_storage::{CmpOp, Id, Predicate, SchemaTree, TableId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// Table names in schema declaration order.
pub const TABLES: [&str; 5] = ["T0", "T1", "T2", "T11", "T12"];

/// A fully deterministic synthetic dataset: per-column value permutations
/// plus uniform foreign keys, kept host-side so both the GhostDB load and
/// the reference oracle derive from the same bits.
pub struct SyntheticDataset {
    /// The generating spec.
    pub spec: SyntheticSpec,
    /// The schema (5 visible + 5 hidden attrs declared; the spec decides
    /// how many are actually populated).
    pub schema: SchemaTree,
    rows: Vec<u64>,
    /// `perms[(table, col)][row]` = value ordinal (a permutation of 0..rows).
    perms: HashMap<(TableId, String), Arc<Vec<u32>>>,
    /// Foreign keys per (table, fk column).
    fks: HashMap<(TableId, String), Arc<Vec<Id>>>,
}

impl SyntheticDataset {
    /// Generate the dataset (host side; deterministic in the spec).
    pub fn generate(spec: SyntheticSpec) -> Self {
        // The schema always declares the paper's 5+5 attributes so size
        // models and the SQL surface match the paper; only the first
        // `spec.*_attrs` columns are populated with data (columnar storage
        // makes unpopulated columns free).
        let schema = paper_synthetic_schema(5, 5);
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let cards = spec.cardinalities();
        let mut rows = vec![0u64; schema.len()];
        for (name, c) in TABLES.iter().zip(cards) {
            rows[schema.table_id(name).expect("paper schema")] = c;
        }
        let mut perms = HashMap::new();
        let column_values = |n: u64, rng: &mut SmallRng| -> Vec<u32> {
            match spec.value_skew {
                None => permutation(n, rng),
                Some(skew) => zipf_values(n, skew, rng),
            }
        };
        for (ti, name) in TABLES.iter().enumerate() {
            let t = schema.table_id(name).expect("paper schema");
            let n = cards[ti];
            for v in 1..=spec.visible_attrs {
                perms.insert((t, format!("v{v}")), Arc::new(column_values(n, &mut rng)));
            }
            for h in 1..=spec.hidden_attrs {
                perms.insert((t, format!("h{h}")), Arc::new(column_values(n, &mut rng)));
            }
        }
        let mut fks = HashMap::new();
        let edges = [
            ("T0", "fk1", "T1"),
            ("T0", "fk2", "T2"),
            ("T1", "fk11", "T11"),
            ("T1", "fk12", "T12"),
        ];
        for (parent, col, child) in edges {
            let p = schema.table_id(parent).expect("schema");
            let c = schema.table_id(child).expect("schema");
            let n_child = rows[c];
            let arr: Vec<Id> = (0..rows[p])
                .map(|_| rng.gen_range(0..n_child) as Id)
                .collect();
            fks.insert((p, col.to_string()), Arc::new(arr));
        }
        SyntheticDataset {
            spec,
            schema,
            rows,
            perms,
            fks,
        }
    }

    /// Cardinality of a table.
    pub fn rows(&self, name: &str) -> u64 {
        self.rows[self.schema.table_id(name).expect("table")]
    }

    /// Build the GhostDB database (loads the token + PC).
    pub fn build(&self) -> Result<Database> {
        self.build_chips(1)
    }

    /// [`Self::build`] on a token whose flash is sharded across `chips`
    /// identical chips on independent channels (same total capacity).
    /// Per-operation flash costs are chip-count-independent, so queries
    /// over any chip count are bit-identical (`tests/multichip_equivalence.rs`).
    pub fn build_chips(&self, chips: usize) -> Result<Database> {
        let mut loads = Vec::new();
        for name in TABLES {
            let t = self.schema.table_id(name)?;
            let mut columns = Vec::new();
            for v in 1..=self.spec.visible_attrs {
                let cname = format!("v{v}");
                let perm = self.perms[&(t, cname.clone())].clone();
                columns.push(ColumnLoad {
                    name: cname,
                    gen: Box::new(move |r| pad8(perm[r as usize] as u64)),
                    index: false,
                    exact: Some(true),
                });
            }
            for h in 1..=self.spec.hidden_attrs {
                let cname = format!("h{h}");
                let perm = self.perms[&(t, cname.clone())].clone();
                let index = self
                    .spec
                    .indexed
                    .iter()
                    .any(|(tn, cn)| tn == name && *cn == cname);
                columns.push(ColumnLoad {
                    name: cname,
                    gen: Box::new(move |r| pad8(perm[r as usize] as u64)),
                    index,
                    exact: Some(true),
                });
            }
            let fks = self
                .fks
                .iter()
                .filter(|((tt, _), _)| *tt == t)
                .map(|((_, col), arr)| (col.clone(), arr.as_ref().clone()))
                .collect();
            loads.push(TableLoad {
                table: name.to_string(),
                rows: self.rows[t],
                fks,
                columns,
            });
        }
        Database::assemble(
            self.schema.clone(),
            &self.spec.token_config_chips(chips),
            loads,
        )
    }

    /// Mirror into the trusted reference oracle (small scales only: the
    /// oracle materialises every value).
    pub fn ref_db(&self) -> RefDb {
        let mut tables = vec![RefTable::default(); self.schema.len()];
        for name in TABLES {
            let t = self.schema.table_id(name).expect("table");
            let n = self.rows[t];
            let mut table = RefTable {
                rows: n,
                ..Default::default()
            };
            for ((tt, col), perm) in &self.perms {
                if *tt == t {
                    table.columns.insert(
                        col.clone(),
                        (0..n).map(|r| pad8(perm[r as usize] as u64)).collect(),
                    );
                }
            }
            for ((tt, col), arr) in &self.fks {
                if *tt == t {
                    table.fks.insert(col.clone(), arr.as_ref().clone());
                }
            }
            tables[t] = table;
        }
        RefDb {
            schema: self.schema.clone(),
            tables,
        }
    }

    /// A predicate on `(table, column)` selecting **exactly**
    /// `⌈selectivity × rows⌉` rows when values are uniform permutations of
    /// `0..rows`. Under `value_skew` the threshold comes from the actual
    /// value distribution (the selectivity-quantile of a sorted copy), so
    /// the selection stays *approximately* at the target — duplicate runs
    /// at the quantile boundary make exactness impossible by construction.
    pub fn selectivity_pred(&self, table: &str, column: &str, selectivity: f64) -> Predicate {
        let t = self.schema.table_id(table).expect("table");
        let n = self.rows[t];
        if self.spec.value_skew.is_none() {
            let k = ((selectivity * n as f64).round() as u64).clamp(0, n);
            return Predicate::new(column, CmpOp::Lt, pad8(k), None);
        }
        // Skewed data: select everything up to AND INCLUDING the value at
        // the requested quantile (`< q+1` ≡ `≤ q` on integer ordinals).
        // Duplicates round the achieved selectivity up to the end of the
        // quantile's duplicate run — with a heavy head that is the head's
        // whole mass, the best any threshold predicate can do.
        let vals = &self.perms[&(t, column.to_string())];
        let mut sorted: Vec<u32> = vals.as_ref().clone();
        sorted.sort_unstable();
        let idx = ((selectivity * n as f64).round() as usize).min(sorted.len().saturating_sub(1));
        let threshold = sorted.get(idx).copied().unwrap_or(0) as u64 + 1;
        Predicate::new(column, CmpOp::Lt, pad8(threshold), None)
    }
}

/// A seeded random permutation of `0..n`.
fn permutation(n: u64, rng: &mut SmallRng) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    v.shuffle(rng);
    v
}

/// `n` draws from Zipf(`s`) over the ordinals `0..n`: ordinal `r` has
/// probability ∝ 1/(r+1)^s. Inverse-CDF sampling over the precomputed
/// cumulative weights, deterministic in the RNG stream.
fn zipf_values(n: u64, s: f64, rng: &mut SmallRng) -> Vec<u32> {
    assert!(s > 0.0, "Zipf exponent must be positive");
    let n = n as usize;
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for r in 0..n {
        total += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(total);
    }
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            cdf.partition_point(|c| *c < u).min(n - 1) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = SyntheticDataset::generate(SyntheticSpec::small());
        let b = SyntheticDataset::generate(SyntheticSpec::small());
        let t0 = a.schema.table_id("T0").unwrap();
        assert_eq!(
            a.perms[&(t0, "v1".to_string())],
            b.perms[&(t0, "v1".to_string())]
        );
        assert_eq!(
            a.fks[&(t0, "fk1".to_string())],
            b.fks[&(t0, "fk1".to_string())]
        );
    }

    #[test]
    fn selectivity_is_exact() {
        let ds = SyntheticDataset::generate(SyntheticSpec::small());
        let db_ref = ds.ref_db();
        let t1 = ds.schema.table_id("T1").unwrap();
        for sv in [0.01f64, 0.1, 0.5] {
            let pred = ds.selectivity_pred("T1", "v1", sv);
            let n = ds.rows("T1");
            let matching = db_ref.tables[t1].columns["v1"]
                .iter()
                .filter(|v| pred.matches(v))
                .count() as u64;
            assert_eq!(matching, (sv * n as f64).round() as u64, "sv={sv}");
        }
    }

    #[test]
    fn zipf_values_are_skewed_deterministic_and_queryable() {
        let spec = || {
            let mut s = SyntheticSpec::paper_zipf(0.0002, 1.2); // T0 = 2000
            s.seed = 99;
            s
        };
        let a = SyntheticDataset::generate(spec());
        let b = SyntheticDataset::generate(spec());
        let t1 = a.schema.table_id("T1").unwrap();
        let key = (t1, "v1".to_string());
        assert_eq!(a.perms[&key], b.perms[&key], "generation must be seeded");
        // Heavy head: the most frequent ordinal appears far more often than
        // the uniform 1-per-row, and it is a small ordinal.
        let vals = &a.perms[&key];
        let n = vals.len() as u32;
        let mut counts = vec![0u32; n as usize];
        for v in vals.iter() {
            counts[*v as usize] += 1;
        }
        let (mode, mode_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, c)| (i as u32, *c))
            .unwrap();
        assert!(mode < n / 10, "Zipf mass must sit on small ordinals");
        assert!(mode_count > 5, "head ordinal must repeat, got {mode_count}");
        // The quantile-based predicate lands near the target selectivity.
        let pred = a.selectivity_pred("T1", "v1", 0.1);
        let matching = vals
            .iter()
            .filter(|v| pred.matches(&pad8(**v as u64)))
            .count();
        let frac = matching as f64 / vals.len() as f64;
        // Zipf(1.2)'s head ordinal alone carries ~28% of the mass at this
        // cardinality, so a 10% target rounds up to the head's share.
        assert!(
            (0.05..=0.6).contains(&frac),
            "sv target 0.1 landed at {frac}"
        );
        // The built database answers identically to the oracle on skewed
        // data (same arrays feed both sides).
        let mut db = a.build().unwrap();
        let t0 = db.schema.root();
        let t12 = a.schema.table_id("T12").unwrap();
        let hpred = a.selectivity_pred("T12", "h2", 0.25);
        let mut q = ghostdb_exec::SpjQuery::new()
            .pred(t12, hpred.clone())
            .project(t0, "id");
        q.text = "zipf-test".into();
        let (rs, _) =
            ghostdb_exec::Executor::run(&mut db, &q, &ghostdb_exec::ExecOptions::auto()).unwrap();
        let expect = a
            .ref_db()
            .run(&ghostdb_reference::RefQuery {
                predicates: vec![(t12, hpred)],
                projections: vec![(t0, "id".into())],
            })
            .unwrap();
        assert_eq!(rs.rows, expect);
    }

    #[test]
    fn build_and_query_roundtrip() {
        let ds = SyntheticDataset::generate(SyntheticSpec::small());
        let mut db = ds.build().unwrap();
        assert_eq!(db.rows[db.schema.root()], 2000);
        // The built database answers a simple query identically to the
        // oracle.
        let t0 = db.schema.root();
        let t12 = db.schema.table_id("T12").unwrap();
        let pred = ds.selectivity_pred("T12", "h2", 0.25);
        let mut q = ghostdb_exec::SpjQuery::new()
            .pred(t12, pred.clone())
            .project(t0, "id");
        q.text = "test".into();
        let (rs, _) =
            ghostdb_exec::Executor::run(&mut db, &q, &ghostdb_exec::ExecOptions::auto()).unwrap();
        let expect = ds
            .ref_db()
            .run(&ghostdb_reference::RefQuery {
                predicates: vec![(t12, pred)],
                projections: vec![(t0, "id".into())],
            })
            .unwrap();
        assert_eq!(rs.rows, expect);
        assert!(!rs.rows.is_empty());
    }
}
