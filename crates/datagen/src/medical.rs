//! A synthetic stand-in for the paper's real diabetes dataset (§6.2).
//!
//! The original data is private medical data; what the experiments actually
//! exercise is the schema **shape**: a 1.3 M-row root (`Measurements`)
//! fanning out ~92:1 onto `Patients` (14 K), which references `Doctors`
//! (4.5 K), plus a tiny `Drugs` dimension (45) — with the §6.2 widths and
//! hidden/visible split (foreign keys and identifying attributes hidden).
//! This generator reproduces that shape deterministically; Figure 16's
//! observations (execution ≈ 1/10 of the synthetic dataset, SJoin dominant
//! because of the root fan-out) follow from the shape, not the values.

use crate::pad8;
use ghostdb_exec::database::{ColumnLoad, Database, TableLoad};
use ghostdb_exec::Result;
use ghostdb_storage::schema::{Column, SchemaTree, TableDef};
use ghostdb_storage::{CmpOp, ColumnType, Id, Predicate, Value};
use ghostdb_token::TokenConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Specialties pool for the visible `Doctors.specialty` column.
pub const SPECIALTIES: [&str; 8] = [
    "Psychiatrist",
    "Cardiologist",
    "Endocrino",
    "Generalist",
    "Nutritionist",
    "Nephrologist",
    "Ophtalmo",
    "Podiatrist",
];

/// The medical dataset generator.
pub struct MedicalDataset {
    /// Schema per §6.2.
    pub schema: SchemaTree,
    /// Scale factor (1.0 = paper cardinalities).
    pub scale: f64,
    seed: u64,
    doctors: u64,
    patients: u64,
    measurements: u64,
    drugs: u64,
    patient_fk: Arc<Vec<Id>>,
    drug_fk: Arc<Vec<Id>>,
    doctor_fk: Arc<Vec<Id>>,
    /// Permutation behind `Patients.first-name` (exact visible selectivity).
    first_name_perm: Arc<Vec<u32>>,
    /// Permutation behind `Doctors.name` (exact hidden selectivity).
    doctor_name_perm: Arc<Vec<u32>>,
    bmi: Arc<Vec<f32>>,
}

/// The §6.2 medical schema: hidden foreign keys + hidden identifying
/// attributes, visible clinical data.
pub fn medical_schema() -> SchemaTree {
    let measurements = TableDef::new("Measurements")
        .with_fk("patient_id", "Patients")
        .with_fk("drug_id", "Drugs")
        .with_column(Column::visible("time", ColumnType::char(10)))
        .with_column(Column::visible("measurement", ColumnType::char(10)))
        .with_column(Column::visible("comment", ColumnType::char(100)));
    let patients = TableDef::new("Patients")
        .with_fk("doctor_id", "Doctors")
        .with_column(Column::visible("first_name", ColumnType::char(20)))
        .with_column(Column::hidden("name", ColumnType::char(20)))
        .with_column(Column::hidden("ssn", ColumnType::char(10)))
        .with_column(Column::hidden("address", ColumnType::char(50)))
        .with_column(Column::hidden("birthdate", ColumnType::char(10)))
        .with_column(Column::hidden("bodymassindex", ColumnType::float()))
        .with_column(Column::visible("age", ColumnType::Int { width: 2 }))
        .with_column(Column::visible("sexe", ColumnType::char(2)))
        .with_column(Column::visible("city", ColumnType::char(20)))
        .with_column(Column::visible("zipcode", ColumnType::char(6)));
    let doctors = TableDef::new("Doctors")
        .with_column(Column::visible("specialty", ColumnType::char(20)))
        .with_column(Column::visible("description", ColumnType::char(60)))
        .with_column(Column::hidden("first_name", ColumnType::char(20)))
        .with_column(Column::hidden("name", ColumnType::char(20)));
    let drugs = TableDef::new("Drugs")
        .with_column(Column::visible("property", ColumnType::char(60)))
        .with_column(Column::hidden("comment", ColumnType::char(100)));
    SchemaTree::new(vec![measurements, patients, doctors, drugs]).expect("valid medical schema")
}

impl MedicalDataset {
    /// Generate at `scale` (1.0 = paper cardinalities: 1.3 M measurements).
    pub fn generate(scale: f64, seed: u64) -> Self {
        let schema = medical_schema();
        let doctors = ((4_500.0 * scale) as u64).max(10);
        let patients = ((14_000.0 * scale) as u64).max(20);
        let measurements = ((1_300_000.0 * scale) as u64).max(100);
        let drugs = 45u64.max((45.0 * scale) as u64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let patient_fk = Arc::new(
            (0..measurements)
                .map(|_| rng.gen_range(0..patients) as Id)
                .collect::<Vec<_>>(),
        );
        let drug_fk = Arc::new(
            (0..measurements)
                .map(|_| rng.gen_range(0..drugs) as Id)
                .collect::<Vec<_>>(),
        );
        let doctor_fk = Arc::new(
            (0..patients)
                .map(|_| rng.gen_range(0..doctors) as Id)
                .collect::<Vec<_>>(),
        );
        let mut fn_perm: Vec<u32> = (0..patients as u32).collect();
        fn_perm.shuffle(&mut rng);
        let mut dn_perm: Vec<u32> = (0..doctors as u32).collect();
        dn_perm.shuffle(&mut rng);
        let bmi = Arc::new(
            (0..patients)
                .map(|_| rng.gen_range(15.0f32..45.0))
                .collect::<Vec<_>>(),
        );
        MedicalDataset {
            schema,
            scale,
            seed,
            doctors,
            patients,
            measurements,
            drugs,
            patient_fk,
            drug_fk,
            doctor_fk,
            first_name_perm: Arc::new(fn_perm),
            doctor_name_perm: Arc::new(dn_perm),
            bmi,
        }
    }

    /// Cardinalities as (measurements, patients, doctors, drugs).
    pub fn cardinalities(&self) -> (u64, u64, u64, u64) {
        (self.measurements, self.patients, self.doctors, self.drugs)
    }

    /// Build the GhostDB database.
    pub fn build(&self) -> Result<Database> {
        let seed = self.seed;
        let bytes = self.measurements * 160 + 64 * 1024 * 1024;
        let config = TokenConfig::paper_platform(bytes);

        let meas = TableLoad {
            table: "Measurements".into(),
            rows: self.measurements,
            fks: vec![
                ("patient_id".into(), self.patient_fk.as_ref().clone()),
                ("drug_id".into(), self.drug_fk.as_ref().clone()),
            ],
            columns: vec![
                ColumnLoad {
                    name: "time".into(),
                    gen: Box::new(move |r| Value::Str(format!("d{:08}", r as u64 % 3650))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "measurement".into(),
                    gen: Box::new(move |r| {
                        Value::Str(format!(
                            "{:.2}",
                            3.0 + ((r as u64 * seed) % 900) as f64 / 100.0
                        ))
                    }),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "comment".into(),
                    gen: Box::new(|r| Value::Str(format!("glycemia reading #{r} nominal"))),
                    index: false,
                    exact: Some(false),
                },
            ],
        };
        let first_name_perm = self.first_name_perm.clone();
        let bmi = self.bmi.clone();
        let patients = TableLoad {
            table: "Patients".into(),
            rows: self.patients,
            fks: vec![("doctor_id".into(), self.doctor_fk.as_ref().clone())],
            columns: vec![
                ColumnLoad {
                    name: "first_name".into(),
                    gen: Box::new(move |r| pad8(first_name_perm[r as usize] as u64)),
                    index: false,
                    exact: Some(true),
                },
                ColumnLoad {
                    name: "name".into(),
                    gen: Box::new(|r| Value::Str(format!("PATIENT_{r:06}"))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "ssn".into(),
                    gen: Box::new(move |r| Value::Str(format!("{:09}", r as u64 * 37 % 999999999))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "address".into(),
                    gen: Box::new(|r| Value::Str(format!("{} rue de la Paix", r % 300))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "birthdate".into(),
                    gen: Box::new(|r| Value::Str(format!("19{:02}-01-01", r % 80))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "bodymassindex".into(),
                    gen: Box::new(move |r| Value::Float(bmi[r as usize] as f64)),
                    index: true,
                    exact: Some(true),
                },
                ColumnLoad {
                    name: "age".into(),
                    gen: Box::new(|r| Value::Int(18 + (r as i64 * 13) % 72)),
                    index: false,
                    exact: Some(true),
                },
                ColumnLoad {
                    name: "sexe".into(),
                    gen: Box::new(|r| Value::Str(if r % 2 == 0 { "F" } else { "M" }.into())),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "city".into(),
                    gen: Box::new(|r| Value::Str(format!("City{:03}", r % 500))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "zipcode".into(),
                    gen: Box::new(|r| Value::Str(format!("{:05}", 1000 + r % 95000))),
                    index: false,
                    exact: Some(false),
                },
            ],
        };
        let doctor_name_perm = self.doctor_name_perm.clone();
        let doctors = TableLoad {
            table: "Doctors".into(),
            rows: self.doctors,
            fks: vec![],
            columns: vec![
                ColumnLoad {
                    name: "specialty".into(),
                    gen: Box::new(|r| {
                        Value::Str(SPECIALTIES[r as usize % SPECIALTIES.len()].into())
                    }),
                    index: false,
                    exact: Some(true),
                },
                ColumnLoad {
                    name: "description".into(),
                    gen: Box::new(|r| Value::Str(format!("practice #{r}"))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "first_name".into(),
                    gen: Box::new(|r| Value::Str(format!("DF{r:06}"))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "name".into(),
                    gen: Box::new(move |r| pad8(doctor_name_perm[r as usize] as u64)),
                    index: true,
                    exact: Some(true),
                },
            ],
        };
        let drugs = TableLoad {
            table: "Drugs".into(),
            rows: self.drugs,
            fks: vec![],
            columns: vec![
                ColumnLoad {
                    name: "property".into(),
                    gen: Box::new(|r| Value::Str(format!("insulin-class-{r}"))),
                    index: false,
                    exact: Some(false),
                },
                ColumnLoad {
                    name: "comment".into(),
                    gen: Box::new(|r| Value::Str(format!("posology note {r}"))),
                    index: true,
                    exact: Some(false),
                },
            ],
        };
        Database::assemble(
            self.schema.clone(),
            &config,
            vec![meas, patients, doctors, drugs],
        )
    }

    /// Exact-selectivity visible predicate on `Patients.first_name`.
    pub fn visible_pred(&self, selectivity: f64) -> Predicate {
        let k = ((selectivity * self.patients as f64).round() as u64).clamp(0, self.patients);
        Predicate::new("first_name", CmpOp::Lt, pad8(k), None)
    }

    /// Exact-selectivity hidden predicate on `Doctors.name`.
    pub fn hidden_pred(&self, selectivity: f64) -> Predicate {
        let k = ((selectivity * self.doctors as f64).round() as u64).clamp(0, self.doctors);
        Predicate::new("name", CmpOp::Lt, pad8(k), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_exec::{ExecOptions, Executor, SpjQuery};

    #[test]
    fn schema_matches_paper_shape() {
        let s = medical_schema();
        let m = s.table_id("Measurements").unwrap();
        assert_eq!(s.root(), m);
        let p = s.table_id("Patients").unwrap();
        let d = s.table_id("Doctors").unwrap();
        assert_eq!(s.ancestors(d), vec![p, m]);
        // Hidden/visible split per §6.2.
        let pat = s.def(p);
        assert!(pat.is_fk("doctor_id"));
        assert_eq!(
            pat.column("bodymassindex").unwrap().visibility,
            ghostdb_storage::Visibility::Hidden
        );
        assert_eq!(
            pat.column("age").unwrap().visibility,
            ghostdb_storage::Visibility::Visible
        );
    }

    #[test]
    fn raw_tuple_widths_match_paper() {
        let s = medical_schema();
        // Measurements: id(4)+2 fks(8)+10+10+100 = 132 bytes (§6.2).
        assert_eq!(
            s.def(s.table_id("Measurements").unwrap()).raw_tuple_bytes(),
            132
        );
        // Patients: 4+4+20+20+10+50+10+4+2+2+20+6 = 152.
        assert_eq!(
            s.def(s.table_id("Patients").unwrap()).raw_tuple_bytes(),
            152
        );
        // Doctors: 4+20+60+20+20 = 124.
        assert_eq!(s.def(s.table_id("Doctors").unwrap()).raw_tuple_bytes(), 124);
        // Drugs: 4+60+100 = 164.
        assert_eq!(s.def(s.table_id("Drugs").unwrap()).raw_tuple_bytes(), 164);
    }

    #[test]
    fn figure16_query_runs_on_small_scale() {
        let ds = MedicalDataset::generate(0.002, 7);
        let mut db = ds.build().unwrap();
        let m = db.schema.table_id("Measurements").unwrap();
        let p = db.schema.table_id("Patients").unwrap();
        let d = db.schema.table_id("Doctors").unwrap();
        let mut q = SpjQuery::new()
            .pred(p, ds.visible_pred(0.2))
            .pred(d, ds.hidden_pred(0.1))
            .project(m, "id")
            .project(p, "id")
            .project(d, "id")
            .project(p, "first_name");
        q.text = "fig16".into();
        let (rs, report) = Executor::run(&mut db, &q, &ExecOptions::auto()).unwrap();
        // Expected cardinality ≈ |M| × sV × sH; exact check against fks.
        let expect = (0..ds.cardinalities().0 as u32)
            .filter(|r| {
                let pat = ds.patient_fk[*r as usize];
                let doc = ds.doctor_fk[pat as usize];
                (ds.first_name_perm[pat as usize] as u64)
                    < ((0.2 * ds.patients as f64).round() as u64)
                    && (ds.doctor_name_perm[doc as usize] as u64)
                        < ((0.1 * ds.doctors as f64).round() as u64)
            })
            .count();
        assert_eq!(rs.len(), expect);
        assert!(report.total().as_ns() > 0);
    }

    #[test]
    fn bmi_float_predicates_work() {
        let ds = MedicalDataset::generate(0.002, 7);
        let mut db = ds.build().unwrap();
        let m = db.schema.table_id("Measurements").unwrap();
        let p = db.schema.table_id("Patients").unwrap();
        let mut q = SpjQuery::new()
            .pred(
                p,
                Predicate::new("bodymassindex", CmpOp::Gt, Value::Float(25.0), None),
            )
            .project(m, "id")
            .project(p, "bodymassindex");
        q.text = "bmi".into();
        let (rs, _) = Executor::run(&mut db, &q, &ExecOptions::auto()).unwrap();
        let expect = (0..ds.cardinalities().0 as u32)
            .filter(|r| ds.bmi[ds.patient_fk[*r as usize] as usize] > 25.0)
            .count();
        assert_eq!(rs.len(), expect);
        for row in &rs.rows {
            let Value::Float(b) = row[1] else { panic!() };
            assert!(b > 25.0);
        }
    }
}
