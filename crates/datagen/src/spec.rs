//! Dataset parameterisation.

use ghostdb_token::TokenConfig;

/// Parameters of the synthetic dataset (§6.2).
///
/// Paper scale is `rows_t0 = 10_000_000`; the default here is one tenth of
/// that so the full evaluation suite runs in minutes. All derived
/// cardinalities keep the paper's ratios: `|T1| = |T2| = |T0|/10`,
/// `|T11| = |T12| = |T1|/10`.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Root-table cardinality.
    pub rows_t0: u64,
    /// Visible attributes generated per table (paper stores 5; the runtime
    /// figures touch at most 2, and columnar storage makes unused columns
    /// free, so the default generates 2 — Figure 7 uses the exact size
    /// model at the full 5+5 shape).
    pub visible_attrs: usize,
    /// Hidden attributes generated per table.
    pub hidden_attrs: usize,
    /// Hidden attributes to index, as (table, column) names.
    pub indexed: Vec<(String, String)>,
    /// RNG seed (datasets are fully deterministic given the spec).
    pub seed: u64,
    /// Channel throughput (bytes/s).
    pub channel_bytes_per_sec: u64,
    /// Zipf exponent for attribute values. `None` (the paper's setting)
    /// draws each column as a uniform permutation of `0..rows`, so a
    /// predicate threshold maps to an exact selectivity. `Some(s)` draws
    /// values Zipf(s)-skewed over the same ordinal domain instead —
    /// duplicates concentrate on the small ordinals, so index sublists and
    /// Bloom inputs become heavy-headed (the workload shape uniform data
    /// never exercises).
    pub value_skew: Option<f64>,
}

impl SyntheticSpec {
    /// The evaluation configuration at a fraction of paper scale
    /// (`scale = 1.0` → T0 = 10 M tuples).
    pub fn paper(scale: f64) -> Self {
        SyntheticSpec {
            rows_t0: ((10_000_000.0 * scale) as u64).max(100),
            visible_attrs: 2,
            hidden_attrs: 2,
            indexed: vec![
                ("T12".into(), "h2".into()),
                ("T0".into(), "h1".into()),
                ("T1".into(), "h1".into()),
                ("T2".into(), "h1".into()),
            ],
            seed: 0x9e37_79b9,
            channel_bytes_per_sec: 1_500_000,
            value_skew: None,
        }
    }

    /// The evaluation configuration with Zipf(`s`)-skewed attribute values
    /// (`s` ≈ 1.2 is the classic web/reference skew).
    pub fn paper_zipf(scale: f64, s: f64) -> Self {
        let mut spec = SyntheticSpec::paper(scale);
        spec.value_skew = Some(s);
        spec.seed = 0x51ab_0f5e; // distinct stream from the uniform variant
        spec
    }

    /// A small configuration for tests.
    pub fn small() -> Self {
        let mut s = SyntheticSpec::paper(0.0002); // T0 = 2000
        s.seed = 42;
        s
    }

    /// Cardinalities in schema order (T0, T1, T2, T11, T12).
    pub fn cardinalities(&self) -> [u64; 5] {
        let t0 = self.rows_t0;
        let t1 = (t0 / 10).max(10);
        let t11 = (t1 / 10).max(4);
        [t0, t1, t1, t11, t11]
    }

    /// Token configuration sized for this dataset (§6.1 platform with
    /// enough flash for data + indexes + query temporaries).
    pub fn token_config(&self) -> TokenConfig {
        self.token_config_chips(1)
    }

    /// [`Self::token_config`] with the same total flash capacity sharded
    /// across `chips` identical chips on independent channels.
    pub fn token_config_chips(&self, chips: usize) -> TokenConfig {
        let [t0, t1, t2, t11, t12] = self.cardinalities();
        let rows_total = t0 + t1 + t2 + t11 + t12;
        // Hidden image + SKTs + climbing indexes + temp headroom, ~64 bytes
        // per tuple of conservative margin.
        let bytes = rows_total * 64 + t0 * 96 + 64 * 1024 * 1024;
        let mut config = TokenConfig::paper_platform_chips(bytes, chips);
        config.channel_bytes_per_sec = self.channel_bytes_per_sec;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios() {
        let s = SyntheticSpec::paper(1.0);
        let [t0, t1, t2, t11, t12] = s.cardinalities();
        assert_eq!(t0, 10_000_000);
        assert_eq!(t1, 1_000_000);
        assert_eq!(t2, 1_000_000);
        assert_eq!(t11, 100_000);
        assert_eq!(t12, 100_000);
    }

    #[test]
    fn token_config_has_paper_ram() {
        let s = SyntheticSpec::small();
        let c = s.token_config();
        assert_eq!(c.ram_bytes, 65_536);
        assert_eq!(c.buf_size, 2_048);
    }
}
