//! The USB link between the Untrusted PC and the Secure token.
//!
//! The channel is byte-accurate: every transfer is recorded with its
//! direction, a human-readable tag and its size, optionally capturing the
//! payload itself. The recorded **transcript is exactly what a wire snooper
//! sees**, which is what the GhostDB security argument reasons about: the
//! only flows are (a) the query, PC → token metadata, (b) visible data
//! entering the token, and (c) nothing leaving it in the clear.
//!
//! Simulated transfer time is `bytes / throughput`; §6.1 uses USB 2.0 full
//! speed (12 Mb/s ≈ 1.5 MB/s) and Figure 14 sweeps 0.3–10 MB/s.

use ghostdb_flash::SimDuration;
use serde::{Deserialize, Serialize};

/// Direction of a transfer on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// PC → token (queries, visible ID lists, visible attribute values).
    ToSecure,
    /// Token → PC (only ever query acknowledgements / result-ready signals;
    /// never data in the clear).
    ToUntrusted,
}

/// One observed transfer. `PartialEq` compares the full observation
/// (direction, tag, size, captured payload) so equivalence suites can hold
/// two execution schedules to the same wire transcript bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscriptEntry {
    /// Direction on the wire.
    pub direction: Direction,
    /// What the transfer was (e.g. `"query"`, `"Vis(T1).ids"`).
    pub tag: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Captured payload, when capture is enabled (used by the leak auditor
    /// and the examples; a real snooper records this too).
    pub payload: Option<Vec<u8>>,
}

/// The simulated channel.
#[derive(Debug)]
pub struct Channel {
    throughput_bytes_per_sec: u64,
    capture_payloads: bool,
    bytes_to_secure: u64,
    bytes_to_untrusted: u64,
    transcript: Vec<TranscriptEntry>,
}

impl Channel {
    /// Channel with a given throughput in bytes/second.
    pub fn new(throughput_bytes_per_sec: u64) -> Self {
        assert!(throughput_bytes_per_sec > 0, "zero-throughput channel");
        Channel {
            throughput_bytes_per_sec,
            capture_payloads: false,
            bytes_to_secure: 0,
            bytes_to_untrusted: 0,
            transcript: Vec::new(),
        }
    }

    /// USB 2.0 full speed: 12 Mb/s = 1.5 MB/s (paper footnote 2).
    pub fn usb_full_speed() -> Self {
        Channel::new(1_500_000)
    }

    /// Enable payload capture in the transcript (leak-audit mode).
    pub fn set_capture(&mut self, capture: bool) {
        self.capture_payloads = capture;
    }

    /// Whether payload capture is enabled.
    pub fn capture(&self) -> bool {
        self.capture_payloads
    }

    /// A fresh channel with this channel's configuration (throughput and
    /// capture mode) and no recorded traffic — equivalent to a `reset()`
    /// copy. Worker-isolated executions record onto one of these so their
    /// transcripts match what a solo run would have recorded after reset.
    pub fn fresh_like(&self) -> Channel {
        let mut ch = Channel::new(self.throughput_bytes_per_sec);
        ch.set_capture(self.capture_payloads);
        ch
    }

    /// Configured throughput (bytes/second).
    pub fn throughput(&self) -> u64 {
        self.throughput_bytes_per_sec
    }

    /// Change throughput (used by the Figure 14 sweep).
    pub fn set_throughput(&mut self, bytes_per_sec: u64) {
        assert!(bytes_per_sec > 0, "zero-throughput channel");
        self.throughput_bytes_per_sec = bytes_per_sec;
    }

    fn record(&mut self, direction: Direction, tag: &str, payload: &[u8]) {
        match direction {
            Direction::ToSecure => self.bytes_to_secure += payload.len() as u64,
            Direction::ToUntrusted => self.bytes_to_untrusted += payload.len() as u64,
        }
        self.transcript.push(TranscriptEntry {
            direction,
            tag: tag.to_string(),
            bytes: payload.len() as u64,
            payload: self.capture_payloads.then(|| payload.to_vec()),
        });
    }

    /// Transfer PC → token.
    pub fn send_to_secure(&mut self, tag: &str, payload: &[u8]) {
        self.record(Direction::ToSecure, tag, payload);
    }

    /// Transfer token → PC. GhostDB only ever uses this for the query text
    /// echo / completion signal — never hidden data. The leak auditor checks
    /// this invariant over the transcript.
    pub fn send_to_untrusted(&mut self, tag: &str, payload: &[u8]) {
        self.record(Direction::ToUntrusted, tag, payload);
    }

    /// Bytes shipped into the token so far.
    pub fn bytes_to_secure(&self) -> u64 {
        self.bytes_to_secure
    }

    /// Bytes shipped out of the token so far.
    pub fn bytes_to_untrusted(&self) -> u64 {
        self.bytes_to_untrusted
    }

    /// Total bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_secure + self.bytes_to_untrusted
    }

    /// Simulated time spent on the wire.
    pub fn elapsed(&self) -> SimDuration {
        let ns = self.total_bytes() as u128 * 1_000_000_000 / self.throughput_bytes_per_sec as u128;
        SimDuration::from_ns(ns)
    }

    /// Simulated wire time for a hypothetical `bytes` transfer.
    pub fn cost_of(&self, bytes: u64) -> SimDuration {
        SimDuration::from_ns(bytes as u128 * 1_000_000_000 / self.throughput_bytes_per_sec as u128)
    }

    /// The full observed transcript.
    pub fn transcript(&self) -> &[TranscriptEntry] {
        &self.transcript
    }

    /// Forget past traffic (new query).
    pub fn reset(&mut self) {
        self.bytes_to_secure = 0;
        self.bytes_to_untrusted = 0;
        self.transcript.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_directional_traffic() {
        let mut ch = Channel::new(1_000_000);
        ch.send_to_secure("Vis(T1).ids", &[0u8; 400]);
        ch.send_to_untrusted("query", b"SELECT 1");
        assert_eq!(ch.bytes_to_secure(), 400);
        assert_eq!(ch.bytes_to_untrusted(), 8);
        assert_eq!(ch.transcript().len(), 2);
        assert_eq!(ch.transcript()[0].tag, "Vis(T1).ids");
        assert!(ch.transcript()[0].payload.is_none());
    }

    #[test]
    fn elapsed_is_bytes_over_throughput() {
        let mut ch = Channel::new(2_000_000);
        ch.send_to_secure("x", &[0u8; 1_000_000]);
        // 1 MB over 2 MB/s = 0.5 s.
        assert!((ch.elapsed().as_secs() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capture_keeps_payloads() {
        let mut ch = Channel::usb_full_speed();
        ch.set_capture(true);
        ch.send_to_secure("ids", &[1, 2, 3]);
        assert_eq!(ch.transcript()[0].payload.as_deref(), Some(&[1, 2, 3][..]));
    }

    #[test]
    fn reset_clears_everything() {
        let mut ch = Channel::usb_full_speed();
        ch.send_to_secure("x", &[0; 10]);
        ch.reset();
        assert_eq!(ch.total_bytes(), 0);
        assert!(ch.transcript().is_empty());
        assert_eq!(ch.elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn usb_full_speed_rate() {
        let ch = Channel::usb_full_speed();
        assert_eq!(ch.throughput(), 1_500_000);
        // 1.5 MB takes one second.
        assert!((ch.cost_of(1_500_000).as_secs() - 1.0).abs() < 1e-9);
    }
}
