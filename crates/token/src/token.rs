//! The assembled secure token: flash device + RAM arena + channel.

use crate::channel::Channel;
use crate::ram::RamArena;
use ghostdb_flash::{FlashDevice, FlashGeometry, FlashTiming, SimDuration};
use serde::{Deserialize, Serialize};

/// Configuration of a simulated smart USB key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenConfig {
    /// Secure RAM in bytes (paper default 65 536).
    pub ram_bytes: usize,
    /// RAM buffer size = Flash I/O unit (paper default 2 048).
    pub buf_size: usize,
    /// Flash geometry.
    pub geometry: FlashGeometry,
    /// Flash timing (Table 1).
    pub timing: FlashTiming,
    /// Channel throughput in bytes/second (USB full speed default).
    pub channel_bytes_per_sec: u64,
    /// Capture channel payloads in the transcript (leak-audit mode).
    pub capture_channel: bool,
    /// Number of flash chips (independent channels); `geometry` describes
    /// one chip. Per-page I/O costs are chip-independent, so execution is
    /// bit-identical across chip counts (the differential suites pin this).
    pub chips: usize,
}

impl TokenConfig {
    /// The §6.1 experimental platform: 64 KB RAM, 2 KB pages, USB full
    /// speed, flash sized by `flash_bytes` on a single chip.
    pub fn paper_platform(flash_bytes: u64) -> Self {
        TokenConfig {
            ram_bytes: 65_536,
            buf_size: 2_048,
            geometry: FlashGeometry::for_capacity(flash_bytes),
            timing: FlashTiming::default(),
            channel_bytes_per_sec: 1_500_000,
            capture_channel: false,
            chips: 1,
        }
    }

    /// The paper platform with `flash_bytes` of total capacity sharded
    /// across `chips` identical flash chips on independent channels.
    pub fn paper_platform_chips(flash_bytes: u64, chips: usize) -> Self {
        assert!(chips >= 1, "need at least one chip");
        let mut cfg = TokenConfig::paper_platform(flash_bytes.div_ceil(chips as u64));
        cfg.chips = chips;
        cfg
    }
}

impl Default for TokenConfig {
    fn default() -> Self {
        TokenConfig::paper_platform(256 * 1024 * 1024)
    }
}

/// The simulated smart USB key. Fields are public: the executor borrows the
/// flash device, the RAM arena and the channel independently (they are
/// physically independent resources on the device).
#[derive(Debug)]
pub struct SecureToken {
    /// The external NAND flash module behind its FTL.
    pub flash: FlashDevice,
    /// The secured RAM of the chip.
    pub ram: RamArena,
    /// The USB link to the untrusted PC.
    pub channel: Channel,
}

impl SecureToken {
    /// Build a token from a configuration.
    pub fn new(config: &TokenConfig) -> Self {
        let mut channel = Channel::new(config.channel_bytes_per_sec);
        channel.set_capture(config.capture_channel);
        SecureToken {
            flash: FlashDevice::with_chips(config.geometry, config.timing, config.chips.max(1)),
            ram: RamArena::with_total_bytes(config.ram_bytes, config.buf_size),
            channel,
        }
    }

    /// Token matching the paper platform with flash sized by `flash_bytes`.
    pub fn paper_platform(flash_bytes: u64) -> Self {
        SecureToken::new(&TokenConfig::paper_platform(flash_bytes))
    }

    /// Total simulated time: flash I/O plus wire time. The secure chip's CPU
    /// cost is neglected per §3.4 ("we discuss the performance of the
    /// operators in terms of I/O, neglecting the CPU cost").
    pub fn elapsed(&self) -> SimDuration {
        self.flash.elapsed() + self.channel.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_shape() {
        let token = SecureToken::paper_platform(16 * 1024 * 1024);
        assert_eq!(token.ram.total_bytes(), 65_536);
        assert_eq!(token.ram.capacity(), 32);
        assert_eq!(token.flash.page_size(), 2048);
        assert_eq!(token.channel.throughput(), 1_500_000);
    }

    #[test]
    fn chips_shard_total_capacity() {
        let cfg = TokenConfig::paper_platform_chips(16 * 1024 * 1024, 4);
        let token = SecureToken::new(&cfg);
        assert_eq!(token.flash.chip_count(), 4);
        assert!(token.flash.logical_pages() * 2048 >= 16 * 1024 * 1024);
        // One chip: same geometry as the plain platform, bit for bit.
        let one = TokenConfig::paper_platform_chips(16 * 1024 * 1024, 1);
        assert_eq!(
            one.geometry,
            TokenConfig::paper_platform(16 * 1024 * 1024).geometry
        );
    }

    #[test]
    fn elapsed_combines_flash_and_channel() {
        let mut token = SecureToken::paper_platform(1024 * 1024);
        token.flash.write(0, &[1u8; 64]).unwrap();
        token.channel.send_to_secure("ids", &[0u8; 1500]);
        let flash = token.flash.elapsed();
        let wire = token.channel.elapsed();
        assert_eq!(token.elapsed(), flash + wire);
        assert!(wire.as_ns() > 0);
    }
}
