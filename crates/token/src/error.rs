//! Error type for the token environment.

use std::fmt;

/// Errors surfaced by the secure-token environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// An operator asked for more RAM buffers than remain in the arena.
    /// This is the error that forces GhostDB's algorithms to spill and
    /// reduce instead of buffering freely.
    OutOfRam {
        /// Buffers requested.
        requested: usize,
        /// Buffers currently available.
        available: usize,
        /// Total buffers in the arena.
        capacity: usize,
    },
    /// Flash error propagated from the device.
    Flash(ghostdb_flash::FlashError),
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenError::OutOfRam {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "secure RAM exhausted: requested {requested} buffers, {available}/{capacity} available"
            ),
            TokenError::Flash(e) => write!(f, "flash: {e}"),
        }
    }
}

impl std::error::Error for TokenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TokenError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ghostdb_flash::FlashError> for TokenError {
    fn from(e: ghostdb_flash::FlashError) -> Self {
        TokenError::Flash(e)
    }
}
