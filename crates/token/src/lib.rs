//! # ghostdb-token
//!
//! The **secure-token environment** of GhostDB: the tamper-resistant secure
//! chip of the smart USB key (paper §2.2), reduced to the two resources that
//! drive every algorithmic decision in the paper:
//!
//! * [`ram::RamArena`] — the tiny secured RAM, modelled as a hard-capped pool
//!   of fixed-size buffers (default 64 KB = 32 buffers × 2 KB, the Flash I/O
//!   unit). Operators must acquire buffers before touching data; exceeding
//!   the pool is an error, so RAM-frugality is enforced, not aspirational.
//! * [`channel::Channel`] — the USB link between the Untrusted PC and the
//!   token, with a configurable throughput (Figure 14 sweeps 0.3–10 MB/s)
//!   and a **transcript**: the exact sequence of transfers an adversary
//!   snooping the wire would observe. The leak auditor in `ghostdb-core`
//!   checks that transcript.
//!
//! [`token::SecureToken`] bundles RAM + channel + the flash device from
//! `ghostdb-flash` into the execution environment all operators run against.

pub mod channel;
pub mod error;
pub mod ram;
pub mod token;

pub use channel::{Channel, Direction, TranscriptEntry};
pub use error::TokenError;
pub use ram::{RamArena, RamBuffer, RamRegion};
pub use token::{SecureToken, TokenConfig};

/// Result alias for token operations.
pub type Result<T> = std::result::Result<T, TokenError>;
