//! The secured RAM of the token, enforced as a hard-capped buffer pool.
//!
//! §2.2: "the RAM must be small — the smaller the silicon die, the most
//! difficult it is to snoop or tamper with processing". §3.4: "a central
//! requirement is to evaluate the QEP … with a very small RAM (a typical
//! value is 64KB, that is 32 buffers of 2KB, the I/O unit with the Flash
//! module)". Every GhostDB operator acquires its working buffers here; an
//! allocation beyond the cap fails, forcing the caller down the paper's
//! reduction/spill paths instead of silently using host memory.

use crate::error::TokenError;
use crate::Result;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct ArenaState {
    buf_size: usize,
    capacity: usize,
    in_use: AtomicUsize,
    peak: AtomicUsize,
}

/// The bounded RAM pool. Cheap to clone (shared handle); all clones draw
/// from the same budget. One token's executor is still sequential (the
/// secure chip has one core), but the accounting is atomic so a whole token
/// — and therefore a whole `Database` — can move to another thread: the
/// parallel executor runs one independent token per worker.
#[derive(Debug, Clone)]
pub struct RamArena {
    state: Arc<ArenaState>,
}

impl RamArena {
    /// Arena with `capacity` buffers of `buf_size` bytes each.
    pub fn new(buf_size: usize, capacity: usize) -> Self {
        assert!(buf_size > 0 && capacity > 0, "degenerate arena");
        RamArena {
            state: Arc::new(ArenaState {
                buf_size,
                capacity,
                in_use: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    /// The paper's default secure chip RAM: 32 × 2 KB = 64 KB.
    pub fn paper_default() -> Self {
        RamArena::new(2048, 32)
    }

    /// Arena sized for `total_bytes` of RAM in `buf_size` buffers.
    pub fn with_total_bytes(total_bytes: usize, buf_size: usize) -> Self {
        RamArena::new(buf_size, (total_bytes / buf_size).max(1))
    }

    /// A fresh, empty arena with this arena's geometry (same buffer size
    /// and capacity, zero in-use). Intra-query worker lanes draw from one
    /// of these each so their RAM-driven decisions replay the serial
    /// path's exactly; the parent merges their peaks back explicitly.
    pub fn fresh_like(&self) -> RamArena {
        RamArena::new(self.state.buf_size, self.state.capacity)
    }

    /// Buffer size in bytes (the Flash I/O unit).
    pub fn buf_size(&self) -> usize {
        self.state.buf_size
    }

    /// Total buffers in the pool.
    pub fn capacity(&self) -> usize {
        self.state.capacity
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.state.capacity - self.state.in_use.load(Ordering::Relaxed)
    }

    /// Buffers currently held.
    pub fn in_use(&self) -> usize {
        self.state.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently held buffers (for assertions that a
    /// plan never exceeded the secure RAM).
    pub fn peak(&self) -> usize {
        self.state.peak.load(Ordering::Relaxed)
    }

    /// Total RAM bytes represented by the pool.
    pub fn total_bytes(&self) -> usize {
        self.state.buf_size * self.state.capacity
    }

    /// Raise the high-water mark to at least `n` buffers without holding
    /// any. Used when work ran on a scratch arena (`fresh_like`) on behalf
    /// of this one: merging the scratch peak back keeps the monotone
    /// high-water semantics identical to having run here directly.
    pub fn raise_peak(&self, n: usize) {
        self.state.peak.fetch_max(n, Ordering::Relaxed);
    }

    fn reserve(&self, n: usize) -> Result<()> {
        let mut in_use = self.state.in_use.load(Ordering::Relaxed);
        loop {
            if in_use + n > self.state.capacity {
                // Debug aid: set GHOSTDB_RAM_PANIC=1 to get a backtrace at
                // the exact allocation that blew the secure-RAM budget.
                if std::env::var("GHOSTDB_RAM_PANIC").is_ok() {
                    panic!("RAM exhausted: requested {n}, in_use {in_use}");
                }
                return Err(TokenError::OutOfRam {
                    requested: n,
                    available: self.state.capacity - in_use,
                    capacity: self.state.capacity,
                });
            }
            match self.state.in_use.compare_exchange_weak(
                in_use,
                in_use + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => in_use = current,
            }
        }
        self.state.peak.fetch_max(in_use + n, Ordering::Relaxed);
        Ok(())
    }

    fn release(&self, n: usize) {
        let before = self.state.in_use.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(before >= n, "releasing more buffers than held");
    }

    /// Acquire one buffer.
    pub fn alloc(&self) -> Result<RamBuffer> {
        self.reserve(1)?;
        Ok(RamBuffer {
            arena: self.clone(),
            data: vec![0; self.state.buf_size],
        })
    }

    /// Acquire a contiguous region of `n` buffers (e.g. a Bloom filter bit
    /// vector spanning several buffers).
    pub fn alloc_region(&self, n: usize) -> Result<RamRegion> {
        self.reserve(n)?;
        Ok(RamRegion {
            arena: self.clone(),
            buffers: n,
            data: vec![0; self.state.buf_size * n],
        })
    }
}

/// A single RAM buffer, returned to the arena on drop.
#[derive(Debug)]
pub struct RamBuffer {
    arena: RamArena,
    data: Vec<u8>,
}

impl Deref for RamBuffer {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for RamBuffer {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Drop for RamBuffer {
    fn drop(&mut self) {
        self.arena.release(1);
    }
}

/// A multi-buffer RAM region, returned to the arena on drop.
#[derive(Debug)]
pub struct RamRegion {
    arena: RamArena,
    buffers: usize,
    data: Vec<u8>,
}

impl RamRegion {
    /// Number of pool buffers this region holds.
    pub fn buffers(&self) -> usize {
        self.buffers
    }
}

impl Deref for RamRegion {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for RamRegion {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Drop for RamRegion {
    fn drop(&mut self) {
        self.arena.release(self.buffers);
    }
}

impl AsRef<[u8]> for RamRegion {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for RamRegion {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_64kb() {
        let arena = RamArena::paper_default();
        assert_eq!(arena.total_bytes(), 65536);
        assert_eq!(arena.capacity(), 32);
        assert_eq!(arena.buf_size(), 2048);
    }

    #[test]
    fn alloc_release_cycle() {
        let arena = RamArena::new(128, 4);
        let a = arena.alloc().unwrap();
        let b = arena.alloc().unwrap();
        assert_eq!(arena.available(), 2);
        drop(a);
        assert_eq!(arena.available(), 3);
        drop(b);
        assert_eq!(arena.available(), 4);
        assert_eq!(arena.peak(), 2);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let arena = RamArena::new(128, 2);
        let _a = arena.alloc().unwrap();
        let _b = arena.alloc().unwrap();
        let err = arena.alloc().unwrap_err();
        assert!(matches!(
            err,
            TokenError::OutOfRam {
                requested: 1,
                available: 0,
                capacity: 2
            }
        ));
    }

    #[test]
    fn regions_count_against_the_same_budget() {
        let arena = RamArena::new(64, 8);
        let region = arena.alloc_region(6).unwrap();
        assert_eq!(region.len(), 64 * 6);
        assert_eq!(arena.available(), 2);
        assert!(arena.alloc_region(3).is_err());
        drop(region);
        assert!(arena.alloc_region(8).is_ok());
    }

    #[test]
    fn buffers_are_writable_and_sized() {
        let arena = RamArena::new(32, 1);
        let mut buf = arena.alloc().unwrap();
        assert_eq!(buf.len(), 32);
        buf[5] = 99;
        assert_eq!(buf[5], 99);
    }

    #[test]
    fn clones_share_budget() {
        let arena = RamArena::new(16, 2);
        let clone = arena.clone();
        let _a = arena.alloc().unwrap();
        let _b = clone.alloc().unwrap();
        assert!(arena.alloc().is_err());
        assert!(clone.alloc().is_err());
    }
}
