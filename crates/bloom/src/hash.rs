//! Hashing for Bloom filters.
//!
//! The paper requires k *independent* hash functions (§3.3, citing Bloom
//! 1970). We derive them by double hashing — `h_i(x) = h1(x) + i·h2(x)` —
//! over two strong 64-bit mixers, which is the standard construction
//! (Kirsch & Mitzenmacher) and is indistinguishable from independent hashes
//! for Bloom-filter purposes. No external crates needed.

/// SplitMix64 finalizer: a full-avalanche 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Second independent mixer (Murmur3 finalizer with different constants).
#[inline]
pub fn mix64_alt(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// The pair `(h1, h2)` feeding double hashing. `h2` is forced odd so the
/// probe sequence cycles through all bit positions for power-of-two sizes
/// and never degenerates to a constant.
#[inline]
pub fn hash_pair(key: u64) -> (u64, u64) {
    let h1 = mix64(key);
    let h2 = mix64_alt(key) | 1;
    (h1, h2)
}

/// The `i`-th derived hash of `key`.
#[inline]
pub fn hash_i(key: u64, i: u32) -> u64 {
    let (h1, h2) = hash_pair(key);
    h1.wrapping_add((i as u64).wrapping_mul(h2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mixers_have_no_trivial_collisions() {
        let mut seen = HashSet::new();
        for x in 0u64..10_000 {
            assert!(seen.insert(mix64(x)), "mix64 collision at {x}");
        }
        let mut seen = HashSet::new();
        for x in 0u64..10_000 {
            assert!(seen.insert(mix64_alt(x)), "mix64_alt collision at {x}");
        }
    }

    #[test]
    fn derived_hashes_differ_per_index() {
        let hs: Vec<u64> = (0..4).map(|i| hash_i(42, i)).collect();
        let set: HashSet<_> = hs.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn h2_is_odd() {
        for x in 0u64..1000 {
            assert_eq!(hash_pair(x).1 & 1, 1);
        }
    }

    #[test]
    fn sequential_keys_spread_across_small_ranges() {
        // IDs in GhostDB are dense integers; mixed values must spread evenly
        // over a small bit-vector.
        let m = 1024u64;
        let mut histogram = vec![0u32; m as usize];
        for id in 0u64..8 * m {
            histogram[(mix64(id) % m) as usize] += 1;
        }
        let max = *histogram.iter().max().unwrap();
        let min = *histogram.iter().min().unwrap();
        assert!(max < 30 && min > 0, "poor spread: min={min} max={max}");
    }
}
