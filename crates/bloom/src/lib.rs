//! # ghostdb-bloom
//!
//! Bloom filters exactly as GhostDB uses them (paper §3.3–§3.4):
//!
//! * approximate membership over a list of tuple IDs, used to push visible
//!   selections **after** hidden joins (Post-Filtering) and to discard
//!   irrelevant visible values at projection time;
//! * default calibration `m = 8·n` bits with 4 hash functions, giving a
//!   false-positive rate ≈ 0.024 — "a Bloom filter built over a list of IDs
//!   is four times smaller than the initial list";
//! * **smooth degradation** when the ID list outgrows the secure RAM: the
//!   ratio `m/n` is decreased (e.g. `m = 6·n` → fp ≈ 0.055) instead of
//!   failing;
//! * a calibration oracle that also reports when a Bloom filter is *not
//!   worth building* (the Figure 10 cutoff: past sV = 0.5 the filter
//!   "introduces more false positives than it can eliminate").
//!
//! Compressed Bloom filters are deliberately not provided: the paper rejects
//! them because decompression itself needs RAM (§3.4, footnote 6).

pub mod blocked;
pub mod calibrate;
pub mod filter;
pub mod hash;

pub use blocked::BlockedBloomFilter;
pub use calibrate::{calibrate, worth_post_filtering, BloomCalibration};
pub use filter::BloomFilter;
