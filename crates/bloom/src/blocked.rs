//! Blocked ("split") Bloom filters: one cache line per key.
//!
//! A classic Bloom filter scatters its `k` probes across the whole bit
//! vector — up to `k` cache misses per membership test once the vector
//! outgrows the cache. The blocked variant (Putze, Sanders & Singler,
//! *Cache-, Hash- and Space-Efficient Bloom Filters*, WEA 2007) first
//! hashes the key to one 64-byte **block** and derives all `k` probes
//! inside it, so a probe touches exactly one cache line. The price is a
//! slightly higher false-positive rate at equal `m/n` (blocks load
//! unevenly), which is why the executor only adopts it if the
//! `micro/bloom/*` pair shows a wall-clock win — on GhostDB's RAM-frugal
//! filters (≤ 64 KB, cache-resident by construction) the locality argument
//! mostly evaporates, and the measured verdict lives in `BENCH.json`.
//!
//! The **no-false-negative guarantee is identical** to
//! [`BloomFilter`](crate::BloomFilter)'s: every inserted key probes the
//! same bits it set, so `contains` can never miss an inserted key. The
//! equivalence suite in this module pins that down against the standard
//! filter side by side.

use crate::hash::hash_pair;

/// Bits per block: one 64-byte cache line.
pub const BLOCK_BITS: u64 = 512;

/// A blocked Bloom filter over caller-provided storage.
///
/// `S` is any byte buffer; only the first `ceil(m_bits/8)` bytes are used,
/// exactly like [`BloomFilter`](crate::BloomFilter), so the two variants
/// are drop-in interchangeable for the RAM calibrator. `m_bits` is rounded
/// down to whole 512-bit blocks (filters smaller than one block use a
/// single short block spanning all `m_bits`).
#[derive(Debug)]
pub struct BlockedBloomFilter<S> {
    storage: S,
    m_bits: u64,
    /// Bits per block (512, or `m_bits` for sub-block filters).
    block_bits: u64,
    /// Number of whole blocks.
    blocks: u64,
    k: u32,
    inserted: u64,
}

impl<S: AsRef<[u8]> + AsMut<[u8]>> BlockedBloomFilter<S> {
    /// Wrap `storage` as an empty blocked filter of `m_bits` bits with `k`
    /// probes per key. Panics on degenerate parameters or undersized
    /// storage — sizing is the calibrator's job, a mismatch is a bug.
    pub fn new(mut storage: S, m_bits: u64, k: u32) -> Self {
        assert!(m_bits > 0 && k > 0, "degenerate Bloom parameters");
        let needed = m_bits.div_ceil(8) as usize;
        assert!(
            storage.as_ref().len() >= needed,
            "storage {} bytes < {} required for {} bits",
            storage.as_ref().len(),
            needed,
            m_bits
        );
        storage.as_mut()[..needed].fill(0);
        let (block_bits, blocks) = if m_bits < BLOCK_BITS {
            (m_bits, 1)
        } else {
            (BLOCK_BITS, m_bits / BLOCK_BITS)
        };
        BlockedBloomFilter {
            storage,
            m_bits,
            block_bits,
            blocks,
            k,
            inserted: 0,
        }
    }

    /// Number of bits declared for the vector (the usable bits are
    /// `blocks() * block_bits()` — the round-down remainder idles).
    pub fn m_bits(&self) -> u64 {
        self.m_bits
    }

    /// Number of blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Bits per block.
    pub fn block_bits(&self) -> u64 {
        self.block_bits
    }

    /// Number of probes per key.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Elements inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Bytes of storage actually used by the bit vector.
    pub fn storage_bytes(&self) -> usize {
        self.m_bits.div_ceil(8) as usize
    }

    /// The key's block index and its in-block double-hashing pair. `h1`
    /// picks the block; the probe sequence derives from `(h2, h1>>32|1)`
    /// so it is independent of the block choice.
    #[inline]
    fn probe_base(&self, key: u64) -> (u64, u64, u64) {
        let (h1, h2) = hash_pair(key);
        let block = (h1 % self.blocks) * self.block_bits;
        (block, h2, (h1 >> 32) | 1)
    }

    /// Insert an element: all `k` bits land in one cache line.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let (base, g1, g2) = self.probe_base(key);
        let bits = self.storage.as_mut();
        for i in 0..self.k as u64 {
            let bit = base + g1.wrapping_add(i.wrapping_mul(g2)) % self.block_bits;
            bits[(bit / 8) as usize] |= 1u8 << (bit % 8);
        }
        self.inserted += 1;
    }

    /// Membership test: false means *definitely absent* (same guarantee as
    /// the standard filter); true means present up to the block's
    /// false-positive rate. Touches exactly one cache line.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let (base, g1, g2) = self.probe_base(key);
        let bits = self.storage.as_ref();
        for i in 0..self.k as u64 {
            let bit = base + g1.wrapping_add(i.wrapping_mul(g2)) % self.block_bits;
            if bits[(bit / 8) as usize] & (1u8 << (bit % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Batched membership probe into a reusable scratch buffer (cleared on
    /// entry) — the counterpart of
    /// [`BloomFilter::retain_into`](crate::BloomFilter::retain_into) the
    /// `micro/bloom/probe_*` pair judges.
    pub fn retain_into(&self, keys: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.extend(keys.iter().copied().filter(|k| self.contains(*k)));
    }

    /// Release the storage.
    pub fn into_storage(self) -> S {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BloomFilter;

    fn pair_for(n: u64) -> (BloomFilter<Vec<u8>>, BlockedBloomFilter<Vec<u8>>) {
        let m = 8 * n;
        let bytes = (m as usize).div_ceil(8);
        (
            BloomFilter::new(vec![0u8; bytes], m, 4),
            BlockedBloomFilter::new(vec![0u8; bytes], m, 4),
        )
    }

    #[test]
    fn no_false_negatives() {
        let (_, mut bf) = pair_for(10_000);
        for id in (0u64..40_000).step_by(4) {
            bf.insert(id);
        }
        for id in (0u64..40_000).step_by(4) {
            assert!(bf.contains(id), "false negative for {id}");
        }
    }

    /// The equivalence the satellite asks for: built over the same keys,
    /// the blocked and standard filters give the *same answer class* —
    /// both are definitely-present on every inserted key (no false
    /// negatives on either side), and an absent key rejected by neither is
    /// only ever a false positive, never a contradiction on members.
    #[test]
    fn blocked_and_standard_agree_on_members() {
        let (mut std_bf, mut blk_bf) = pair_for(20_000);
        let members: Vec<u64> = (0u64..60_000).step_by(3).collect();
        for &id in &members {
            std_bf.insert(id);
            blk_bf.insert(id);
        }
        assert_eq!(std_bf.inserted(), blk_bf.inserted());
        for &id in &members {
            assert!(
                std_bf.contains(id) && blk_bf.contains(id),
                "member {id} must pass both filters"
            );
        }
        let mut std_out = Vec::new();
        let mut blk_out = Vec::new();
        std_bf.retain_into(&members, &mut std_out);
        blk_bf.retain_into(&members, &mut blk_out);
        assert_eq!(std_out, members, "standard retain keeps every member");
        assert_eq!(blk_out, members, "blocked retain keeps every member");
    }

    #[test]
    fn fp_rate_stays_in_a_usable_band() {
        // Blocked filters pay an fp penalty vs m = 8n, k = 4's ≈ 0.024
        // (uneven block loads); the penalty must stay small enough that
        // the Figure 10 usefulness cutoffs keep their shape.
        let n = 50_000u64;
        let (_, mut bf) = pair_for(n);
        for id in 0..n {
            bf.insert(id);
        }
        let probes = 100_000u64;
        let fps = (n..n + probes).filter(|id| bf.contains(*id)).count();
        let rate = fps as f64 / probes as f64;
        assert!(
            (0.012..0.08).contains(&rate),
            "blocked m=8n fp rate {rate} outside the usable band"
        );
    }

    #[test]
    fn sub_block_filters_degrade_to_one_short_block() {
        let m = 100u64; // < 512: a single 100-bit block
        let mut bf = BlockedBloomFilter::new(vec![0u8; 13], m, 4);
        assert_eq!(bf.blocks(), 1);
        assert_eq!(bf.block_bits(), 100);
        for id in 0..8u64 {
            bf.insert(id);
        }
        for id in 0..8u64 {
            assert!(bf.contains(id));
        }
    }

    #[test]
    fn ragged_bit_counts_round_down_to_whole_blocks() {
        let m = 5 * BLOCK_BITS + 137;
        let bytes = (m as usize).div_ceil(8);
        let mut bf = BlockedBloomFilter::new(vec![0u8; bytes], m, 4);
        assert_eq!(bf.blocks(), 5);
        assert_eq!(bf.block_bits(), BLOCK_BITS);
        for id in 0..2_000u64 {
            bf.insert(id);
        }
        for id in 0..2_000u64 {
            assert!(bf.contains(id));
        }
        // No probe may land in the idle remainder past the last block.
        let used = (bf.blocks() * bf.block_bits()).div_ceil(8) as usize;
        let storage = bf.into_storage();
        assert!(storage[used..].iter().all(|b| *b == 0));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let (_, bf) = pair_for(100);
        for id in 0..1000u64 {
            assert!(!bf.contains(id));
        }
    }

    #[test]
    #[should_panic(expected = "storage")]
    fn undersized_storage_panics() {
        let _ = BlockedBloomFilter::new(vec![0u8; 10], 1000, 4);
    }
}
