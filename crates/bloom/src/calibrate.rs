//! RAM-aware calibration of Bloom filters (paper §3.4 and Figure 10).

use crate::filter::theoretical_fp;

/// Outcome of calibrating a Bloom filter for `n` elements under a RAM
/// budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloomCalibration {
    /// Chosen bit-vector size.
    pub m_bits: u64,
    /// Number of hash functions (the paper fixes k = 4).
    pub k: u32,
    /// Bytes of RAM the bit vector occupies.
    pub bytes: usize,
    /// Theoretical false-positive rate at fill `n`.
    pub expected_fp: f64,
    /// Achieved bits-per-element ratio (8.0 when unconstrained).
    pub ratio: f64,
}

/// Preferred bits-per-element (m = 8n, fp ≈ 0.024 with k = 4).
pub const PREFERRED_RATIO: u64 = 8;

/// Number of hash functions used throughout the paper.
pub const PAPER_K: u32 = 4;

/// Calibrate a filter for `n` elements within `ram_budget_bytes`.
///
/// Strategy straight from §3.4: use `m = 8n` when it fits; otherwise
/// "decrease the ratio m/n accordingly, entailing a smooth degradation of
/// the Bloom filter accuracy". Returns `None` when even one bit per element
/// cannot fit — at that point a Bloom filter is pointless and the planner
/// must fall back (NoFilter / projection-time exact selection).
pub fn calibrate(n: u64, ram_budget_bytes: usize) -> Option<BloomCalibration> {
    if n == 0 {
        // A filter over the empty set rejects everything; one byte suffices.
        return Some(BloomCalibration {
            m_bits: 8,
            k: PAPER_K,
            bytes: 1,
            expected_fp: 0.0,
            ratio: 8.0,
        });
    }
    let budget_bits = (ram_budget_bytes as u64) * 8;
    let preferred = n * PREFERRED_RATIO;
    let m_bits = preferred.min(budget_bits);
    if m_bits < n {
        // Less than one bit per element: accuracy collapses entirely.
        return None;
    }
    Some(BloomCalibration {
        m_bits,
        k: PAPER_K,
        bytes: m_bits.div_ceil(8) as usize,
        expected_fp: theoretical_fp(m_bits, n, PAPER_K),
        ratio: m_bits as f64 / n as f64,
    })
}

/// Decide whether a post-filter Bloom is *useful*: it must be expected to
/// eliminate more tuples than the false positives it lets through.
///
/// `n_filter` is the cardinality of the set the filter is built over (the
/// visible selection) and `selectivity` the fraction of the probed stream
/// that genuinely matches. Figure 10's Post-Filter curve "stops at sV = 0.5
/// … the Bloom filter introduces more false positives than it can eliminate
/// … even if the entire RAM is allocated": with fp ≥ the fraction of
/// non-matching tuples it would remove, skip it.
pub fn worth_post_filtering(n_filter: u64, selectivity: f64, ram_budget_bytes: usize) -> bool {
    match calibrate(n_filter, ram_budget_bytes) {
        None => false,
        Some(c) => {
            // Fraction of the probed stream surviving the filter:
            // matches (selectivity) + false positives on the complement.
            let pass = selectivity + (1.0 - selectivity) * c.expected_fp;
            // Useful only if it prunes at least 30% of the stream; below
            // that the probe cost outweighs the savings (the paper's
            // planner simply "does not execute" Post-Filter then).
            (1.0 - pass) > 0.3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_uses_preferred_ratio() {
        let c = calibrate(1_000, 64 * 1024).unwrap();
        assert_eq!(c.m_bits, 8_000);
        assert_eq!(c.k, 4);
        assert_eq!(c.bytes, 1_000);
        assert!((c.expected_fp - 0.024).abs() < 0.005);
        assert_eq!(c.ratio, 8.0);
    }

    #[test]
    fn ram_bound_degrades_smoothly() {
        // 100k elements, 64 KB RAM: 524288 bits / 100000 ≈ 5.24 bits per
        // element — degraded but still usable.
        let c = calibrate(100_000, 65_536).unwrap();
        assert_eq!(c.m_bits, 524_288);
        assert!(c.ratio < 8.0 && c.ratio > 5.0);
        assert!(c.expected_fp > 0.024 && c.expected_fp < 0.2);
    }

    #[test]
    fn hopeless_budget_returns_none() {
        // 1M elements, 64KB = 524288 bits < 1 bit/element.
        assert!(calibrate(1_000_000, 65_536).is_none());
    }

    #[test]
    fn empty_set_is_trivial() {
        let c = calibrate(0, 1024).unwrap();
        assert_eq!(c.expected_fp, 0.0);
    }

    #[test]
    fn post_filter_worthwhile_at_high_selectivity() {
        // Small visible selection: great filter.
        assert!(worth_post_filtering(1_000, 0.01, 65_536));
    }

    #[test]
    fn post_filter_pointless_past_half() {
        // sV = 0.5 on 500k elements with 64KB RAM: ratio ≈ 1.05, fp ≈ 1 —
        // the Figure 10 cutoff.
        assert!(!worth_post_filtering(500_000, 0.5, 65_536));
    }

    #[test]
    fn post_filter_pointless_when_selectivity_low() {
        // Even a perfect filter that keeps 90% of the stream isn't worth it.
        assert!(!worth_post_filtering(1_000, 0.9, 65_536));
    }
}
