//! The Bloom filter proper, generic over its bit-vector storage so the
//! executor can back it with secure-RAM regions (`ghostdb_token::RamRegion`)
//! and keep the RAM accounting honest.

use crate::hash::hash_pair;

/// A Bloom filter over caller-provided storage.
///
/// `S` is any byte buffer; only the first `ceil(m_bits/8)` bytes are used.
/// The element type is `u64`; GhostDB inserts 4-byte tuple IDs widened to 64
/// bits.
#[derive(Debug)]
pub struct BloomFilter<S> {
    storage: S,
    m_bits: u64,
    k: u32,
    inserted: u64,
}

impl<S: AsRef<[u8]> + AsMut<[u8]>> BloomFilter<S> {
    /// Wrap `storage` as an empty filter of `m_bits` bits with `k` hashes.
    ///
    /// Panics if the storage is too small — sizing is the calibrator's job
    /// and a mismatch is a programming error, not a runtime condition.
    pub fn new(mut storage: S, m_bits: u64, k: u32) -> Self {
        assert!(m_bits > 0 && k > 0, "degenerate Bloom parameters");
        let needed = m_bits.div_ceil(8) as usize;
        assert!(
            storage.as_ref().len() >= needed,
            "storage {} bytes < {} required for {} bits",
            storage.as_ref().len(),
            needed,
            m_bits
        );
        storage.as_mut()[..needed].fill(0);
        BloomFilter {
            storage,
            m_bits,
            k,
            inserted: 0,
        }
    }

    /// Number of bits in the vector.
    pub fn m_bits(&self) -> u64 {
        self.m_bits
    }

    /// Number of hash functions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Elements inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Bytes of storage actually used by the bit vector.
    pub fn storage_bytes(&self) -> usize {
        self.m_bits.div_ceil(8) as usize
    }

    /// Insert an element. The two mixers run once per key; all `k` probe
    /// positions derive from the resulting `(h1, h2)` pair.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = hash_pair(key);
        let bits = self.storage.as_mut();
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.m_bits;
            bits[(bit / 8) as usize] |= 1u8 << (bit % 8);
        }
        self.inserted += 1;
    }

    /// Membership test: false means *definitely absent*; true means present
    /// with probability `1 - fp`. Like [`insert`](Self::insert), hashes the
    /// key once and derives the probe sequence, short-circuiting on the
    /// first clear bit.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = hash_pair(key);
        let bits = self.storage.as_ref();
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.m_bits;
            if bits[(bit / 8) as usize] & (1u8 << (bit % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Batched membership probe: append the members of `keys` to `out`.
    ///
    /// `out` is a reusable scratch buffer (cleared on entry) so repeated
    /// batch probes amortise the allocation. The executor's query paths
    /// stream ids one at a time through [`contains`](Self::contains); this
    /// entry point serves host-side batch probing (`perfbench` measures it
    /// against the per-index-rehash baseline).
    pub fn retain_into(&self, keys: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.extend(keys.iter().copied().filter(|k| self.contains(*k)));
    }

    /// Theoretical false-positive rate at the current fill.
    pub fn expected_fp(&self) -> f64 {
        theoretical_fp(self.m_bits, self.inserted, self.k)
    }

    /// Release the storage (e.g. return the RAM region to the arena).
    pub fn into_storage(self) -> S {
        self.storage
    }
}

/// `(1 - e^{-kn/m})^k` — the classic Bloom false-positive estimate.
pub fn theoretical_fp(m_bits: u64, n: u64, k: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let exponent = -(k as f64) * (n as f64) / (m_bits as f64);
    (1.0 - exponent.exp()).powi(k as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_for(n: u64) -> BloomFilter<Vec<u8>> {
        let m = 8 * n;
        BloomFilter::new(vec![0u8; (m as usize).div_ceil(8)], m, 4)
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = filter_for(10_000);
        for id in (0u64..40_000).step_by(4) {
            bf.insert(id);
        }
        for id in (0u64..40_000).step_by(4) {
            assert!(bf.contains(id), "false negative for {id}");
        }
    }

    #[test]
    fn paper_calibration_fp_rate() {
        // §3.4: m = 8n with 4 hash functions → fp ≈ 0.024.
        let n = 50_000u64;
        let mut bf = filter_for(n);
        for id in 0..n {
            bf.insert(id);
        }
        let mut fps = 0u64;
        let probes = 100_000u64;
        for id in n..n + probes {
            if bf.contains(id) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        assert!(
            (0.012..0.04).contains(&rate),
            "m=8n fp rate {rate} outside paper band (~0.024)"
        );
        assert!((theoretical_fp(8 * n, n, 4) - 0.024).abs() < 0.005);
    }

    #[test]
    fn degraded_ratio_fp_rate() {
        // §3.4: m = 6n → fp ≈ 0.055.
        let n = 50_000u64;
        let m = 6 * n;
        let mut bf = BloomFilter::new(vec![0u8; (m as usize).div_ceil(8)], m, 4);
        for id in 0..n {
            bf.insert(id);
        }
        let mut fps = 0u64;
        let probes = 100_000u64;
        for id in n..n + probes {
            if bf.contains(id) {
                fps += 1;
            }
        }
        let rate = fps as f64 / probes as f64;
        assert!(
            (0.035..0.085).contains(&rate),
            "m=6n fp rate {rate} outside paper band (~0.055)"
        );
        assert!((theoretical_fp(m, n, 4) - 0.055).abs() < 0.01);
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = filter_for(100);
        for id in 0..1000u64 {
            assert!(!bf.contains(id));
        }
        assert_eq!(bf.expected_fp(), 0.0);
    }

    #[test]
    fn storage_is_four_times_smaller_than_id_list() {
        // §3.4: "a Bloom filter built over a list of IDs is four times
        // smaller than the initial list" (IDs are 4 bytes, m = 8n bits = n
        // bytes).
        let n = 1024u64;
        let bf = filter_for(n);
        let id_list_bytes = n * 4;
        assert_eq!(bf.storage_bytes() as u64 * 4, id_list_bytes);
    }

    #[test]
    #[should_panic(expected = "storage")]
    fn undersized_storage_panics() {
        let _ = BloomFilter::new(vec![0u8; 10], 1000, 4);
    }

    #[test]
    fn double_hashing_matches_naive_per_index_hashing() {
        // The optimised insert/contains derive all k probes from one
        // `hash_pair` call; the bit vector must be byte-identical to the
        // naive path that re-evaluates `hash_i(key, i)` per probe.
        let m = 8 * 5000u64;
        let k = 4u32;
        let mut fast = BloomFilter::new(vec![0u8; (m as usize).div_ceil(8)], m, k);
        let mut naive = vec![0u8; (m as usize).div_ceil(8)];
        for key in (0u64..20_000).step_by(7) {
            fast.insert(key);
            for i in 0..k {
                let bit = crate::hash::hash_i(key, i) % m;
                naive[(bit / 8) as usize] |= 1u8 << (bit % 8);
            }
        }
        assert_eq!(fast.into_storage(), naive);
    }

    #[test]
    fn retain_into_reuses_scratch_and_matches_contains() {
        let mut bf = filter_for(1_000);
        for id in (0u64..4_000).step_by(4) {
            bf.insert(id);
        }
        let keys: Vec<u64> = (0..4_000).collect();
        let mut scratch = vec![999u64; 3]; // stale content must be cleared
        bf.retain_into(&keys, &mut scratch);
        let expect: Vec<u64> = keys.iter().copied().filter(|k| bf.contains(*k)).collect();
        assert_eq!(scratch, expect);
        assert!(scratch.len() >= 1_000, "no false negatives in the batch");
    }
}
