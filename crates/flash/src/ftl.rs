//! Flash Translation Layer: logical→physical mapping, out-of-place updates,
//! greedy garbage collection and erase-count wear levelling.
//!
//! §6.1 of the paper: the simulator's I/O counts include "the I/O performed
//! by the Flash Translation Layer which manages wear levering \[sic\],
//! garbage collection and translation of logical addresses to physical
//! (updates are not performed in place in Flash)". This module is that FTL.

use crate::error::FlashError;
use crate::geometry::FlashGeometry;
use crate::nand::NandArray;
use crate::stats::FlashStats;
use crate::{Lpn, Ppn, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Keep at least this many free blocks at all times; GC kicks in below it.
/// One block is always needed as the relocation destination.
const GC_LOW_WATER: usize = 2;

/// Overflow-safe in-page range check: `offset + len` must fit in the page.
/// The addition itself can exceed `usize::MAX` for hostile offsets, which
/// would wrap in release builds and sail past a plain `>` guard.
pub(crate) fn check_in_page(offset: usize, len: usize, page_size: usize) -> Result<()> {
    match offset.checked_add(len) {
        Some(end) if end <= page_size => Ok(()),
        _ => Err(FlashError::OutOfPage {
            offset,
            len,
            page_size,
        }),
    }
}

/// Wear-levelling pool of erased blocks with O(log n) least-erased
/// selection.
///
/// Replaces the original `Vec<u64>` + `min_by_key` erase-count scan (O(n)
/// per block activation — quadratic over a long ingest) while keeping the
/// selected block, including tie-breaking, **bit-identical**: the pool
/// mirrors the Vec's ordering discipline exactly (push appends, take
/// swap-removes) and resolves erase-count ties to the smallest slot index,
/// which is precisely the element `Iterator::min_by_key` returns. This is
/// sound because a block's erase count is static while it sits in the pool:
/// the erase happens before the push, and nothing erases a free block.
#[derive(Debug, Default)]
pub struct FreeBlockPool {
    /// `(block, erase count at push time)`, in exactly the order the plain
    /// `Vec<u64>` implementation would hold the blocks.
    slots: Vec<(u64, u64)>,
    /// Erase count → slot positions currently holding that count.
    by_count: BTreeMap<u64, BTreeSet<usize>>,
    /// Membership bitmap indexed by block id.
    is_free: Vec<bool>,
}

impl FreeBlockPool {
    /// An empty pool able to track blocks `0..block_count`.
    pub fn new(block_count: u64) -> Self {
        FreeBlockPool {
            slots: Vec::new(),
            by_count: BTreeMap::new(),
            is_free: vec![false; block_count as usize],
        }
    }

    /// Number of free blocks.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no blocks are free.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if `block` is currently in the pool.
    pub fn contains(&self, block: u64) -> bool {
        self.is_free.get(block as usize).copied().unwrap_or(false)
    }

    /// Append a freshly erased block (mirrors `Vec::push`).
    pub fn push(&mut self, block: u64, erase_count: u64) {
        let pos = self.slots.len();
        self.slots.push((block, erase_count));
        self.by_count.entry(erase_count).or_default().insert(pos);
        self.is_free[block as usize] = true;
    }

    fn bucket_remove(&mut self, count: u64, pos: usize) {
        let bucket = self.by_count.get_mut(&count).expect("bucket exists");
        bucket.remove(&pos);
        if bucket.is_empty() {
            self.by_count.remove(&count);
        }
    }

    /// Remove the slot at `pos` with `Vec::swap_remove` semantics, keeping
    /// the position index coherent.
    fn swap_remove(&mut self, pos: usize) -> u64 {
        let (block, count) = self.slots[pos];
        self.bucket_remove(count, pos);
        let last = self.slots.len() - 1;
        if pos != last {
            let (_, last_count) = self.slots[last];
            self.bucket_remove(last_count, last);
            self.by_count.entry(last_count).or_default().insert(pos);
        }
        self.slots.swap_remove(pos);
        self.is_free[block as usize] = false;
        block
    }

    /// Take the least-erased free block; ties go to the smallest slot index
    /// (= the first minimum a linear `min_by_key` scan would find).
    pub fn take_least_erased(&mut self) -> Option<u64> {
        let (_, positions) = self.by_count.iter().next()?;
        let pos = *positions.iter().next().expect("bucket non-empty");
        Some(self.swap_remove(pos))
    }
}

/// Page-mapped FTL over a [`NandArray`].
#[derive(Debug)]
pub struct Ftl {
    nand: NandArray,
    /// Logical page → physical page. `None` = never written or trimmed.
    map: Vec<Option<Ppn>>,
    /// Block currently receiving programs, and the next page index in it.
    active_block: u64,
    next_in_active: u64,
    /// Erased blocks ready to become active; selection applies wear
    /// levelling (lowest erase count first, first-minimum tie-break).
    free_blocks: FreeBlockPool,
    stats: FlashStats,
    scratch: Vec<u8>,
    /// True while GC relocates pages; suppresses re-entrant GC. The
    /// low-water margin guarantees the relocation destination exists.
    in_gc: bool,
}

impl Ftl {
    /// A fresh FTL over an erased array.
    pub fn new(geometry: FlashGeometry) -> Self {
        let nand = NandArray::new(geometry);
        assert!(geometry.block_count > 0, "geometry has at least one block");
        // The highest block starts active; the rest are free with erase
        // count 0 (same state the old `collect` + `pop` produced).
        let active_block = geometry.block_count - 1;
        let mut free_blocks = FreeBlockPool::new(geometry.block_count);
        for block in 0..active_block {
            free_blocks.push(block, 0);
        }
        Ftl {
            map: vec![None; geometry.logical_pages() as usize],
            active_block,
            next_in_active: 0,
            free_blocks,
            stats: FlashStats::default(),
            scratch: vec![0; geometry.page_size],
            in_gc: false,
            nand,
        }
    }

    /// Geometry of the underlying array.
    pub fn geometry(&self) -> &FlashGeometry {
        self.nand.geometry()
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Underlying array (read-only, for diagnostics and tests).
    pub fn nand(&self) -> &NandArray {
        &self.nand
    }

    fn check_lpn(&self, lpn: Lpn) -> Result<()> {
        if lpn >= self.map.len() as u64 {
            return Err(FlashError::BadAddress(lpn));
        }
        Ok(())
    }

    /// Read `buf.len()` bytes at `offset` within logical page `lpn`.
    ///
    /// Cost: one page load (25 µs) plus `buf.len()` register→RAM transfers.
    /// Reading a never-written page returns zeroes at zero cost (the FTL map
    /// answers without touching the array).
    pub fn read(&mut self, lpn: Lpn, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.check_lpn(lpn)?;
        let page_size = self.geometry().page_size;
        check_in_page(offset, buf.len(), page_size)?;
        match self.map[lpn as usize] {
            Some(ppn) => {
                self.nand.read(ppn, offset, buf);
                self.stats.pages_read += 1;
                self.stats.bytes_to_ram += buf.len() as u64;
            }
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Write a full logical page out of place.
    ///
    /// `image` may be shorter than the page; the tail is zero-padded. Cost:
    /// one page program (200 µs) plus a full-page RAM→register transfer.
    pub fn write(&mut self, lpn: Lpn, image: &[u8]) -> Result<()> {
        self.check_lpn(lpn)?;
        let page_size = self.geometry().page_size;
        if image.len() > page_size {
            return Err(FlashError::OutOfPage {
                offset: 0,
                len: image.len(),
                page_size,
            });
        }
        // Allocate first: GC may run inside and uses the scratch buffer.
        let ppn = self.allocate_page()?;
        let mut full = std::mem::take(&mut self.scratch);
        full[..image.len()].copy_from_slice(image);
        full[image.len()..].fill(0);
        self.nand.program(ppn, lpn, &full);
        self.scratch = full;
        if let Some(old) = self.map[lpn as usize].replace(ppn) {
            self.nand.invalidate(old);
        }
        self.stats.pages_written += 1;
        self.stats.bytes_from_ram += page_size as u64;
        Ok(())
    }

    /// Read-modify-write of a byte range inside a logical page: loads the old
    /// image (if any), overlays `data`, and programs a fresh page.
    pub fn write_at(&mut self, lpn: Lpn, offset: usize, data: &[u8]) -> Result<()> {
        self.check_lpn(lpn)?;
        let page_size = self.geometry().page_size;
        check_in_page(offset, data.len(), page_size)?;
        // Allocate first: GC may run inside, use the scratch buffer, and
        // relocate the page we are about to read — the map stays correct.
        let ppn = self.allocate_page()?;
        let mut image = std::mem::take(&mut self.scratch);
        if let Some(old) = self.map[lpn as usize] {
            self.nand.read(old, 0, &mut image);
            self.stats.pages_read += 1;
            self.stats.bytes_to_ram += page_size as u64;
        } else {
            image.fill(0);
        }
        image[offset..offset + data.len()].copy_from_slice(data);
        self.nand.program(ppn, lpn, &image);
        self.scratch = image;
        if let Some(old) = self.map[lpn as usize].replace(ppn) {
            self.nand.invalidate(old);
        }
        self.stats.pages_written += 1;
        self.stats.bytes_from_ram += page_size as u64;
        Ok(())
    }

    /// Drop the mapping of a logical page (used when segments are freed).
    /// Pure metadata: no array I/O is charged.
    pub fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.check_lpn(lpn)?;
        if let Some(ppn) = self.map[lpn as usize].take() {
            self.nand.invalidate(ppn);
        }
        Ok(())
    }

    /// Physical page programs the device can absorb before garbage
    /// collection could first run: pages left in the active block plus
    /// every whole free block above the GC low-water margin. While a write
    /// burst stays within this headroom, no GC fires during it — placement
    /// stays a pure function of program order.
    pub fn gc_headroom_pages(&self) -> u64 {
        let ppb = self.geometry().pages_per_block;
        let in_active = ppb - self.next_in_active.min(ppb);
        let spare = self.free_blocks.len().saturating_sub(GC_LOW_WATER) as u64;
        in_active + spare * ppb
    }

    /// True if the logical page has a current physical image.
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.map
            .get(lpn as usize)
            .map(|m| m.is_some())
            .unwrap_or(false)
    }

    /// Grab the next programmable physical page, rotating the active block
    /// and triggering GC as needed.
    fn allocate_page(&mut self) -> Result<Ppn> {
        let ppb = self.geometry().pages_per_block;
        if self.next_in_active >= ppb {
            if !self.in_gc {
                self.collect_garbage_if_needed()?;
            }
            self.active_block = self.take_free_block()?;
            self.next_in_active = 0;
        }
        let ppn = self.geometry().block_first_page(self.active_block) + self.next_in_active;
        self.next_in_active += 1;
        Ok(ppn)
    }

    /// Wear levelling: always activate the least-erased free block.
    fn take_free_block(&mut self) -> Result<u64> {
        self.free_blocks
            .take_least_erased()
            .ok_or(FlashError::OutOfSpace)
    }

    /// Greedy GC: while free blocks are scarce, erase the block with the
    /// most stale pages, relocating its valid pages into the active block.
    fn collect_garbage_if_needed(&mut self) -> Result<()> {
        self.in_gc = true;
        let result = self.collect_garbage_inner();
        self.in_gc = false;
        result
    }

    fn collect_garbage_inner(&mut self) -> Result<()> {
        while self.free_blocks.len() < GC_LOW_WATER {
            let Some(victim) = self.pick_victim() else {
                // Nothing reclaimable: either genuinely full, or only the
                // low-water margin is unmet while space remains — the latter
                // is fine, allocation will use the remaining free blocks.
                if self.free_blocks.is_empty() {
                    return Err(FlashError::OutOfSpace);
                }
                return Ok(());
            };
            self.relocate_and_erase(victim)?;
        }
        Ok(())
    }

    /// Victim = most invalid pages; ties broken toward least-worn blocks so
    /// static data does not pin wear to a few blocks.
    fn pick_victim(&self) -> Option<u64> {
        let geometry = *self.geometry();
        (0..geometry.block_count)
            .filter(|b| *b != self.active_block && !self.free_blocks.contains(*b))
            .filter(|b| self.nand.invalid_in_block(*b) > 0)
            .max_by_key(|b| {
                (
                    self.nand.invalid_in_block(*b),
                    u64::MAX - self.nand.erase_count(*b),
                )
            })
    }

    fn relocate_and_erase(&mut self, victim: u64) -> Result<()> {
        let moves: Vec<(Ppn, Lpn)> = self.nand.valid_pages_of_block(victim).collect();
        for (src, lpn) in moves {
            let mut image = std::mem::take(&mut self.scratch);
            self.nand.read(src, 0, &mut image);
            self.stats.gc_pages_read += 1;
            // The relocation destination must not be the victim itself; the
            // victim is excluded from `pick_victim` only as a non-active
            // block, and allocate_page can only return pages in the active
            // block or a fresh free block.
            let dst = self.allocate_page()?;
            self.nand.program(dst, lpn, &image);
            self.scratch = image;
            self.stats.gc_pages_written += 1;
            self.nand.invalidate(src);
            self.map[lpn as usize] = Some(dst);
        }
        self.nand.erase_block(victim);
        self.stats.blocks_erased += 1;
        self.free_blocks.push(victim, self.nand.erase_count(victim));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ftl() -> Ftl {
        Ftl::new(FlashGeometry {
            page_size: 128,
            pages_per_block: 4,
            block_count: 6,
            spare_blocks: 2,
        })
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut ftl = tiny_ftl();
        ftl.write(5, b"hello").unwrap();
        let mut buf = [0u8; 5];
        ftl.read(5, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(ftl.stats().pages_written, 1);
        assert_eq!(ftl.stats().pages_read, 1);
        assert_eq!(ftl.stats().bytes_to_ram, 5);
        assert_eq!(ftl.stats().bytes_from_ram, 128);
    }

    #[test]
    fn unwritten_page_reads_zero_at_no_cost() {
        let mut ftl = tiny_ftl();
        let mut buf = [9u8; 4];
        ftl.read(0, 10, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
        assert_eq!(ftl.stats().pages_read, 0);
    }

    #[test]
    fn overwrite_is_out_of_place() {
        let mut ftl = tiny_ftl();
        ftl.write(0, b"v1").unwrap();
        ftl.write(0, b"v2").unwrap();
        let mut buf = [0u8; 2];
        ftl.read(0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"v2");
        // Two physical programs happened; one stale page exists somewhere.
        assert_eq!(ftl.stats().pages_written, 2);
        let stale: u32 = (0..ftl.geometry().block_count)
            .map(|b| ftl.nand().invalid_in_block(b))
            .sum();
        assert_eq!(stale, 1);
    }

    #[test]
    fn write_at_does_read_modify_write() {
        let mut ftl = tiny_ftl();
        ftl.write(1, &[1u8; 128]).unwrap();
        ftl.write_at(1, 4, &[9, 9]).unwrap();
        let mut buf = [0u8; 8];
        ftl.read(1, 0, &mut buf).unwrap();
        assert_eq!(buf, [1, 1, 1, 1, 9, 9, 1, 1]);
        // RMW charged a full-page read.
        assert_eq!(ftl.stats().bytes_to_ram, 128 + 8);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_stay_consistent() {
        let mut ftl = tiny_ftl(); // 16 logical pages, 24 physical
        for round in 0u8..40 {
            for lpn in 0..ftl.geometry().logical_pages() {
                ftl.write(lpn, &[round ^ lpn as u8; 16]).unwrap();
            }
        }
        for lpn in 0..ftl.geometry().logical_pages() {
            let mut buf = [0u8; 16];
            ftl.read(lpn, 0, &mut buf).unwrap();
            assert_eq!(buf, [39 ^ lpn as u8; 16], "lpn {lpn}");
        }
        assert!(ftl.stats().blocks_erased > 0, "GC never ran");
        assert!(ftl.stats().gc_pages_written > 0 || ftl.stats().blocks_erased > 0);
    }

    #[test]
    fn wear_levelling_bounds_spread() {
        let mut ftl = tiny_ftl();
        // Hammer a single logical page; wear must spread across blocks
        // rather than ping-ponging on one.
        for i in 0u32..600 {
            ftl.write(0, &i.to_le_bytes()).unwrap();
        }
        assert!(
            ftl.nand().wear_spread() <= 16,
            "wear spread {} too large",
            ftl.nand().wear_spread()
        );
    }

    #[test]
    fn trim_releases_space() {
        let mut ftl = tiny_ftl();
        for lpn in 0..ftl.geometry().logical_pages() {
            ftl.write(lpn, &[1; 8]).unwrap();
        }
        for lpn in 0..ftl.geometry().logical_pages() {
            ftl.trim(lpn).unwrap();
            assert!(!ftl.is_mapped(lpn));
        }
        // All space reclaimable: a full rewrite round succeeds.
        for lpn in 0..ftl.geometry().logical_pages() {
            ftl.write(lpn, &[2; 8]).unwrap();
        }
    }

    #[test]
    fn gc_headroom_bounds_gc_free_write_bursts() {
        let mut ftl = tiny_ftl(); // 16 logical pages, 24 physical
        let headroom = ftl.gc_headroom_pages();
        // Fresh writes to distinct logical pages consume exactly one
        // physical page each: a burst within the headroom never GCs.
        assert!(headroom >= ftl.geometry().logical_pages());
        for lpn in 0..ftl.geometry().logical_pages() {
            ftl.write(lpn, &[1; 8]).unwrap();
        }
        assert_eq!(ftl.stats().blocks_erased, 0, "no GC within headroom");
        assert_eq!(
            ftl.gc_headroom_pages(),
            headroom - ftl.geometry().logical_pages(),
            "each fresh program consumes one headroom page"
        );
        // Overwrite churn past the headroom does trigger GC.
        for round in 0..4 {
            for lpn in 0..ftl.geometry().logical_pages() {
                ftl.write(lpn, &[round; 8]).unwrap();
            }
        }
        assert!(ftl.stats().blocks_erased > 0, "GC fires past the headroom");
    }

    #[test]
    fn bad_addresses_are_rejected() {
        let mut ftl = tiny_ftl();
        let out = ftl.geometry().logical_pages();
        assert!(matches!(
            ftl.write(out, &[0]),
            Err(FlashError::BadAddress(_))
        ));
        let mut buf = [0u8; 200];
        assert!(matches!(
            ftl.read(0, 0, &mut buf),
            Err(FlashError::OutOfPage { .. })
        ));
    }

    #[test]
    fn overflowing_offsets_return_out_of_page_not_panic() {
        // Regression: `offset + len` used to be an unchecked usize addition;
        // offsets near usize::MAX wrapped in release builds, passed the
        // `> page_size` guard, and panicked inside NandArray.
        let mut ftl = tiny_ftl();
        ftl.write(0, &[7; 16]).unwrap();
        let mut buf = [0u8; 16];
        for offset in [usize::MAX, usize::MAX - 1, usize::MAX - 15] {
            assert!(
                matches!(
                    ftl.read(0, offset, &mut buf),
                    Err(FlashError::OutOfPage { .. })
                ),
                "read at offset {offset}"
            );
            assert!(
                matches!(
                    ftl.write_at(0, offset, &[1; 16]),
                    Err(FlashError::OutOfPage { .. })
                ),
                "write_at at offset {offset}"
            );
        }
        // Exact-boundary accesses still work.
        let page = ftl.geometry().page_size;
        ftl.read(0, page - 1, &mut buf[..1]).unwrap();
        ftl.write_at(0, page - 1, &[9]).unwrap();
        // One past the end is rejected without overflow.
        assert!(matches!(
            ftl.read(0, page, &mut buf[..1]),
            Err(FlashError::OutOfPage { .. })
        ));
    }

    #[test]
    fn free_block_pool_matches_min_by_key_reference() {
        // The pool must select exactly what the old linear scan selected:
        // the first block (in Vec order) with the minimal erase count.
        let mut pool = FreeBlockPool::new(8);
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let pushes: [(u64, u64); 8] = [
            (3, 5),
            (1, 2),
            (7, 2),
            (0, 9),
            (4, 2),
            (2, 0),
            (6, 0),
            (5, 7),
        ];
        let mut i = 0;
        for round in 0..pushes.len() * 2 {
            if round % 3 != 2 && i < pushes.len() {
                let (b, c) = pushes[i];
                i += 1;
                pool.push(b, c);
                reference.push((b, c));
            } else if !reference.is_empty() {
                let (idx, _) = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, c))| *c)
                    .unwrap();
                let want = reference.swap_remove(idx).0;
                assert_eq!(pool.take_least_erased(), Some(want));
            }
        }
        while let Some(got) = pool.take_least_erased() {
            let (idx, _) = reference
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, c))| *c)
                .unwrap();
            assert_eq!(got, reference.swap_remove(idx).0);
        }
        assert!(reference.is_empty());
        assert!(pool.is_empty());
    }

    #[test]
    fn free_block_pool_membership_tracks_take_and_push() {
        let mut pool = FreeBlockPool::new(4);
        pool.push(0, 1);
        pool.push(2, 0);
        assert!(pool.contains(0) && pool.contains(2));
        assert!(!pool.contains(1) && !pool.contains(3));
        assert_eq!(pool.take_least_erased(), Some(2));
        assert!(!pool.contains(2));
        assert_eq!(pool.len(), 1);
        pool.push(2, 1);
        // Tie on erase count 1: block 0 sits at slot 0, before block 2.
        assert_eq!(pool.take_least_erased(), Some(0));
    }

    #[test]
    fn filling_logical_space_succeeds_and_overcommit_fails_gracefully() {
        let mut ftl = tiny_ftl();
        for lpn in 0..ftl.geometry().logical_pages() {
            ftl.write(lpn, &[3; 8]).unwrap();
        }
        // Rewriting everything several times still works thanks to GC.
        for _ in 0..5 {
            for lpn in 0..ftl.geometry().logical_pages() {
                ftl.write(lpn, &[4; 8]).unwrap();
            }
        }
    }
}
