//! The Table 1 cost model of the paper.

use serde::{Deserialize, Serialize};

/// Timing parameters of the flash module (paper Table 1).
///
/// Reading `k` bytes of a page costs `read_page_us + k × transfer_ns_per_byte`
/// (load the page into the data register, then shift the needed bytes to
/// RAM). Programming a page costs `program_page_us` plus the RAM→register
/// transfer of the full page, which reproduces the write/read cost ratio of
/// ~2.5 (vs. a full-page read) to ~12 (vs. a single-word read) quoted in
/// §2.3/§6.1. Block erase happens only inside FTL garbage collection; the
/// paper does not list an erase time, so we use 1.5 ms, typical of the NAND
/// parts of that generation (documented substitution).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashTiming {
    /// Time to load a page from the NAND array into the data register (µs).
    pub read_page_us: u64,
    /// Time to move one byte between the data register and RAM (ns).
    pub transfer_ns_per_byte: u64,
    /// Time to program a page from the data register into the array (µs).
    pub program_page_us: u64,
    /// Time to erase a block (µs). Not in Table 1; see struct docs.
    pub erase_block_us: u64,
}

impl FlashTiming {
    /// Simulated cost in nanoseconds of reading `bytes` from one page.
    pub fn read_cost_ns(&self, bytes: usize) -> u128 {
        self.read_page_us as u128 * 1_000 + bytes as u128 * self.transfer_ns_per_byte as u128
    }

    /// Simulated cost in nanoseconds of programming one full page of
    /// `page_size` bytes (transfer + program).
    pub fn write_cost_ns(&self, page_size: usize) -> u128 {
        self.program_page_us as u128 * 1_000 + page_size as u128 * self.transfer_ns_per_byte as u128
    }

    /// Simulated cost in nanoseconds of erasing one block.
    pub fn erase_cost_ns(&self) -> u128 {
        self.erase_block_us as u128 * 1_000
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming {
            read_page_us: 25,
            transfer_ns_per_byte: 50,
            program_page_us: 200,
            erase_block_us: 1_500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_costs() {
        let t = FlashTiming::default();
        // Reading a full 2 KB page: 25 µs + 2048 × 50 ns ≈ 127.4 µs,
        // within the paper's quoted 25–125 µs band (they round the transfer).
        assert_eq!(t.read_cost_ns(2048), 25_000 + 2048 * 50);
        // Reading a single 4-byte word costs barely more than the page load.
        assert_eq!(t.read_cost_ns(4), 25_000 + 200);
        // Writing a page: 200 µs + transfer.
        assert_eq!(t.write_cost_ns(2048), 200_000 + 2048 * 50);
    }

    #[test]
    fn write_read_ratio_matches_paper_band() {
        let t = FlashTiming::default();
        let w = t.write_cost_ns(2048) as f64;
        let full_read = t.read_cost_ns(2048) as f64;
        let word_read = t.read_cost_ns(4) as f64;
        let low = w / full_read;
        let high = w / word_read;
        // §2.3: "writes are roughly between 3 to 12 times slower than reads";
        // §6.1 refines to "roughly vary from 2.5 to 12".
        assert!((2.2..3.2).contains(&low), "low ratio {low}");
        assert!((10.0..14.0).contains(&high), "high ratio {high}");
    }
}
