//! The logical flash device used by the storage engine: a forkable handle
//! over a shared [`ChipArray`], with exact handle-local I/O accounting.
//!
//! `FlashDevice` is no longer the array itself but a *handle*: the chips
//! live in an `Arc<ChipArray>` and every handle keeps its own local
//! [`FlashStats`] mirror, fed the exact per-operation delta computed
//! inside the chip lock. [`FlashDevice::fork`] hands a worker lane its
//! own handle onto the same chips: lanes on disjoint chips proceed
//! without contention, lanes sharing a chip serialise per page operation
//! (not per operator scope), and each lane's `snapshot`/`stats_since`
//! attribution stays exact because it diffs the lane's own counter, never
//! a device-wide one another lane is concurrently bumping.
//!
//! Device-wide ground truth ([`FlashDevice::stats`], `elapsed`) sums over
//! chips and is what GC-taint detection reads; the handle-local view
//! ([`FlashDevice::snapshot`], `stats_since`, `elapsed_since`) is what
//! per-operator cost attribution reads. With a single handle on a single
//! chip the two views coincide, which is exactly the pre-multi-chip
//! behaviour.

use crate::chip::ChipArray;
use crate::geometry::FlashGeometry;
use crate::stats::{FlashSnapshot, FlashStats, SimDuration};
use crate::timing::FlashTiming;
use crate::{Lpn, Result};
use std::sync::Arc;

/// A handle on a simulated flash device: logical page reads/writes with
/// exact I/O accounting and a simulated clock derived from the Table 1
/// cost model.
#[derive(Debug)]
pub struct FlashDevice {
    array: Arc<ChipArray>,
    /// Counters charged through *this handle* (exact: accumulated from
    /// per-op deltas computed inside the chip lock).
    local: FlashStats,
}

impl FlashDevice {
    /// New single-chip device over an erased module.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        FlashDevice::with_chips(geometry, timing, 1)
    }

    /// New device with `chips` identical chips, each over `geometry` and
    /// owning a contiguous slice of the logical address space.
    pub fn with_chips(geometry: FlashGeometry, timing: FlashTiming, chips: usize) -> Self {
        FlashDevice {
            array: Arc::new(ChipArray::new(geometry, timing, chips)),
            local: FlashStats::default(),
        }
    }

    /// Device with default geometry (256 MB) and paper timing.
    pub fn default_key() -> Self {
        FlashDevice::new(FlashGeometry::default(), FlashTiming::default())
    }

    /// A new handle onto the same chips with a zeroed local counter: what
    /// a worker lane gets. The fork sees (and contends on) the same
    /// array, but its `snapshot`/`stats_since` attribution is private.
    pub fn fork(&self) -> FlashDevice {
        FlashDevice {
            array: Arc::clone(&self.array),
            local: FlashStats::default(),
        }
    }

    /// Per-chip geometry of the module (all chips are identical).
    pub fn geometry(&self) -> &FlashGeometry {
        self.array.geometry()
    }

    /// Page size in bytes (the I/O unit).
    pub fn page_size(&self) -> usize {
        self.geometry().page_size
    }

    /// Number of logical pages addressable by the storage engine (all
    /// chips together).
    pub fn logical_pages(&self) -> u64 {
        self.array.logical_pages()
    }

    /// Number of physical pages across all chips, spares included.
    pub fn physical_pages(&self) -> u64 {
        self.array.physical_pages()
    }

    /// Number of chips (= independent channels).
    pub fn chip_count(&self) -> usize {
        self.array.chip_count()
    }

    /// Logical pages owned by each chip.
    pub fn chip_pages(&self) -> u64 {
        self.array.chip_pages()
    }

    /// Chip that owns a logical page.
    pub fn chip_of(&self, lpn: Lpn) -> usize {
        self.array.chip_of(lpn)
    }

    /// Timing model in force.
    pub fn timing(&self) -> &FlashTiming {
        self.array.timing()
    }

    /// Read bytes from within one logical page.
    pub fn read(&mut self, lpn: Lpn, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.local += self.array.read(lpn, offset, buf)?;
        Ok(())
    }

    /// Write a full logical page (short images are zero-padded).
    pub fn write(&mut self, lpn: Lpn, image: &[u8]) -> Result<()> {
        self.local += self.array.write(lpn, image)?;
        Ok(())
    }

    /// Read-modify-write of a byte range within one logical page.
    pub fn write_at(&mut self, lpn: Lpn, offset: usize, data: &[u8]) -> Result<()> {
        self.local += self.array.write_at(lpn, offset, data)?;
        Ok(())
    }

    /// Release a logical page (metadata only).
    pub fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.local += self.array.trim(lpn)?;
        Ok(())
    }

    /// Cumulative I/O counters of the whole device since construction —
    /// every handle, every chip. This is the ground truth GC-taint
    /// detection reads.
    pub fn stats(&self) -> FlashStats {
        self.array.stats()
    }

    /// Cumulative counters of one chip (all handles).
    pub fn chip_stats(&self, chip: usize) -> FlashStats {
        self.array.chip_stats(chip)
    }

    /// Snapshot of *this handle's* counters, for per-operator attribution.
    /// Diffing with [`FlashDevice::stats_since`] is exact even while other
    /// handles drive the same chips.
    pub fn snapshot(&self) -> FlashSnapshot {
        self.local
    }

    /// Counters this handle accumulated since `snap`.
    pub fn stats_since(&self, snap: &FlashSnapshot) -> FlashStats {
        self.local - *snap
    }

    /// Simulated time implied by all I/O so far (single-channel sum over
    /// every chip: the serial-issue clock).
    pub fn elapsed(&self) -> SimDuration {
        self.stats().elapsed(self.timing(), self.page_size())
    }

    /// Simulated busy time of one chip's channel.
    pub fn chip_elapsed(&self, chip: usize) -> SimDuration {
        self.array.chip_elapsed(chip)
    }

    /// Simulated completion time with all channels streaming concurrently
    /// (the busiest chip). `elapsed() / channel_makespan()` is the
    /// device-level parallel speedup.
    pub fn channel_makespan(&self) -> SimDuration {
        self.array.channel_makespan()
    }

    /// Simulated time implied by the I/O this handle performed since
    /// `snap`.
    pub fn elapsed_since(&self, snap: &FlashSnapshot) -> SimDuration {
        self.stats_since(snap)
            .elapsed(self.timing(), self.page_size())
    }

    /// Largest per-chip wear spread (diagnostics).
    pub fn wear_spread(&self) -> u64 {
        self.array.wear_spread()
    }

    /// Physical page programs the weakest chip can absorb before garbage
    /// collection could first run (see [`crate::ftl::Ftl::gc_headroom_pages`]).
    pub fn gc_headroom_pages(&self) -> u64 {
        self.array.gc_headroom_pages()
    }

    /// GC headroom of one chip.
    pub fn gc_headroom_of(&self, chip: usize) -> u64 {
        self.array.gc_headroom_of(chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_tracks_cost_model() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 2048,
                pages_per_block: 16,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        dev.write(0, &[7u8; 2048]).unwrap();
        let mut buf = [0u8; 4];
        dev.read(0, 0, &mut buf).unwrap();
        let expect = dev.timing().write_cost_ns(2048) + dev.timing().read_cost_ns(4);
        assert_eq!(dev.elapsed().as_ns(), expect);
    }

    #[test]
    fn snapshot_attribution() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 512,
                pages_per_block: 16,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        dev.write(1, &[1u8; 512]).unwrap();
        let snap = dev.snapshot();
        let mut buf = [0u8; 16];
        dev.read(1, 0, &mut buf).unwrap();
        let d = dev.stats_since(&snap);
        assert_eq!(d.pages_written, 0);
        assert_eq!(d.pages_read, 1);
        assert_eq!(d.bytes_to_ram, 16);
        assert_eq!(
            dev.elapsed_since(&snap).as_ns(),
            dev.timing().read_cost_ns(16)
        );
    }

    fn multichip(chips: usize) -> FlashDevice {
        FlashDevice::with_chips(
            FlashGeometry {
                page_size: 256,
                pages_per_block: 4,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
            chips,
        )
    }

    #[test]
    fn multichip_roundtrip_spans_chip_boundaries() {
        let mut dev = multichip(4);
        assert_eq!(dev.chip_count(), 4);
        assert_eq!(dev.logical_pages(), 4 * dev.chip_pages());
        for lpn in 0..dev.logical_pages() {
            dev.write(lpn, &(lpn as u32).to_le_bytes()).unwrap();
        }
        for lpn in 0..dev.logical_pages() {
            let mut buf = [0u8; 4];
            dev.read(lpn, 0, &mut buf).unwrap();
            assert_eq!(u32::from_le_bytes(buf), lpn as u32, "lpn {lpn}");
        }
    }

    #[test]
    fn fork_attribution_is_handle_local_and_sums_device_wide() {
        let mut dev = multichip(2);
        let mut lane = dev.fork();
        dev.write(0, &[1; 64]).unwrap();
        let lane_snap = lane.snapshot();
        lane.write(dev.chip_pages(), &[2; 64]).unwrap();
        lane.write(dev.chip_pages() + 1, &[2; 64]).unwrap();
        // Each handle only sees its own traffic...
        assert_eq!(dev.snapshot().pages_written, 1);
        assert_eq!(lane.stats_since(&lane_snap).pages_written, 2);
        // ...while the device-wide view sees everything from any handle.
        assert_eq!(dev.stats().pages_written, 3);
        assert_eq!(lane.stats(), dev.stats());
    }

    #[test]
    fn makespan_reflects_channel_concurrency() {
        let mut dev = multichip(2);
        // Balanced load: both chips equally busy.
        dev.write(0, &[1; 256]).unwrap();
        dev.write(dev.chip_pages(), &[1; 256]).unwrap();
        assert_eq!(dev.elapsed().as_ns(), 2 * dev.channel_makespan().as_ns());
        assert_eq!(dev.chip_elapsed(0), dev.chip_elapsed(1));
    }
}
