//! The logical flash device used by the storage engine: FTL + cost model.

use crate::ftl::Ftl;
use crate::geometry::FlashGeometry;
use crate::stats::{FlashSnapshot, FlashStats, SimDuration};
use crate::timing::FlashTiming;
use crate::{Lpn, Result};

/// A simulated flash device: logical page reads/writes with exact I/O
/// accounting and a simulated clock derived from the Table 1 cost model.
#[derive(Debug)]
pub struct FlashDevice {
    ftl: Ftl,
    timing: FlashTiming,
}

impl FlashDevice {
    /// New device over an erased module.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        FlashDevice {
            ftl: Ftl::new(geometry),
            timing,
        }
    }

    /// Device with default geometry (256 MB) and paper timing.
    pub fn default_key() -> Self {
        FlashDevice::new(FlashGeometry::default(), FlashTiming::default())
    }

    /// Geometry of the module.
    pub fn geometry(&self) -> &FlashGeometry {
        self.ftl.geometry()
    }

    /// Page size in bytes (the I/O unit).
    pub fn page_size(&self) -> usize {
        self.geometry().page_size
    }

    /// Number of logical pages addressable by the storage engine.
    pub fn logical_pages(&self) -> u64 {
        self.geometry().logical_pages()
    }

    /// Timing model in force.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Read bytes from within one logical page.
    pub fn read(&mut self, lpn: Lpn, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.ftl.read(lpn, offset, buf)
    }

    /// Write a full logical page (short images are zero-padded).
    pub fn write(&mut self, lpn: Lpn, image: &[u8]) -> Result<()> {
        self.ftl.write(lpn, image)
    }

    /// Read-modify-write of a byte range within one logical page.
    pub fn write_at(&mut self, lpn: Lpn, offset: usize, data: &[u8]) -> Result<()> {
        self.ftl.write_at(lpn, offset, data)
    }

    /// Release a logical page (metadata only).
    pub fn trim(&mut self, lpn: Lpn) -> Result<()> {
        self.ftl.trim(lpn)
    }

    /// Cumulative I/O counters since construction.
    pub fn stats(&self) -> FlashStats {
        *self.ftl.stats()
    }

    /// Snapshot for per-operator attribution.
    pub fn snapshot(&self) -> FlashSnapshot {
        *self.ftl.stats()
    }

    /// Counters accumulated since `snap`.
    pub fn stats_since(&self, snap: &FlashSnapshot) -> FlashStats {
        self.stats() - *snap
    }

    /// Simulated time implied by all I/O so far.
    pub fn elapsed(&self) -> SimDuration {
        self.stats().elapsed(&self.timing, self.page_size())
    }

    /// Simulated time implied by the I/O performed since `snap`.
    pub fn elapsed_since(&self, snap: &FlashSnapshot) -> SimDuration {
        self.stats_since(snap)
            .elapsed(&self.timing, self.page_size())
    }

    /// Wear spread of the underlying array (diagnostics).
    pub fn wear_spread(&self) -> u64 {
        self.ftl.nand().wear_spread()
    }

    /// Physical page programs the device can absorb before garbage
    /// collection could first run (see [`crate::ftl::Ftl::gc_headroom_pages`]).
    pub fn gc_headroom_pages(&self) -> u64 {
        self.ftl.gc_headroom_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_tracks_cost_model() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 2048,
                pages_per_block: 16,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        dev.write(0, &[7u8; 2048]).unwrap();
        let mut buf = [0u8; 4];
        dev.read(0, 0, &mut buf).unwrap();
        let expect = dev.timing().write_cost_ns(2048) + dev.timing().read_cost_ns(4);
        assert_eq!(dev.elapsed().as_ns(), expect);
    }

    #[test]
    fn snapshot_attribution() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 512,
                pages_per_block: 16,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        dev.write(1, &[1u8; 512]).unwrap();
        let snap = dev.snapshot();
        let mut buf = [0u8; 16];
        dev.read(1, 0, &mut buf).unwrap();
        let d = dev.stats_since(&snap);
        assert_eq!(d.pages_written, 0);
        assert_eq!(d.pages_read, 1);
        assert_eq!(d.bytes_to_ram, 16);
        assert_eq!(
            dev.elapsed_since(&snap).as_ns(),
            dev.timing().read_cost_ns(16)
        );
    }
}
