//! The logical flash device used by the storage engine: a forkable handle
//! over a shared [`ChipArray`], with exact handle-local I/O accounting.
//!
//! `FlashDevice` is no longer the array itself but a *handle*: the chips
//! live in an `Arc<ChipArray>` and every handle keeps its own local
//! [`FlashStats`] mirror, fed the exact per-operation delta computed
//! inside the chip lock. [`FlashDevice::fork`] hands a worker lane its
//! own handle onto the same chips: lanes on disjoint chips proceed
//! without contention, lanes sharing a chip serialise per page operation
//! (not per operator scope), and each lane's `snapshot`/`stats_since`
//! attribution stays exact because it diffs the lane's own counter, never
//! a device-wide one another lane is concurrently bumping.
//!
//! Device-wide ground truth ([`FlashDevice::stats`], `elapsed`) sums over
//! chips and is what GC-taint detection reads; the handle-local view
//! ([`FlashDevice::snapshot`], `stats_since`, `elapsed_since`) is what
//! per-operator cost attribution reads. With a single handle on a single
//! chip the two views coincide, which is exactly the pre-multi-chip
//! behaviour.

use crate::chip::{ChipArray, PageReq, PageWrite};
use crate::geometry::FlashGeometry;
use crate::stats::{FlashSnapshot, FlashStats, SimDuration};
use crate::timing::FlashTiming;
use crate::{Lpn, Result};
use std::sync::Arc;

/// A handle on a simulated flash device: logical page reads/writes with
/// exact I/O accounting and a simulated clock derived from the Table 1
/// cost model.
#[derive(Debug)]
pub struct FlashDevice {
    array: Arc<ChipArray>,
    /// Counters charged through *this handle* (exact: accumulated from
    /// per-op deltas computed inside the chip lock).
    local: FlashStats,
    /// This handle's channel-overlapped clock: single operations add
    /// their full issue time, vectored batches add only the batch
    /// makespan (busiest chip). Side-band wall-model information — the
    /// counters above never see it, so attribution stays batch-invariant.
    overlap: SimDuration,
}

impl FlashDevice {
    /// New single-chip device over an erased module.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        FlashDevice::with_chips(geometry, timing, 1)
    }

    /// New device with `chips` identical chips, each over `geometry` and
    /// owning a contiguous slice of the logical address space.
    pub fn with_chips(geometry: FlashGeometry, timing: FlashTiming, chips: usize) -> Self {
        FlashDevice {
            array: Arc::new(ChipArray::new(geometry, timing, chips)),
            local: FlashStats::default(),
            overlap: SimDuration::ZERO,
        }
    }

    /// Device with default geometry (256 MB) and paper timing.
    pub fn default_key() -> Self {
        FlashDevice::new(FlashGeometry::default(), FlashTiming::default())
    }

    /// A new handle onto the same chips with a zeroed local counter: what
    /// a worker lane gets. The fork sees (and contends on) the same
    /// array, but its `snapshot`/`stats_since` attribution is private.
    pub fn fork(&self) -> FlashDevice {
        FlashDevice {
            array: Arc::clone(&self.array),
            local: FlashStats::default(),
            overlap: SimDuration::ZERO,
        }
    }

    /// Per-chip geometry of the module (all chips are identical).
    pub fn geometry(&self) -> &FlashGeometry {
        self.array.geometry()
    }

    /// Page size in bytes (the I/O unit).
    pub fn page_size(&self) -> usize {
        self.geometry().page_size
    }

    /// Number of logical pages addressable by the storage engine (all
    /// chips together).
    pub fn logical_pages(&self) -> u64 {
        self.array.logical_pages()
    }

    /// Number of physical pages across all chips, spares included.
    pub fn physical_pages(&self) -> u64 {
        self.array.physical_pages()
    }

    /// Number of chips (= independent channels).
    pub fn chip_count(&self) -> usize {
        self.array.chip_count()
    }

    /// Logical pages owned by each chip.
    pub fn chip_pages(&self) -> u64 {
        self.array.chip_pages()
    }

    /// Chip that owns a logical page.
    pub fn chip_of(&self, lpn: Lpn) -> usize {
        self.array.chip_of(lpn)
    }

    /// Timing model in force.
    pub fn timing(&self) -> &FlashTiming {
        self.array.timing()
    }

    /// Mirror a single operation's exact delta into the handle-local
    /// counters; a lone operation occupies its channel for its full issue
    /// time, so the overlap clock advances by the whole delta.
    fn charge_single(&mut self, delta: FlashStats) {
        self.overlap += delta.elapsed(self.array.timing(), self.array.geometry().page_size);
        self.local += delta;
    }

    /// Read bytes from within one logical page.
    pub fn read(&mut self, lpn: Lpn, offset: usize, buf: &mut [u8]) -> Result<()> {
        let delta = self.array.read(lpn, offset, buf)?;
        self.charge_single(delta);
        Ok(())
    }

    /// Vectored scatter read: execute a batch of page reads, each request
    /// filling its own destination buffer. The handle-local counters
    /// receive the exact summed delta — bit-identical to a loop of
    /// [`FlashDevice::read`] calls — while the overlap clock advances by
    /// only the batch **makespan** (requests binned per chip, all channels
    /// streaming concurrently, busiest chip wins). Returns the makespan.
    pub fn read_batch_into(
        &mut self,
        reqs: &[PageReq],
        outs: &mut [&mut [u8]],
    ) -> Result<SimDuration> {
        let (delta, makespan) = self.array.read_batch(reqs, outs)?;
        self.local += delta;
        self.overlap += makespan;
        Ok(makespan)
    }

    /// Vectored gather read: like [`FlashDevice::read_batch_into`], but
    /// request `i` fills `out[sum of len 0..i ..][..len_i]` — one
    /// contiguous destination sliced per request in submission order
    /// (`out` must be exactly the summed request length).
    pub fn read_batch(&mut self, reqs: &[PageReq], out: &mut [u8]) -> Result<SimDuration> {
        let total: usize = reqs.iter().map(|r| r.len).sum();
        assert_eq!(out.len(), total, "gather destination must match the batch");
        let mut outs: Vec<&mut [u8]> = Vec::with_capacity(reqs.len());
        let mut rest = out;
        for req in reqs {
            let (head, tail) = rest.split_at_mut(req.len);
            outs.push(head);
            rest = tail;
        }
        self.read_batch_into(reqs, &mut outs)
    }

    /// Write a full logical page (short images are zero-padded).
    pub fn write(&mut self, lpn: Lpn, image: &[u8]) -> Result<()> {
        let delta = self.array.write(lpn, image)?;
        self.charge_single(delta);
        Ok(())
    }

    /// Vectored write: program a batch of full logical pages, binned per
    /// chip with each involved chip locked exactly once. The handle-local
    /// counters receive the exact summed delta — bit-identical to a loop
    /// of [`FlashDevice::write`] calls in submission order — while the
    /// overlap clock advances by only the batch **makespan** (all
    /// channels programming concurrently, busiest chip wins). Returns the
    /// makespan.
    ///
    /// On a mid-batch failure (`OutOfSpace` under exhausted GC) the work
    /// that did happen — per-chip prefixes of the batch — is still billed
    /// to the handle before the error is returned, so the local mirror
    /// never drifts from device ground truth. Validation failures (bad
    /// address, oversized image) are detected up front and charge
    /// nothing.
    pub fn write_batch(&mut self, reqs: &[PageWrite<'_>]) -> Result<SimDuration> {
        let (delta, makespan, result) = self.array.write_batch(reqs);
        self.local += delta;
        self.overlap += makespan;
        result.map(|()| makespan)
    }

    /// Read-modify-write of a byte range within one logical page.
    pub fn write_at(&mut self, lpn: Lpn, offset: usize, data: &[u8]) -> Result<()> {
        let delta = self.array.write_at(lpn, offset, data)?;
        self.charge_single(delta);
        Ok(())
    }

    /// Release a logical page (metadata only).
    pub fn trim(&mut self, lpn: Lpn) -> Result<()> {
        let delta = self.array.trim(lpn)?;
        self.charge_single(delta);
        Ok(())
    }

    /// Cumulative I/O counters of the whole device since construction —
    /// every handle, every chip. This is the ground truth GC-taint
    /// detection reads.
    pub fn stats(&self) -> FlashStats {
        self.array.stats()
    }

    /// Cumulative counters of one chip (all handles).
    pub fn chip_stats(&self, chip: usize) -> FlashStats {
        self.array.chip_stats(chip)
    }

    /// Snapshot of *this handle's* counters, for per-operator attribution.
    /// Diffing with [`FlashDevice::stats_since`] is exact even while other
    /// handles drive the same chips.
    pub fn snapshot(&self) -> FlashSnapshot {
        self.local
    }

    /// Counters this handle accumulated since `snap`.
    pub fn stats_since(&self, snap: &FlashSnapshot) -> FlashStats {
        self.local - *snap
    }

    /// Simulated time implied by all I/O so far (single-channel sum over
    /// every chip: the serial-issue clock).
    pub fn elapsed(&self) -> SimDuration {
        self.stats().elapsed(self.timing(), self.page_size())
    }

    /// Simulated busy time of one chip's channel.
    pub fn chip_elapsed(&self, chip: usize) -> SimDuration {
        self.array.chip_elapsed(chip)
    }

    /// Simulated completion time with all channels streaming concurrently
    /// (the busiest chip). `elapsed() / channel_makespan()` is the
    /// device-level parallel speedup.
    pub fn channel_makespan(&self) -> SimDuration {
        self.array.channel_makespan()
    }

    /// Simulated time implied by the I/O this handle performed since
    /// `snap`.
    pub fn elapsed_since(&self, snap: &FlashSnapshot) -> SimDuration {
        self.stats_since(snap)
            .elapsed(self.timing(), self.page_size())
    }

    /// This handle's channel-overlapped clock: the simulated time its
    /// I/O took with vectored batches overlapping across chips. Single
    /// operations advance it by their full issue time; a batch advances
    /// it by its makespan only. Always ≤ the issue-sum clock implied by
    /// [`FlashDevice::snapshot`]; the ratio of the two is the vectoring
    /// win. Forks start at zero, like the counter mirror.
    pub fn overlap_elapsed(&self) -> SimDuration {
        self.overlap
    }

    /// Largest per-chip wear spread (diagnostics).
    pub fn wear_spread(&self) -> u64 {
        self.array.wear_spread()
    }

    /// Physical page programs the weakest chip can absorb before garbage
    /// collection could first run (see [`crate::ftl::Ftl::gc_headroom_pages`]).
    pub fn gc_headroom_pages(&self) -> u64 {
        self.array.gc_headroom_pages()
    }

    /// GC headroom of one chip.
    pub fn gc_headroom_of(&self, chip: usize) -> u64 {
        self.array.gc_headroom_of(chip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_tracks_cost_model() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 2048,
                pages_per_block: 16,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        dev.write(0, &[7u8; 2048]).unwrap();
        let mut buf = [0u8; 4];
        dev.read(0, 0, &mut buf).unwrap();
        let expect = dev.timing().write_cost_ns(2048) + dev.timing().read_cost_ns(4);
        assert_eq!(dev.elapsed().as_ns(), expect);
    }

    #[test]
    fn snapshot_attribution() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 512,
                pages_per_block: 16,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        dev.write(1, &[1u8; 512]).unwrap();
        let snap = dev.snapshot();
        let mut buf = [0u8; 16];
        dev.read(1, 0, &mut buf).unwrap();
        let d = dev.stats_since(&snap);
        assert_eq!(d.pages_written, 0);
        assert_eq!(d.pages_read, 1);
        assert_eq!(d.bytes_to_ram, 16);
        assert_eq!(
            dev.elapsed_since(&snap).as_ns(),
            dev.timing().read_cost_ns(16)
        );
    }

    fn multichip(chips: usize) -> FlashDevice {
        FlashDevice::with_chips(
            FlashGeometry {
                page_size: 256,
                pages_per_block: 4,
                block_count: 8,
                spare_blocks: 2,
            },
            FlashTiming::default(),
            chips,
        )
    }

    #[test]
    fn multichip_roundtrip_spans_chip_boundaries() {
        let mut dev = multichip(4);
        assert_eq!(dev.chip_count(), 4);
        assert_eq!(dev.logical_pages(), 4 * dev.chip_pages());
        for lpn in 0..dev.logical_pages() {
            dev.write(lpn, &(lpn as u32).to_le_bytes()).unwrap();
        }
        for lpn in 0..dev.logical_pages() {
            let mut buf = [0u8; 4];
            dev.read(lpn, 0, &mut buf).unwrap();
            assert_eq!(u32::from_le_bytes(buf), lpn as u32, "lpn {lpn}");
        }
    }

    #[test]
    fn fork_attribution_is_handle_local_and_sums_device_wide() {
        let mut dev = multichip(2);
        let mut lane = dev.fork();
        dev.write(0, &[1; 64]).unwrap();
        let lane_snap = lane.snapshot();
        lane.write(dev.chip_pages(), &[2; 64]).unwrap();
        lane.write(dev.chip_pages() + 1, &[2; 64]).unwrap();
        // Each handle only sees its own traffic...
        assert_eq!(dev.snapshot().pages_written, 1);
        assert_eq!(lane.stats_since(&lane_snap).pages_written, 2);
        // ...while the device-wide view sees everything from any handle.
        assert_eq!(dev.stats().pages_written, 3);
        assert_eq!(lane.stats(), dev.stats());
    }

    #[test]
    fn read_batch_bills_like_singles_but_clocks_the_makespan() {
        let mut dev = multichip(4);
        let span = dev.chip_pages();
        // One written page per chip, then a 4-request batch across chips.
        for chip in 0..4u64 {
            dev.write(chip * span, &[chip as u8; 256]).unwrap();
        }
        let mut serial = dev.fork();
        let mut batched = dev.fork();
        let reqs: Vec<PageReq> = (0..4u64)
            .map(|c| PageReq::full_page(c * span, 256))
            .collect();
        let mut serial_out = vec![0u8; 4 * 256];
        for (i, r) in reqs.iter().enumerate() {
            serial
                .read(r.lpn, r.offset, &mut serial_out[i * 256..(i + 1) * 256])
                .unwrap();
        }
        let mut batch_out = vec![0u8; 4 * 256];
        let makespan = batched.read_batch(&reqs, &mut batch_out).unwrap();
        // Same bytes, same counters — the batch is invisible to attribution.
        assert_eq!(batch_out, serial_out);
        assert_eq!(batched.snapshot(), serial.snapshot());
        // One request per chip: the batch completes in 1/4 the issue sum.
        let issue = serial.elapsed_since(&FlashStats::default());
        assert_eq!(4 * makespan.as_ns(), issue.as_ns());
        assert_eq!(batched.overlap_elapsed(), makespan);
        assert_eq!(serial.overlap_elapsed(), issue);
    }

    #[test]
    fn read_batch_handles_duplicates_and_partial_ranges() {
        let mut dev = multichip(2);
        dev.write(3, &[9u8; 256]).unwrap();
        let reqs = [
            PageReq {
                lpn: 3,
                offset: 8,
                len: 16,
            },
            PageReq {
                lpn: 3,
                offset: 8,
                len: 16,
            },
            PageReq {
                lpn: 3 + dev.chip_pages(),
                offset: 0,
                len: 4,
            }, // unmapped: zero-fill, zero cost
        ];
        let mut out = vec![1u8; 36];
        dev.read_batch(&reqs, &mut out).unwrap();
        assert_eq!(&out[..16], &[9u8; 16]);
        assert_eq!(&out[16..32], &[9u8; 16]);
        assert_eq!(&out[32..], &[0u8; 4]);
        // Duplicates each charge a full page load, like repeated singles.
        assert_eq!(dev.snapshot().pages_read, 2);
        assert_eq!(dev.snapshot().bytes_to_ram, 32);
    }

    #[test]
    fn failed_batch_charges_nothing() {
        let mut dev = multichip(2);
        let bad = [PageReq::full_page(dev.logical_pages(), 256)];
        let mut out = vec![0u8; 256];
        assert!(dev.read_batch(&bad, &mut out).is_err());
        let oversize = [PageReq {
            lpn: 0,
            offset: 128,
            len: 256,
        }];
        let mut out = vec![0u8; 256];
        assert!(dev.read_batch(&oversize, &mut out).is_err());
        assert_eq!(dev.snapshot(), FlashStats::default());
        assert_eq!(dev.overlap_elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn write_batch_bills_like_singles_but_clocks_the_makespan() {
        let serial_dev = multichip(4);
        let batched_dev = multichip(4);
        let span = serial_dev.chip_pages();
        let images: Vec<Vec<u8>> = (0..4u8).map(|c| vec![c; 256]).collect();
        let mut serial = serial_dev.fork();
        for (c, image) in images.iter().enumerate() {
            serial.write(c as u64 * span, image).unwrap();
        }
        let mut batched = batched_dev.fork();
        let reqs: Vec<PageWrite> = images
            .iter()
            .enumerate()
            .map(|(c, image)| PageWrite {
                lpn: c as u64 * span,
                image,
            })
            .collect();
        let makespan = batched.write_batch(&reqs).unwrap();
        // Same counters and same device state as the loop of singles.
        assert_eq!(batched.snapshot(), serial.snapshot());
        for (c, image) in images.iter().enumerate() {
            let mut buf = vec![0u8; 256];
            batched.read(c as u64 * span, 0, &mut buf).unwrap();
            assert_eq!(&buf, image);
        }
        // One program per chip: the batch completes in 1/4 the issue sum.
        let issue = serial.overlap_elapsed();
        assert_eq!(4 * makespan.as_ns(), issue.as_ns());
        assert_eq!(
            batched.overlap_elapsed().as_ns(),
            makespan.as_ns() + {
                // the verification reads above also advanced the clock
                4 * batched.timing().read_cost_ns(256)
            }
        );
    }

    #[test]
    fn failed_write_batch_validation_charges_nothing() {
        let mut dev = multichip(2);
        let bad = [PageWrite {
            lpn: dev.logical_pages(),
            image: &[0u8; 8],
        }];
        assert!(dev.write_batch(&bad).is_err());
        let oversize_image = vec![0u8; 257];
        let oversize = [PageWrite {
            lpn: 0,
            image: &oversize_image,
        }];
        assert!(dev.write_batch(&oversize).is_err());
        assert_eq!(dev.snapshot(), FlashStats::default());
        assert_eq!(dev.overlap_elapsed(), SimDuration::ZERO);
    }

    #[test]
    fn failed_write_batch_keeps_mirror_and_ground_truth_in_sync() {
        let mut dev = FlashDevice::new(
            FlashGeometry {
                page_size: 128,
                pages_per_block: 4,
                block_count: 6,
                spare_blocks: 2,
            },
            FlashTiming::default(),
        );
        for lpn in 0..dev.logical_pages() {
            dev.write(lpn, &[1; 8]).unwrap();
        }
        let before = dev.snapshot();
        // A bad address anywhere in the batch fails validation up front:
        // no request is applied, even ones listed before the bad one.
        let img = [2u8; 8];
        let reqs = [
            PageWrite {
                lpn: 0,
                image: &img,
            },
            PageWrite {
                lpn: dev.logical_pages(),
                image: &img,
            },
        ];
        assert!(dev.write_batch(&reqs).is_err());
        assert_eq!(dev.stats_since(&before), FlashStats::default());
        let mut buf = [0u8; 8];
        dev.read(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [1; 8], "no prefix of the failed batch applied");
        // The invariant write_batch maintains on every outcome: the sole
        // handle's mirror equals device-wide ground truth.
        assert_eq!(dev.snapshot(), dev.stats());
    }

    #[test]
    fn makespan_reflects_channel_concurrency() {
        let mut dev = multichip(2);
        // Balanced load: both chips equally busy.
        dev.write(0, &[1; 256]).unwrap();
        dev.write(dev.chip_pages(), &[1; 256]).unwrap();
        assert_eq!(dev.elapsed().as_ns(), 2 * dev.channel_makespan().as_ns());
        assert_eq!(dev.chip_elapsed(0), dev.chip_elapsed(1));
    }
}
