//! Error type for the flash simulator.

use std::fmt;

/// Errors surfaced by the flash device and its allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// A logical page number outside the device's logical capacity.
    BadAddress(u64),
    /// An access crossing the page boundary (offset + len > page size).
    OutOfPage {
        /// Offset within the page where the access started.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Configured page size.
        page_size: usize,
    },
    /// The device ran out of writable physical space even after garbage
    /// collection (logical over-commit or zero over-provisioning).
    OutOfSpace,
    /// The segment allocator could not find a contiguous logical run.
    OutOfLogicalSpace {
        /// Number of pages that were requested.
        requested: u64,
    },
    /// A segment operation addressed pages outside the segment.
    SegmentOverflow,
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BadAddress(lpn) => write!(f, "logical page {lpn} out of range"),
            FlashError::OutOfPage {
                offset,
                len,
                page_size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) crosses the {page_size}-byte page boundary"
            ),
            FlashError::OutOfSpace => write!(f, "no writable physical space left (GC exhausted)"),
            FlashError::OutOfLogicalSpace { requested } => {
                write!(
                    f,
                    "no contiguous run of {requested} logical pages available"
                )
            }
            FlashError::SegmentOverflow => write!(f, "access outside the segment bounds"),
        }
    }
}

impl std::error::Error for FlashError {}
