//! Raw physical NAND array: program-once pages, block erase, wear counters.

use crate::geometry::FlashGeometry;
use crate::{Lpn, Ppn};

/// State of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Holds the current image of a logical page.
    Valid(Lpn),
    /// Holds a stale image; space is reclaimed by erasing the block.
    Invalid,
}

/// The physical array. Pages can only be programmed while `Free` (NAND
/// cannot overwrite in place — §6.1: "updates are not performed in place in
/// Flash") and are freed a whole block at a time by `erase_block`.
///
/// Page payloads are allocated lazily so simulating a multi-gigabyte module
/// costs host memory proportional to the data actually written.
#[derive(Debug)]
pub struct NandArray {
    geometry: FlashGeometry,
    states: Vec<PageState>,
    data: Vec<Option<Box<[u8]>>>,
    erase_counts: Vec<u64>,
    valid_per_block: Vec<u32>,
    invalid_per_block: Vec<u32>,
}

impl NandArray {
    /// A fully erased array.
    pub fn new(geometry: FlashGeometry) -> Self {
        geometry.validate();
        let pages = geometry.physical_pages() as usize;
        let blocks = geometry.block_count as usize;
        NandArray {
            geometry,
            states: vec![PageState::Free; pages],
            data: (0..pages).map(|_| None).collect(),
            erase_counts: vec![0; blocks],
            valid_per_block: vec![0; blocks],
            invalid_per_block: vec![0; blocks],
        }
    }

    /// Geometry of this array.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// State of a physical page.
    pub fn state(&self, ppn: Ppn) -> PageState {
        self.states[ppn as usize]
    }

    /// Copy `buf.len()` bytes starting at `offset` out of a page. Unwritten
    /// (never programmed) pages read as zeroes.
    pub fn read(&self, ppn: Ppn, offset: usize, buf: &mut [u8]) {
        debug_assert!(offset + buf.len() <= self.geometry.page_size);
        match &self.data[ppn as usize] {
            Some(page) => buf.copy_from_slice(&page[offset..offset + buf.len()]),
            None => buf.fill(0),
        }
    }

    /// Program a free page with a full page image and tag it as the current
    /// version of `lpn`. Panics if the page is not free — the FTL guarantees
    /// it never programs a non-free page, and violating that is a simulator
    /// bug, not a recoverable condition.
    pub fn program(&mut self, ppn: Ppn, lpn: Lpn, image: &[u8]) {
        assert_eq!(
            self.states[ppn as usize],
            PageState::Free,
            "programming non-free physical page {ppn}"
        );
        debug_assert_eq!(image.len(), self.geometry.page_size);
        self.data[ppn as usize] = Some(image.into());
        self.states[ppn as usize] = PageState::Valid(lpn);
        self.valid_per_block[self.geometry.block_of(ppn) as usize] += 1;
    }

    /// Mark a valid page stale.
    pub fn invalidate(&mut self, ppn: Ppn) {
        let block = self.geometry.block_of(ppn) as usize;
        match self.states[ppn as usize] {
            PageState::Valid(_) => {
                self.states[ppn as usize] = PageState::Invalid;
                self.valid_per_block[block] -= 1;
                self.invalid_per_block[block] += 1;
            }
            other => panic!("invalidating page {ppn} in state {other:?}"),
        }
    }

    /// Erase a block: every page becomes free, payloads dropped, wear +1.
    pub fn erase_block(&mut self, block: u64) {
        let first = self.geometry.block_first_page(block);
        for ppn in first..first + self.geometry.pages_per_block {
            self.states[ppn as usize] = PageState::Free;
            self.data[ppn as usize] = None;
        }
        self.erase_counts[block as usize] += 1;
        self.valid_per_block[block as usize] = 0;
        self.invalid_per_block[block as usize] = 0;
    }

    /// How many times a block has been erased (wear-levelling input).
    pub fn erase_count(&self, block: u64) -> u64 {
        self.erase_counts[block as usize]
    }

    /// Valid pages currently in a block.
    pub fn valid_in_block(&self, block: u64) -> u32 {
        self.valid_per_block[block as usize]
    }

    /// Invalid (stale) pages currently in a block.
    pub fn invalid_in_block(&self, block: u64) -> u32 {
        self.invalid_per_block[block as usize]
    }

    /// Iterator over the valid pages of a block with their logical owners.
    pub fn valid_pages_of_block(&self, block: u64) -> impl Iterator<Item = (Ppn, Lpn)> + '_ {
        let first = self.geometry.block_first_page(block);
        (first..first + self.geometry.pages_per_block).filter_map(move |ppn| {
            match self.states[ppn as usize] {
                PageState::Valid(lpn) => Some((ppn, lpn)),
                _ => None,
            }
        })
    }

    /// Maximum spread between block erase counts (wear-levelling health).
    pub fn wear_spread(&self) -> u64 {
        let min = self.erase_counts.iter().min().copied().unwrap_or(0);
        let max = self.erase_counts.iter().max().copied().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NandArray {
        NandArray::new(FlashGeometry {
            page_size: 256,
            pages_per_block: 4,
            block_count: 4,
            spare_blocks: 1,
        })
    }

    #[test]
    fn program_read_roundtrip() {
        let mut nand = tiny();
        let image = vec![0xabu8; 256];
        nand.program(3, 7, &image);
        assert_eq!(nand.state(3), PageState::Valid(7));
        let mut buf = [0u8; 8];
        nand.read(3, 16, &mut buf);
        assert_eq!(buf, [0xab; 8]);
        assert_eq!(nand.valid_in_block(0), 1);
    }

    #[test]
    fn unwritten_reads_zero() {
        let nand = tiny();
        let mut buf = [0xffu8; 4];
        nand.read(0, 0, &mut buf);
        assert_eq!(buf, [0; 4]);
    }

    #[test]
    fn invalidate_and_erase() {
        let mut nand = tiny();
        nand.program(0, 1, &vec![1u8; 256]);
        nand.program(1, 2, &vec![2u8; 256]);
        nand.invalidate(0);
        assert_eq!(nand.state(0), PageState::Invalid);
        assert_eq!(nand.valid_in_block(0), 1);
        assert_eq!(nand.invalid_in_block(0), 1);
        let owners: Vec<_> = nand.valid_pages_of_block(0).collect();
        assert_eq!(owners, vec![(1, 2)]);
        nand.erase_block(0);
        assert_eq!(nand.state(0), PageState::Free);
        assert_eq!(nand.state(1), PageState::Free);
        assert_eq!(nand.erase_count(0), 1);
        assert_eq!(nand.wear_spread(), 1);
    }

    #[test]
    #[should_panic(expected = "programming non-free")]
    fn double_program_panics() {
        let mut nand = tiny();
        nand.program(0, 1, &vec![0u8; 256]);
        nand.program(0, 2, &vec![0u8; 256]);
    }
}
