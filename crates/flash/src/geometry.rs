//! Physical layout of the simulated NAND module.

use serde::{Deserialize, Serialize};

/// Geometry of the NAND flash module.
///
/// The GhostDB experimental platform (§6.1) uses 2 KB pages — the I/O unit
/// between Flash and RAM — grouped into erase blocks. The paper does not fix
/// the block size; 64 pages per block (128 KB blocks) matches the large-block
/// NAND parts contemporary with the paper and is the default here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashGeometry {
    /// Bytes per page (the Flash↔RAM I/O unit). Paper value: 2048.
    pub page_size: usize,
    /// Pages per erase block.
    pub pages_per_block: u64,
    /// Total number of physical blocks, including over-provisioned spares.
    pub block_count: u64,
    /// Blocks reserved for the FTL (over-provisioning). These never hold
    /// logical data steady-state; they give GC room to breathe.
    pub spare_blocks: u64,
}

impl FlashGeometry {
    /// Geometry sized to hold `logical_bytes` of user data with default page
    /// and block parameters, over-provisioned with one spare block per 12
    /// logical blocks (~8.3%), floored at 4 spare blocks so tiny modules —
    /// including the per-chip slices of a small multi-chip split — still
    /// give GC room to breathe.
    pub fn for_capacity(logical_bytes: u64) -> Self {
        let page_size = 2048usize;
        let pages_per_block = 64u64;
        let block_bytes = page_size as u64 * pages_per_block;
        let logical_blocks = logical_bytes.div_ceil(block_bytes).max(1);
        let spare_blocks = (logical_blocks / 12).max(4);
        FlashGeometry {
            page_size,
            pages_per_block,
            block_count: logical_blocks + spare_blocks,
            spare_blocks,
        }
    }

    /// Number of physical pages in the array.
    pub fn physical_pages(&self) -> u64 {
        self.block_count * self.pages_per_block
    }

    /// Number of pages exposed to the logical address space.
    pub fn logical_pages(&self) -> u64 {
        (self.block_count - self.spare_blocks) * self.pages_per_block
    }

    /// Logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * self.page_size as u64
    }

    /// Block that a physical page belongs to.
    pub fn block_of(&self, ppn: u64) -> u64 {
        ppn / self.pages_per_block
    }

    /// First physical page of a block.
    pub fn block_first_page(&self, block: u64) -> u64 {
        block * self.pages_per_block
    }

    /// Basic sanity checks; panics on nonsensical configurations so that
    /// misconfiguration fails fast at construction time.
    pub fn validate(&self) {
        assert!(self.page_size >= 64, "page size too small");
        assert!(
            self.pages_per_block >= 1,
            "need at least one page per block"
        );
        assert!(
            self.block_count > self.spare_blocks,
            "need at least one logical block"
        );
        assert!(self.spare_blocks >= 1, "FTL needs at least one spare block");
    }
}

impl Default for FlashGeometry {
    /// 256 MB module, the capacity announced for the first commercial keys
    /// in §6.1.
    fn default() -> Self {
        FlashGeometry::for_capacity(256 * 1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper_platform() {
        let g = FlashGeometry::default();
        g.validate();
        assert_eq!(g.page_size, 2048);
        assert!(g.logical_bytes() >= 256 * 1024 * 1024);
    }

    #[test]
    fn for_capacity_rounds_up_to_blocks() {
        let g = FlashGeometry::for_capacity(1);
        g.validate();
        assert!(g.logical_pages() >= 1);
        assert!(g.block_count > g.spare_blocks);
    }

    #[test]
    fn for_capacity_overprovisions_one_spare_per_twelve_floored_at_four() {
        // Tiny capacities (1 logical block here) floor at 4 spare blocks.
        let tiny = FlashGeometry::for_capacity(1);
        assert_eq!(tiny.block_count - tiny.spare_blocks, 1);
        assert_eq!(tiny.spare_blocks, 4);
        // 256 MB at 128 KB blocks = 2048 logical blocks → exactly
        // 2048 / 12 = 170 spares, ~8.3% over-provisioning.
        let g = FlashGeometry::for_capacity(256 * 1024 * 1024);
        let logical_blocks = g.block_count - g.spare_blocks;
        assert_eq!(logical_blocks, 2048);
        assert_eq!(g.spare_blocks, logical_blocks / 12);
        assert_eq!(g.spare_blocks, 170);
        // The floor only binds below 48 logical blocks (48 / 12 = 4).
        let edge = FlashGeometry::for_capacity(48 * 64 * 2048);
        assert_eq!(edge.block_count - edge.spare_blocks, 48);
        assert_eq!(edge.spare_blocks, 4);
    }

    #[test]
    fn block_arithmetic() {
        let g = FlashGeometry {
            page_size: 2048,
            pages_per_block: 64,
            block_count: 10,
            spare_blocks: 2,
        };
        assert_eq!(g.physical_pages(), 640);
        assert_eq!(g.logical_pages(), 512);
        assert_eq!(g.block_of(0), 0);
        assert_eq!(g.block_of(63), 0);
        assert_eq!(g.block_of(64), 1);
        assert_eq!(g.block_first_page(3), 192);
    }
}
