//! I/O counters and simulated-time accounting.
//!
//! The paper's simulator "delivers the exact number of pages read and written
//! in Flash", including FTL traffic, and "the exact number of bytes
//! transferred between the RAM and the Flash Data Register" (§6.1). These
//! counters are the ground truth from which all reported execution times are
//! derived, so they are first-class here.

use crate::timing::FlashTiming;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Sub;

/// A simulated duration, stored in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct SimDuration {
    ns: u128,
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration { ns: 0 };

    /// Build from nanoseconds.
    pub fn from_ns(ns: u128) -> Self {
        SimDuration { ns }
    }

    /// Build from microseconds.
    pub fn from_us(us: u128) -> Self {
        SimDuration { ns: us * 1_000 }
    }

    /// Nanoseconds.
    pub fn as_ns(&self) -> u128 {
        self.ns
    }

    /// Microseconds (floating point, for reports).
    pub fn as_us(&self) -> f64 {
        self.ns as f64 / 1_000.0
    }

    /// Milliseconds (floating point, for reports).
    pub fn as_ms(&self) -> f64 {
        self.ns as f64 / 1_000_000.0
    }

    /// Seconds (floating point, for reports).
    pub fn as_secs(&self) -> f64 {
        self.ns as f64 / 1_000_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns.saturating_sub(other.ns),
        }
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            ns: self.ns + rhs.ns,
        }
    }
}

impl std::ops::AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.ns += rhs.ns;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else {
            write!(f, "{:.1}µs", self.as_us())
        }
    }
}

/// Cumulative I/O counters of a flash device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Pages loaded from the array into the data register (user traffic).
    pub pages_read: u64,
    /// Pages programmed from the data register (user traffic).
    pub pages_written: u64,
    /// Bytes moved data-register → RAM.
    pub bytes_to_ram: u64,
    /// Bytes moved RAM → data-register.
    pub bytes_from_ram: u64,
    /// Pages read by the FTL while relocating valid data during GC.
    pub gc_pages_read: u64,
    /// Pages programmed by the FTL while relocating valid data during GC.
    pub gc_pages_written: u64,
    /// Blocks erased (all erases happen inside the FTL).
    pub blocks_erased: u64,
}

impl FlashStats {
    /// Total pages read, including FTL-internal traffic.
    pub fn total_pages_read(&self) -> u64 {
        self.pages_read + self.gc_pages_read
    }

    /// Total pages programmed, including FTL-internal traffic.
    pub fn total_pages_written(&self) -> u64 {
        self.pages_written + self.gc_pages_written
    }

    /// Simulated elapsed time implied by these counters under `timing`,
    /// for a device with `page_size`-byte pages.
    ///
    /// GC relocations move whole pages register-to-register; we charge them
    /// the full-page read + program cost, consistent with "this includes the
    /// I/O performed by the Flash Translation Layer" (§6.1).
    pub fn elapsed(&self, timing: &FlashTiming, page_size: usize) -> SimDuration {
        let mut ns: u128 = 0;
        // User reads: page loads are counted per page; the byte transfer is
        // the precise bytes_to_ram counter.
        ns += self.pages_read as u128 * timing.read_page_us as u128 * 1_000;
        ns += self.bytes_to_ram as u128 * timing.transfer_ns_per_byte as u128;
        // User writes: full-page program + the actual RAM→register bytes.
        ns += self.pages_written as u128 * timing.program_page_us as u128 * 1_000;
        ns += self.bytes_from_ram as u128 * timing.transfer_ns_per_byte as u128;
        // GC traffic: full pages both ways.
        ns += self.gc_pages_read as u128 * timing.read_cost_ns(page_size);
        ns += self.gc_pages_written as u128 * timing.write_cost_ns(page_size);
        ns += self.blocks_erased as u128 * timing.erase_cost_ns();
        SimDuration::from_ns(ns)
    }
}

impl std::ops::Add for FlashStats {
    type Output = FlashStats;
    fn add(mut self, rhs: FlashStats) -> FlashStats {
        self += rhs;
        self
    }
}

impl std::ops::AddAssign for FlashStats {
    fn add_assign(&mut self, rhs: FlashStats) {
        self.pages_read += rhs.pages_read;
        self.pages_written += rhs.pages_written;
        self.bytes_to_ram += rhs.bytes_to_ram;
        self.bytes_from_ram += rhs.bytes_from_ram;
        self.gc_pages_read += rhs.gc_pages_read;
        self.gc_pages_written += rhs.gc_pages_written;
        self.blocks_erased += rhs.blocks_erased;
    }
}

impl Sub for FlashStats {
    type Output = FlashStats;
    fn sub(self, rhs: FlashStats) -> FlashStats {
        FlashStats {
            pages_read: self.pages_read - rhs.pages_read,
            pages_written: self.pages_written - rhs.pages_written,
            bytes_to_ram: self.bytes_to_ram - rhs.bytes_to_ram,
            bytes_from_ram: self.bytes_from_ram - rhs.bytes_from_ram,
            gc_pages_read: self.gc_pages_read - rhs.gc_pages_read,
            gc_pages_written: self.gc_pages_written - rhs.gc_pages_written,
            blocks_erased: self.blocks_erased - rhs.blocks_erased,
        }
    }
}

/// A point-in-time copy of the counters, used for per-operator attribution.
pub type FlashSnapshot = FlashStats;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        let d = SimDuration::from_us(1_500);
        assert_eq!(d.as_ns(), 1_500_000);
        assert!((d.as_ms() - 1.5).abs() < 1e-9);
        assert_eq!(format!("{d}"), "1.500ms");
    }

    #[test]
    fn elapsed_accounts_every_counter() {
        let t = FlashTiming::default();
        let s = FlashStats {
            pages_read: 2,
            pages_written: 1,
            bytes_to_ram: 100,
            bytes_from_ram: 2048,
            gc_pages_read: 1,
            gc_pages_written: 1,
            blocks_erased: 1,
        };
        let expect = 2 * 25_000u128
            + 100 * 50
            + 200_000
            + 2048 * 50
            + t.read_cost_ns(2048)
            + t.write_cost_ns(2048)
            + t.erase_cost_ns();
        assert_eq!(s.elapsed(&t, 2048).as_ns(), expect);
    }

    #[test]
    fn snapshot_diff() {
        let a = FlashStats {
            pages_read: 10,
            ..Default::default()
        };
        let b = FlashStats {
            pages_read: 4,
            ..Default::default()
        };
        assert_eq!((a - b).pages_read, 6);
    }
}
