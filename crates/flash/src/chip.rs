//! Multi-chip NAND array: independent chips behind per-chip locks.
//!
//! The paper's token (§2.2/§6.1) models a single flash module; modern
//! NAND packages expose several chips on independent channels, each with
//! its own data register, program/erase state machine and — in this
//! simulator — its own FTL and GC state. `ChipArray` shards a flat
//! logical address space across chips in contiguous per-chip ranges
//! (`chip = lpn / chip_pages`) and serialises access **per chip**, not
//! per device: two workers touching disjoint chips never contend, and a
//! worker touching a busy chip blocks only for the duration of one page
//! operation, not a whole operator scope.
//!
//! Every operation returns the exact [`FlashStats`] delta it charged,
//! computed inside the chip lock, so callers can keep handle-local
//! counters that stay exact under concurrency. All per-operation costs
//! (Table 1) are placement-independent — a page read costs the same on
//! any chip — which is what keeps multi-chip execution bit-identical to
//! single-chip execution as long as GC (the one placement-dependent
//! cost) stays out of the window; see `gc_headroom_of`.

use crate::error::FlashError;
use crate::ftl::{check_in_page, Ftl};
use crate::geometry::FlashGeometry;
use crate::stats::{FlashStats, SimDuration};
use crate::timing::FlashTiming;
use crate::{Lpn, Result};
use std::sync::Mutex;

/// One page-read request of a vectored batch: read `len` bytes starting
/// at `offset` within logical page `lpn` — exactly the contract of
/// [`ChipArray::read`], just batched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageReq {
    /// Logical page to read.
    pub lpn: Lpn,
    /// Byte offset within the page.
    pub offset: usize,
    /// Bytes to transfer into the destination buffer.
    pub len: usize,
}

impl PageReq {
    /// A whole-page read request (offset 0, `len` = the page size).
    pub fn full_page(lpn: Lpn, page_size: usize) -> Self {
        PageReq {
            lpn,
            offset: 0,
            len: page_size,
        }
    }
}

/// One page-program request of a vectored batch: replace the content of
/// logical page `lpn` with `image` — exactly the contract of
/// [`ChipArray::write`], just batched. Images shorter than a page are
/// zero-padded by the FTL.
#[derive(Debug, Clone, Copy)]
pub struct PageWrite<'a> {
    /// Logical page to program.
    pub lpn: Lpn,
    /// New page content (at most one page).
    pub image: &'a [u8],
}

/// A bank of independent NAND chips sharing one flat logical address
/// space. Chip `c` owns logical pages `[c·chip_pages, (c+1)·chip_pages)`.
#[derive(Debug)]
pub struct ChipArray {
    chips: Vec<Mutex<Ftl>>,
    /// Per-chip geometry (every chip is identical).
    geometry: FlashGeometry,
    timing: FlashTiming,
    chip_pages: u64,
}

impl ChipArray {
    /// `chips` identical chips, each with `geometry` and its own FTL.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming, chips: usize) -> Self {
        assert!(chips >= 1, "need at least one chip");
        ChipArray {
            chips: (0..chips).map(|_| Mutex::new(Ftl::new(geometry))).collect(),
            geometry,
            timing,
            chip_pages: geometry.logical_pages(),
        }
    }

    /// Number of chips (= independent channels).
    pub fn chip_count(&self) -> usize {
        self.chips.len()
    }

    /// Per-chip geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Timing model in force (shared by every channel).
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Logical pages owned by each chip.
    pub fn chip_pages(&self) -> u64 {
        self.chip_pages
    }

    /// Logical pages of the whole array.
    pub fn logical_pages(&self) -> u64 {
        self.chip_pages * self.chips.len() as u64
    }

    /// Physical pages of the whole array (all chips, spares included).
    pub fn physical_pages(&self) -> u64 {
        self.geometry.physical_pages() * self.chips.len() as u64
    }

    /// Chip that owns a logical page.
    pub fn chip_of(&self, lpn: Lpn) -> usize {
        (lpn / self.chip_pages) as usize
    }

    /// Split a global logical page into (chip, chip-local page).
    fn route(&self, lpn: Lpn) -> Result<(usize, Lpn)> {
        if lpn >= self.logical_pages() {
            return Err(FlashError::BadAddress(lpn));
        }
        Ok(((lpn / self.chip_pages) as usize, lpn % self.chip_pages))
    }

    /// Read within one logical page; returns the counters this op charged.
    pub fn read(&self, lpn: Lpn, offset: usize, buf: &mut [u8]) -> Result<FlashStats> {
        let (chip, local) = self.route(lpn)?;
        let mut ftl = self.chips[chip].lock().unwrap();
        let before = *ftl.stats();
        ftl.read(local, offset, buf)?;
        Ok(*ftl.stats() - before)
    }

    /// Program a full logical page; returns the counters this op charged.
    pub fn write(&self, lpn: Lpn, image: &[u8]) -> Result<FlashStats> {
        let (chip, local) = self.route(lpn)?;
        let mut ftl = self.chips[chip].lock().unwrap();
        let before = *ftl.stats();
        ftl.write(local, image)?;
        Ok(*ftl.stats() - before)
    }

    /// Read-modify-write within one logical page; returns the delta.
    pub fn write_at(&self, lpn: Lpn, offset: usize, data: &[u8]) -> Result<FlashStats> {
        let (chip, local) = self.route(lpn)?;
        let mut ftl = self.chips[chip].lock().unwrap();
        let before = *ftl.stats();
        ftl.write_at(local, offset, data)?;
        Ok(*ftl.stats() - before)
    }

    /// Release a logical page (metadata only, zero cost).
    pub fn trim(&self, lpn: Lpn) -> Result<FlashStats> {
        let (chip, local) = self.route(lpn)?;
        let mut ftl = self.chips[chip].lock().unwrap();
        let before = *ftl.stats();
        ftl.trim(local)?;
        Ok(*ftl.stats() - before)
    }

    /// Vectored read: execute a batch of page reads, binning requests per
    /// chip and locking each involved chip exactly once. Request `i`
    /// fills `outs[i]` (which must be `reqs[i].len` bytes).
    ///
    /// Billing is the heart of the contract. The returned `FlashStats`
    /// delta is the *sum* of every per-request delta — bit-identical to a
    /// loop of [`ChipArray::read`] calls, so handle-local counter mirrors
    /// stay exact. The returned `SimDuration` is the batch **makespan**:
    /// the busiest chip's in-batch issue time with all channels streaming
    /// concurrently. The makespan is side-band wall-model information only
    /// — it never enters the counters.
    ///
    /// Every request is validated (address range, intra-page bounds,
    /// destination length) before any I/O is issued, so a failed batch
    /// charges nothing; per `Ftl::read`, a pre-validated read cannot fail.
    pub fn read_batch(
        &self,
        reqs: &[PageReq],
        outs: &mut [&mut [u8]],
    ) -> Result<(FlashStats, SimDuration)> {
        assert_eq!(reqs.len(), outs.len(), "one destination per request");
        let page_size = self.geometry.page_size;
        let mut routed = Vec::with_capacity(reqs.len());
        for (req, out) in reqs.iter().zip(outs.iter()) {
            let (chip, local) = self.route(req.lpn)?;
            check_in_page(req.offset, req.len, page_size)?;
            assert_eq!(
                out.len(),
                req.len,
                "destination length must match the request"
            );
            routed.push((chip, local));
        }
        // Bin request indices per chip; within a chip, submission order is
        // preserved (reads are side-effect-free on the FTL map, so order
        // only matters for determinism of the counters, which are sums).
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); self.chips.len()];
        for (i, (chip, _)) in routed.iter().enumerate() {
            bins[*chip].push(i);
        }
        let mut total = FlashStats::default();
        let mut makespan = SimDuration::ZERO;
        for (chip, bin) in bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            let mut ftl = self.chips[chip].lock().unwrap();
            let before = *ftl.stats();
            for &i in bin {
                let (_, local) = routed[i];
                ftl.read(local, reqs[i].offset, outs[i])
                    .expect("pre-validated batch read cannot fail");
            }
            let delta = *ftl.stats() - before;
            makespan = makespan.max(delta.elapsed(&self.timing, page_size));
            total += delta;
        }
        Ok((total, makespan))
    }

    /// Vectored write: execute a batch of page programs, binning requests
    /// per chip and locking each involved chip exactly once. Within a
    /// chip, submission order is preserved; chips are independent, so the
    /// resulting device state is identical to a loop of
    /// [`ChipArray::write`] calls in submission order.
    ///
    /// Billing mirrors [`ChipArray::read_batch`]: the `FlashStats` delta
    /// is the *sum* of every per-request delta (GC charges included),
    /// bit-identical to the loop of singles, and the `SimDuration` is the
    /// batch **makespan** — the busiest chip's in-batch issue time with
    /// all channels programming concurrently.
    ///
    /// Unlike reads, a pre-validated write can still fail mid-batch
    /// (`OutOfSpace` when GC cannot reclaim enough room), leaving the
    /// per-chip prefixes of the batch applied. The charged delta and
    /// makespan of the work that *did* happen are therefore returned even
    /// on failure, so handle-local counter mirrors stay exact. Validation
    /// failures (bad address, oversized image) are detected before any
    /// I/O and charge nothing.
    pub fn write_batch(&self, reqs: &[PageWrite<'_>]) -> (FlashStats, SimDuration, Result<()>) {
        let page_size = self.geometry.page_size;
        let mut routed = Vec::with_capacity(reqs.len());
        for req in reqs {
            let (chip, local) = match self.route(req.lpn) {
                Ok(r) => r,
                Err(e) => return (FlashStats::default(), SimDuration::ZERO, Err(e)),
            };
            if req.image.len() > page_size {
                let err = FlashError::OutOfPage {
                    offset: 0,
                    len: req.image.len(),
                    page_size,
                };
                return (FlashStats::default(), SimDuration::ZERO, Err(err));
            }
            routed.push((chip, local));
        }
        let mut bins: Vec<Vec<usize>> = vec![Vec::new(); self.chips.len()];
        for (i, (chip, _)) in routed.iter().enumerate() {
            bins[*chip].push(i);
        }
        let mut total = FlashStats::default();
        let mut makespan = SimDuration::ZERO;
        for (chip, bin) in bins.iter().enumerate() {
            if bin.is_empty() {
                continue;
            }
            let mut ftl = self.chips[chip].lock().unwrap();
            let before = *ftl.stats();
            let mut failed = None;
            for &i in bin {
                let (_, local) = routed[i];
                if let Err(e) = ftl.write(local, reqs[i].image) {
                    failed = Some(e);
                    break;
                }
            }
            let delta = *ftl.stats() - before;
            makespan = makespan.max(delta.elapsed(&self.timing, page_size));
            total += delta;
            if let Some(e) = failed {
                return (total, makespan, Err(e));
            }
        }
        (total, makespan, Ok(()))
    }

    /// Cumulative counters of one chip.
    pub fn chip_stats(&self, chip: usize) -> FlashStats {
        *self.chips[chip].lock().unwrap().stats()
    }

    /// Cumulative counters of the whole array (sum over chips).
    pub fn stats(&self) -> FlashStats {
        (0..self.chips.len())
            .map(|c| self.chip_stats(c))
            .fold(FlashStats::default(), |a, b| a + b)
    }

    /// Simulated busy time of one chip's channel.
    pub fn chip_elapsed(&self, chip: usize) -> SimDuration {
        self.chip_stats(chip)
            .elapsed(&self.timing, self.geometry.page_size)
    }

    /// Simulated completion time with all channels streaming concurrently:
    /// the busiest chip's elapsed time. Against [`ChipArray::stats`]'s
    /// single-channel sum, the ratio is the device-level parallel speedup.
    pub fn channel_makespan(&self) -> SimDuration {
        (0..self.chips.len())
            .map(|c| self.chip_elapsed(c))
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// GC headroom of one chip (see [`Ftl::gc_headroom_pages`]).
    pub fn gc_headroom_of(&self, chip: usize) -> u64 {
        self.chips[chip].lock().unwrap().gc_headroom_pages()
    }

    /// Worst-case GC headroom across chips: a write burst of at most this
    /// many fresh pages never triggers GC wherever it lands.
    pub fn gc_headroom_pages(&self) -> u64 {
        (0..self.chips.len())
            .map(|c| self.gc_headroom_of(c))
            .min()
            .unwrap_or(0)
    }

    /// Largest per-chip wear spread (diagnostics).
    pub fn wear_spread(&self) -> u64 {
        (0..self.chips.len())
            .map(|c| self.chips[c].lock().unwrap().nand().wear_spread())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_array(chips: usize) -> ChipArray {
        ChipArray::new(
            FlashGeometry {
                page_size: 128,
                pages_per_block: 4,
                block_count: 6,
                spare_blocks: 2,
            },
            FlashTiming::default(),
            chips,
        )
    }

    #[test]
    fn routes_to_contiguous_chip_ranges() {
        let arr = tiny_array(4);
        assert_eq!(arr.chip_pages(), 16);
        assert_eq!(arr.logical_pages(), 64);
        assert_eq!(arr.chip_of(0), 0);
        assert_eq!(arr.chip_of(15), 0);
        assert_eq!(arr.chip_of(16), 1);
        assert_eq!(arr.chip_of(63), 3);
    }

    #[test]
    fn per_chip_stats_sum_to_array_stats() {
        let arr = tiny_array(2);
        arr.write(0, b"chip0").unwrap();
        arr.write(arr.chip_pages(), b"chip1").unwrap();
        arr.write(arr.chip_pages() + 1, b"chip1 again").unwrap();
        assert_eq!(arr.chip_stats(0).pages_written, 1);
        assert_eq!(arr.chip_stats(1).pages_written, 2);
        assert_eq!(arr.stats().pages_written, 3);
    }

    #[test]
    fn op_deltas_are_exact_and_placement_independent() {
        let arr = tiny_array(2);
        let d0 = arr.write(3, &[7u8; 64]).unwrap();
        let d1 = arr.write(arr.chip_pages() + 3, &[7u8; 64]).unwrap();
        assert_eq!(d0, d1, "same op costs the same on any chip");
        let mut buf = [0u8; 16];
        let r = arr.read(3, 0, &mut buf).unwrap();
        assert_eq!(r.pages_read, 1);
        assert_eq!(r.bytes_to_ram, 16);
        assert_eq!(r.pages_written, 0);
    }

    #[test]
    fn makespan_is_busiest_channel_not_the_sum() {
        let arr = tiny_array(4);
        for chip in 0..4u64 {
            for i in 0..4u64 {
                arr.write(chip * arr.chip_pages() + i, &[1; 32]).unwrap();
            }
        }
        let serial = arr.stats().elapsed(arr.timing(), 128);
        let makespan = arr.channel_makespan();
        assert_eq!(serial.as_ns(), 4 * makespan.as_ns());
    }

    #[test]
    fn out_of_range_addresses_are_rejected_globally() {
        let arr = tiny_array(2);
        let out = arr.logical_pages();
        assert!(matches!(
            arr.write(out, &[0]),
            Err(FlashError::BadAddress(lpn)) if lpn == out
        ));
    }

    #[test]
    fn headroom_is_the_weakest_chip() {
        let arr = tiny_array(2);
        let fresh = arr.gc_headroom_pages();
        // Burn chip 1's headroom with fresh programs; chip 0 untouched.
        for i in 0..arr.chip_pages() {
            arr.write(arr.chip_pages() + i, &[2; 8]).unwrap();
        }
        assert_eq!(arr.gc_headroom_of(0), fresh);
        assert!(arr.gc_headroom_of(1) < fresh);
        assert_eq!(arr.gc_headroom_pages(), arr.gc_headroom_of(1));
    }
}
