//! Contiguous logical-page segments for tables, indexes and temporaries.
//!
//! The storage engine lays every persistent structure (hidden columns, SKTs,
//! climbing-index runs) and every temporary (materialised ID lists, sort
//! runs) into contiguous logical runs so that sequential scans touch each
//! page exactly once — the access pattern all the paper's operators are
//! built around.

use crate::device::FlashDevice;
use crate::error::FlashError;
use crate::{Lpn, Result};

/// A contiguous run of logical pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    start: Lpn,
    pages: u64,
}

impl Segment {
    /// First logical page.
    pub fn start(&self) -> Lpn {
        self.start
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Logical page number of the `i`-th page of the segment.
    pub fn lpn(&self, i: u64) -> Result<Lpn> {
        if i >= self.pages {
            return Err(FlashError::SegmentOverflow);
        }
        Ok(self.start + i)
    }

    /// Capacity in bytes for a device with the given page size.
    pub fn byte_capacity(&self, page_size: usize) -> u64 {
        self.pages * page_size as u64
    }
}

/// First-fit allocator over the logical address space with free-run
/// coalescing. Freeing a segment trims its pages so the FTL can reclaim
/// the physical space.
#[derive(Debug)]
pub struct SegmentAllocator {
    /// Sorted, disjoint, coalesced free runs (start, len).
    free: Vec<(Lpn, u64)>,
    total_pages: u64,
}

impl SegmentAllocator {
    /// Allocator over the whole logical space of a device.
    pub fn new(total_pages: u64) -> Self {
        SegmentAllocator {
            free: vec![(0, total_pages)],
            total_pages,
        }
    }

    /// Allocator over a carved sub-range of the logical space (a per-worker
    /// slice handed out by a parent allocator; the parent keeps owning the
    /// range and reclaims it wholesale when the slice is retired).
    pub fn over(start: Lpn, pages: u64) -> Self {
        SegmentAllocator {
            free: vec![(start, pages)],
            total_pages: pages,
        }
    }

    /// Pages not currently allocated.
    pub fn free_pages(&self) -> u64 {
        self.free.iter().map(|(_, len)| len).sum()
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Allocate a contiguous run of `pages` logical pages (first fit).
    pub fn alloc(&mut self, pages: u64) -> Result<Segment> {
        if pages == 0 {
            return Ok(Segment { start: 0, pages: 0 });
        }
        let slot = self
            .free
            .iter()
            .position(|(_, len)| *len >= pages)
            .ok_or(FlashError::OutOfLogicalSpace { requested: pages })?;
        let (start, len) = self.free[slot];
        if len == pages {
            self.free.remove(slot);
        } else {
            self.free[slot] = (start + pages, len - pages);
        }
        Ok(Segment { start, pages })
    }

    /// Allocate enough pages to hold `bytes` with the given page size.
    pub fn alloc_bytes(&mut self, bytes: u64, page_size: usize) -> Result<Segment> {
        self.alloc(bytes.div_ceil(page_size as u64).max(1))
    }

    /// Return a segment to the free pool, trimming its pages on `device`.
    pub fn free(&mut self, segment: Segment, device: &mut FlashDevice) -> Result<()> {
        if segment.pages == 0 {
            return Ok(());
        }
        for i in 0..segment.pages {
            device.trim(segment.start + i)?;
        }
        self.insert_free_run(segment.start, segment.pages);
        Ok(())
    }

    fn insert_free_run(&mut self, start: Lpn, len: u64) {
        let pos = self.free.partition_point(|(s, _)| *s < start);
        self.free.insert(pos, (start, len));
        // Coalesce with neighbours.
        if pos + 1 < self.free.len() {
            let (s, l) = self.free[pos];
            let (ns, nl) = self.free[pos + 1];
            if s + l == ns {
                self.free[pos] = (s, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (ps, pl) = self.free[pos - 1];
            let (s, l) = self.free[pos];
            if ps + pl == s {
                self.free[pos - 1] = (ps, pl + l);
                self.free.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTiming;

    fn device() -> FlashDevice {
        FlashDevice::new(
            FlashGeometry {
                page_size: 256,
                pages_per_block: 4,
                block_count: 20,
                spare_blocks: 4,
            },
            FlashTiming::default(),
        )
    }

    #[test]
    fn alloc_free_roundtrip_coalesces() {
        let mut dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let total = alloc.free_pages();
        let a = alloc.alloc(10).unwrap();
        let b = alloc.alloc(5).unwrap();
        let c = alloc.alloc(7).unwrap();
        assert_eq!(alloc.free_pages(), total - 22);
        alloc.free(b, &mut dev).unwrap();
        alloc.free(a, &mut dev).unwrap();
        alloc.free(c, &mut dev).unwrap();
        assert_eq!(alloc.free_pages(), total);
        // Everything coalesced back into one run: a full-size alloc works.
        let all = alloc.alloc(total).unwrap();
        assert_eq!(all.pages(), total);
    }

    #[test]
    fn first_fit_reuses_hole() {
        let mut dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let a = alloc.alloc(8).unwrap();
        let _b = alloc.alloc(8).unwrap();
        alloc.free(a, &mut dev).unwrap();
        let c = alloc.alloc(4).unwrap();
        assert_eq!(c.start(), 0, "hole should be reused first-fit");
    }

    #[test]
    fn exhaustion_errors() {
        let dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        assert!(matches!(
            alloc.alloc(dev.logical_pages() + 1),
            Err(FlashError::OutOfLogicalSpace { .. })
        ));
    }

    #[test]
    fn byte_sizing_rounds_up() {
        let dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let s = alloc.alloc_bytes(257, dev.page_size()).unwrap();
        assert_eq!(s.pages(), 2);
        assert_eq!(s.byte_capacity(dev.page_size()), 512);
    }

    #[test]
    fn segment_lpn_bounds() {
        let mut alloc = SegmentAllocator::new(100);
        let s = alloc.alloc(3).unwrap();
        assert_eq!(s.lpn(2).unwrap(), s.start() + 2);
        assert!(matches!(s.lpn(3), Err(FlashError::SegmentOverflow)));
    }
}
