//! Contiguous logical-page segments for tables, indexes and temporaries.
//!
//! The storage engine lays every persistent structure (hidden columns, SKTs,
//! climbing-index runs) and every temporary (materialised ID lists, sort
//! runs) into contiguous logical runs so that sequential scans touch each
//! page exactly once — the access pattern all the paper's operators are
//! built around.

use crate::device::FlashDevice;
use crate::error::FlashError;
use crate::{Lpn, Result};

/// A contiguous run of logical pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    start: Lpn,
    pages: u64,
}

impl Segment {
    /// First logical page.
    pub fn start(&self) -> Lpn {
        self.start
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Logical page number of the `i`-th page of the segment.
    pub fn lpn(&self, i: u64) -> Result<Lpn> {
        if i >= self.pages {
            return Err(FlashError::SegmentOverflow);
        }
        Ok(self.start + i)
    }

    /// Capacity in bytes for a device with the given page size.
    pub fn byte_capacity(&self, page_size: usize) -> u64 {
        self.pages * page_size as u64
    }
}

/// A logical-page run striped across chips: `k` per-chip contiguous parts
/// with page `i` living on part `i % k` (round-robin). Consecutive pages
/// of the run land on distinct channels, so a vectored read of a window
/// of neighbouring pages ([`FlashDevice::read_batch`]) overlaps across
/// `min(window, k)` chips — this is the placement that makes the B+-tree
/// leaf chain channel-parallel for a *single* scan. With `k = 1` the run
/// is exactly a contiguous [`Segment`], bit-identical to the flat layout.
///
/// Placement stays a pure function of the alloc/free call sequence, and
/// every per-page cost is placement-independent, so striping changes no
/// counter, report, trace or transcript (see `SECURITY.md` claim 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripedSegment {
    /// Per-chip contiguous parts, in stripe order. Never empty.
    parts: Vec<Segment>,
    /// Total pages across parts.
    pages: u64,
}

impl StripedSegment {
    /// Wrap a contiguous run as a 1-way stripe (the degenerate layout).
    pub fn contiguous(seg: Segment) -> Self {
        let pages = seg.pages();
        StripedSegment {
            parts: vec![seg],
            pages,
        }
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Stripe width (1 = contiguous).
    pub fn stripe_width(&self) -> usize {
        self.parts.len()
    }

    /// The per-chip contiguous parts, in stripe order.
    pub fn parts(&self) -> &[Segment] {
        &self.parts
    }

    /// Logical page number of the `i`-th page of the run: part `i % k`,
    /// page `i / k` within it.
    pub fn lpn(&self, i: u64) -> Result<Lpn> {
        if i >= self.pages {
            return Err(FlashError::SegmentOverflow);
        }
        let k = self.parts.len() as u64;
        self.parts[(i % k) as usize].lpn(i / k)
    }

    /// Capacity in bytes for a device with the given page size.
    pub fn byte_capacity(&self, page_size: usize) -> u64 {
        self.pages * page_size as u64
    }
}

/// First-fit allocator over the logical address space with free-run
/// coalescing. Freeing a segment trims its pages so the FTL can reclaim
/// the physical space.
///
/// When built over a multi-chip device ([`SegmentAllocator::with_chips`])
/// allocations stripe across chips: a rotating cursor picks the next chip
/// and the run is placed first-fit *within* that chip's contiguous range,
/// so consecutively built structures (sublists, index runs, per-lane
/// temporaries) land on distinct chips and independent scans hit
/// independent channels. Placement is a pure function of the alloc/free
/// call sequence — it never depends on data values or on scheduling — so
/// striping opens no new leakage channel (see `SECURITY.md`).
#[derive(Debug)]
pub struct SegmentAllocator {
    /// Sorted, disjoint, coalesced free runs (start, len).
    free: Vec<(Lpn, u64)>,
    total_pages: u64,
    /// Pages per chip; 0 = flat space, no striping (single chip / carved
    /// sub-range slices).
    chip_pages: u64,
    chips: usize,
    /// Rotating cursor: the chip the next striped allocation tries first.
    next_chip: usize,
}

impl SegmentAllocator {
    /// Allocator over the whole logical space of a single-chip device.
    pub fn new(total_pages: u64) -> Self {
        SegmentAllocator {
            free: vec![(0, total_pages)],
            total_pages,
            chip_pages: 0,
            chips: 1,
            next_chip: 0,
        }
    }

    /// Allocator over the logical space of a `chips`-chip device, striping
    /// allocations across the per-chip ranges. `total_pages` must split
    /// evenly (it does by construction: the device's logical space is
    /// `chips` identical slices).
    pub fn with_chips(total_pages: u64, chips: usize) -> Self {
        assert!(chips >= 1, "need at least one chip");
        assert_eq!(total_pages % chips as u64, 0, "uneven chip split");
        let mut a = SegmentAllocator::new(total_pages);
        if chips > 1 {
            a.chip_pages = total_pages / chips as u64;
            a.chips = chips;
        }
        a
    }

    /// Allocator over a carved sub-range of the logical space (a per-worker
    /// slice handed out by a parent allocator; the parent keeps owning the
    /// range and reclaims it wholesale when the slice is retired).
    pub fn over(start: Lpn, pages: u64) -> Self {
        SegmentAllocator {
            free: vec![(start, pages)],
            total_pages: pages,
            chip_pages: 0,
            chips: 1,
            next_chip: 0,
        }
    }

    /// Number of chips allocations stripe across (1 = flat space).
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Chip that owns a logical page (0 when not striped).
    pub fn chip_of(&self, lpn: Lpn) -> usize {
        lpn.checked_div(self.chip_pages).unwrap_or(0) as usize
    }

    /// Pages not currently allocated.
    pub fn free_pages(&self) -> u64 {
        self.free.iter().map(|(_, len)| len).sum()
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Allocate a contiguous run of `pages` logical pages. On a flat
    /// space: first fit. On a striped space: rotate the chip cursor, place
    /// first-fit within the first chip (in rotation order) that can hold
    /// the whole run, and fall back to a global chip-spanning first fit
    /// only when no single chip can.
    pub fn alloc(&mut self, pages: u64) -> Result<Segment> {
        if pages == 0 {
            return Ok(Segment { start: 0, pages: 0 });
        }
        if self.chips > 1 {
            for i in 0..self.chips {
                let chip = (self.next_chip + i) % self.chips;
                let (lo, hi) = self.chip_range(chip);
                if let Some((slot, start)) = self.find_in_range(pages, lo, hi) {
                    self.carve(slot, start, pages);
                    self.next_chip = (chip + 1) % self.chips;
                    return Ok(Segment { start, pages });
                }
            }
        }
        let slot = self
            .free
            .iter()
            .position(|(_, len)| *len >= pages)
            .ok_or(FlashError::OutOfLogicalSpace { requested: pages })?;
        let start = self.free[slot].0;
        self.carve(slot, start, pages);
        Ok(Segment { start, pages })
    }

    /// Allocate a run constrained to one chip's range (used by `run_lanes`
    /// to carve per-lane slices on specific, unpressured chips).
    pub fn alloc_on_chip(&mut self, pages: u64, chip: usize) -> Result<Segment> {
        let (lo, hi) = self.chip_range(chip);
        self.alloc_in_range(pages, lo, hi)
    }

    /// Allocate a run placed entirely inside `[lo, hi)`, first fit.
    pub fn alloc_in_range(&mut self, pages: u64, lo: Lpn, hi: Lpn) -> Result<Segment> {
        if pages == 0 {
            return Ok(Segment { start: 0, pages: 0 });
        }
        let (slot, start) = self
            .find_in_range(pages, lo, hi)
            .ok_or(FlashError::OutOfLogicalSpace { requested: pages })?;
        self.carve(slot, start, pages);
        Ok(Segment { start, pages })
    }

    /// Free pages inside one chip's range (the whole space when flat).
    pub fn free_in_chip(&self, chip: usize) -> u64 {
        let (lo, hi) = self.chip_range(chip);
        self.free_in_range(lo, hi)
    }

    /// Free pages inside `[lo, hi)`.
    pub fn free_in_range(&self, lo: Lpn, hi: Lpn) -> u64 {
        self.free
            .iter()
            .map(|(s, l)| {
                let a = (*s).max(lo);
                let b = (s + l).min(hi);
                b.saturating_sub(a)
            })
            .sum()
    }

    /// The logical range owned by `chip` (the whole space when flat).
    fn chip_range(&self, chip: usize) -> (Lpn, Lpn) {
        if self.chip_pages == 0 {
            (0, self.total_pages)
        } else {
            let lo = chip as u64 * self.chip_pages;
            (lo, lo + self.chip_pages)
        }
    }

    /// First free slot able to hold `pages` entirely inside `[lo, hi)`;
    /// returns (slot index, placement start).
    fn find_in_range(&self, pages: u64, lo: Lpn, hi: Lpn) -> Option<(usize, Lpn)> {
        for (slot, (s, l)) in self.free.iter().enumerate() {
            let a = (*s).max(lo);
            let b = (s + l).min(hi);
            if b.saturating_sub(a) >= pages {
                return Some((slot, a));
            }
            if *s >= hi {
                break;
            }
        }
        None
    }

    /// Remove `[start, start + pages)` from the free run at `slot`,
    /// re-inserting the (possibly empty) remainders in sorted order.
    fn carve(&mut self, slot: usize, start: Lpn, pages: u64) {
        let (s, l) = self.free[slot];
        debug_assert!(start >= s && start + pages <= s + l);
        self.free.remove(slot);
        let post = (s + l) - (start + pages);
        if post > 0 {
            self.free.insert(slot, (start + pages, post));
        }
        if start > s {
            self.free.insert(slot, (s, start - s));
        }
    }

    /// Allocate enough pages to hold `bytes` with the given page size.
    pub fn alloc_bytes(&mut self, bytes: u64, page_size: usize) -> Result<Segment> {
        self.alloc(bytes.div_ceil(page_size as u64).max(1))
    }

    /// Allocate a `pages`-page run striped round-robin across the chips:
    /// one contiguous part per chip (in rotation order), so consecutive
    /// run pages land on distinct channels. On a flat space — or when any
    /// chip cannot host its part — the allocation falls back to a single
    /// contiguous run, so the call always succeeds whenever [`Self::alloc`]
    /// would. A failed striped attempt is rolled back without trims
    /// (nothing was written yet).
    pub fn alloc_striped(&mut self, pages: u64) -> Result<StripedSegment> {
        let k = (self.chips as u64).min(pages);
        if k <= 1 {
            return Ok(StripedSegment::contiguous(self.alloc(pages)?));
        }
        let base = self.next_chip;
        let mut parts = Vec::with_capacity(k as usize);
        for j in 0..k {
            // Part j owns run pages {j, j+k, j+2k, …}: ⌈(pages - j) / k⌉.
            let part_pages = (pages - j).div_ceil(k);
            let chip = (base + j as usize) % self.chips;
            match self.alloc_on_chip(part_pages, chip) {
                Ok(seg) => parts.push(seg),
                Err(_) => {
                    for seg in parts {
                        self.insert_free_run(seg.start(), seg.pages());
                    }
                    return Ok(StripedSegment::contiguous(self.alloc(pages)?));
                }
            }
        }
        self.next_chip = (base + 1) % self.chips;
        Ok(StripedSegment { parts, pages })
    }

    /// Return a striped run to the free pool, trimming every page.
    pub fn free_striped(
        &mut self,
        segment: &StripedSegment,
        device: &mut FlashDevice,
    ) -> Result<()> {
        for part in &segment.parts {
            self.free(*part, device)?;
        }
        Ok(())
    }

    /// Return a segment to the free pool, trimming its pages on `device`.
    pub fn free(&mut self, segment: Segment, device: &mut FlashDevice) -> Result<()> {
        if segment.pages == 0 {
            return Ok(());
        }
        for i in 0..segment.pages {
            device.trim(segment.start + i)?;
        }
        self.insert_free_run(segment.start, segment.pages);
        Ok(())
    }

    fn insert_free_run(&mut self, start: Lpn, len: u64) {
        let pos = self.free.partition_point(|(s, _)| *s < start);
        self.free.insert(pos, (start, len));
        // Coalesce with neighbours.
        if pos + 1 < self.free.len() {
            let (s, l) = self.free[pos];
            let (ns, nl) = self.free[pos + 1];
            if s + l == ns {
                self.free[pos] = (s, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (ps, pl) = self.free[pos - 1];
            let (s, l) = self.free[pos];
            if ps + pl == s {
                self.free[pos - 1] = (ps, pl + l);
                self.free.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;
    use crate::timing::FlashTiming;

    fn device() -> FlashDevice {
        FlashDevice::new(
            FlashGeometry {
                page_size: 256,
                pages_per_block: 4,
                block_count: 20,
                spare_blocks: 4,
            },
            FlashTiming::default(),
        )
    }

    #[test]
    fn alloc_free_roundtrip_coalesces() {
        let mut dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let total = alloc.free_pages();
        let a = alloc.alloc(10).unwrap();
        let b = alloc.alloc(5).unwrap();
        let c = alloc.alloc(7).unwrap();
        assert_eq!(alloc.free_pages(), total - 22);
        alloc.free(b, &mut dev).unwrap();
        alloc.free(a, &mut dev).unwrap();
        alloc.free(c, &mut dev).unwrap();
        assert_eq!(alloc.free_pages(), total);
        // Everything coalesced back into one run: a full-size alloc works.
        let all = alloc.alloc(total).unwrap();
        assert_eq!(all.pages(), total);
    }

    #[test]
    fn first_fit_reuses_hole() {
        let mut dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let a = alloc.alloc(8).unwrap();
        let _b = alloc.alloc(8).unwrap();
        alloc.free(a, &mut dev).unwrap();
        let c = alloc.alloc(4).unwrap();
        assert_eq!(c.start(), 0, "hole should be reused first-fit");
    }

    #[test]
    fn exhaustion_errors() {
        let dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        assert!(matches!(
            alloc.alloc(dev.logical_pages() + 1),
            Err(FlashError::OutOfLogicalSpace { .. })
        ));
    }

    #[test]
    fn byte_sizing_rounds_up() {
        let dev = device();
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let s = alloc.alloc_bytes(257, dev.page_size()).unwrap();
        assert_eq!(s.pages(), 2);
        assert_eq!(s.byte_capacity(dev.page_size()), 512);
    }

    #[test]
    fn striped_allocs_rotate_across_chips() {
        let mut alloc = SegmentAllocator::with_chips(64, 4);
        let a = alloc.alloc(4).unwrap();
        let b = alloc.alloc(4).unwrap();
        let c = alloc.alloc(4).unwrap();
        let d = alloc.alloc(4).unwrap();
        let e = alloc.alloc(4).unwrap();
        assert_eq!(
            [a, b, c, d, e].map(|s| alloc.chip_of(s.start())),
            [0, 1, 2, 3, 0],
            "rotating cursor lands consecutive allocs on distinct chips"
        );
        assert_eq!(e.start(), 4, "second round continues within chip 0");
    }

    #[test]
    fn striped_alloc_falls_back_to_spanning_runs() {
        let mut alloc = SegmentAllocator::with_chips(64, 4);
        // No single 16-page chip can hold 20 pages; the global first fit
        // must span chips rather than fail.
        let big = alloc.alloc(20).unwrap();
        assert_eq!(big.start(), 0);
        assert_eq!(alloc.free_pages(), 44);
    }

    #[test]
    fn alloc_on_chip_respects_ranges_and_accounts_free_space() {
        let mut dev = device();
        let mut alloc = SegmentAllocator::with_chips(64, 4);
        let s = alloc.alloc_on_chip(6, 2).unwrap();
        assert_eq!(alloc.chip_of(s.start()), 2);
        assert_eq!(alloc.free_in_chip(2), 10);
        assert_eq!(alloc.free_in_chip(0), 16);
        assert!(matches!(
            alloc.alloc_on_chip(11, 2),
            Err(FlashError::OutOfLogicalSpace { .. })
        ));
        alloc.free(s, &mut dev).unwrap();
        assert_eq!(alloc.free_in_chip(2), 16);
        // A coalesced free space admits a full-size spanning alloc again.
        let all = alloc.alloc(64).unwrap();
        assert_eq!(all.pages(), 64);
    }

    #[test]
    fn single_chip_striping_is_plain_first_fit() {
        let mut flat = SegmentAllocator::new(64);
        let mut one = SegmentAllocator::with_chips(64, 1);
        for pages in [3u64, 7, 1, 12] {
            assert_eq!(one.alloc(pages).unwrap(), flat.alloc(pages).unwrap());
        }
    }

    #[test]
    fn striped_segment_rotates_pages_across_chips() {
        let mut alloc = SegmentAllocator::with_chips(64, 4);
        let s = alloc.alloc_striped(10).unwrap();
        assert_eq!(s.pages(), 10);
        assert_eq!(s.stripe_width(), 4);
        // Parts split ⌈10/4⌉-wise: 3, 3, 2, 2 pages.
        assert_eq!(
            s.parts().iter().map(|p| p.pages()).collect::<Vec<_>>(),
            [3, 3, 2, 2]
        );
        // Consecutive run pages land on consecutive chips.
        for i in 0..10u64 {
            assert_eq!(
                alloc.chip_of(s.lpn(i).unwrap()),
                (i % 4) as usize,
                "page {i}"
            );
        }
        // Within one chip the part is contiguous and ascending.
        assert_eq!(s.lpn(4).unwrap(), s.lpn(0).unwrap() + 1);
        assert!(matches!(s.lpn(10), Err(FlashError::SegmentOverflow)));
    }

    #[test]
    fn striped_alloc_falls_back_to_contiguous_when_a_chip_is_full() {
        let mut dev = device();
        let mut alloc = SegmentAllocator::with_chips(64, 4);
        // Exhaust chip 1 so the striped attempt cannot place a part there.
        let hog = alloc.alloc_on_chip(16, 1).unwrap();
        let s = alloc.alloc_striped(12).unwrap();
        assert_eq!(s.stripe_width(), 1, "fallback is a single contiguous part");
        assert_eq!(s.pages(), 12);
        // The rolled-back parts returned to the pool: freeing everything
        // restores the full space.
        alloc.free_striped(&s, &mut dev).unwrap();
        alloc.free(hog, &mut dev).unwrap();
        assert_eq!(alloc.free_pages(), 64);
    }

    #[test]
    fn flat_striped_alloc_is_contiguous() {
        let mut flat = SegmentAllocator::new(64);
        let s = flat.alloc_striped(8).unwrap();
        assert_eq!(s.stripe_width(), 1);
        for i in 0..8u64 {
            assert_eq!(s.lpn(i).unwrap(), s.lpn(0).unwrap() + i);
        }
    }

    #[test]
    fn segment_lpn_bounds() {
        let mut alloc = SegmentAllocator::new(100);
        let s = alloc.alloc(3).unwrap();
        assert_eq!(s.lpn(2).unwrap(), s.start() + 2);
        assert!(matches!(s.lpn(3), Err(FlashError::SegmentOverflow)));
    }
}
