//! Property tests: the FTL must behave like a plain logical page store under
//! arbitrary interleavings of writes, partial writes, trims and reads, with
//! garbage collection and wear levelling running underneath.

use ghostdb_flash::{FlashDevice, FlashGeometry, FlashTiming, FreeBlockPool};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Write { lpn: u64, byte: u8, len: usize },
    WriteAt { lpn: u64, offset: usize, byte: u8 },
    Trim { lpn: u64 },
    Read { lpn: u64 },
}

fn op_strategy(logical_pages: u64, page_size: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..logical_pages, any::<u8>(), 1..=page_size).prop_map(|(lpn, byte, len)| Op::Write {
            lpn,
            byte,
            len
        }),
        (0..logical_pages, 0..page_size - 8, any::<u8>())
            .prop_map(|(lpn, offset, byte)| Op::WriteAt { lpn, offset, byte }),
        (0..logical_pages).prop_map(|lpn| Op::Trim { lpn }),
        (0..logical_pages).prop_map(|lpn| Op::Read { lpn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ftl_matches_model(ops in proptest::collection::vec(op_strategy(24, 256), 1..300)) {
        let geometry = FlashGeometry {
            page_size: 256,
            pages_per_block: 4,
            block_count: 10,
            spare_blocks: 3,
        };
        prop_assume!(geometry.logical_pages() >= 24);
        let mut dev = FlashDevice::new(geometry, FlashTiming::default());
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Write { lpn, byte, len } => {
                    let image = vec![byte; len];
                    dev.write(lpn, &image).unwrap();
                    let mut page = vec![0u8; 256];
                    page[..len].copy_from_slice(&image);
                    model.insert(lpn, page);
                }
                Op::WriteAt { lpn, offset, byte } => {
                    dev.write_at(lpn, offset, &[byte; 8]).unwrap();
                    let page = model.entry(lpn).or_insert_with(|| vec![0u8; 256]);
                    page[offset..offset + 8].fill(byte);
                }
                Op::Trim { lpn } => {
                    dev.trim(lpn).unwrap();
                    model.remove(&lpn);
                }
                Op::Read { lpn } => {
                    let mut buf = vec![0u8; 256];
                    dev.read(lpn, 0, &mut buf).unwrap();
                    let expect = model.get(&lpn).cloned().unwrap_or_else(|| vec![0u8; 256]);
                    prop_assert_eq!(&buf, &expect, "lpn {}", lpn);
                }
            }
        }

        // Final full check of every logical page.
        for lpn in 0..24u64 {
            let mut buf = vec![0u8; 256];
            dev.read(lpn, 0, &mut buf).unwrap();
            let expect = model.get(&lpn).cloned().unwrap_or_else(|| vec![0u8; 256]);
            prop_assert_eq!(&buf, &expect, "final lpn {}", lpn);
        }
    }

    #[test]
    fn free_block_pool_is_bit_identical_to_the_linear_scan(
        // Erase counts drawn from a small range to force heavy ties; the
        // op stream interleaves pushes and takes in arbitrary order.
        ops in proptest::collection::vec((any::<bool>(), 0u64..6), 1..200)
    ) {
        const BLOCKS: u64 = 64;
        let mut pool = FreeBlockPool::new(BLOCKS);
        // Reference: the original representation — a Vec in push order,
        // selection by `min_by_key` over erase counts, `swap_remove`.
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut next_block = 0u64;
        for (take, count) in ops {
            if take {
                let want = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, c))| *c)
                    .map(|(idx, _)| idx);
                let got = pool.take_least_erased();
                match want {
                    Some(idx) => {
                        let (block, _) = reference.swap_remove(idx);
                        prop_assert_eq!(got, Some(block));
                        prop_assert!(!pool.contains(block));
                    }
                    None => prop_assert_eq!(got, None),
                }
            } else if next_block < BLOCKS {
                pool.push(next_block, count);
                reference.push((next_block, count));
                prop_assert!(pool.contains(next_block));
                next_block += 1;
            }
            prop_assert_eq!(pool.len(), reference.len());
        }
        // Drain: every remaining selection must match the scan.
        while let Some(got) = pool.take_least_erased() {
            let (idx, _) = reference
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, c))| *c)
                .expect("reference still has blocks");
            prop_assert_eq!(got, reference.swap_remove(idx).0);
        }
        prop_assert!(reference.is_empty());
    }

    #[test]
    fn stats_are_monotone_and_time_positive(
        writes in proptest::collection::vec((0u64..16, 1usize..256), 1..100)
    ) {
        let geometry = FlashGeometry {
            page_size: 256,
            pages_per_block: 4,
            block_count: 8,
            spare_blocks: 2,
        };
        let mut dev = FlashDevice::new(geometry, FlashTiming::default());
        let mut last = dev.elapsed();
        for (lpn, len) in writes {
            dev.write(lpn, &vec![1u8; len]).unwrap();
            let now = dev.elapsed();
            prop_assert!(now > last, "simulated clock must advance on writes");
            last = now;
        }
    }
}
