//! # ghostdb-index
//!
//! The GhostDB indexing model (paper §3.2): a **fully indexed** storage
//! layout that precomputes every select and join while keeping RAM usage
//! minimal.
//!
//! * [`skt::SubtreeKeyTable`] — for each non-leaf table `T`, one row per
//!   tuple (sorted by `T.id`, ids implicit) concatenating the IDs of the
//!   joining tuples of *all descendant* tables: a multidimensional join
//!   index generalising star-schema join indexes to whole subtrees.
//! * [`climbing::ClimbingIndex`] — a B+-tree per indexed attribute whose
//!   entries hold **one sorted ID sublist per target table** (the indexed
//!   table and each of its ancestors up to the root). One index probe
//!   "climbs" straight to any ancestor, avoiding cascading lookups and the
//!   multi-pass list unions they would force on a 64 KB-RAM device.
//! * [`builder::IndexBuilder`] — bulk construction of both structures from
//!   loaded foreign-key data ("burning the key" happens at load time; query
//!   measurements start afterwards).
//! * [`schemes`] / [`size_model`] — the four indexing schemes compared in
//!   Figure 7 (FullIndex, BasicIndex, StarIndex, JoinIndex) and their exact
//!   storage-size model, cross-validated against physically built instances.

pub mod builder;
pub mod climbing;
pub mod maintain;
pub mod schemes;
pub mod size_model;
pub mod skt;

pub use builder::{ClimbingSpec, FkData, IndexBuilder};
pub use climbing::{CiProbe, ClimbingIndex, LevelSpec};
pub use maintain::{
    build_from_state, LevelState, MaintainedIndex, MaintainedSkt, MaintenanceStrategy,
};
pub use schemes::IndexScheme;
pub use skt::SubtreeKeyTable;
