//! Climbing indexes (paper §3.2, Figure 4).
//!
//! A climbing index on attribute `Ti.a` maps each attribute value to **one
//! sorted sublist of IDs per target level**: the indexed table itself and
//! each ancestor up to the root. Selecting on `Ti.a` and "climbing" straight
//! to an ancestor `A` replaces a cascade of index lookups and ID-list unions
//! — the multi-pass, write-intensive pattern §3.2 rules out on a 64 KB-RAM
//! token.
//!
//! On flash the index is a [`BTree`] over order-preserving value keys whose
//! leaf payloads hold, per level, an `(offset, count)` descriptor into that
//! level's packed **ID area** (one contiguous segment per level, sublists
//! back to back in key order — so a range scan touches each area
//! sequentially).

use ghostdb_flash::{FlashDevice, Segment, SegmentAllocator};
use ghostdb_storage::btree::{BTree, BTreeCursor};
use ghostdb_storage::{IdList, Result, StorageError, TableId};
use ghostdb_token::RamArena;

/// Which levels (targets) a climbing index carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelSpec {
    /// The indexed table and every ancestor up to the root (FullIndex).
    FullClimb,
    /// The indexed table and the root only (BasicIndex).
    SelfAndRoot,
    /// The indexed table only (StarIndex / JoinIndex selection indexes).
    SelfOnly,
    /// Ancestors only — used for primary-key indexes, where the self level
    /// is the identity (Figure 4's "Climbing Index on T1.id").
    AncestorsOnly,
}

/// Per-level descriptor width in a leaf payload: offset u64 + count u32.
pub const LEVEL_DESC_BYTES: usize = 12;

/// A climbing index on flash.
#[derive(Debug, Clone)]
pub struct ClimbingIndex {
    /// Indexed table.
    pub table: TableId,
    /// Indexed column name (`"id"` for primary-key indexes).
    pub column: String,
    /// Target tables, innermost first (e.g. `[T12, T1, T0]`).
    pub levels: Vec<TableId>,
    /// True when value→key encoding is injective for the indexed data, so
    /// equality probes are exact; otherwise operators must re-check the
    /// predicate on exact values at projection time (same machinery that
    /// discards Bloom false positives).
    pub exact: bool,
    /// Rows in the indexed table (selectivity estimation).
    pub rows: u64,
    tree: BTree,
    /// Packed ID area per level (parallel to `levels`).
    areas: Vec<Segment>,
}

impl ClimbingIndex {
    /// Assemble from built parts (used by `IndexBuilder`).
    pub fn new(
        table: TableId,
        column: String,
        levels: Vec<TableId>,
        exact: bool,
        rows: u64,
        tree: BTree,
        areas: Vec<Segment>,
    ) -> Self {
        assert_eq!(levels.len(), areas.len());
        assert_eq!(tree.payload_size(), levels.len() * LEVEL_DESC_BYTES);
        ClimbingIndex {
            table,
            column,
            levels,
            exact,
            rows,
            tree,
            areas,
        }
    }

    /// Level index of target table `t`, if this index climbs to it.
    pub fn level_of(&self, t: TableId) -> Option<usize> {
        self.levels.iter().position(|l| *l == t)
    }

    /// Distinct keys in the index.
    pub fn distinct(&self) -> u64 {
        self.tree.len()
    }

    /// Bytes occupied on flash: B+-tree plus all ID areas.
    pub fn bytes(&self, page_size: usize) -> u64 {
        self.tree.bytes()
            + self
                .areas
                .iter()
                .map(|a| a.pages() * page_size as u64)
                .sum::<u64>()
    }

    /// Open a probe (pins one RAM buffer per B+-tree level, §3.4).
    pub fn probe(&self, ram: &RamArena) -> Result<CiProbe<'_>> {
        Ok(CiProbe {
            index: self,
            cursor: self.tree.cursor(ram)?,
            payload: vec![0u8; self.tree.payload_size()],
        })
    }

    /// Free the index's entire flash footprint — the B+-tree pages and
    /// every per-level ID area. Used when a maintained index supersedes
    /// its base with a freshly rebuilt one.
    pub fn release(self, dev: &mut FlashDevice, alloc: &mut SegmentAllocator) -> Result<()> {
        alloc.free_striped(self.tree.segment(), dev)?;
        for area in self.areas {
            alloc.free(area, dev)?;
        }
        Ok(())
    }

    fn decode_level(&self, payload: &[u8], level: usize) -> IdList {
        let at = level * LEVEL_DESC_BYTES;
        let offset = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
        let count = u32::from_le_bytes(payload[at + 8..at + 12].try_into().unwrap());
        IdList {
            segment: self.areas[level],
            byte_offset: offset,
            count: count as u64,
        }
    }
}

/// A probe handle over a climbing index.
#[derive(Debug)]
pub struct CiProbe<'a> {
    index: &'a ClimbingIndex,
    cursor: BTreeCursor,
    payload: Vec<u8>,
}

impl CiProbe<'_> {
    /// Set the B+-tree read-ahead window (pages; `0` = serial). With `W ≥ 2`
    /// range scans and ascending probe runs issue up to `W` leaf pages as
    /// one vectored flash read — same pages, same counters, same results;
    /// only the side-band channel clock improves on multi-chip devices.
    pub fn set_read_ahead(&mut self, window: usize) {
        self.cursor.set_read_ahead(window);
    }

    fn check_level(&self, level: usize) -> Result<()> {
        if level >= self.index.levels.len() {
            return Err(StorageError::Corrupt(format!(
                "climbing index {}.{} has no level {level}",
                self.index.table, self.index.column
            )));
        }
        Ok(())
    }

    /// Equality probe: the sorted ID sublist of `level` for `key`, or `None`
    /// when the key is absent.
    pub fn lookup_eq(
        &mut self,
        dev: &mut FlashDevice,
        key: u64,
        level: usize,
    ) -> Result<Option<IdList>> {
        self.check_level(level)?;
        self.cursor.seek(dev, key)?;
        match self.cursor.next_into(dev, &mut self.payload)? {
            Some(k) if k == key => Ok(Some(self.index.decode_level(&self.payload, level))),
            _ => Ok(None),
        }
    }

    /// Batched equality probes over an **ascending** key run: one sublist
    /// per present key, in input order. Equivalent to calling
    /// [`lookup_eq`](Self::lookup_eq) per key, but the ascending order lets
    /// the cursor resolve runs of keys inside the currently-buffered leaf
    /// with an in-place binary search — no per-key root-to-leaf descent —
    /// which is the hot path of Pre-Filter probe lists (§3.3).
    pub fn lookup_eq_run(
        &mut self,
        dev: &mut FlashDevice,
        keys: &[u64],
        level: usize,
    ) -> Result<Vec<IdList>> {
        self.check_level(level)?;
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "lookup_eq_run requires ascending keys"
        );
        let mut out = Vec::with_capacity(keys.len());
        for (i, &key) in keys.iter().enumerate() {
            if self
                .cursor
                .lookup_ascending_into(dev, key, &mut self.payload)?
            {
                out.push(self.index.decode_level(&self.payload, level));
            }
            // With read-ahead on, route the upcoming keys through the
            // cached parent and fault their leaves in as one vectored
            // read. A no-op at window 0 or while prefetched pages remain.
            self.cursor.prefetch_probe_window(dev, &keys[i + 1..])?;
        }
        Ok(out)
    }

    /// Range probe over keys in `[lo, hi]` (inclusive): one sorted sublist
    /// per matching entry — the `{Li}` collections the paper's plans feed to
    /// `Merge`. An inverted range (`lo > hi`) yields no sublists.
    ///
    /// Backed by the same single [`BTreeCursor::scan_range`] traversal as
    /// [`lookup_range_multi`](Self::lookup_range_multi) (with one level),
    /// so the two paths cannot diverge in results or pages read.
    pub fn lookup_range(
        &mut self,
        dev: &mut FlashDevice,
        lo: u64,
        hi: u64,
        level: usize,
    ) -> Result<Vec<IdList>> {
        self.check_level(level)?;
        let index = self.index;
        let mut out = Vec::with_capacity(self.range_capacity_hint(lo, hi));
        self.cursor.scan_range(dev, lo, hi, |_key, payload| {
            out.push(index.decode_level(payload, level));
            Ok(())
        })?;
        Ok(out)
    }

    /// Reference implementation of [`lookup_range`](Self::lookup_range):
    /// a full root-to-leaf [`BTreeCursor::seek`] followed by per-entry
    /// [`BTreeCursor::next_into`] payload copies — the pre-batching read
    /// path, kept verbatim (mirroring `NaiveUnionStream`) so the
    /// single-traversal scan is always judged against what it replaced,
    /// by the differential suite and the `micro/ci/multi-*` perfbench
    /// pair alike. Same sublists, same pages read; only the per-entry
    /// copies and the repeated descents differ.
    pub fn naive_lookup_range(
        &mut self,
        dev: &mut FlashDevice,
        lo: u64,
        hi: u64,
        level: usize,
    ) -> Result<Vec<IdList>> {
        self.check_level(level)?;
        let mut out = Vec::new();
        self.cursor.seek(dev, lo)?;
        while let Some(k) = self.cursor.next_into(dev, &mut self.payload)? {
            if k > hi {
                break;
            }
            out.push(self.index.decode_level(&self.payload, level));
        }
        Ok(out)
    }

    /// Range probe decoding **several levels from one traversal**: for keys
    /// in `[lo, hi]`, `out[i]` holds one sorted sublist per matching entry
    /// for `levels[i]` — exactly what per-level
    /// [`lookup_range`](Self::lookup_range) calls would return, but every
    /// qualifying leaf entry is visited once and all requested levels are
    /// decoded from its payload (each leaf payload carries a descriptor per
    /// level), so the B+-tree pages are read once instead of once per
    /// level. This is the paper's remark that the "redundant lookup" of
    /// Cross-Post plans "can be easily avoided in practice": the pages
    /// touched equal those of a *single* per-level scan, independent of
    /// `levels.len()` (the differential suite pins both properties down).
    pub fn lookup_range_multi(
        &mut self,
        dev: &mut FlashDevice,
        lo: u64,
        hi: u64,
        levels: &[usize],
    ) -> Result<Vec<Vec<IdList>>> {
        for &level in levels {
            self.check_level(level)?;
        }
        let index = self.index;
        // NB: not `vec![Vec::with_capacity(..); n]` — Vec::clone does not
        // preserve capacity, which would silently drop the hint for all
        // but one slot.
        let hint = self.range_capacity_hint(lo, hi);
        let mut out: Vec<Vec<IdList>> = (0..levels.len())
            .map(|_| Vec::with_capacity(hint))
            .collect();
        self.cursor.scan_range(dev, lo, hi, |_key, payload| {
            for (slot, &level) in out.iter_mut().zip(levels) {
                slot.push(index.decode_level(payload, level));
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Pre-size hint for range-scan output vectors: matching entries are
    /// bounded by both the distinct-key count and the key-range width (so
    /// equality and narrow probes stay allocation-free), capped so wide
    /// scans over huge indexes don't over-allocate. Shaves the
    /// doubling-realloc churn off wide scans (the multi-level microbench
    /// pushes ~12k descriptors per level per pass).
    fn range_capacity_hint(&self, lo: u64, hi: u64) -> usize {
        let width = hi.saturating_sub(lo).saturating_add(1);
        (self.index.distinct().min(width) as usize).min(16 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClimbingSpec, FkData, IndexBuilder};
    use ghostdb_flash::{FlashDevice, FlashGeometry, FlashTiming, SegmentAllocator};
    use ghostdb_storage::schema::paper_synthetic_schema;
    use ghostdb_storage::IdListReader;

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(32 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        let ram = RamArena::paper_default();
        (dev, alloc, ram)
    }

    /// Tiny deterministic instance of the paper schema:
    /// T0 rows reference T1 via fk1 = id/2 and T2 via fk2 = id%t2.
    /// T1 rows reference T11 via id%t11 and T12 via id%t12.
    fn tiny_builder(schema: &ghostdb_storage::SchemaTree) -> IndexBuilder {
        let t0 = schema.table_id("T0").unwrap();
        let t1 = schema.table_id("T1").unwrap();
        let t2 = schema.table_id("T2").unwrap();
        let t11 = schema.table_id("T11").unwrap();
        let t12 = schema.table_id("T12").unwrap();
        let rows = {
            let mut r = vec![0u64; schema.len()];
            r[t0] = 40;
            r[t1] = 20;
            r[t2] = 10;
            r[t11] = 5;
            r[t12] = 4;
            r
        };
        let mut fks = FkData::default();
        fks.insert(t0, t1, (0..40).map(|i| (i / 2) as u32).collect());
        fks.insert(t0, t2, (0..40).map(|i| (i % 10) as u32).collect());
        fks.insert(t1, t11, (0..20).map(|i| (i % 5) as u32).collect());
        fks.insert(t1, t12, (0..20).map(|i| (i % 4) as u32).collect());
        IndexBuilder::new(schema.clone(), rows, fks)
    }

    #[test]
    fn climbing_index_climbs_to_every_level() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t12 = schema.table_id("T12").unwrap();
        // Attribute h on T12 rows: key = row id % 2 (two distinct values).
        let keys: Vec<u64> = (0..4).map(|r| (r % 2) as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t12,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        assert_eq!(ci.levels.len(), 3); // T12, T1, T0
        assert_eq!(ci.distinct(), 2);
        let mut probe = ci.probe(&ram).unwrap();
        // key 0 selects T12 ids {0, 2}.
        let self_list = probe.lookup_eq(&mut dev, 0, 0).unwrap().unwrap();
        let ids = IdListReader::open(self_list, &ram, dev.page_size())
            .unwrap()
            .drain(&mut dev)
            .unwrap();
        assert_eq!(ids, vec![0, 2]);
        // Climb to T1: T1 rows with fk12 ∈ {0,2} = ids where id%4 ∈ {0,2}.
        let t1_list = probe.lookup_eq(&mut dev, 0, 1).unwrap().unwrap();
        let ids = IdListReader::open(t1_list, &ram, dev.page_size())
            .unwrap()
            .drain(&mut dev)
            .unwrap();
        let expect: Vec<u32> = (0..20).filter(|i| i % 4 == 0 || i % 4 == 2).collect();
        assert_eq!(ids, expect);
        // Climb to T0: T0 rows whose T1 parent (id/2) is in the T1 list.
        let t0_list = probe.lookup_eq(&mut dev, 0, 2).unwrap().unwrap();
        let ids = IdListReader::open(t0_list, &ram, dev.page_size())
            .unwrap()
            .drain(&mut dev)
            .unwrap();
        let expect: Vec<u32> = (0..40u32)
            .filter(|i| (i / 2) % 4 == 0 || (i / 2) % 4 == 2)
            .collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn range_probe_returns_one_sublist_per_entry() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t1 = schema.table_id("T1").unwrap();
        let keys: Vec<u64> = (0..20).map(|r| (r % 10) as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t1,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        let mut probe = ci.probe(&ram).unwrap();
        let lists = probe.lookup_range(&mut dev, 3, 6, 0).unwrap();
        assert_eq!(lists.len(), 4, "keys 3,4,5,6");
        let all: Vec<Vec<u32>> = lists
            .into_iter()
            .map(|l| {
                IdListReader::open(l, &ram, dev.page_size())
                    .unwrap()
                    .drain(&mut dev)
                    .unwrap()
            })
            .collect();
        assert_eq!(all[0], vec![3, 13]);
        assert_eq!(all[3], vec![6, 16]);
    }

    #[test]
    fn batched_run_matches_scalar_probes() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t1 = schema.table_id("T1").unwrap();
        let keys: Vec<u64> = (0..20).map(|r| (r % 10) as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t1,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        // Ascending probes with hits, misses and a duplicate.
        let probes: Vec<u64> = vec![0, 2, 2, 3, 7, 9, 11, 40];
        for level in 0..ci.levels.len() {
            let mut scalar = ci.probe(&ram).unwrap();
            let snap = dev.snapshot();
            let mut expect = Vec::new();
            for &k in &probes {
                if let Some(l) = scalar.lookup_eq(&mut dev, k, level).unwrap() {
                    expect.push(l);
                }
            }
            let scalar_io = dev.stats_since(&snap);
            drop(scalar);
            let mut batched = ci.probe(&ram).unwrap();
            let snap = dev.snapshot();
            let got = batched.lookup_eq_run(&mut dev, &probes, level).unwrap();
            let batched_io = dev.stats_since(&snap);
            assert_eq!(got, expect, "level {level}");
            assert!(
                batched_io.pages_read <= scalar_io.pages_read,
                "batched run must not read more pages"
            );
        }
    }

    #[test]
    fn multi_level_range_matches_per_level_scans() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t12 = schema.table_id("T12").unwrap();
        let keys: Vec<u64> = (0..4).map(|r| r as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t12,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        assert_eq!(ci.levels.len(), 3);
        let levels = [0usize, 1, 2];
        for (lo, hi) in [(0u64, 3u64), (1, 2), (2, 2), (3, 9), (5, 9), (2, 1)] {
            let mut multi_probe = ci.probe(&ram).unwrap();
            let snap = dev.snapshot();
            let multi = multi_probe
                .lookup_range_multi(&mut dev, lo, hi, &levels)
                .unwrap();
            let multi_io = dev.stats_since(&snap);
            drop(multi_probe);
            let mut single_io_max = 0u64;
            for (i, &level) in levels.iter().enumerate() {
                let mut probe = ci.probe(&ram).unwrap();
                let snap = dev.snapshot();
                let single = probe.lookup_range(&mut dev, lo, hi, level).unwrap();
                single_io_max = single_io_max.max(dev.stats_since(&snap).pages_read);
                assert_eq!(multi[i], single, "range [{lo},{hi}] level {level}");
            }
            // The whole point: decoding three levels costs the pages of one
            // single-level scan, not three.
            assert_eq!(
                multi_io.pages_read, single_io_max,
                "range [{lo},{hi}]: multi traversal must read exactly one scan's pages"
            );
        }
    }

    #[test]
    fn naive_reference_matches_optimised_range_scan() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t1 = schema.table_id("T1").unwrap();
        let keys: Vec<u64> = (0..20).map(|r| (r % 10) as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t1,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        for (lo, hi) in [(0u64, 9u64), (3, 6), (4, 4), (8, 2), (11, 40)] {
            for level in 0..ci.levels.len() {
                let mut fast = ci.probe(&ram).unwrap();
                let snap = dev.snapshot();
                let got = fast.lookup_range(&mut dev, lo, hi, level).unwrap();
                let fast_io = dev.stats_since(&snap);
                drop(fast);
                let mut naive = ci.probe(&ram).unwrap();
                let snap = dev.snapshot();
                let want = naive.naive_lookup_range(&mut dev, lo, hi, level).unwrap();
                let naive_io = dev.stats_since(&snap);
                assert_eq!(got, want, "[{lo},{hi}] level {level}");
                if lo <= hi {
                    assert_eq!(fast_io, naive_io, "[{lo},{hi}] level {level}: same pages");
                } else {
                    // Inverted bounds (a malformed Between): the scan
                    // rejects before touching flash, the naive path still
                    // pays its descent.
                    assert_eq!(fast_io.pages_read, 0, "[{lo},{hi}]: early exit");
                    assert!(fast_io.pages_read <= naive_io.pages_read);
                }
            }
        }
    }

    #[test]
    fn empty_and_inverted_ranges_yield_no_sublists() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t2 = schema.table_id("T2").unwrap();
        // Keys 0, 10, 20, … 90: gaps to aim empty ranges at.
        let keys: Vec<u64> = (0..10).map(|r| r as u64 * 10).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t2,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        let mut probe = ci.probe(&ram).unwrap();
        // Empty range between two present keys.
        assert!(probe.lookup_range(&mut dev, 11, 19, 0).unwrap().is_empty());
        // Empty range past the last key.
        assert!(probe.lookup_range(&mut dev, 91, 999, 0).unwrap().is_empty());
        // Inverted bounds are rejected cleanly: no error, no sublists.
        assert!(probe.lookup_range(&mut dev, 30, 10, 0).unwrap().is_empty());
        let multi = probe.lookup_range_multi(&mut dev, 30, 10, &[0, 1]).unwrap();
        assert_eq!(multi.len(), 2);
        assert!(multi.iter().all(Vec::is_empty));
    }

    #[test]
    fn max_level_probe_works_and_overflow_errors() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t12 = schema.table_id("T12").unwrap();
        let keys: Vec<u64> = (0..4).map(|r| r as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t12,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        let max = ci.levels.len() - 1; // the root level
        let mut probe = ci.probe(&ram).unwrap();
        let lists = probe.lookup_range(&mut dev, 0, 3, max).unwrap();
        assert_eq!(lists.len(), 4);
        // Every T0 row joins some T12 row, so the root sublists cover T0.
        assert_eq!(lists.iter().map(|l| l.count).sum::<u64>(), 40);
        // One past the top level errors on both paths, before any I/O.
        assert!(probe.lookup_range(&mut dev, 0, 3, max + 1).is_err());
        assert!(probe
            .lookup_range_multi(&mut dev, 0, 3, &[0, max + 1])
            .is_err());
    }

    #[test]
    fn equal_key_run_across_leaf_boundary() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let t0 = schema.table_id("T0").unwrap();
        let t1 = schema.table_id("T1").unwrap();
        let t2 = schema.table_id("T2").unwrap();
        let t11 = schema.table_id("T11").unwrap();
        let t12 = schema.table_id("T12").unwrap();
        // Enough distinct keys that the B+-tree spans several leaves: with
        // FullClimb from T1 (2 levels → 24-byte payloads) a 2 KiB page
        // holds (2048 - 8) / 32 = 63 leaf entries.
        let n1 = 200u64;
        let mut rows = vec![0u64; schema.len()];
        rows[t0] = 400;
        rows[t1] = n1;
        rows[t2] = 10;
        rows[t11] = 5;
        rows[t12] = 4;
        let mut fks = FkData::default();
        fks.insert(t0, t1, (0..400).map(|i| (i / 2) as u32).collect());
        fks.insert(t0, t2, (0..400).map(|i| (i % 10) as u32).collect());
        fks.insert(t1, t11, (0..n1).map(|i| (i % 5) as u32).collect());
        fks.insert(t1, t12, (0..n1).map(|i| (i % 4) as u32).collect());
        let b = IndexBuilder::new(schema.clone(), rows, fks);
        let keys: Vec<u64> = (0..n1).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t1,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::SelfAndRoot,
                    exact: true,
                },
            )
            .unwrap();
        let leaf_cap = ghostdb_storage::btree::BTree::leaf_capacity(
            dev.page_size(),
            ci.levels.len() * LEVEL_DESC_BYTES,
        ) as u64;
        assert!(n1 > leaf_cap, "index must span more than one leaf");
        let boundary = leaf_cap - 1; // last key of the first leaf
                                     // An ascending probe run holding *equal* keys at and across the
                                     // boundary: the repeated keys re-resolve inside the buffered leaf,
                                     // then the run steps into the next leaf.
        let probes: Vec<u64> = vec![
            boundary,
            boundary,
            boundary, // equal run ending leaf 0
            boundary + 1,
            boundary + 1, // equal run opening leaf 1
            boundary + 2,
        ];
        for level in 0..ci.levels.len() {
            let mut scalar = ci.probe(&ram).unwrap();
            let mut expect = Vec::new();
            for &k in &probes {
                expect.push(scalar.lookup_eq(&mut dev, k, level).unwrap().unwrap());
            }
            drop(scalar);
            let mut batched = ci.probe(&ram).unwrap();
            let got = batched.lookup_eq_run(&mut dev, &probes, level).unwrap();
            assert_eq!(got, expect, "level {level}");
        }
    }

    #[test]
    fn missing_key_and_bad_level() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t2 = schema.table_id("T2").unwrap();
        let keys: Vec<u64> = (0..10).map(|r| r as u64 * 10).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t2,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        assert_eq!(ci.levels.len(), 2); // T2, T0
        let mut probe = ci.probe(&ram).unwrap();
        assert!(probe.lookup_eq(&mut dev, 5, 0).unwrap().is_none());
        assert!(probe.lookup_eq(&mut dev, 0, 5).is_err());
    }

    #[test]
    fn pk_index_has_ancestor_levels_only() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = tiny_builder(&schema);
        let t1 = schema.table_id("T1").unwrap();
        let keys: Vec<u64> = (0..20).map(|r| r as u64).collect(); // id index
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t1,
                    column: "id",
                    keys: &keys,
                    levels: LevelSpec::AncestorsOnly,
                    exact: true,
                },
            )
            .unwrap();
        assert_eq!(ci.levels.len(), 1); // T0 only
        let mut probe = ci.probe(&ram).unwrap();
        // T1 id 7 → T0 ids {14, 15} (fk1 = id/2).
        let list = probe.lookup_eq(&mut dev, 7, 0).unwrap().unwrap();
        let ids = IdListReader::open(list, &ram, dev.page_size())
            .unwrap()
            .drain(&mut dev)
            .unwrap();
        assert_eq!(ids, vec![14, 15]);
    }

    #[test]
    fn self_and_root_spec() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, _ram) = setup();
        let b = tiny_builder(&schema);
        let t12 = schema.table_id("T12").unwrap();
        let keys: Vec<u64> = (0..4).map(|r| r as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t12,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::SelfAndRoot,
                    exact: true,
                },
            )
            .unwrap();
        let t0 = schema.root();
        assert_eq!(ci.levels, vec![t12, t0]);
        assert!(ci.level_of(schema.table_id("T1").unwrap()).is_none());
    }
}
