//! Bulk construction of SKTs and climbing indexes.
//!
//! Indexes are built when the database owner burns the key (§2.1), not
//! during queries, so construction may stage data host-side; every byte
//! still reaches flash through accounted sequential writes, and loaders
//! snapshot the device counters afterwards so query measurements start
//! clean.

use crate::climbing::{ClimbingIndex, LevelSpec, LEVEL_DESC_BYTES};
use crate::skt::SubtreeKeyTable;
use ghostdb_flash::{FlashDevice, SegmentAllocator};
use ghostdb_storage::btree::BTree;
use ghostdb_storage::row::RowLayout;
use ghostdb_storage::{FlashTable, Id, Result, SchemaTree, StorageError, TableId};
use std::collections::HashMap;

/// Foreign-key data needed to build join structures: for every edge
/// `(parent, child)` of the schema tree, the child id referenced by each
/// parent row.
#[derive(Debug, Clone, Default)]
pub struct FkData {
    map: HashMap<(TableId, TableId), Vec<Id>>,
}

impl FkData {
    /// Register the fk column of `parent` referencing `child`.
    pub fn insert(&mut self, parent: TableId, child: TableId, ids: Vec<Id>) {
        self.map.insert((parent, child), ids);
    }

    /// The fk array of an edge.
    pub fn get(&self, parent: TableId, child: TableId) -> Option<&[Id]> {
        self.map.get(&(parent, child)).map(|v| v.as_slice())
    }
}

/// Description of one climbing index to build
/// ([`IndexBuilder::build_climbing`]).
///
/// `keys[r]` is the order-preserving key of the attribute value of row `r`
/// ([`ghostdb_storage::Value::order_key`]). `exact` states whether that
/// encoding is injective for this column's data (drives whether operators
/// must re-check predicates on exact values).
#[derive(Debug, Clone, Copy)]
pub struct ClimbingSpec<'a> {
    /// Indexed table.
    pub table: TableId,
    /// Indexed column name.
    pub column: &'a str,
    /// Order-preserving key of each row's value, one per row.
    pub keys: &'a [u64],
    /// Which target levels the index climbs to.
    pub levels: LevelSpec,
    /// Whether the key encoding is injective for this column's data.
    pub exact: bool,
}

/// Builder over a loaded schema instance.
#[derive(Debug)]
pub struct IndexBuilder {
    schema: SchemaTree,
    rows: Vec<u64>,
    fks: FkData,
}

impl IndexBuilder {
    /// New builder. `rows[t]` is the cardinality of table `t`.
    pub fn new(schema: SchemaTree, rows: Vec<u64>, fks: FkData) -> Self {
        assert_eq!(rows.len(), schema.len());
        IndexBuilder { schema, rows, fks }
    }

    /// The schema.
    pub fn schema(&self) -> &SchemaTree {
        &self.schema
    }

    /// Cardinality of a table.
    pub fn rows(&self, t: TableId) -> u64 {
        self.rows[t]
    }

    /// For each row of `from`, the id of the unique joining row of the
    /// descendant table `to` (fk composition along the tree path).
    /// `from == to` yields the identity.
    pub fn map_to_descendant(&self, from: TableId, to: TableId) -> Result<Vec<Id>> {
        if from == to {
            return Ok((0..self.rows[from] as Id).collect());
        }
        // Path from `to` up to `from`.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.schema.parent(cur).ok_or_else(|| {
                StorageError::Schema(format!(
                    "{} is not a descendant of {}",
                    self.schema.def(to).name,
                    self.schema.def(from).name
                ))
            })?;
            path.push(cur);
        }
        path.reverse(); // from .. to
        let first = self
            .fks
            .get(path[0], path[1])
            .ok_or_else(|| StorageError::Schema("missing fk data".into()))?;
        let mut map: Vec<Id> = first.to_vec();
        for edge in path[1..].windows(2) {
            let next = self
                .fks
                .get(edge[0], edge[1])
                .ok_or_else(|| StorageError::Schema("missing fk data".into()))?;
            for m in map.iter_mut() {
                *m = next[*m as usize];
            }
        }
        Ok(map)
    }

    /// Build the SKT of a non-leaf table.
    pub fn build_skt(
        &self,
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        t: TableId,
    ) -> Result<SubtreeKeyTable> {
        let descendants = self.schema.descendants(t);
        if descendants.is_empty() {
            return Err(StorageError::Schema(format!(
                "SKT on leaf table {}",
                self.schema.def(t).name
            )));
        }
        let maps: Vec<Vec<Id>> = descendants
            .iter()
            .map(|d| self.map_to_descendant(t, *d))
            .collect::<Result<_>>()?;
        let layout = RowLayout::ids(descendants.len());
        let fill_layout = layout.clone();
        let flash = FlashTable::bulk_load_with(dev, alloc, layout, self.rows[t], |r, out| {
            for (c, m) in maps.iter().enumerate() {
                fill_layout.put_id(out, c, m[r as usize]);
            }
        })?;
        SubtreeKeyTable::new(&self.schema, t, flash)
    }

    /// Resolve a [`LevelSpec`] into concrete target tables for table `t`.
    pub fn resolve_levels(&self, t: TableId, spec: LevelSpec) -> Result<Vec<TableId>> {
        let ancestors = self.schema.ancestors(t);
        let levels = match spec {
            LevelSpec::FullClimb => {
                let mut v = vec![t];
                v.extend(ancestors);
                v
            }
            LevelSpec::SelfAndRoot => {
                if t == self.schema.root() {
                    vec![t]
                } else {
                    vec![t, self.schema.root()]
                }
            }
            LevelSpec::SelfOnly => vec![t],
            LevelSpec::AncestorsOnly => ancestors,
        };
        if levels.is_empty() {
            return Err(StorageError::Schema(
                "climbing index with no levels (AncestorsOnly on the root?)".into(),
            ));
        }
        Ok(levels)
    }

    /// Build the climbing index described by `spec`.
    pub fn build_climbing(
        &self,
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        spec: ClimbingSpec<'_>,
    ) -> Result<ClimbingIndex> {
        let ClimbingSpec {
            table: t,
            column,
            keys,
            levels: level_spec,
            exact,
        } = spec;
        assert_eq!(keys.len() as u64, self.rows[t], "one key per row");
        let levels = self.resolve_levels(t, level_spec)?;
        // Distinct keys, sorted.
        let mut distinct: Vec<u64> = keys.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let rank: HashMap<u64, u32> = distinct
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();

        let page_size = dev.page_size();
        let payload_size = levels.len() * LEVEL_DESC_BYTES;
        let mut payloads: Vec<Vec<u8>> = vec![vec![0u8; payload_size]; distinct.len()];
        let mut areas = Vec::with_capacity(levels.len());

        for (li, level_table) in levels.iter().enumerate() {
            // Key of each row of the level table: its own key if this is the
            // indexed table, else the key of the `t` row it joins with.
            let level_keys: Vec<u64> = if *level_table == t {
                keys.to_vec()
            } else {
                let map = self.map_to_descendant(*level_table, t)?;
                map.iter().map(|ti| keys[*ti as usize]).collect()
            };
            let n = level_keys.len();
            // Bucket ids per key rank; iterating rows in ascending id order
            // keeps every sublist sorted.
            let mut counts = vec![0u32; distinct.len()];
            for k in &level_keys {
                counts[rank[k] as usize] += 1;
            }
            let mut offsets = vec![0u64; distinct.len()];
            let mut acc = 0u64;
            for (i, c) in counts.iter().enumerate() {
                offsets[i] = acc;
                acc += *c as u64 * 4;
            }
            let mut area = vec![0u8; n * 4];
            let mut cursor = offsets.clone();
            for (r, k) in level_keys.iter().enumerate() {
                let at = &mut cursor[rank[k] as usize];
                area[*at as usize..*at as usize + 4].copy_from_slice(&(r as Id).to_le_bytes());
                *at += 4;
            }
            // Write the packed area sequentially.
            let seg = alloc.alloc_bytes((n as u64 * 4).max(1), page_size)?;
            for (p, chunk) in area.chunks(page_size).enumerate() {
                dev.write(seg.lpn(p as u64)?, chunk)?;
            }
            areas.push(seg);
            for (ki, payload) in payloads.iter_mut().enumerate() {
                let at = li * LEVEL_DESC_BYTES;
                payload[at..at + 8].copy_from_slice(&offsets[ki].to_le_bytes());
                payload[at + 8..at + 12].copy_from_slice(&counts[ki].to_le_bytes());
            }
        }

        let entries: Vec<(u64, Vec<u8>)> = distinct.into_iter().zip(payloads).collect();
        let tree = BTree::bulk_build(dev, alloc, payload_size, &entries)?;
        Ok(ClimbingIndex::new(
            t,
            column.to_string(),
            levels,
            exact,
            self.rows[t],
            tree,
            areas,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_flash::{FlashGeometry, FlashTiming};
    use ghostdb_storage::schema::paper_synthetic_schema;
    use ghostdb_token::RamArena;

    fn setup() -> (FlashDevice, SegmentAllocator, RamArena) {
        let dev = FlashDevice::new(
            FlashGeometry::for_capacity(32 * 1024 * 1024),
            FlashTiming::default(),
        );
        let alloc = SegmentAllocator::new(dev.logical_pages());
        let ram = RamArena::paper_default();
        (dev, alloc, ram)
    }

    fn builder(schema: &SchemaTree) -> IndexBuilder {
        let t0 = schema.table_id("T0").unwrap();
        let t1 = schema.table_id("T1").unwrap();
        let t2 = schema.table_id("T2").unwrap();
        let t11 = schema.table_id("T11").unwrap();
        let t12 = schema.table_id("T12").unwrap();
        let mut rows = vec![0u64; schema.len()];
        rows[t0] = 100;
        rows[t1] = 50;
        rows[t2] = 20;
        rows[t11] = 10;
        rows[t12] = 8;
        let mut fks = FkData::default();
        fks.insert(t0, t1, (0..100).map(|i| (i % 50) as u32).collect());
        fks.insert(t0, t2, (0..100).map(|i| (i % 20) as u32).collect());
        fks.insert(t1, t11, (0..50).map(|i| (i % 10) as u32).collect());
        fks.insert(t1, t12, (0..50).map(|i| (i % 8) as u32).collect());
        IndexBuilder::new(schema.clone(), rows, fks)
    }

    use ghostdb_storage::SchemaTree;

    #[test]
    fn map_composition() {
        let schema = paper_synthetic_schema(1, 1);
        let b = builder(&schema);
        let t0 = schema.table_id("T0").unwrap();
        let t12 = schema.table_id("T12").unwrap();
        let map = b.map_to_descendant(t0, t12).unwrap();
        assert_eq!(map.len(), 100);
        // T0 row 77 → T1 row 27 → T12 row 27 % 8 = 3.
        assert_eq!(map[77], 3);
        // Identity for self.
        assert_eq!(
            b.map_to_descendant(t12, t12).unwrap(),
            (0..8).collect::<Vec<u32>>()
        );
        // Non-descendant errors.
        let t2 = schema.table_id("T2").unwrap();
        assert!(b.map_to_descendant(t2, t12).is_err());
    }

    #[test]
    fn skt_rows_follow_fk_composition() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = builder(&schema);
        let t0 = schema.table_id("T0").unwrap();
        let skt = b.build_skt(&mut dev, &mut alloc, t0).unwrap();
        assert_eq!(skt.rows(), 100);
        assert_eq!(skt.descendants.len(), 4); // T1, T11, T12, T2
        let mut reader = skt.flash.reader(&ram, dev.page_size()).unwrap();
        let row = reader.row_at(&mut dev, 77).unwrap();
        let l = &skt.flash.layout;
        assert_eq!(l.get_id(row, 0), 27); // T1 = 77 % 50
        assert_eq!(l.get_id(row, 1), 7); // T11 = 27 % 10
        assert_eq!(l.get_id(row, 2), 3); // T12 = 27 % 8
        assert_eq!(l.get_id(row, 3), 17); // T2 = 77 % 20
    }

    #[test]
    fn skt_on_leaf_rejected() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, _ram) = setup();
        let b = builder(&schema);
        let t2 = schema.table_id("T2").unwrap();
        assert!(b.build_skt(&mut dev, &mut alloc, t2).is_err());
    }

    #[test]
    fn ancestors_only_on_root_rejected() {
        let schema = paper_synthetic_schema(1, 1);
        let b = builder(&schema);
        assert!(b
            .resolve_levels(schema.root(), LevelSpec::AncestorsOnly)
            .is_err());
    }

    #[test]
    fn root_attribute_index_is_plain_btree() {
        // §3.2: "For the special case of root table attributes, climbing
        // indexes and traditional B+-Trees are identical."
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let b = builder(&schema);
        let t0 = schema.root();
        let keys: Vec<u64> = (0..100).map(|r| (r / 10) as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t0,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        assert_eq!(ci.levels, vec![t0]);
        let mut probe = ci.probe(&ram).unwrap();
        let list = probe.lookup_eq(&mut dev, 4, 0).unwrap().unwrap();
        assert_eq!(list.count, 10);
    }

    #[test]
    fn empty_sublists_for_unreferenced_rows() {
        let schema = paper_synthetic_schema(1, 1);
        let (mut dev, mut alloc, ram) = setup();
        let t0 = schema.table_id("T0").unwrap();
        let t1 = schema.table_id("T1").unwrap();
        let t2 = schema.table_id("T2").unwrap();
        let t11 = schema.table_id("T11").unwrap();
        let t12 = schema.table_id("T12").unwrap();
        let mut rows = vec![0u64; schema.len()];
        rows[t0] = 4;
        rows[t1] = 10; // rows 4..10 unreferenced by T0
        rows[t2] = 1;
        rows[t11] = 1;
        rows[t12] = 1;
        let mut fks = FkData::default();
        fks.insert(t0, t1, vec![0, 1, 2, 3]);
        fks.insert(t0, t2, vec![0, 0, 0, 0]);
        fks.insert(t1, t11, vec![0; 10]);
        fks.insert(t1, t12, vec![0; 10]);
        let b = IndexBuilder::new(schema.clone(), rows, fks);
        let keys: Vec<u64> = (0..10).map(|r| r as u64).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t1,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        let mut probe = ci.probe(&ram).unwrap();
        // Key 7: T1 row 7 exists but no T0 row references it.
        let root_level = ci.level_of(t0).unwrap();
        let list = probe.lookup_eq(&mut dev, 7, root_level).unwrap().unwrap();
        assert_eq!(list.count, 0);
    }
}
