//! Exact storage-size model for the Figure 7 comparison.
//!
//! Sizes are computed from the same layout formulas the builders use
//! (`BTree::pages_needed`, `RowLayout::pages_for`, packed 4-byte ID areas),
//! so the model is exact for this implementation — a property the tests
//! check by physically building small instances and comparing.

use crate::climbing::{LevelSpec, LEVEL_DESC_BYTES};
use crate::schemes::IndexScheme;
use ghostdb_storage::btree::BTree;
use ghostdb_storage::row::RowLayout;
use ghostdb_storage::{SchemaTree, TableId};

/// Inputs of the size model.
#[derive(Debug, Clone)]
pub struct SizeModelInput<'a> {
    /// The schema.
    pub schema: &'a SchemaTree,
    /// Cardinality per table.
    pub rows: &'a [u64],
    /// Distinct values per indexed attribute of each table (Figure 7 keeps
    /// this uniform per table).
    pub distinct: &'a [u64],
    /// Indexed hidden attributes per table (the x-axis of Figure 7).
    pub attrs_per_table: usize,
    /// Flash page size.
    pub page_size: usize,
}

/// Raw database size: every visible and hidden column of every table plus
/// the replicated 4-byte id (the paper's constant `DBSize` line).
pub fn db_raw_bytes(schema: &SchemaTree, rows: &[u64]) -> u64 {
    schema
        .tables()
        .map(|t| rows[t] * schema.def(t).raw_tuple_bytes())
        .sum()
}

fn pages_bytes(bytes: u64, page_size: usize) -> u64 {
    bytes.div_ceil(page_size as u64).max(1) * page_size as u64
}

/// Size of one SKT in bytes (page-rounded).
pub fn skt_bytes(schema: &SchemaTree, rows: &[u64], t: TableId, page_size: usize) -> u64 {
    let desc = schema.descendants(t).len();
    if desc == 0 {
        return 0;
    }
    RowLayout::ids(desc).pages_for(rows[t], page_size) * page_size as u64
}

/// Size of one climbing index in bytes: B+-tree pages plus the packed ID
/// area of every level.
pub fn climbing_bytes(
    schema: &SchemaTree,
    rows: &[u64],
    t: TableId,
    distinct: u64,
    spec: LevelSpec,
    page_size: usize,
) -> u64 {
    let levels: Vec<TableId> = match spec {
        LevelSpec::FullClimb => {
            let mut v = vec![t];
            v.extend(schema.ancestors(t));
            v
        }
        LevelSpec::SelfAndRoot => {
            if t == schema.root() {
                vec![t]
            } else {
                vec![t, schema.root()]
            }
        }
        LevelSpec::SelfOnly => vec![t],
        LevelSpec::AncestorsOnly => schema.ancestors(t),
    };
    if levels.is_empty() {
        return 0;
    }
    let payload = levels.len() * LEVEL_DESC_BYTES;
    let tree = BTree::pages_needed(distinct, page_size, payload) * page_size as u64;
    let areas: u64 = levels
        .iter()
        .map(|l| pages_bytes(rows[*l] * 4, page_size))
        .sum();
    tree + areas
}

/// Index storage overhead of one scheme (excluding raw data), in bytes.
pub fn scheme_index_bytes(scheme: IndexScheme, input: &SizeModelInput<'_>) -> u64 {
    let schema = input.schema;
    let rows = input.rows;
    let page = input.page_size;
    let mut total = 0u64;

    for t in schema.tables() {
        // SKTs.
        if scheme.has_skt(schema, t) {
            total += skt_bytes(schema, rows, t, page);
        }
        // Selection indexes on hidden attributes.
        total += input.attrs_per_table as u64
            * climbing_bytes(
                schema,
                rows,
                t,
                input.distinct[t],
                scheme.attr_levels(),
                page,
            );
        // Primary-key indexes.
        if let Some(spec) = scheme.pk_levels(schema, t) {
            let spec = match (scheme, spec) {
                // BasicIndex pk indexes reference the root only.
                (IndexScheme::Basic, _) if schema.parent(t) != Some(schema.root()) => {
                    LevelSpec::AncestorsOnly
                }
                (_, s) => s,
            };
            // pk index keys are the table's ids: distinct = rows.
            total += climbing_bytes(schema, rows, t, rows[t], spec, page);
        }
        // JoinIndex scheme: a binary join index per fk edge (child id →
        // sorted list of parent ids), Valduriez-style. Key columns need no
        // separate index: tables are stored sorted by id, so id lookup is
        // direct addressing, and the fk join index serves the edge in both
        // directions.
        if scheme.has_fk_join_indexes() {
            for child in schema.children(t) {
                let tree = BTree::pages_needed(rows[*child], page, LEVEL_DESC_BYTES) * page as u64;
                let area = pages_bytes(rows[t] * 4, page);
                total += tree + area;
            }
        }
    }
    total
}

/// One Figure 7 data point: scheme → MB of index overhead.
pub fn figure7_point(input: &SizeModelInput<'_>) -> Vec<(IndexScheme, f64)> {
    IndexScheme::all()
        .into_iter()
        .map(|s| (s, scheme_index_bytes(s, input) as f64 / 1e6))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClimbingSpec, FkData, IndexBuilder};
    use ghostdb_flash::{FlashDevice, FlashGeometry, FlashTiming, SegmentAllocator};
    use ghostdb_storage::schema::paper_synthetic_schema;

    fn small_instance() -> (ghostdb_storage::SchemaTree, Vec<u64>, FkData) {
        let schema = paper_synthetic_schema(5, 5);
        let ids: Vec<&str> = vec!["T0", "T1", "T2", "T11", "T12"];
        let card = [2000u64, 500, 200, 100, 80];
        let mut rows = vec![0u64; schema.len()];
        for (name, c) in ids.iter().zip(card) {
            rows[schema.table_id(name).unwrap()] = c;
        }
        let t0 = schema.table_id("T0").unwrap();
        let t1 = schema.table_id("T1").unwrap();
        let t2 = schema.table_id("T2").unwrap();
        let t11 = schema.table_id("T11").unwrap();
        let t12 = schema.table_id("T12").unwrap();
        let mut fks = FkData::default();
        fks.insert(t0, t1, (0..2000).map(|i| (i % 500) as u32).collect());
        fks.insert(t0, t2, (0..2000).map(|i| (i % 200) as u32).collect());
        fks.insert(t1, t11, (0..500).map(|i| (i % 100) as u32).collect());
        fks.insert(t1, t12, (0..500).map(|i| (i % 80) as u32).collect());
        (schema, rows, fks)
    }

    #[test]
    fn model_matches_physically_built_structures() {
        let (schema, rows, fks) = small_instance();
        let mut dev = FlashDevice::new(
            FlashGeometry::for_capacity(64 * 1024 * 1024),
            FlashTiming::default(),
        );
        let mut alloc = SegmentAllocator::new(dev.logical_pages());
        let b = IndexBuilder::new(schema.clone(), rows.clone(), fks);
        let page = dev.page_size();

        // SKT of the root.
        let t0 = schema.root();
        let skt = b.build_skt(&mut dev, &mut alloc, t0).unwrap();
        assert_eq!(skt.bytes(page), skt_bytes(&schema, &rows, t0, page));

        // A full-climb attribute index on T12 with 40 distinct values.
        let t12 = schema.table_id("T12").unwrap();
        let keys: Vec<u64> = (0..rows[t12]).map(|r| r % 40).collect();
        let ci = b
            .build_climbing(
                &mut dev,
                &mut alloc,
                ClimbingSpec {
                    table: t12,
                    column: "h1",
                    keys: &keys,
                    levels: LevelSpec::FullClimb,
                    exact: true,
                },
            )
            .unwrap();
        assert_eq!(
            ci.bytes(page),
            climbing_bytes(&schema, &rows, t12, 40, LevelSpec::FullClimb, page)
        );
    }

    #[test]
    fn figure7_ordering_matches_paper() {
        // Paper: FullIndex ≳ BasicIndex > StarIndex > JoinIndex at any x ≥ 1,
        // with Full ≈ Basic ("the small difference between these two curves").
        // Ordering is an asymptotic property: use paper-shaped cardinalities
        // (model only, nothing is built).
        let schema = paper_synthetic_schema(5, 5);
        let mut rows = vec![0u64; schema.len()];
        for (name, c) in [
            ("T0", 1_000_000u64),
            ("T1", 100_000),
            ("T2", 100_000),
            ("T11", 10_000),
            ("T12", 10_000),
        ] {
            rows[schema.table_id(name).unwrap()] = c;
        }
        let distinct: Vec<u64> = rows.iter().map(|r| (r / 10).max(1)).collect();
        for x in 1..=5usize {
            let input = SizeModelInput {
                schema: &schema,
                rows: &rows,
                distinct: &distinct,
                attrs_per_table: x,
                page_size: 2048,
            };
            let full = scheme_index_bytes(IndexScheme::Full, &input);
            let basic = scheme_index_bytes(IndexScheme::Basic, &input);
            let star = scheme_index_bytes(IndexScheme::Star, &input);
            let join = scheme_index_bytes(IndexScheme::Join, &input);
            assert!(full >= basic, "x={x}: full {full} < basic {basic}");
            assert!(basic > star, "x={x}: basic {basic} <= star {star}");
            assert!(star > join || x == 0, "x={x}: star {star} <= join {join}");
            // Full ≈ Basic: within 20% (paper: "small difference").
            assert!(
                (full as f64 - basic as f64) / full as f64 <= 0.2,
                "x={x}: full-basic gap too large"
            );
        }
    }

    #[test]
    fn index_growth_is_monotone_in_attrs() {
        let (schema, rows, _) = small_instance();
        let distinct: Vec<u64> = rows.iter().map(|r| (r / 4).max(1)).collect();
        let mut last = 0u64;
        for x in 0..=5usize {
            let input = SizeModelInput {
                schema: &schema,
                rows: &rows,
                distinct: &distinct,
                attrs_per_table: x,
                page_size: 2048,
            };
            let full = scheme_index_bytes(IndexScheme::Full, &input);
            assert!(full >= last);
            last = full;
        }
    }

    #[test]
    fn db_raw_counts_all_columns() {
        let (schema, rows, _) = small_instance();
        let raw = db_raw_bytes(&schema, &rows);
        // T0: 2000×(4 + 8 + 100); T1: 500×112; T2/T11/T12: ×104.
        let expect = 2000 * 112 + 500 * 112 + 200 * 104 + 100 * 104 + 80 * 104;
        assert_eq!(raw, expect);
    }
}
