//! The four indexing schemes compared in Figure 7.
//!
//! * **FullIndex** — the GhostDB design: one SKT per non-leaf table, every
//!   indexed attribute carries a climbing index referencing *all* ancestor
//!   tables, and every node table's primary key carries a climbing index.
//! * **BasicIndex** — a single SKT (root) and climbing indexes referencing
//!   the indexed table and the root only. Cheaper, but Cross-filtering on
//!   intermediate tables becomes impossible.
//! * **StarIndex** — the data-warehouse baseline (O'Neil & Graefe style):
//!   the root SKT precomputes star joins, selection indexes are traditional
//!   (IDs of the indexed table only).
//! * **JoinIndex** — Valduriez-style binary join indexes: traditional
//!   indexes on all attributes including keys and foreign keys, no SKT.

use crate::climbing::LevelSpec;
use ghostdb_storage::{SchemaTree, TableId};

/// One of the Figure 7 indexing schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexScheme {
    /// GhostDB's full design.
    Full,
    /// Single SKT + self-and-root climbing indexes.
    Basic,
    /// Root SKT + traditional selection indexes.
    Star,
    /// Join indexes only, no SKT.
    Join,
}

impl IndexScheme {
    /// Display name matching the paper's legend.
    pub fn name(&self) -> &'static str {
        match self {
            IndexScheme::Full => "FullIndex",
            IndexScheme::Basic => "BasicIndex",
            IndexScheme::Star => "StarIndex",
            IndexScheme::Join => "JoinIndex",
        }
    }

    /// All four schemes, in the paper's legend order.
    pub fn all() -> [IndexScheme; 4] {
        [
            IndexScheme::Full,
            IndexScheme::Basic,
            IndexScheme::Star,
            IndexScheme::Join,
        ]
    }

    /// Does this scheme build the SKT of table `t`?
    pub fn has_skt(&self, schema: &SchemaTree, t: TableId) -> bool {
        let non_leaf = !schema.children(t).is_empty();
        match self {
            IndexScheme::Full => non_leaf,
            IndexScheme::Basic | IndexScheme::Star => non_leaf && t == schema.root(),
            IndexScheme::Join => false,
        }
    }

    /// Level specification for a *selection* (attribute) index on `t`.
    pub fn attr_levels(&self) -> LevelSpec {
        match self {
            IndexScheme::Full => LevelSpec::FullClimb,
            IndexScheme::Basic => LevelSpec::SelfAndRoot,
            IndexScheme::Star | IndexScheme::Join => LevelSpec::SelfOnly,
        }
    }

    /// Does this scheme build a primary-key climbing index on node table
    /// `t`, and with which levels?
    pub fn pk_levels(&self, schema: &SchemaTree, t: TableId) -> Option<LevelSpec> {
        if t == schema.root() {
            return None; // tables and SKTs are already sorted by root id
        }
        match self {
            IndexScheme::Full => Some(LevelSpec::AncestorsOnly),
            IndexScheme::Basic => Some(LevelSpec::AncestorsOnly), // sized as root-only in the model
            IndexScheme::Star => None,
            IndexScheme::Join => None, // joins go through per-fk join indexes instead
        }
    }

    /// Does this scheme keep a binary join index per foreign-key edge
    /// (JoinIndex scheme only)?
    pub fn has_fk_join_indexes(&self) -> bool {
        matches!(self, IndexScheme::Join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_storage::schema::paper_synthetic_schema;

    #[test]
    fn skt_placement_per_scheme() {
        let s = paper_synthetic_schema(1, 1);
        let t0 = s.root();
        let t1 = s.table_id("T1").unwrap();
        let t2 = s.table_id("T2").unwrap();
        assert!(IndexScheme::Full.has_skt(&s, t0));
        assert!(IndexScheme::Full.has_skt(&s, t1));
        assert!(!IndexScheme::Full.has_skt(&s, t2), "T2 is a leaf");
        assert!(IndexScheme::Basic.has_skt(&s, t0));
        assert!(!IndexScheme::Basic.has_skt(&s, t1));
        assert!(IndexScheme::Star.has_skt(&s, t0));
        assert!(!IndexScheme::Join.has_skt(&s, t0));
    }

    #[test]
    fn level_specs_per_scheme() {
        assert_eq!(IndexScheme::Full.attr_levels(), LevelSpec::FullClimb);
        assert_eq!(IndexScheme::Basic.attr_levels(), LevelSpec::SelfAndRoot);
        assert_eq!(IndexScheme::Star.attr_levels(), LevelSpec::SelfOnly);
        assert_eq!(IndexScheme::Join.attr_levels(), LevelSpec::SelfOnly);
    }

    #[test]
    fn only_join_scheme_keeps_fk_indexes() {
        assert!(IndexScheme::Join.has_fk_join_indexes());
        assert!(!IndexScheme::Full.has_fk_join_indexes());
    }
}
