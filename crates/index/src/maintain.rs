//! Incremental maintenance of climbing indexes and SKTs (ROADMAP item 4).
//!
//! Bulk-built structures answer build-once-query-forever workloads; the
//! write path needs insert/delete without a full reload. Two strategies
//! are implemented and judged by measurement (`micro/maint/*` in
//! perfbench), both preserving the query contract exactly:
//!
//! * [`MaintenanceStrategy::TombstoneMerge`] — the bulk-built base index
//!   stays immutable on flash; inserts accumulate in a host-side delta
//!   (per level: key → new ids) and deletes in per-level tombstone sets.
//!   Probes merge base sublists (tombstones filtered) with the delta.
//!   After `merge_threshold` ops the base is rebuilt from the logical
//!   state and the delta cleared — amortising flash writes over many
//!   updates, the classic LSM bargain.
//! * [`MaintenanceStrategy::RebuildSegment`] — every update rebuilds the
//!   index segments out of place from the logical state and frees the old
//!   ones. Probes never touch host-side state, so the read path is
//!   identical to a bulk-built index; writes pay full reconstruction.
//!
//! Whichever loses the measurement stays in-tree (the `BlockedBloomFilter`
//! pattern): the differential suite (`tests/maintain_equivalence.rs`)
//! locks both to a fresh rebuild at every intermediate state, so the
//! rejected variant keeps being judged against what replaced it.
//!
//! The logical ground truth is per-level `id → key` maps ([`LevelState`]):
//! exactly the `level_keys` arrays `IndexBuilder::build_climbing` derives
//! from fk chains, but maintained under inserts and deletes (each level
//! row maps to one indexed-table row, so per-key sublists partition each
//! level's live rows).

use crate::climbing::{ClimbingIndex, LEVEL_DESC_BYTES};
use crate::skt::SubtreeKeyTable;
use ghostdb_flash::{FlashDevice, SegmentAllocator};
use ghostdb_storage::btree::BTree;
use ghostdb_storage::{FlashTable, Id, IdListReader, Result, StorageError, TableId};
use ghostdb_token::RamArena;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Live `id → key` mapping of one level table (ascending id order keeps
/// every rebuilt sublist sorted for free).
pub type LevelState = BTreeMap<Id, u64>;

/// How a [`MaintainedIndex`] absorbs updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Immutable base + host-side delta/tombstones, merged into a rebuilt
    /// base every `merge_threshold` ops.
    TombstoneMerge,
    /// Rebuild the index segments out of place on every update.
    RebuildSegment,
}

impl MaintenanceStrategy {
    /// Name used by benches and the CI matrix (`MAINT_STRATEGY`).
    pub fn name(&self) -> &'static str {
        match self {
            MaintenanceStrategy::TombstoneMerge => "tombstone",
            MaintenanceStrategy::RebuildSegment => "rebuild",
        }
    }

    /// Parse a CI matrix value (`tombstone` / `rebuild`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tombstone" => Some(MaintenanceStrategy::TombstoneMerge),
            "rebuild" => Some(MaintenanceStrategy::RebuildSegment),
            _ => None,
        }
    }
}

/// Build a [`ClimbingIndex`] directly from per-level logical state.
///
/// Mirrors `IndexBuilder::build_climbing` — same packed-area layout, same
/// `(offset, count)` leaf descriptors, same sequential page writes — but
/// takes explicit `id → key` maps instead of fk chains, so it accepts the
/// sparse id sets left behind by deletes. The B+-tree keys are the sorted
/// union of live keys across all levels; a key absent at some level gets
/// an empty sublist there, exactly like unreferenced rows in the bulk
/// path.
pub fn build_from_state(
    dev: &mut FlashDevice,
    alloc: &mut SegmentAllocator,
    table: TableId,
    column: &str,
    levels: &[TableId],
    exact: bool,
    state: &[LevelState],
) -> Result<ClimbingIndex> {
    assert_eq!(levels.len(), state.len(), "one state map per level");
    let mut distinct: Vec<u64> = state.iter().flat_map(|s| s.values().copied()).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let rank: HashMap<u64, usize> = distinct.iter().enumerate().map(|(i, k)| (*k, i)).collect();

    let page_size = dev.page_size();
    let payload_size = levels.len() * LEVEL_DESC_BYTES;
    let mut payloads: Vec<Vec<u8>> = vec![vec![0u8; payload_size]; distinct.len()];
    let mut areas = Vec::with_capacity(levels.len());

    for (li, level_state) in state.iter().enumerate() {
        let mut counts = vec![0u32; distinct.len()];
        for key in level_state.values() {
            counts[rank[key]] += 1;
        }
        let mut offsets = vec![0u64; distinct.len()];
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            offsets[i] = acc;
            acc += *c as u64 * 4;
        }
        let mut area = vec![0u8; level_state.len() * 4];
        let mut cursor = offsets.clone();
        for (id, key) in level_state {
            let at = &mut cursor[rank[key]];
            area[*at as usize..*at as usize + 4].copy_from_slice(&id.to_le_bytes());
            *at += 4;
        }
        let seg = alloc.alloc_bytes((level_state.len() as u64 * 4).max(1), page_size)?;
        for (p, chunk) in area.chunks(page_size).enumerate() {
            dev.write(seg.lpn(p as u64)?, chunk)?;
        }
        areas.push(seg);
        for (ki, payload) in payloads.iter_mut().enumerate() {
            let at = li * LEVEL_DESC_BYTES;
            payload[at..at + 8].copy_from_slice(&offsets[ki].to_le_bytes());
            payload[at + 8..at + 12].copy_from_slice(&counts[ki].to_le_bytes());
        }
    }

    let entries: Vec<(u64, Vec<u8>)> = distinct.into_iter().zip(payloads).collect();
    let tree = BTree::bulk_build(dev, alloc, payload_size, &entries)?;
    Ok(ClimbingIndex::new(
        table,
        column.to_string(),
        levels.to_vec(),
        exact,
        state[0].len() as u64,
        tree,
        areas,
    ))
}

/// A climbing index that absorbs inserts and deletes.
#[derive(Debug)]
pub struct MaintainedIndex {
    strategy: MaintenanceStrategy,
    merge_threshold: usize,
    exact: bool,
    column: String,
    table: TableId,
    levels: Vec<TableId>,
    /// Logical ground truth per level.
    state: Vec<LevelState>,
    /// Next id to assign per level (monotonic; ids are never reused).
    next_id: Vec<Id>,
    /// The on-flash base index.
    base: ClimbingIndex,
    /// TombstoneMerge: per level, key → ids inserted since the last merge.
    delta: Vec<BTreeMap<u64, BTreeSet<Id>>>,
    /// TombstoneMerge: per level, base ids deleted since the last merge.
    tombstones: Vec<BTreeSet<Id>>,
    /// Updates absorbed since the last merge/rebuild.
    pending: usize,
}

impl MaintainedIndex {
    /// Bulk-build the initial index. `initial[l]` holds level `l`'s keys,
    /// one per row, ids assigned `0..n` in order (the bulk-load contract).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        table: TableId,
        column: &str,
        levels: Vec<TableId>,
        exact: bool,
        initial: &[Vec<u64>],
        strategy: MaintenanceStrategy,
        merge_threshold: usize,
    ) -> Result<MaintainedIndex> {
        assert_eq!(levels.len(), initial.len(), "one key vector per level");
        assert!(merge_threshold >= 1, "merge threshold must be positive");
        let state: Vec<LevelState> = initial
            .iter()
            .map(|keys| {
                keys.iter()
                    .enumerate()
                    .map(|(i, k)| (i as Id, *k))
                    .collect()
            })
            .collect();
        let next_id = initial.iter().map(|keys| keys.len() as Id).collect();
        let base = build_from_state(dev, alloc, table, column, &levels, exact, &state)?;
        let n = levels.len();
        Ok(MaintainedIndex {
            strategy,
            merge_threshold,
            exact,
            column: column.to_string(),
            table,
            levels,
            state,
            next_id,
            base,
            delta: vec![BTreeMap::new(); n],
            tombstones: vec![BTreeSet::new(); n],
            pending: 0,
        })
    }

    /// The strategy in force.
    pub fn strategy(&self) -> MaintenanceStrategy {
        self.strategy
    }

    /// Target tables, innermost first.
    pub fn levels(&self) -> &[TableId] {
        &self.levels
    }

    /// Live rows at a level.
    pub fn live_rows(&self, level: usize) -> usize {
        self.state[level].len()
    }

    /// Updates buffered since the last merge/rebuild (always 0 for
    /// `RebuildSegment`).
    pub fn pending_ops(&self) -> usize {
        self.pending
    }

    /// Logical ground truth (the differential suite's reference input).
    pub fn state(&self) -> &[LevelState] {
        &self.state
    }

    fn check_level(&self, level: usize) -> Result<()> {
        if level >= self.levels.len() {
            return Err(StorageError::Corrupt(format!(
                "maintained index {}.{} has no level {level}",
                self.table, self.column
            )));
        }
        Ok(())
    }

    /// Insert a row with `key` at `level`; returns its assigned id.
    pub fn insert(
        &mut self,
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        level: usize,
        key: u64,
    ) -> Result<Id> {
        self.check_level(level)?;
        let id = self.next_id[level];
        self.next_id[level] += 1;
        self.state[level].insert(id, key);
        match self.strategy {
            MaintenanceStrategy::RebuildSegment => self.rebuild(dev, alloc)?,
            MaintenanceStrategy::TombstoneMerge => {
                self.delta[level].entry(key).or_default().insert(id);
                self.note_op(dev, alloc)?;
            }
        }
        Ok(id)
    }

    /// Delete the row `id` at `level`. Returns false when no such live row
    /// exists (nothing changes).
    pub fn delete(
        &mut self,
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        level: usize,
        id: Id,
    ) -> Result<bool> {
        self.check_level(level)?;
        let Some(key) = self.state[level].remove(&id) else {
            return Ok(false);
        };
        match self.strategy {
            MaintenanceStrategy::RebuildSegment => self.rebuild(dev, alloc)?,
            MaintenanceStrategy::TombstoneMerge => {
                // An id still sitting in the delta never reached flash:
                // retract it host-side. Otherwise tombstone the base copy.
                let in_delta = match self.delta[level].get_mut(&key) {
                    Some(ids) => {
                        let was = ids.remove(&id);
                        if ids.is_empty() {
                            self.delta[level].remove(&key);
                        }
                        was
                    }
                    None => false,
                };
                if !in_delta {
                    self.tombstones[level].insert(id);
                }
                self.note_op(dev, alloc)?;
            }
        }
        Ok(true)
    }

    /// Force the base to absorb all buffered updates now (merge for
    /// `TombstoneMerge`, no-op for `RebuildSegment`, which never buffers).
    pub fn flush(&mut self, dev: &mut FlashDevice, alloc: &mut SegmentAllocator) -> Result<()> {
        if self.pending > 0 {
            self.rebuild(dev, alloc)?;
        }
        Ok(())
    }

    fn note_op(&mut self, dev: &mut FlashDevice, alloc: &mut SegmentAllocator) -> Result<()> {
        self.pending += 1;
        if self.pending >= self.merge_threshold {
            self.rebuild(dev, alloc)?;
        }
        Ok(())
    }

    /// Rebuild the base from logical state out of place, free the old
    /// segments, and clear all buffered updates.
    fn rebuild(&mut self, dev: &mut FlashDevice, alloc: &mut SegmentAllocator) -> Result<()> {
        let fresh = build_from_state(
            dev,
            alloc,
            self.table,
            &self.column,
            &self.levels,
            self.exact,
            &self.state,
        )?;
        let old = std::mem::replace(&mut self.base, fresh);
        old.release(dev, alloc)?;
        for d in &mut self.delta {
            d.clear();
        }
        for t in &mut self.tombstones {
            t.clear();
        }
        self.pending = 0;
        Ok(())
    }

    /// Materialized base sublist for `key` at `level` (empty when absent).
    fn base_ids(
        &self,
        dev: &mut FlashDevice,
        ram: &RamArena,
        level: usize,
        key: u64,
    ) -> Result<Vec<Id>> {
        let mut probe = self.base.probe(ram)?;
        match probe.lookup_eq(dev, key, level)? {
            Some(list) => IdListReader::open(list, ram, dev.page_size())?.drain(dev),
            None => Ok(Vec::new()),
        }
    }

    /// Equality probe: the sorted ids of live rows at `level` whose key is
    /// `key`. Identical across strategies and to a fresh rebuild.
    pub fn lookup_eq(
        &self,
        dev: &mut FlashDevice,
        ram: &RamArena,
        level: usize,
        key: u64,
    ) -> Result<Vec<Id>> {
        self.check_level(level)?;
        let mut ids = self.base_ids(dev, ram, level, key)?;
        if self.strategy == MaintenanceStrategy::TombstoneMerge {
            ids.retain(|id| !self.tombstones[level].contains(id));
            if let Some(fresh) = self.delta[level].get(&key) {
                ids.extend(fresh.iter().copied());
                ids.sort_unstable();
            }
        }
        Ok(ids)
    }

    /// Range probe: the sorted ids of live rows at `level` whose key lies
    /// in `[lo, hi]` (inclusive; inverted ranges yield nothing).
    pub fn lookup_range(
        &self,
        dev: &mut FlashDevice,
        ram: &RamArena,
        level: usize,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<Id>> {
        self.check_level(level)?;
        let mut probe = self.base.probe(ram)?;
        let lists = probe.lookup_range(dev, lo, hi, level)?;
        let mut ids = Vec::new();
        for list in lists {
            let sub = IdListReader::open(list, ram, dev.page_size())?.drain(dev)?;
            ids.extend(sub);
        }
        if self.strategy == MaintenanceStrategy::TombstoneMerge {
            ids.retain(|id| !self.tombstones[level].contains(id));
            if lo <= hi {
                for (_, fresh) in self.delta[level].range(lo..=hi) {
                    ids.extend(fresh.iter().copied());
                }
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Flash bytes of the current base (host-side delta excluded).
    pub fn bytes(&self, page_size: usize) -> u64 {
        self.base.bytes(page_size)
    }
}

/// A subtree key table that absorbs row updates and appends.
///
/// SKT rows live in a fixed-width [`FlashTable`] sorted by the implicit
/// owner id, so in-place row updates are read-modify-write programs and
/// appends fill the segment's tail capacity. When an append outgrows the
/// segment, the table rebuilds into one with `grow` spare rows (the
/// doubling amortisation of a vector, paid in sequential flash writes).
#[derive(Debug)]
pub struct MaintainedSkt {
    /// The wrapped SKT (readable by `SJoin` exactly like a bulk-built one).
    pub skt: SubtreeKeyTable,
    /// Extra row slots allocated on rebuild.
    grow: u64,
}

impl MaintainedSkt {
    /// Wrap a bulk-built SKT. `grow` is the reserve added when an append
    /// forces a rebuild (min 1).
    pub fn new(skt: SubtreeKeyTable, grow: u64) -> MaintainedSkt {
        MaintainedSkt {
            skt,
            grow: grow.max(1),
        }
    }

    /// Rows currently stored.
    pub fn rows(&self) -> u64 {
        self.skt.rows()
    }

    /// Overwrite the descendant ids of owner row `row`.
    pub fn set_row(&mut self, dev: &mut FlashDevice, row: u64, ids: &[Id]) -> Result<()> {
        let bytes = self.encode(ids)?;
        self.skt.flash.write_row(dev, row, &bytes)
    }

    /// Append a new owner row (owner ids are implicit and dense, so this
    /// is the row of the next owner tuple). Rebuilds into a larger
    /// segment when the current one is full.
    pub fn append_row(
        &mut self,
        dev: &mut FlashDevice,
        alloc: &mut SegmentAllocator,
        ids: &[Id],
    ) -> Result<()> {
        let bytes = self.encode(ids)?;
        let page_size = dev.page_size();
        if self.skt.flash.rows() >= self.skt.flash.capacity(page_size) {
            self.grow_into(dev, alloc)?;
        }
        self.skt.flash.append_row(dev, &bytes)
    }

    fn encode(&self, ids: &[Id]) -> Result<Vec<u8>> {
        let layout = &self.skt.flash.layout;
        if ids.len() != self.skt.descendants.len() {
            return Err(StorageError::Corrupt(format!(
                "SKT row wants {} descendant ids, got {}",
                self.skt.descendants.len(),
                ids.len()
            )));
        }
        let mut out = vec![0u8; layout.size()];
        for (c, id) in ids.iter().enumerate() {
            layout.put_id(&mut out, c, *id);
        }
        Ok(out)
    }

    /// Copy all rows into a fresh segment with `grow` spare row slots and
    /// free the old one.
    fn grow_into(&mut self, dev: &mut FlashDevice, alloc: &mut SegmentAllocator) -> Result<()> {
        let layout = self.skt.flash.layout.clone();
        let rows = self.skt.flash.rows();
        let size = layout.size();
        // Stage old rows host-side (build-path convention), then bulk-load
        // sequentially into the larger segment.
        let mut staged = vec![0u8; rows as usize * size];
        for r in 0..rows {
            self.skt.flash.read_row(
                dev,
                r,
                &mut staged[r as usize * size..(r as usize + 1) * size],
            )?;
        }
        let fresh = FlashTable::bulk_load_with_capacity(
            dev,
            alloc,
            layout,
            rows,
            rows + self.grow,
            |r, out| out.copy_from_slice(&staged[r as usize * size..(r as usize + 1) * size]),
        )?;
        let old = std::mem::replace(&mut self.skt.flash, fresh);
        alloc.free(old.segment(), dev)?;
        Ok(())
    }
}
