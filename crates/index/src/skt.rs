//! Subtree Key Tables (paper §3.2, Figure 4).
//!
//! `SKT_T` precomputes the join of `T` with **all** its descendants: one row
//! per tuple of `T` (stored in `T.id` order so the id column itself is
//! implicit — "keeping the SKT sorted on the table identifiers of T
//! eliminates the need to store those identifiers"), holding the id of the
//! unique joining tuple of every descendant table in DFS pre-order.
//!
//! The `SJoin` operator semi-joins a sorted list of `T` ids against this
//! table with a single ascending pass, projecting any subset of descendant
//! id columns.

use ghostdb_storage::row::RowLayout;
use ghostdb_storage::{FlashTable, Result, SchemaTree, StorageError, TableId};

/// A subtree key table on flash.
#[derive(Debug, Clone)]
pub struct SubtreeKeyTable {
    /// Owning table (a non-leaf table of the schema).
    pub table: TableId,
    /// Descendant tables, in DFS pre-order — the column order of each row.
    pub descendants: Vec<TableId>,
    /// The rows on flash: layout = `ids(descendants.len())`, sorted by the
    /// implicit owner id.
    pub flash: FlashTable,
}

impl SubtreeKeyTable {
    /// Wrap a built flash table (used by `IndexBuilder`).
    pub fn new(schema: &SchemaTree, table: TableId, flash: FlashTable) -> Result<SubtreeKeyTable> {
        let descendants = schema.descendants(table);
        if descendants.is_empty() {
            return Err(StorageError::Schema(format!(
                "SKT on leaf table {}",
                schema.def(table).name
            )));
        }
        if flash.layout != RowLayout::ids(descendants.len()) {
            return Err(StorageError::Corrupt("SKT layout mismatch".into()));
        }
        Ok(SubtreeKeyTable {
            table,
            descendants,
            flash,
        })
    }

    /// Column index of descendant table `t` within SKT rows.
    pub fn column_of(&self, t: TableId) -> Option<usize> {
        self.descendants.iter().position(|d| *d == t)
    }

    /// Rows (= cardinality of the owning table).
    pub fn rows(&self) -> u64 {
        self.flash.rows()
    }

    /// Bytes occupied on flash (size model input).
    pub fn bytes(&self, page_size: usize) -> u64 {
        self.flash.pages(page_size) * page_size as u64
    }
}
