//! Fixed-width row layouts.
//!
//! All GhostDB on-flash structures use fixed-width records so the page and
//! offset of any field are pure arithmetic (no directories, no slots) and
//! rows never span pages — a row's page holds `page_size / row_size` rows.

/// Layout of a fixed-width record: field widths and cumulative offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowLayout {
    widths: Vec<usize>,
    offsets: Vec<usize>,
    size: usize,
}

impl RowLayout {
    /// Layout from field widths (bytes).
    pub fn new(widths: &[usize]) -> Self {
        assert!(!widths.is_empty(), "empty row layout");
        assert!(widths.iter().all(|w| *w > 0), "zero-width field");
        let mut offsets = Vec::with_capacity(widths.len());
        let mut acc = 0usize;
        for w in widths {
            offsets.push(acc);
            acc += w;
        }
        RowLayout {
            widths: widths.to_vec(),
            offsets,
            size: acc,
        }
    }

    /// Layout of `n` fixed-width ID columns (SKT rows, operator outputs).
    pub fn ids(n: usize) -> Self {
        RowLayout::new(&vec![crate::ID_BYTES; n])
    }

    /// Record size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of fields.
    pub fn fields(&self) -> usize {
        self.widths.len()
    }

    /// Width of field `i`.
    pub fn width(&self, i: usize) -> usize {
        self.widths[i]
    }

    /// Byte offset of field `i` within the record.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Borrow field `i` out of a record.
    pub fn field<'a>(&self, row: &'a [u8], i: usize) -> &'a [u8] {
        &row[self.offsets[i]..self.offsets[i] + self.widths[i]]
    }

    /// Mutably borrow field `i` out of a record.
    pub fn field_mut<'a>(&self, row: &'a mut [u8], i: usize) -> &'a mut [u8] {
        &mut row[self.offsets[i]..self.offsets[i] + self.widths[i]]
    }

    /// Read field `i` as a little-endian u32 (ID columns).
    pub fn get_id(&self, row: &[u8], i: usize) -> u32 {
        u32::from_le_bytes(self.field(row, i).try_into().expect("4-byte field"))
    }

    /// Write field `i` as a little-endian u32 (ID columns).
    pub fn put_id(&self, row: &mut [u8], i: usize, id: u32) {
        self.field_mut(row, i).copy_from_slice(&id.to_le_bytes());
    }

    /// Records that fit in one page (records never span pages).
    pub fn rows_per_page(&self, page_size: usize) -> usize {
        let rpp = page_size / self.size;
        assert!(rpp > 0, "record larger than a page");
        rpp
    }

    /// Page index and in-page byte offset of record `row`.
    pub fn locate(&self, row: u64, page_size: usize) -> (u64, usize) {
        let rpp = self.rows_per_page(page_size) as u64;
        (row / rpp, (row % rpp) as usize * self.size)
    }

    /// Pages needed for `rows` records.
    pub fn pages_for(&self, rows: u64, page_size: usize) -> u64 {
        rows.div_ceil(self.rows_per_page(page_size) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_and_size() {
        let l = RowLayout::new(&[4, 10, 2]);
        assert_eq!(l.size(), 16);
        assert_eq!(l.offset(0), 0);
        assert_eq!(l.offset(1), 4);
        assert_eq!(l.offset(2), 14);
        assert_eq!(l.fields(), 3);
    }

    #[test]
    fn field_views() {
        let l = RowLayout::new(&[4, 4]);
        let mut row = vec![0u8; 8];
        l.put_id(&mut row, 0, 0xdeadbeef);
        l.put_id(&mut row, 1, 7);
        assert_eq!(l.get_id(&row, 0), 0xdeadbeef);
        assert_eq!(l.get_id(&row, 1), 7);
        assert_eq!(l.field(&row, 1), &7u32.to_le_bytes());
    }

    #[test]
    fn paging_math() {
        let l = RowLayout::ids(4); // 16-byte rows
        assert_eq!(l.rows_per_page(2048), 128);
        assert_eq!(l.locate(0, 2048), (0, 0));
        assert_eq!(l.locate(127, 2048), (0, 127 * 16));
        assert_eq!(l.locate(128, 2048), (1, 0));
        assert_eq!(l.pages_for(129, 2048), 2);
        assert_eq!(l.pages_for(0, 2048), 1);
    }

    #[test]
    #[should_panic(expected = "record larger than a page")]
    fn oversized_record_panics() {
        RowLayout::new(&[3000]).rows_per_page(2048);
    }
}
